//! Validation of the measurement machinery itself: measured simulated
//! costs must equal the analytic sum of their parts, and the claim
//! evaluator must be correct on synthetic tables.

use amoeba_sim::{HwProfile, Nanos};
use bullet_bench::rig::BulletRig;
use bullet_bench::table::{Claims, Row, SIZES};

/// Analytic cost of one warm Bullet read of `size` bytes, derived by hand
/// from the cost model: request (header ≈ 32 B) one way, fixed server CPU,
/// reply (header ≈ 12 B + file) back, client copy.
fn analytic_warm_read(hw: &HwProfile, size: usize) -> Nanos {
    let request = hw.net.one_way(32 + 4); // cap+command+lengths ≈ 36 B
    let server = hw.cpu.request();
    let reply = hw.net.one_way(12 + size as u64);
    let client_copy = hw.cpu.memcpy(size as u64);
    request + server + reply + client_copy
}

#[test]
fn measured_read_matches_the_analytic_model() {
    let rig = BulletRig::paper_1989();
    for &size in &SIZES {
        let measured = rig.measure_read(size);
        let analytic = analytic_warm_read(&rig.hw, size);
        // Within 2% + a small constant (header sizes are approximated).
        let tolerance = analytic.as_ns() / 50 + 200_000;
        let diff = measured.as_ns().abs_diff(analytic.as_ns());
        assert!(
            diff <= tolerance,
            "size {size}: measured {measured}, analytic {analytic}"
        );
    }
}

#[test]
fn create_delete_cost_decomposes_into_disk_and_wire() {
    // A small create+delete is dominated by four synchronous disk writes
    // (file + inode, on each of two disks) plus two RPCs; verify the
    // floor is where the disk model puts it.
    let rig = BulletRig::paper_1989();
    let measured = rig.measure_create_delete(1);
    // Each inode/file write: op overhead + seek + rotation + 1 KB.
    let per_write = Nanos::from_us_f64(
        rig.hw.disk.per_op_us
            + rig.hw.disk.rotation_avg_us
            + 1024.0 * rig.hw.disk.transfer_us_per_byte,
    );
    // 4 writes on create (2 disks × file+inode) + 2 on delete (inode both
    // disks), but each replica pair runs in parallel and settles at the
    // slower disk, so the serialized demand is one disk's worth: 2 writes
    // on create + 1 on delete.  Seeks vary, so assert a generous band
    // around 3 writes.
    let floor = Nanos(per_write.as_ns() * 3);
    let ceiling = Nanos(per_write.as_ns() * 3 + Nanos::from_ms(40).as_ns());
    assert!(
        measured >= floor && measured <= ceiling,
        "measured {measured}, floor {floor}, ceiling {ceiling}"
    );
}

fn synthetic_row(size: usize, read_ms: u64, write_ms: u64) -> Row {
    Row {
        size,
        read: Nanos::from_ms(read_ms),
        write: Nanos::from_ms(write_ms),
    }
}

#[test]
fn claims_evaluator_on_synthetic_tables() {
    // Build tables where the truth is known by construction: bullet is
    // exactly 4x faster on reads; NFS dips at 1 MB; writes cross at 64 KB.
    let bullet: Vec<Row> = SIZES
        .iter()
        .map(|&s| synthetic_row(s, (s as u64 / 1024).max(1), (s as u64 / 512).max(10)))
        .collect();
    let nfs: Vec<Row> = SIZES
        .iter()
        .map(|&s| {
            let read = 4 * (s as u64 / 1024).max(1) * if s == 1 << 20 { 3 } else { 1 };
            synthetic_row(s, read, 8 * (s as u64 / 512).max(10))
        })
        .collect();
    let claims = Claims::evaluate(&bullet, &nfs);
    for &(size, ratio) in &claims.read_speedups {
        let expected = if size == 1 << 20 { 12.0 } else { 4.0 };
        assert!((ratio - expected).abs() < 0.01, "at {size}: {ratio}");
    }
    assert!((claims.large_read_bw_ratio - 12.0).abs() < 0.01);
    let (read_dip, _) = claims.nfs_dips_at_1mb;
    assert!(read_dip);
    // Bullet write bandwidth = size/(2*size/512 ms) = 256 KB/s-ish for
    // big files; NFS read bandwidth at 64 KB = 64/(256 ms) = 250 KB/s →
    // the crossover set is computed, not asserted here beyond sanity.
    assert!(claims.write_beats_read_at.iter().all(|s| SIZES.contains(s)));
}

#[test]
fn determinism_across_fresh_rigs() {
    // Two completely independent rigs produce identical simulated
    // numbers — the property that makes the figures reproducible.
    let a: Vec<Nanos> = SIZES
        .iter()
        .map(|&s| BulletRig::paper_1989().measure_read(s))
        .collect();
    let b: Vec<Nanos> = SIZES
        .iter()
        .map(|&s| BulletRig::paper_1989().measure_read(s))
        .collect();
    assert_eq!(a, b);
}
