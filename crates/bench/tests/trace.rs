//! The tracer's two external contracts: it is *free* when disabled
//! (bit-identical simulated time whether or not spans are recorded), and
//! its exports are well-formed (the Chrome trace-event file is a JSON
//! array of complete events, the JSONL file one object per line).

use amoeba_sim::{HwProfile, Nanos, TraceConfig};
use bullet_bench::rig::BulletRig;

/// A rig with the span tracer recording into `rig.tracer`.
fn traced_rig() -> BulletRig {
    BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |cfg| {
        cfg.trace = TraceConfig::enabled(cfg.clock.clone());
    })
}

/// Runs the three standard measurements on one rig and returns the raw
/// delays plus the final clock reading.
fn measure_all(rig: &BulletRig, size: usize) -> (Nanos, Nanos, Nanos, Nanos) {
    let warm = rig.measure_read(size);
    let cold = rig.measure_cold_read(size);
    let create = rig.measure_create(size, 2);
    (warm, cold, create, rig.clock.now())
}

#[test]
fn tracing_is_free_identical_simulated_time() {
    for &size in &[1usize, 4 << 10, 64 << 10, 1 << 20] {
        let off = BulletRig::paper_1989();
        let on = traced_rig();
        assert!(!off.tracer.enabled());
        assert!(on.tracer.enabled());
        let a = measure_all(&off, size);
        let b = measure_all(&on, size);
        assert_eq!(a, b, "size {size}: tracing changed the simulated cost");
    }
}

#[test]
fn traced_rig_records_op_spans_and_untraced_records_none() {
    let on = traced_rig();
    on.measure_read(4096);
    let spans = on.tracer.snapshot();
    assert!(spans.iter().any(|s| s.name == "rpc.trans"));
    assert!(spans.iter().any(|s| s.name == "bullet.read"));
    assert!(spans.iter().any(|s| s.name == "bullet.create"));

    let off = BulletRig::paper_1989();
    off.measure_read(4096);
    assert!(off.tracer.snapshot().is_empty());
}

#[test]
fn chrome_export_is_a_well_formed_event_array() {
    let rig = traced_rig();
    rig.measure_cold_read(256 << 10);
    let chrome = rig.tracer.export_chrome();
    let trimmed = chrome.trim();
    assert!(trimmed.starts_with('{') && trimmed.ends_with('}'));
    assert!(chrome.contains("\"traceEvents\":["));
    assert!(chrome.contains("\"ph\":\"X\""), "no complete events");
    // Braces/brackets balance — cheap structural sanity without a JSON
    // parser in the dev-dependencies.
    for (open, close) in [('{', '}'), ('[', ']')] {
        let opens = chrome.matches(open).count();
        let closes = chrome.matches(close).count();
        assert_eq!(opens, closes, "unbalanced {open}{close}");
    }

    let jsonl = rig.tracer.export_jsonl();
    assert_eq!(jsonl.lines().count(), rig.tracer.snapshot().len());
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"name\":"));
    }
}
