//! ABL17 rig — the flight recorder and SLO watchdog at event-engine
//! scale.
//!
//! Three runs of one evsim cell, identical but for the instrumentation:
//!
//! 1. **bare** — telemetry off, the reference timeline;
//! 2. **clean** — flight recorder on.  Sampling never advances virtual
//!    time, so this run's FNV-1a timeline digest must equal the bare
//!    run's — the recorder is provably free in virtual time (0 % ≤ the
//!    committed 2 % throughput budget), and the rings fill with the
//!    healthy baseline the SLO ceilings are derived from;
//! 3. **burst** — recorder on, watchdog armed, and a mid-run
//!    [`FaultBurst`]: a lossy wire (one request in
//!    [`BURST_DROP_DENOM`] loses its packet) plus one failed mirror
//!    replica whose reads pile onto its neighbour.  Per-client
//!    accounting is on, so the top-K offender table names who paid.
//!
//! The watchdog watches two committed SLOs:
//!
//! * `lossy_wire` — the [`GAUGE_EVSIM_RETRIES`] delta series with a
//!   ceiling of 0: any retransmission inside a sampling period is a
//!   degradation;
//! * `disk_backlog` — [`GAUGE_EVSIM_DISK_BACKLOG_US`] with the ceiling
//!   set to the worst per-disk backlog the clean run ever sampled, so
//!   the failover pile-up is judged against measured healthy behaviour,
//!   not a guessed constant.
//!
//! [`outcome_table`] renders everything deterministic about the triple —
//! digests, reads, hit rates, retries, failovers, ring population, SLO
//! event counts, detection lag, and the top-K offenders — so the
//! ablation binary can run the whole thing twice and demand the bytes
//! come back identical.

use amoeba_sim::{Nanos, SloKind, Telemetry};
use bullet_core::accounting::ClientAccounting;
use bullet_core::counters::{GAUGE_EVSIM_DISK_BACKLOG_US, GAUGE_EVSIM_RETRIES};

use crate::evsim::{self, EvsimConfig, EvsimOutcome, FaultBurst};

/// One lost packet per this many requests inside the burst window.
pub const BURST_DROP_DENOM: u64 = 3;
/// Retransmission penalty per lost packet.
pub const BURST_RETRY_DELAY_MS: u64 = 5;
/// The disk whose mirror replica fails inside the window.
pub const BURST_FAILED_DISK: usize = 3;
/// Offenders listed in the accounting table.
pub const TOP_K: usize = 5;

/// One ABL17 cell: the evsim base configuration plus the recorder
/// cadence and the fault window.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// The cell all three runs share (telemetry/fault/accounting fields
    /// are overridden per run).
    pub base: EvsimConfig,
    /// Flight-recorder sampling period (virtual time).
    pub period: Nanos,
    /// Ring capacity per series.
    pub capacity: usize,
    /// Virtual time the fault burst opens.
    pub burst_start: Nanos,
    /// Virtual time the fault burst closes.
    pub burst_end: Nanos,
}

impl MonitorConfig {
    /// The PR-gate cell: the full 10k-client Zipf population, a 1 s
    /// sampling period, and a two-minute fault burst opening at t=60 s
    /// (the Zipf cell drains in ≈ 7 virtual minutes).
    pub fn gate(seed: u64) -> MonitorConfig {
        MonitorConfig {
            base: EvsimConfig::gate(evsim::POLICIES[0], "zipf", seed),
            period: Nanos::from_ms(1_000),
            capacity: 512,
            burst_start: Nanos::from_ms(60_000),
            burst_end: Nanos::from_ms(180_000),
        }
    }

    /// A small cell for unit tests: hundreds of clients, a 50 ms period,
    /// a burst over [300 ms, 900 ms).
    pub fn small(seed: u64) -> MonitorConfig {
        MonitorConfig {
            base: EvsimConfig::small(evsim::POLICIES[0], "zipf", seed),
            period: Nanos::from_ms(50),
            capacity: 512,
            burst_start: Nanos::from_ms(300),
            burst_end: Nanos::from_ms(900),
        }
    }

    fn burst(&self) -> FaultBurst {
        FaultBurst {
            start: self.burst_start,
            end: self.burst_end,
            drop_denom: BURST_DROP_DENOM,
            retry_delay: Nanos::from_ms(BURST_RETRY_DELAY_MS),
            failed_disk: BURST_FAILED_DISK,
            seed: self.base.seed,
        }
    }
}

/// Everything deterministic the triple produced (the byte-compared
/// facts; wall-clock timings live outside this struct).
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorOutcome {
    /// The bare run's aggregate.
    pub bare: EvsimOutcome,
    /// The instrumented clean run's aggregate.
    pub clean: EvsimOutcome,
    /// The fault-burst run's aggregate.
    pub burst: EvsimOutcome,
    /// The measured `disk_backlog` ceiling (µs): the clean run's worst
    /// per-disk backlog sample.
    pub backlog_ceiling_us: u64,
    /// Series the burst-run recorder holds.
    pub series_count: usize,
    /// Live samples across all burst-run rings.
    pub samples_total: usize,
    /// Samples overwritten by ring wrap-around in the burst run.
    pub samples_dropped: u64,
    /// Degraded events the watchdog emitted.
    pub slo_degraded: u64,
    /// Recovered events the watchdog emitted.
    pub slo_recovered: u64,
    /// First Degraded event at/after the burst opened, µs past the open
    /// (`u64::MAX` if the watchdog never fired).
    pub detection_lag_us: u64,
    /// Top offenders of the burst run: `(client, cost, requests,
    /// disk_ios, retries)` by descending [`cost`](bullet_core::accounting::ClientUsage::cost).
    pub top_clients: Vec<(u64, u64, u64, u64, u64)>,
}

/// One full ABL17 measurement: the outcome plus the burst run's live
/// recorder (for the flight-recorder dumps).
#[derive(Debug, Clone)]
pub struct MonitorRun {
    /// The byte-comparable facts.
    pub outcome: MonitorOutcome,
    /// The burst run's recorder — export with
    /// [`Telemetry::export_jsonl`] / [`Telemetry::export_chrome`].
    pub telemetry: Telemetry,
}

/// Runs the bare/clean/burst triple.  Pure function of the config.
pub fn run_monitor(cfg: &MonitorConfig) -> MonitorRun {
    let bare = evsim::run(&cfg.base);

    let mut clean_cfg = cfg.base.clone();
    let clean_tel = Telemetry::on(cfg.period, cfg.capacity);
    clean_cfg.telemetry = clean_tel.clone();
    let clean = evsim::run(&clean_cfg);
    // The committed backlog SLO: no disk may fall further behind than
    // the worst the healthy run ever measured.
    let backlog_ceiling_us = (0..evsim::DISKS as u32)
        .flat_map(|d| clean_tel.series(GAUGE_EVSIM_DISK_BACKLOG_US, d))
        .map(|s| s.value)
        .max()
        .unwrap_or(0);

    let mut burst_cfg = cfg.base.clone();
    let tel = Telemetry::on(cfg.period, cfg.capacity);
    tel.watch("lossy_wire", GAUGE_EVSIM_RETRIES, 0);
    tel.watch(
        "disk_backlog",
        GAUGE_EVSIM_DISK_BACKLOG_US,
        backlog_ceiling_us,
    );
    burst_cfg.telemetry = tel.clone();
    burst_cfg.fault = Some(cfg.burst());
    burst_cfg.accounting = ClientAccounting::on();
    let burst = evsim::run(&burst_cfg);

    let index = tel.series_index();
    let series_count = index.len();
    let samples_total = index.iter().map(|&(_, _, _, len, _)| len).sum();
    let samples_dropped = index.iter().map(|&(_, _, _, _, d)| d).sum();
    let events = tel.slo_events();
    let slo_degraded = events
        .iter()
        .filter(|e| e.kind == SloKind::Degraded)
        .count() as u64;
    let slo_recovered = events
        .iter()
        .filter(|e| e.kind == SloKind::Recovered)
        .count() as u64;
    let detection_lag_us = events
        .iter()
        .find(|e| e.kind == SloKind::Degraded && e.at >= cfg.burst_start)
        .map_or(u64::MAX, |e| e.at.saturating_sub(cfg.burst_start).as_us());
    let top_clients = burst_cfg
        .accounting
        .top_k(TOP_K)
        .into_iter()
        .map(|(c, u)| (c, u.cost(), u.requests, u.disk_ios, u.retries))
        .collect();

    MonitorRun {
        outcome: MonitorOutcome {
            bare: bare.outcome,
            clean: clean.outcome,
            burst: burst.outcome,
            backlog_ceiling_us,
            series_count,
            samples_total,
            samples_dropped,
            slo_degraded,
            slo_recovered,
            detection_lag_us,
            top_clients,
        },
        telemetry: tel,
    }
}

/// Renders the deterministic outcome as the byte-compared artifact
/// table: one row per run, the watchdog facts, and the top-K offenders.
pub fn outcome_table(o: &MonitorOutcome) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>7} {:>8} {:>9} {:>18}",
        "run", "reads", "hit%", "retries", "failovers", "digest"
    );
    for (label, e) in [("bare", &o.bare), ("clean", &o.clean), ("burst", &o.burst)] {
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>6.2}% {:>8} {:>9} {:>18}",
            label,
            e.reads,
            e.hit_rate * 100.0,
            e.retries,
            e.failovers,
            format!("{:016x}", e.digest)
        );
    }
    let _ = writeln!(
        out,
        "recorder: {} series, {} samples ({} overwritten), backlog ceiling {} us",
        o.series_count, o.samples_total, o.samples_dropped, o.backlog_ceiling_us
    );
    let _ = writeln!(
        out,
        "watchdog: {} degraded, {} recovered, detection lag {} us",
        o.slo_degraded, o.slo_recovered, o.detection_lag_us
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>8} {:>8} {:>8}",
        "client", "cost", "reqs", "ios", "retries"
    );
    for &(c, cost, reqs, ios, retries) in &o.top_clients {
        let _ = writeln!(out, "{c:>8} {cost:>12} {reqs:>8} {ios:>8} {retries:>8}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_is_free_in_virtual_time() {
        let run = run_monitor(&MonitorConfig::small(11));
        let o = &run.outcome;
        assert_eq!(
            o.bare.digest, o.clean.digest,
            "instrumented run must replay the bare timeline"
        );
        assert_ne!(
            o.bare.digest, o.burst.digest,
            "the fault burst must actually perturb the timeline"
        );
        assert!(o.burst.retries > 0 && o.burst.failovers > 0);
    }

    #[test]
    fn watchdog_flags_burst_within_one_period() {
        let cfg = MonitorConfig::small(11);
        let o = run_monitor(&cfg).outcome;
        assert!(o.slo_degraded >= 1, "burst must trip the watchdog");
        assert!(
            o.detection_lag_us <= cfg.period.as_us(),
            "detection lag {} us exceeds one period ({} us)",
            o.detection_lag_us,
            cfg.period.as_us()
        );
        assert!(
            o.slo_recovered >= 1,
            "watchdog must close the window after the burst"
        );
    }

    #[test]
    fn triple_replays_byte_identically() {
        let a = outcome_table(&run_monitor(&MonitorConfig::small(7)).outcome);
        let b = outcome_table(&run_monitor(&MonitorConfig::small(7)).outcome);
        assert_eq!(a, b);
    }

    #[test]
    fn flight_recorder_dump_has_every_series() {
        let run = run_monitor(&MonitorConfig::small(5));
        let jsonl = run.telemetry.export_jsonl();
        for name in [GAUGE_EVSIM_DISK_BACKLOG_US, GAUGE_EVSIM_RETRIES] {
            assert!(jsonl.contains(name), "dump misses {name}");
        }
        let trace = run.telemetry.export_chrome();
        assert!(trace.contains("\"ph\":\"C\""), "counter events missing");
    }
}
