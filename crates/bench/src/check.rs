//! The regression gate behind `report --json --check`.
//!
//! The committed `BENCH_pr2.json` is the baseline; the gate re-measures
//! and fails the run when a fresh number falls below (bandwidth) or above
//! (p99 latency) the committed one.  Baseline access is strict: a key the
//! gate needs but the committed file lacks is an error naming the exact
//! key and size — never a panic, and never a silently-passing check.

use std::fmt;

/// Why the regression gate refused to pass.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// The committed baseline file could not be read at all.
    Unreadable {
        /// Path the gate tried to read.
        path: String,
    },
    /// The committed baseline lacks the key the gate compares against.
    MissingKey {
        /// Path of the baseline file.
        path: String,
        /// The `bytes` value of the size object searched.
        bytes: usize,
        /// The missing key.
        key: String,
    },
    /// The committed baseline lacks the key inside a named top-level
    /// section (e.g. the `"scheduler"` object).
    MissingSectionKey {
        /// Path of the baseline file.
        path: String,
        /// The section object searched.
        section: String,
        /// The missing key.
        key: String,
    },
    /// The committed baseline's top-level `"schema_version"` does not
    /// match the version this binary writes (or is absent entirely).
    SchemaVersion {
        /// Path of the baseline file.
        path: String,
        /// The version this binary writes.
        expected: u64,
        /// The version found in the file (`None` when absent).
        found: Option<u64>,
    },
    /// A freshly measured number regressed past the committed baseline.
    Regression {
        /// What was compared (human-readable).
        what: String,
        /// The fresh measurement.
        fresh: f64,
        /// The bound it violated.
        bound: f64,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Unreadable { path } => {
                write!(f, "baseline {path} is missing or unreadable; run `report --json {path}` once to create it")
            }
            CheckError::MissingKey { path, bytes, key } => {
                write!(
                    f,
                    "baseline {path} has no key \"{key}\" in its bytes={bytes} object; \
                     regenerate it with `report --json {path}` to pick up the new schema"
                )
            }
            CheckError::MissingSectionKey { path, section, key } => {
                write!(
                    f,
                    "baseline {path} has no key \"{key}\" in its \"{section}\" section; \
                     regenerate it with `report --json {path}` to pick up the new schema"
                )
            }
            CheckError::SchemaVersion {
                path,
                expected,
                found,
            } => match found {
                Some(found) => write!(
                    f,
                    "baseline {path} has schema_version {found} but this binary writes \
                     {expected}; regenerate it with `report --json {path}`"
                ),
                None => write!(
                    f,
                    "baseline {path} has no top-level \"schema_version\" key (pre-versioning \
                     schema); regenerate it with `report --json {path}` to stamp version {expected}"
                ),
            },
            CheckError::Regression { what, fresh, bound } => {
                write!(
                    f,
                    "{what} regressed: fresh {fresh:.3} vs committed bound {bound:.3}"
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Pulls `"<key>": <number>` out of the object for `bytes` in committed
/// JSON — enough parsing for the regression gate, no serde needed.
pub fn json_lookup(doc: &str, bytes: usize, key: &str) -> Option<f64> {
    let obj = doc.split('{').find(|o| {
        o.lines()
            .any(|l| l.trim().starts_with(&format!("\"bytes\": {bytes},")))
    })?;
    let line = obj
        .lines()
        .find(|l| l.trim().starts_with(&format!("\"{key}\":")))?;
    line.split(':')
        .nth(1)?
        .trim()
        .trim_end_matches(',')
        .parse()
        .ok()
}

/// Pulls `"<key>": <number>` out of the object that follows
/// `"<section>": {` in committed JSON.  The section is delimited by
/// brace depth, and only its top level is searched, so a nested object
/// inside the section can neither truncate the scan nor leak its own
/// keys in.  (String values never contain braces in the hand-rolled
/// `render_json` output, so counting raw braces is exact.)
pub fn json_lookup_section(doc: &str, section: &str, key: &str) -> Option<f64> {
    let start = doc.find(&format!("\"{section}\": {{"))?;
    // Keep only the section's depth-1 content: nested objects are
    // elided, the closing brace ends the scan.
    let mut depth = 0u32;
    let mut flat = String::new();
    for c in doc[start..].chars() {
        match c {
            '{' => {
                depth += 1;
                continue;
            }
            '}' => {
                if depth == 1 {
                    break;
                }
                depth -= 1;
                continue;
            }
            _ => {}
        }
        if depth == 1 {
            flat.push(c);
        }
    }
    let line = flat
        .lines()
        .find(|l| l.trim().starts_with(&format!("\"{key}\":")))?;
    line.split(':')
        .nth(1)?
        .trim()
        .trim_end_matches(',')
        .parse()
        .ok()
}

/// [`json_lookup_section`] that treats absence as a gate failure naming
/// the section and the key.
///
/// # Errors
///
/// [`CheckError::MissingSectionKey`] when the baseline lacks the key.
pub fn require_section_key(
    doc: &str,
    path: &str,
    section: &str,
    key: &str,
) -> Result<f64, CheckError> {
    json_lookup_section(doc, section, key).ok_or_else(|| CheckError::MissingSectionKey {
        path: path.to_string(),
        section: section.to_string(),
        key: key.to_string(),
    })
}

/// The `"schema_version"` value `report --json` stamps at the top of
/// every baseline it writes.  Bump it when a change makes old baselines
/// unreadable by the gate (key renames, section moves) — `--check` then
/// fails with a message telling the operator to regenerate, instead of
/// mis-parsing.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Reads an integer-valued key from the document (line-oriented, like
/// the other lookups — sufficient for the hand-rolled `render_json`
/// output, whose `"schema_version"` appears exactly once).
pub fn json_lookup_u64(doc: &str, key: &str) -> Option<u64> {
    let line = doc
        .lines()
        .find(|l| l.trim_start().starts_with(&format!("\"{key}\":")))?;
    line.split(':')
        .nth(1)?
        .trim()
        .trim_end_matches(',')
        .parse()
        .ok()
}

/// Fails unless the baseline carries `"schema_version": expected`.
///
/// # Errors
///
/// [`CheckError::SchemaVersion`] naming the found version (or its
/// absence) and the expected one.
pub fn require_schema_version(doc: &str, path: &str, expected: u64) -> Result<(), CheckError> {
    let found = json_lookup_u64(doc, "schema_version");
    if found == Some(expected) {
        return Ok(());
    }
    Err(CheckError::SchemaVersion {
        path: path.to_string(),
        expected,
        found,
    })
}

/// [`json_lookup`] that treats absence as a gate failure naming the key.
///
/// # Errors
///
/// [`CheckError::MissingKey`] when the baseline lacks the key.
pub fn require_key(doc: &str, path: &str, bytes: usize, key: &str) -> Result<f64, CheckError> {
    json_lookup(doc, bytes, key).ok_or_else(|| CheckError::MissingKey {
        path: path.to_string(),
        bytes,
        key: key.to_string(),
    })
}

/// Fails when `fresh` dropped below `floor` (a bandwidth-style metric,
/// bigger is better).
///
/// # Errors
///
/// [`CheckError::Regression`] on violation.
pub fn require_at_least(what: &str, fresh: f64, floor: f64) -> Result<(), CheckError> {
    if fresh < floor {
        return Err(CheckError::Regression {
            what: what.to_string(),
            fresh,
            bound: floor,
        });
    }
    Ok(())
}

/// Fails when `fresh` rose above `ceiling` (a latency-style metric,
/// smaller is better).
///
/// # Errors
///
/// [`CheckError::Regression`] on violation.
pub fn require_at_most(what: &str, fresh: f64, ceiling: f64) -> Result<(), CheckError> {
    if fresh > ceiling {
        return Err(CheckError::Regression {
            what: what.to_string(),
            fresh,
            bound: ceiling,
        });
    }
    Ok(())
}

/// Validates that `doc` is one well-formed JSON value (with optional
/// surrounding whitespace).  A minimal recursive-descent parser — no
/// serde, no Python on the CI runner — used by `ablation_trace` to gate
/// the Chrome trace export and by `report` on its own output.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the first error.
pub fn json_valid(doc: &str) -> Result<(), String> {
    let bytes = doc.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!(
            "trailing bytes after the JSON value at offset {pos}"
        ));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: u32) -> Result<(), String> {
    if depth > 128 {
        return Err(format!("nesting deeper than 128 at offset {pos}"));
    }
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
        None => Err(format!("unexpected end of input at offset {pos}")),
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: u32) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected a string key at offset {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: u32) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| format!("truncated \\u escape at offset {pos}"))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at offset {pos}"));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at offset {pos}")),
            },
            0x00..=0x1f => return Err(format!("raw control byte in string at offset {pos}")),
            _ => *pos += 1,
        }
    }
    Err(format!("unterminated string at offset {pos}"))
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("expected digits at offset {pos}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("expected fraction digits at offset {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("expected exponent digits at offset {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "sizes": [
    {
      "bytes": 1024,
      "cold_read_pipelined_kb_s": 86.7,
      "cold_read_pipelined_p99_ms": 11.6
    },
    {
      "bytes": 1048576,
      "cold_read_pipelined_kb_s": 794.1
    }
  ]
}
"#;

    const SECTIONED: &str = r#"{
  "sizes": [],
  "scheduler": {
    "seed": 14,
    "fifo_seek_blocks": 4146381,
    "scan_read_mb_s": 0.59
  },
  "fault_campaign_all_green": true
}
"#;

    #[test]
    fn section_lookup_finds_keys_inside_the_named_object() {
        assert_eq!(
            json_lookup_section(SECTIONED, "scheduler", "fifo_seek_blocks"),
            Some(4_146_381.0)
        );
        assert_eq!(
            json_lookup_section(SECTIONED, "scheduler", "scan_read_mb_s"),
            Some(0.59)
        );
        // A key outside the section must not leak in.
        assert_eq!(
            json_lookup_section(SECTIONED, "scheduler", "fault_campaign_all_green"),
            None
        );
    }

    #[test]
    fn section_lookup_survives_nested_objects() {
        // A nested object inside the section must neither truncate the
        // scan (keys after it still found) nor leak its keys in.
        let doc = r#"{
  "scheduler": {
    "seed": 14,
    "zones": {
      "inner_only": 7
    },
    "scan_read_mb_s": 0.59
  }
}
"#;
        assert_eq!(json_lookup_section(doc, "scheduler", "seed"), Some(14.0));
        assert_eq!(
            json_lookup_section(doc, "scheduler", "scan_read_mb_s"),
            Some(0.59)
        );
        assert_eq!(json_lookup_section(doc, "scheduler", "inner_only"), None);
    }

    #[test]
    fn missing_section_key_fails_naming_section_and_key() {
        let err = require_section_key(SECTIONED, "BENCH_pr2.json", "scheduler", "sptf_p99_ms")
            .unwrap_err();
        assert_eq!(
            err,
            CheckError::MissingSectionKey {
                path: "BENCH_pr2.json".to_string(),
                section: "scheduler".to_string(),
                key: "sptf_p99_ms".to_string(),
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("sptf_p99_ms"), "message: {msg}");
        assert!(msg.contains("\"scheduler\""), "message: {msg}");
        // An absent section fails the same way, never panics.
        assert!(require_section_key(SECTIONED, "b.json", "zones", "free").is_err());
    }

    #[test]
    fn lookup_finds_the_right_size_object() {
        assert_eq!(
            json_lookup(DOC, 1024, "cold_read_pipelined_kb_s"),
            Some(86.7)
        );
        assert_eq!(
            json_lookup(DOC, 1 << 20, "cold_read_pipelined_kb_s"),
            Some(794.1)
        );
    }

    #[test]
    fn missing_key_fails_naming_the_key() {
        // The 1 MB object has no p99 key — an old-schema baseline.  The
        // gate must say so, naming the key and the size, instead of
        // panicking or silently passing.
        let err =
            require_key(DOC, "BENCH_pr2.json", 1 << 20, "cold_read_pipelined_p99_ms").unwrap_err();
        assert_eq!(
            err,
            CheckError::MissingKey {
                path: "BENCH_pr2.json".to_string(),
                bytes: 1 << 20,
                key: "cold_read_pipelined_p99_ms".to_string(),
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("cold_read_pipelined_p99_ms"), "message: {msg}");
        assert!(msg.contains("bytes=1048576"), "message: {msg}");
    }

    #[test]
    fn present_key_passes() {
        assert_eq!(
            require_key(DOC, "b.json", 1024, "cold_read_pipelined_p99_ms"),
            Ok(11.6)
        );
    }

    #[test]
    fn schema_version_gate_matches_exact_version_only() {
        let good = "{\n  \"schema_version\": 1,\n  \"sizes\": []\n}\n";
        assert_eq!(require_schema_version(good, "b.json", 1), Ok(()));
        // Wrong version: named in the message.
        let err = require_schema_version(good, "b.json", 2).unwrap_err();
        assert_eq!(
            err,
            CheckError::SchemaVersion {
                path: "b.json".to_string(),
                expected: 2,
                found: Some(1),
            }
        );
        assert!(err.to_string().contains("schema_version 1"), "{err}");
        assert!(err.to_string().contains("writes 2"), "{err}");
        // Absent key: a pre-versioning baseline, with a clear message.
        let old = "{\n  \"sizes\": []\n}\n";
        let err = require_schema_version(old, "b.json", 1).unwrap_err();
        assert!(
            err.to_string().contains("no top-level \"schema_version\""),
            "{err}"
        );
        assert!(err.to_string().contains("regenerate"), "{err}");
    }

    #[test]
    fn bandwidth_regression_fails() {
        assert!(require_at_least("1 MB bw", 800.0, 794.1).is_ok());
        let err = require_at_least("1 MB bw", 700.0, 794.1).unwrap_err();
        assert!(err.to_string().contains("regressed"), "{err}");
    }

    #[test]
    fn latency_regression_fails() {
        assert!(require_at_most("1 MB p99", 11.0, 11.6).is_ok());
        assert!(require_at_most("1 MB p99", 12.0, 11.6).is_err());
    }

    #[test]
    fn json_validator_accepts_real_documents() {
        assert_eq!(json_valid(DOC), Ok(()));
        assert_eq!(json_valid("  [1, -2.5, 1e9, \"s\", true, null] "), Ok(()));
        assert_eq!(json_valid(r#"{"a": {"b": []}, "c": "\u00e9\n"}"#), Ok(()));
        // Chrome trace-event shape: an object with an events array.
        assert_eq!(
            json_valid(r#"{"traceEvents": [{"ph": "X", "ts": 0.5, "dur": 2}]}"#),
            Ok(())
        );
    }

    #[test]
    fn json_validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "[1 2]",
            "\"unterminated",
            "01x",
            "nulll",
            "{\"a\": 1} trailing",
            "1.",
            "-",
            "{\"a\": \"\\q\"}",
        ] {
            assert!(json_valid(bad).is_err(), "accepted malformed {bad:?}");
        }
    }
}
