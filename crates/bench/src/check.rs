//! The regression gate behind `report --json --check`.
//!
//! The committed `BENCH_pr2.json` is the baseline; the gate re-measures
//! and fails the run when a fresh number falls below (bandwidth) or above
//! (p99 latency) the committed one.  Baseline access is strict: a key the
//! gate needs but the committed file lacks is an error naming the exact
//! key and size — never a panic, and never a silently-passing check.

use std::fmt;

/// Why the regression gate refused to pass.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// The committed baseline file could not be read at all.
    Unreadable {
        /// Path the gate tried to read.
        path: String,
    },
    /// The committed baseline lacks the key the gate compares against.
    MissingKey {
        /// Path of the baseline file.
        path: String,
        /// The `bytes` value of the size object searched.
        bytes: usize,
        /// The missing key.
        key: String,
    },
    /// A freshly measured number regressed past the committed baseline.
    Regression {
        /// What was compared (human-readable).
        what: String,
        /// The fresh measurement.
        fresh: f64,
        /// The bound it violated.
        bound: f64,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Unreadable { path } => {
                write!(f, "baseline {path} is missing or unreadable; run `report --json {path}` once to create it")
            }
            CheckError::MissingKey { path, bytes, key } => {
                write!(
                    f,
                    "baseline {path} has no key \"{key}\" in its bytes={bytes} object; \
                     regenerate it with `report --json {path}` to pick up the new schema"
                )
            }
            CheckError::Regression { what, fresh, bound } => {
                write!(f, "{what} regressed: fresh {fresh:.3} vs committed bound {bound:.3}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Pulls `"<key>": <number>` out of the object for `bytes` in committed
/// JSON — enough parsing for the regression gate, no serde needed.
pub fn json_lookup(doc: &str, bytes: usize, key: &str) -> Option<f64> {
    let obj = doc.split('{').find(|o| {
        o.lines()
            .any(|l| l.trim().starts_with(&format!("\"bytes\": {bytes},")))
    })?;
    let line = obj
        .lines()
        .find(|l| l.trim().starts_with(&format!("\"{key}\":")))?;
    line.split(':').nth(1)?.trim().trim_end_matches(',').parse().ok()
}

/// [`json_lookup`] that treats absence as a gate failure naming the key.
///
/// # Errors
///
/// [`CheckError::MissingKey`] when the baseline lacks the key.
pub fn require_key(doc: &str, path: &str, bytes: usize, key: &str) -> Result<f64, CheckError> {
    json_lookup(doc, bytes, key).ok_or_else(|| CheckError::MissingKey {
        path: path.to_string(),
        bytes,
        key: key.to_string(),
    })
}

/// Fails when `fresh` dropped below `floor` (a bandwidth-style metric,
/// bigger is better).
///
/// # Errors
///
/// [`CheckError::Regression`] on violation.
pub fn require_at_least(what: &str, fresh: f64, floor: f64) -> Result<(), CheckError> {
    if fresh < floor {
        return Err(CheckError::Regression {
            what: what.to_string(),
            fresh,
            bound: floor,
        });
    }
    Ok(())
}

/// Fails when `fresh` rose above `ceiling` (a latency-style metric,
/// smaller is better).
///
/// # Errors
///
/// [`CheckError::Regression`] on violation.
pub fn require_at_most(what: &str, fresh: f64, ceiling: f64) -> Result<(), CheckError> {
    if fresh > ceiling {
        return Err(CheckError::Regression {
            what: what.to_string(),
            fresh,
            bound: ceiling,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "sizes": [
    {
      "bytes": 1024,
      "cold_read_pipelined_kb_s": 86.7,
      "cold_read_pipelined_p99_ms": 11.6
    },
    {
      "bytes": 1048576,
      "cold_read_pipelined_kb_s": 794.1
    }
  ]
}
"#;

    #[test]
    fn lookup_finds_the_right_size_object() {
        assert_eq!(json_lookup(DOC, 1024, "cold_read_pipelined_kb_s"), Some(86.7));
        assert_eq!(
            json_lookup(DOC, 1 << 20, "cold_read_pipelined_kb_s"),
            Some(794.1)
        );
    }

    #[test]
    fn missing_key_fails_naming_the_key() {
        // The 1 MB object has no p99 key — an old-schema baseline.  The
        // gate must say so, naming the key and the size, instead of
        // panicking or silently passing.
        let err = require_key(DOC, "BENCH_pr2.json", 1 << 20, "cold_read_pipelined_p99_ms")
            .unwrap_err();
        assert_eq!(
            err,
            CheckError::MissingKey {
                path: "BENCH_pr2.json".to_string(),
                bytes: 1 << 20,
                key: "cold_read_pipelined_p99_ms".to_string(),
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("cold_read_pipelined_p99_ms"), "message: {msg}");
        assert!(msg.contains("bytes=1048576"), "message: {msg}");
    }

    #[test]
    fn present_key_passes() {
        assert_eq!(
            require_key(DOC, "b.json", 1024, "cold_read_pipelined_p99_ms"),
            Ok(11.6)
        );
    }

    #[test]
    fn bandwidth_regression_fails() {
        assert!(require_at_least("1 MB bw", 800.0, 794.1).is_ok());
        let err = require_at_least("1 MB bw", 700.0, 794.1).unwrap_err();
        assert!(err.to_string().contains("regressed"), "{err}");
    }

    #[test]
    fn latency_regression_fails() {
        assert!(require_at_most("1 MB p99", 11.0, 11.6).is_ok());
        assert!(require_at_most("1 MB p99", 12.0, 11.6).is_err());
    }
}
