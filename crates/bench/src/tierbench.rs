//! The tiered-storage ablation cells (ABL19): aged Zipf population,
//! demotion to the WORM archive, recall-on-read, and the hot-set p99
//! interference gate.
//!
//! One [`TierConfig`] describes a cell: `files` whole files are created
//! from the `small_file_storm` size distribution, the first `hot` of
//! them form the working set, and everything else goes cold through one
//! aging sweep.  The run then drains the maintenance scheduler — with
//! tiering on, that demotes every cold file to the archive — measures
//! the tier balance at that steady state, byte-verifies the whole
//! population (cold reads come straight off the archive and schedule
//! recalls), and finally times `reads` Zipf-skewed hot-set reads while
//! maintenance ticks interleave with the traffic.  The idleness gate is
//! configured to *admit* maintenance between reads (`maint_idle_request_delta`
//! above the inter-tick request count), so recalls and re-demotions
//! genuinely contend with the foreground: the p99 produced here is the
//! number the ISSUE's 1.15× interference gate judges.
//!
//! The same cell with `tiering: false` is the baseline: identical
//! population, aging, tick cadence, and read sequence on an
//! archive-less server, so the comparison isolates the tier machinery.

use amoeba_disk::BlockDevice;
use amoeba_sim::{exact_quantile, HwProfile, Nanos};
use bullet_core::counters;
use bullet_core::CompactTick;
use bytes::Bytes;

use crate::rig::BulletRig;
use crate::workload::{small_file_storm, ZipfSampler};

/// Seed the committed ABL19 artifact was generated with.
pub const TIER_SEED: u64 = 0xab19;

/// Archive capacity in blocks: 4× the fast tier's 65 536 blocks, the
/// ISSUE's minimum capacity ratio.
pub const ARCHIVE_BLOCKS: u64 = 4 * 65_536;

/// Requests the idleness gate tolerates between ticks.  The measured
/// loop ticks every 8 reads, so maintenance is *admitted* under load —
/// the interference the p99 gate exists to bound.
const IDLE_DELTA: u64 = 16;

/// Job increments per admitted tick.
const MOVES_PER_TICK: u32 = 2;

/// One ABL19 cell: a population, a working set, and a read budget.
#[derive(Debug, Clone, Copy)]
pub struct TierConfig {
    /// Deterministic seed for sizes and the Zipf read sequence.
    pub seed: u64,
    /// Total files created.
    pub files: usize,
    /// Leading files that form the hot working set.
    pub hot: usize,
    /// Timed hot-set reads in the measurement phase.
    pub reads: usize,
    /// Whether the archive tier (and demotion/recall) is enabled.
    pub tiering: bool,
}

impl TierConfig {
    /// The reduced cell `report --json` runs (one pair per report).
    pub fn small(seed: u64, tiering: bool) -> TierConfig {
        TierConfig {
            seed,
            files: 96,
            hot: 16,
            reads: 240,
            tiering,
        }
    }

    /// The full cell the `ablation_tiering` binary runs.
    pub fn full(seed: u64, tiering: bool) -> TierConfig {
        TierConfig {
            seed,
            files: 256,
            hot: 32,
            reads: 600,
            tiering,
        }
    }
}

/// Everything a cell measures; byte-comparable across replay runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierOutcome {
    /// Whether tiering was enabled for this cell.
    pub tiering: bool,
    /// Total files created.
    pub files: u64,
    /// Hot working-set size.
    pub hot_files: u64,
    /// Files resident on the archive at the post-aging steady state.
    pub archived_files: u64,
    /// Bytes of file data on the archive at that point.
    pub archive_bytes: u64,
    /// Bytes of live file data still on the fast tier at that point.
    pub fast_bytes: u64,
    /// Archive device capacity in blocks (0 with tiering off).
    pub archive_capacity_blocks: u64,
    /// Fast-tier data-area capacity in blocks.
    pub fast_capacity_blocks: u64,
    /// Total demotions over the whole run.
    pub demotions: u64,
    /// Total recalls completed over the whole run.
    pub promotions: u64,
    /// Maintenance ticks that ran a job increment.
    pub maintenance_ticks: u64,
    /// Ticks the idleness gate turned away.
    pub preemptions: u64,
    /// Median timed hot-set read.
    pub hot_p50: Nanos,
    /// 99th-percentile timed hot-set read — the interference gate input.
    pub hot_p99: Nanos,
}

fn fill(tag: usize, len: usize) -> Bytes {
    Bytes::from([tag as u8, (len / 7) as u8].repeat(len / 2 + 1)[..len].to_vec())
}

fn drain(rig: &BulletRig) {
    loop {
        if let CompactTick::Idle = rig.server.compact_tick().expect("maintenance tick") {
            return;
        }
    }
}

/// Runs one cell.  Deterministic: same config ⇒ byte-identical outcome.
pub fn run_tier(cfg: &TierConfig) -> TierOutcome {
    assert!(cfg.hot > 0 && cfg.hot <= cfg.files, "hot set within files");
    let tiering = cfg.tiering;
    let rig = BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |c| {
        c.maint_idle_request_delta = IDLE_DELTA;
        c.maint_moves_per_tick = MOVES_PER_TICK;
        if tiering {
            c.archive_blocks = ARCHIVE_BLOCKS;
            c.tier_high_water_pct = 0; // demote every cold file
            c.tier_cold_age = 1;
        }
    });
    let sizes = small_file_storm(cfg.seed, cfg.files, 2048, 64 * 1024);
    let caps: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            rig.server
                .create(fill(i, n as usize), 2)
                .expect("population create fits the rig")
        })
        .collect();

    // Age the population.  The hot set stays referenced (read back into
    // cache and touched, the aging daemon's view of a live working set);
    // everything else drops out of cache and goes one age step cold.
    rig.server.clear_cache();
    for cap in caps.iter().take(cfg.hot) {
        rig.server.read(cap).expect("hot warm-up read");
        rig.server.touch(cap).expect("hot touch");
    }
    rig.server.age_all().expect("aging sweep");
    drain(&rig);

    // Tier balance at the demoted steady state.
    let (desc, rows) = rig.server.describe_layout();
    let data_end = desc.data_end();
    let archived_files = rows
        .iter()
        .filter(|r| r.start_block as u64 >= data_end)
        .count() as u64;
    let archive_bytes: u64 = rows
        .iter()
        .filter(|r| r.start_block as u64 >= data_end)
        .map(|r| r.size_bytes as u64)
        .sum();
    let fast_bytes: u64 = rows
        .iter()
        .filter(|r| (r.start_block as u64) < data_end)
        .map(|r| r.size_bytes as u64)
        .sum();

    // Demotion is byte-identical: every file reads back exactly, the
    // archived ones straight off the WORM device (each such read
    // schedules a recall the measurement-phase ticks will work off).
    for (i, cap) in caps.iter().enumerate() {
        assert_eq!(
            rig.server.read(cap).expect("post-demotion read"),
            fill(i, sizes[i] as usize),
            "file {i} corrupted by demotion"
        );
    }

    // Timed hot-set reads under maintenance pressure.  Periodic cache
    // clears keep the reads honest (disk, not pure RAM); touching the
    // hot set right after marks it live again so the demotion policy
    // chases only genuinely cold files while recalls/re-demotions run
    // between reads.
    let mut zipf = ZipfSampler::new(cfg.seed ^ 0x2199, cfg.hot, 1.1);
    let mut lat: Vec<Nanos> = Vec::with_capacity(cfg.reads);
    for k in 0..cfg.reads {
        if k % 40 == 0 {
            rig.server.clear_cache();
            for cap in caps.iter().take(cfg.hot) {
                rig.server.touch(cap).expect("hot touch");
            }
        }
        let i = zipf.sample();
        let t0 = rig.clock.now();
        let data = rig.server.read(&caps[i]).expect("hot read");
        lat.push(rig.clock.now() - t0);
        assert_eq!(data.len(), sizes[i] as usize, "hot file {i} truncated");
        if k % 8 == 4 {
            rig.server.compact_tick().expect("interleaved tick");
        }
    }
    drain(&rig);

    // Promotion is byte-identical too: after the recalls triggered
    // above have completed, the whole population still reads exact.
    for (i, cap) in caps.iter().enumerate() {
        assert_eq!(
            rig.server.read(cap).expect("post-recall read"),
            fill(i, sizes[i] as usize),
            "file {i} corrupted by recall"
        );
    }

    lat.sort_unstable();
    let stats = rig.server.stats();
    TierOutcome {
        tiering,
        files: cfg.files as u64,
        hot_files: cfg.hot as u64,
        archived_files,
        archive_bytes,
        fast_bytes,
        archive_capacity_blocks: rig
            .server
            .archive_device()
            .map_or(0, |dev| dev.num_blocks()),
        fast_capacity_blocks: desc.data_blocks as u64,
        demotions: stats.get(counters::TIER_DEMOTIONS),
        promotions: stats.get(counters::TIER_PROMOTIONS),
        maintenance_ticks: stats.get(counters::MAINTENANCE_TICKS),
        preemptions: stats.get(counters::COMPACTION_PREEMPTIONS),
        hot_p50: exact_quantile(&lat, 50).expect("timed reads exist"),
        hot_p99: exact_quantile(&lat, 99).expect("timed reads exist"),
    }
}

/// Formats one outcome as a table row; the replay gate compares these
/// strings byte-for-byte across runs.
pub fn outcome_row(o: &TierOutcome) -> String {
    format!(
        "  {:>8}  {:>5}  {:>8}  {:>11}  {:>10}  {:>6}  {:>6}  {:>6}  {:>9.2}  {:>9.2}",
        if o.tiering { "tiered" } else { "baseline" },
        o.files,
        o.archived_files,
        o.archive_bytes,
        o.fast_bytes,
        o.demotions,
        o.promotions,
        o.preemptions,
        o.hot_p50.as_ms_f64(),
        o.hot_p99.as_ms_f64(),
    )
}

/// The table header matching [`outcome_row`].
pub fn table_header() -> String {
    format!(
        "  {:>8}  {:>5}  {:>8}  {:>11}  {:>10}  {:>6}  {:>6}  {:>6}  {:>9}  {:>9}",
        "Mode",
        "Files",
        "Archived",
        "ArchBytes",
        "FastBytes",
        "Demote",
        "Recall",
        "Preempt",
        "p50 (ms)",
        "p99 (ms)"
    )
}
