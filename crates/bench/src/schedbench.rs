//! ABL14 — the seek-aware disk-scheduler ablation engine.
//!
//! Drives [`amoeba_disk::ArmSim`] — the single-threaded virtual-time twin
//! of the real [`amoeba_disk::SchedDisk`] — with a closed-loop 8-client
//! mixed workload: each client alternates seek-scattered file reads with
//! sequential segment writes, submitting its next operation as soon as the
//! previous one completes plus a seeded think time.  Because the whole run
//! is a pure function of the seed, the FIFO / SCAN / SPTF comparison is
//! deterministic and byte-identically replayable (the ABL13 invariant,
//! with the request queue in the path).
//!
//! The headline numbers: total seek blocks and aggregate read bandwidth
//! (SCAN/SPTF must beat FIFO on both), p99 operation latency (deadline
//! aging must hold it near FIFO's), and the coalescing on/off knee on
//! sequential creates.

use std::collections::HashMap;

use amoeba_disk::{ArmSim, ReqKind, SchedConfig, SchedPolicy, Service};
use amoeba_sim::{DetRng, DiskProfile, Nanos};

/// Disk geometry of the simulated drive (matches the bench rig: 1 KB
/// blocks, 64 MB).
pub const BLOCK_SIZE: u32 = 1024;
/// Blocks on the simulated drive.
pub const DISK_BLOCKS: u64 = 65_536;
/// Concurrent clients in the mixed workload.
pub const CLIENTS: usize = 8;
/// Closed-loop operations each client completes.
pub const OPS_PER_CLIENT: usize = 24;
/// The seed the PR gate runs under.
pub const PR_SEED: u64 = 14;

const FILES_PER_CLIENT: usize = 12;
const FILE_BLOCKS: u64 = 32;
const SEGMENT_BLOCKS: u64 = 8;

/// Aggregate outcome of one policy run of the mixed workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOutcome {
    /// Policy label (`fifo`/`scan`/`sptf`).
    pub policy: &'static str,
    /// Operations completed (always `CLIENTS * OPS_PER_CLIENT`).
    pub ops: u64,
    /// Physical I/Os issued after coalescing.
    pub issued_ios: u64,
    /// Requests merged into a neighbour's transfer.
    pub coalesced: u64,
    /// Total blocks of arm travel.
    pub seek_blocks: u64,
    /// Requests granted by deadline aging over the policy pick.
    pub promotions: u64,
    /// Highest queue depth observed.
    pub depth_max: u64,
    /// Aggregate read bandwidth over the run, MB/s (simulated).
    pub read_mb_s: f64,
    /// Median operation latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile operation latency, ms.
    pub p99_ms: f64,
    /// Virtual time to drain the whole workload, ms.
    pub makespan_ms: f64,
}

/// One policy run: the aggregate outcome plus the full service log (the
/// per-request queue-trace artifact).
#[derive(Debug, Clone)]
pub struct MixedRun {
    /// Aggregate numbers.
    pub outcome: PolicyOutcome,
    /// Every physical I/O, in service order.
    pub services: Vec<Service>,
}

struct Client {
    rng: DetRng,
    /// First blocks of this client's read set, scattered over the disk.
    files: Vec<u64>,
    /// Sequential-write cursor (each client owns a private band).
    write_cursor: u64,
    write_base: u64,
    ops_done: usize,
    /// Request ids of the operation in flight (empty = idle).
    outstanding: Vec<u64>,
    op_arrival: Nanos,
    op_is_read: bool,
    op_bytes: u64,
}

impl Client {
    fn new(id: usize, seed: u64) -> Client {
        let mut rng = DetRng::new(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(id as u64 + 1)));
        let files = (0..FILES_PER_CLIENT)
            .map(|_| rng.next_below(DISK_BLOCKS - FILE_BLOCKS))
            .collect();
        // Private 2048-block write band per client in the upper half.
        let write_base = DISK_BLOCKS / 2 + id as u64 * 2048;
        Client {
            rng,
            files,
            write_cursor: write_base,
            write_base,
            ops_done: 0,
            outstanding: Vec::new(),
            op_arrival: Nanos::ZERO,
            op_is_read: false,
            op_bytes: 0,
        }
    }

    /// Submits this client's next operation at `arrival`: 3-in-4 a
    /// scattered file read, 1-in-4 a sequential segment write.
    fn submit_op(&mut self, sim: &mut ArmSim, arrival: Nanos) {
        self.op_arrival = arrival;
        self.op_is_read = self.rng.next_below(4) < 3;
        let (kind, base) = if self.op_is_read {
            let file = self.files[self.rng.next_below(self.files.len() as u64) as usize];
            (ReqKind::Read, file)
        } else {
            let base = self.write_cursor;
            self.write_cursor += FILE_BLOCKS;
            if self.write_cursor + FILE_BLOCKS > self.write_base + 2048 {
                self.write_cursor = self.write_base;
            }
            (ReqKind::Write, base)
        };
        self.op_bytes = FILE_BLOCKS * BLOCK_SIZE as u64;
        for seg in 0..(FILE_BLOCKS / SEGMENT_BLOCKS) {
            let id = sim.submit(kind, base + seg * SEGMENT_BLOCKS, SEGMENT_BLOCKS, arrival);
            self.outstanding.push(id);
        }
    }

    fn think(&mut self) -> Nanos {
        Nanos::from_us(self.rng.next_below(5_000))
    }
}

/// Runs the 8-client closed-loop mixed workload under one scheduler
/// configuration.  Pure function of `(cfg, seed)`.
///
/// # Panics
///
/// Panics only on internal bookkeeping bugs.
pub fn run_mixed(cfg: SchedConfig, seed: u64) -> MixedRun {
    let mut sim = ArmSim::new(cfg, DiskProfile::scsi_1989(), BLOCK_SIZE, DISK_BLOCKS);
    let mut clients: Vec<Client> = (0..CLIENTS).map(|i| Client::new(i, seed)).collect();
    let mut owner: HashMap<u64, usize> = HashMap::new();

    // Stagger the opening ops slightly so arrival order is interesting.
    for (i, c) in clients.iter_mut().enumerate() {
        c.submit_op(&mut sim, Nanos::from_us(i as u64 * 300));
        for &id in &c.outstanding {
            owner.insert(id, i);
        }
    }

    let mut latencies: Vec<Nanos> = Vec::new();
    let mut read_bytes = 0u64;
    let mut services = Vec::new();
    while let Some(sv) = sim.service_one() {
        for &id in &sv.ids {
            let ci = owner.remove(&id).expect("every request has an owner");
            let c = &mut clients[ci];
            c.outstanding.retain(|&x| x != id);
            if c.outstanding.is_empty() {
                // Operation complete: record it, think, go again.
                latencies.push(sv.end.saturating_sub(c.op_arrival));
                if c.op_is_read {
                    read_bytes += c.op_bytes;
                }
                c.ops_done += 1;
                if c.ops_done < OPS_PER_CLIENT {
                    let next = sv.end + c.think();
                    c.submit_op(&mut sim, next);
                    for &nid in &c.outstanding {
                        owner.insert(nid, ci);
                    }
                }
            }
        }
        services.push(sv);
    }
    assert!(owner.is_empty(), "all requests served");

    latencies.sort_unstable();
    let pct = |p: usize| -> f64 {
        amoeba_sim::exact_quantile(&latencies, p)
            .expect("run produced latencies")
            .as_ms_f64()
    };
    let makespan = sim.now();
    let st = sim.stats();
    MixedRun {
        outcome: PolicyOutcome {
            policy: cfg.policy.label(),
            ops: latencies.len() as u64,
            issued_ios: st.issued,
            coalesced: st.coalesced,
            seek_blocks: st.seek_blocks,
            promotions: st.promotions,
            depth_max: st.depth_max,
            read_mb_s: read_bytes as f64 / (1 << 20) as f64 / makespan.as_secs_f64(),
            p50_ms: pct(50),
            p99_ms: pct(99),
            makespan_ms: makespan.as_ms_f64(),
        },
        services,
    }
}

/// Deadline-aging bound the ablation runs under.  The closed-loop
/// workload saturates the disk (median queue wait in the hundreds of
/// milliseconds), so the bound sits above the *typical* wait — aging
/// should catch genuine starvation, not re-impose FIFO on every grant.
/// (The server rig keeps the tighter [`SchedConfig::default`] bound; its
/// queues are shallow.)
pub const ABL_DEADLINE_MS: u64 = 350;

/// The three-policy comparison the ABL14 table and the `report --json`
/// gate are built from: coalescing on, the [`ABL_DEADLINE_MS`] aging
/// bound.
pub fn run_policies(seed: u64) -> Vec<MixedRun> {
    [SchedPolicy::Fifo, SchedPolicy::Scan, SchedPolicy::Sptf]
        .into_iter()
        .map(|policy| {
            run_mixed(
                SchedConfig {
                    policy,
                    coalesce: true,
                    deadline: Nanos::from_ms(ABL_DEADLINE_MS),
                },
                seed,
            )
        })
        .collect()
}

/// One row of the coalescing knee: sequential creates issued in
/// `segment_blocks`-sized requests, with and without coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KneeRow {
    /// Request granularity in blocks.
    pub segment_blocks: u64,
    /// Physical I/Os issued with coalescing on.
    pub issued_on: u64,
    /// Physical I/Os issued with coalescing off.
    pub issued_off: u64,
}

/// Sweeps the coalescing knee: 4 concurrent sequential 64-block creates,
/// split into segments of each size.  Without coalescing the issued I/O
/// count grows as segments shrink; with it the scheduler merges each
/// create back into one transfer.
pub fn coalesce_knee() -> Vec<KneeRow> {
    const STREAMS: u64 = 4;
    const STREAM_BLOCKS: u64 = 64;
    let run = |segment: u64, coalesce: bool| -> u64 {
        let mut sim = ArmSim::new(
            SchedConfig {
                policy: SchedPolicy::Scan,
                coalesce,
                deadline: Nanos::ZERO,
            },
            DiskProfile::scsi_1989(),
            BLOCK_SIZE,
            DISK_BLOCKS,
        );
        for s in 0..STREAMS {
            let base = 10_000 + s * 4_096;
            for seg in 0..(STREAM_BLOCKS / segment) {
                sim.submit(ReqKind::Write, base + seg * segment, segment, Nanos::ZERO);
            }
        }
        while sim.service_one().is_some() {}
        sim.stats().issued
    };
    [1u64, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|segment_blocks| KneeRow {
            segment_blocks,
            issued_on: run(segment_blocks, true),
            issued_off: run(segment_blocks, false),
        })
        .collect()
}

/// Renders the policy comparison as a fixed-width table — the byte
/// string the replay gate compares.
pub fn outcome_table(runs: &[MixedRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:>6} {:>5} {:>7} {:>9} {:>11} {:>9} {:>6} {:>9} {:>8} {:>8} {:>9}\n",
        "policy",
        "ops",
        "ios",
        "coalesced",
        "seek_blocks",
        "promoted",
        "depth",
        "read_mb_s",
        "p50_ms",
        "p99_ms",
        "span_ms"
    ));
    for r in runs {
        let o = &r.outcome;
        out.push_str(&format!(
            "  {:>6} {:>5} {:>7} {:>9} {:>11} {:>9} {:>6} {:>9.2} {:>8.2} {:>8.2} {:>9.1}\n",
            o.policy,
            o.ops,
            o.issued_ios,
            o.coalesced,
            o.seek_blocks,
            o.promotions,
            o.depth_max,
            o.read_mb_s,
            o.p50_ms,
            o.p99_ms,
            o.makespan_ms
        ));
    }
    out
}

/// Renders the knee sweep as a fixed-width table.
pub fn knee_table(rows: &[KneeRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:>14} {:>11} {:>12}\n",
        "segment_blocks", "coalesce_on", "coalesce_off"
    ));
    for r in rows {
        out.push_str(&format!(
            "  {:>14} {:>11} {:>12}\n",
            r.segment_blocks, r.issued_on, r.issued_off
        ));
    }
    out
}

/// Serializes one service as a queue-trace JSONL row.
pub fn trace_row(policy: &str, sv: &Service) -> String {
    let ids: Vec<String> = sv.ids.iter().map(|i| i.to_string()).collect();
    format!(
        "{{\"policy\":\"{}\",\"kind\":\"{}\",\"first_block\":{},\"blocks\":{},\"start_us\":{},\"end_us\":{},\"seek_blocks\":{},\"promoted\":{},\"ids\":[{}]}}",
        policy,
        match sv.kind {
            ReqKind::Read => "read",
            ReqKind::Write => "write",
        },
        sv.first_block,
        sv.blocks,
        sv.start.as_us(),
        sv.end.as_us(),
        sv.seek_blocks,
        sv.promoted,
        ids.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_is_deterministic() {
        let a = outcome_table(&run_policies(PR_SEED));
        let b = outcome_table(&run_policies(PR_SEED));
        assert_eq!(a, b);
    }

    #[test]
    fn scan_and_sptf_beat_fifo_on_seeks_and_bandwidth() {
        let runs = run_policies(PR_SEED);
        let (fifo, scan, sptf) = (&runs[0].outcome, &runs[1].outcome, &runs[2].outcome);
        assert_eq!(fifo.policy, "fifo");
        assert!(
            scan.seek_blocks < fifo.seek_blocks && sptf.seek_blocks < fifo.seek_blocks,
            "seek blocks: fifo {} scan {} sptf {}",
            fifo.seek_blocks,
            scan.seek_blocks,
            sptf.seek_blocks
        );
        assert!(
            scan.read_mb_s > fifo.read_mb_s && sptf.read_mb_s > fifo.read_mb_s,
            "read MB/s: fifo {:.2} scan {:.2} sptf {:.2}",
            fifo.read_mb_s,
            scan.read_mb_s,
            sptf.read_mb_s
        );
    }

    #[test]
    fn deadline_aging_bounds_tail_latency() {
        let runs = run_policies(PR_SEED);
        let fifo_p99 = runs[0].outcome.p99_ms;
        let best_p99 = runs[1].outcome.p99_ms.min(runs[2].outcome.p99_ms);
        assert!(
            best_p99 <= fifo_p99 * 1.25,
            "p99: fifo {fifo_p99:.2} ms, best seek-aware {best_p99:.2} ms"
        );
    }

    #[test]
    fn coalescing_collapses_sequential_creates() {
        let rows = coalesce_knee();
        for r in &rows {
            assert!(
                r.issued_on <= r.issued_off,
                "coalescing must not issue more I/Os: {r:?}"
            );
        }
        // At 8-block segments (the server's streaming granularity) the
        // knee is wide open: far fewer physical I/Os.
        let r8 = rows.iter().find(|r| r.segment_blocks == 8).unwrap();
        assert!(
            r8.issued_on * 2 <= r8.issued_off,
            "8-block segments should coalesce at least 2x: {r8:?}"
        );
    }

    #[test]
    fn every_op_completes() {
        for run in run_policies(PR_SEED) {
            assert_eq!(run.outcome.ops, (CLIENTS * OPS_PER_CLIENT) as u64);
        }
    }
}
