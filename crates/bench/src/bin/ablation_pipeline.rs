//! Ablation ABL11 — sequential vs pipelined streaming transfers.
//!
//! Measures cold whole-file READ and mirrored CREATE delay with the
//! streaming pipeline off (the pre-pipeline transfer path: stage the
//! whole file in RAM, then move it) and on (segment `k` on the disk
//! while segment `k-1` is on the wire), then sweeps the segment size at
//! 1 MB.  The process exits non-zero if the pipelined path is ever
//! slower than the sequential one — the invariant the scheduling
//! recurrence guarantees.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_pipeline
//! ```

use amoeba_sim::{HwProfile, Nanos};
use bullet_bench::rig::BulletRig;
use bullet_bench::table::{bandwidth_kb_s, size_label};

const SIZES: [usize; 5] = [1024, 4096, 65_536, 262_144, 1 << 20];
const SEGMENTS: [u32; 5] = [4096, 16_384, 65_536, 262_144, 1 << 20];

fn rig(pipeline: bool, segment_size: u32) -> BulletRig {
    BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |cfg| {
        cfg.pipeline = pipeline;
        cfg.segment_size = segment_size;
    })
}

fn main() {
    let mut violations = 0u32;
    println!("ABL11 — pipelined streaming transfers (64 KB segments unless noted)");
    println!();
    println!("  Cold whole-file READ (client cache miss, extent off both-mirrored disk):");
    println!(
        "  {:>10}  {:>14}  {:>14}  {:>9}  {:>12}",
        "File size", "sequential", "pipelined", "speedup", "pipe KB/s"
    );
    for &size in &SIZES {
        let seq = rig(false, 65_536).measure_cold_read(size);
        let pipe = rig(true, 65_536).measure_cold_read(size);
        if pipe > seq {
            violations += 1;
        }
        println!(
            "  {:>10}  {:>12.1}ms  {:>12.1}ms  {:>8.2}x  {:>12.1}",
            size_label(size),
            seq.as_ms_f64(),
            pipe.as_ms_f64(),
            seq.as_ns() as f64 / pipe.as_ns() as f64,
            bandwidth_kb_s(size, pipe)
        );
    }
    println!();
    println!("  CREATE, P-FACTOR 2 (payload received, copied, and mirrored in segments):");
    println!(
        "  {:>10}  {:>14}  {:>14}  {:>9}",
        "File size", "sequential", "pipelined", "speedup"
    );
    for &size in &SIZES {
        let seq = rig(false, 65_536).measure_create(size, 2);
        let pipe = rig(true, 65_536).measure_create(size, 2);
        if pipe > seq {
            violations += 1;
        }
        println!(
            "  {:>10}  {:>12.1}ms  {:>12.1}ms  {:>8.2}x",
            size_label(size),
            seq.as_ms_f64(),
            pipe.as_ms_f64(),
            seq.as_ns() as f64 / pipe.as_ns() as f64,
        );
    }
    println!();
    println!("  Segment-size sweep, cold 1 MB READ (pipelined):");
    println!(
        "  {:>10}  {:>14}  {:>12}  {:>10}",
        "Segment", "delay", "KB/s", "segments"
    );
    // The sweep intentionally visits bad configurations (a 4 KB segment
    // pays 256 per-operation disk costs), so its rows are informative,
    // not gated: the pipelined-never-slower invariant holds for the
    // shipped default, asserted by the tables above.
    let seq_1mb = rig(false, 65_536).measure_cold_read(1 << 20);
    let mut best: (u32, Nanos) = (0, Nanos::from_ns(u64::MAX));
    for &seg in &SEGMENTS {
        let r = rig(true, seg);
        let dt = r.measure_cold_read(1 << 20);
        if dt < best.1 {
            best = (seg, dt);
        }
        println!(
            "  {:>10}  {:>12.1}ms  {:>12.1}  {:>10}",
            size_label(seg as usize),
            dt.as_ms_f64(),
            bandwidth_kb_s(1 << 20, dt),
            (1u64 << 20).div_ceil(seg as u64),
        );
    }
    println!();
    println!(
        "  sequential 1 MB baseline: {:.1} ms; best segment {} at {:.1} ms",
        seq_1mb.as_ms_f64(),
        size_label(best.0 as usize),
        best.1.as_ms_f64()
    );
    println!();
    println!("Small segments chop the transfer into many per-operation disk and");
    println!("per-packet fixed costs (at 4 KB they cost more than the overlap");
    println!("recovers); huge segments degenerate to the sequential");
    println!("store-and-forward path.  The 64 KB default sits near the knee.");
    if violations > 0 {
        eprintln!("ABL11 FAILED: pipelined slower than sequential in {violations} case(s)");
        std::process::exit(1);
    }
}
