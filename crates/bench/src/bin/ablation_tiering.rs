//! Ablation ABL19 — tiered storage: RAM → mirrored disk → WORM archive.
//!
//! The headline cell ages a 256-file Zipf-sized population until
//! everything outside a 32-file working set goes cold, then lets the
//! ranked maintenance scheduler demote the cold files to the WORM
//! archive.  The measured phase times 600 Zipf-skewed hot-set reads
//! while maintenance ticks — recalls and re-demotions — are *admitted*
//! between the reads, so the p99 shows what tier migrations cost the
//! foreground.  An identically-driven archive-less baseline isolates
//! the tier machinery.
//!
//! Criteria (exit non-zero if any goes red):
//!
//! * ≥ 80 % of the population is archive-resident at the post-aging
//!   steady state;
//! * the archive then holds ≥ 4× the fast tier's live bytes;
//! * the archive device's capacity is ≥ 4× the fast tier's data area;
//! * demotion and recall are byte-identical (asserted inside the run:
//!   every file reads back exactly after each migration wave);
//! * tiered hot-set p99 stays within 1.15× of the baseline's;
//! * the whole matrix, run a second time, renders byte-identically.
//!
//! Artifact: `results/ablation_tiering.txt` (the outcome table).
//!
//! `--soak` runs the nightly aging soak instead: 24 rounds of create /
//! verify / age churn against a 5 % fast-tier high-water mark, asserting
//! after every round's maintenance drain that demotion kept fast-tier
//! occupancy at or under the mark.  Artifact:
//! `results/ablation_tiering_soak.txt`.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_tiering            # PR seed
//! cargo run -p bullet-bench --bin ablation_tiering -- --seed 7
//! cargo run -p bullet-bench --bin ablation_tiering -- --soak
//! ```

use amoeba_cap::Capability;
use amoeba_sim::HwProfile;
use bullet_bench::tierbench::{
    outcome_row, run_tier, table_header, TierConfig, TierOutcome, ARCHIVE_BLOCKS, TIER_SEED,
};
use bullet_bench::workload::{small_file_storm, ZipfSampler};
use bullet_bench::BulletRig;
use bullet_core::{counters, CompactTick};
use bytes::Bytes;

/// Soak rounds (one aging sweep each).
const SOAK_ROUNDS: usize = 24;
/// Files created per soak round.
const SOAK_FILES_PER_ROUND: usize = 40;
/// Tracked survivors byte-verified per soak round.
const SOAK_VERIFIES_PER_ROUND: usize = 6;
/// Fast-tier high-water mark the soak holds occupancy under (percent).
const SOAK_HIGH_WATER_PCT: u32 = 5;

fn usage() -> ! {
    eprintln!("usage: ablation_tiering [--seed N] [--soak]");
    std::process::exit(2);
}

fn run_matrix(seed: u64) -> Vec<TierOutcome> {
    vec![
        run_tier(&TierConfig::full(seed, false)),
        run_tier(&TierConfig::full(seed, true)),
    ]
}

fn outcome_table(matrix: &[TierOutcome]) -> String {
    let mut t = table_header();
    t.push('\n');
    for o in matrix {
        t.push_str(&outcome_row(o));
        t.push('\n');
    }
    t
}

fn fill(tag: usize, len: usize) -> Bytes {
    Bytes::from([tag as u8, (len / 7) as u8].repeat(len / 2 + 1)[..len].to_vec())
}

/// The nightly aging soak: steady create/verify/age churn with a tight
/// high-water mark.  Returns the per-round occupancy log; panics (red)
/// if a verify read comes back wrong, and pushes a red string per
/// occupancy breach.
fn run_soak(seed: u64, reds: &mut Vec<String>) -> String {
    let rig = BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |c| {
        c.archive_blocks = ARCHIVE_BLOCKS;
        c.tier_high_water_pct = SOAK_HIGH_WATER_PCT;
        c.tier_cold_age = 1;
        c.maint_moves_per_tick = 8;
    });
    let max_age = 8u32; // BulletConfig::max_age in the rig
                        // Every live file ever created: (cap, expected bytes, birth round).
    let mut tracked: Vec<(Capability, Bytes, usize)> = Vec::new();
    let mut log = String::new();
    for round in 0..SOAK_ROUNDS {
        let sizes = small_file_storm(
            seed ^ (0x50a0 + round as u64),
            SOAK_FILES_PER_ROUND,
            16 * 1024,
            128 * 1024,
        );
        for (i, &n) in sizes.iter().enumerate() {
            let data = fill(round * SOAK_FILES_PER_ROUND + i, n as usize);
            let cap = rig.server.create(data.clone(), 2).expect("soak create");
            tracked.push((cap, data, round));
        }
        // Byte-verify a Zipf-skewed handful of survivors; cold picks are
        // served off the archive and schedule recalls for the drain.
        let mut zipf = ZipfSampler::new(seed ^ (0xbeef + round as u64), tracked.len(), 1.1);
        for _ in 0..SOAK_VERIFIES_PER_ROUND {
            let pick = tracked.len() - 1 - zipf.sample(); // favour recent files
            let (cap, expected, _) = &tracked[pick];
            assert_eq!(
                &rig.server.read(cap).expect("soak verify read"),
                expected,
                "soak round {round}: file corrupted in tier churn"
            );
        }
        rig.server.clear_cache();
        // The aging daemon's sweep; files expire after max_age sweeps.
        let expected_expired = tracked
            .iter()
            .filter(|&&(_, _, birth)| (round - birth + 1) as u32 >= max_age)
            .count() as u64;
        let expired = rig.server.age_all().expect("aging sweep");
        assert_eq!(
            expired, expected_expired,
            "soak round {round}: expiry count diverged from the model"
        );
        tracked.retain(|&(_, _, birth)| ((round - birth + 1) as u32) < max_age);
        loop {
            if let CompactTick::Idle = rig.server.compact_tick().expect("soak tick") {
                break;
            }
        }
        let report = rig.server.disk_frag_report();
        let used = report.total - report.free;
        let green = used * 100 <= report.total * SOAK_HIGH_WATER_PCT as u64;
        log.push_str(&format!(
            "  round {round:>2}: live {:>4}, fast occupancy {used:>5}/{} blocks ({:.1} %) {}\n",
            tracked.len(),
            report.total,
            100.0 * used as f64 / report.total as f64,
            if green { "ok" } else { "ABOVE HIGH WATER" }
        ));
        if !green {
            reds.push(format!(
                "round {round}: fast-tier occupancy {used} of {} blocks exceeds the \
                 {SOAK_HIGH_WATER_PCT} % high-water mark",
                report.total
            ));
        }
    }
    let demotions = rig.server.stats().get(counters::TIER_DEMOTIONS);
    let promotions = rig.server.stats().get(counters::TIER_PROMOTIONS);
    log.push_str(&format!(
        "  totals: {demotions} demotions, {promotions} recalls, {} live files\n",
        tracked.len()
    ));
    if demotions == 0 {
        reds.push("soak never demoted a file — the high-water policy is dead".into());
    }
    log
}

fn main() {
    let mut seed = TIER_SEED;
    let mut soak = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let n = args.next().unwrap_or_else(|| usage());
                seed = n.parse().unwrap_or_else(|_| usage());
            }
            "--soak" => soak = true,
            _ => usage(),
        }
    }

    if soak {
        println!("ABL19 soak — aging churn under a {SOAK_HIGH_WATER_PCT} % high-water mark (seed {seed:#x})");
        let mut reds: Vec<String> = Vec::new();
        let log = run_soak(seed, &mut reds);
        print!("{log}");
        std::fs::create_dir_all("results").expect("results dir");
        let artifact = format!(
            "ABL19 aging soak (seed {seed:#x})\n{log}red_criteria={}\n",
            reds.len()
        );
        std::fs::write("results/ablation_tiering_soak.txt", artifact).expect("write artifact");
        println!("wrote results/ablation_tiering_soak.txt");
        if !reds.is_empty() {
            for r in &reds {
                eprintln!("ABL19 SOAK FAILED: {r}");
            }
            std::process::exit(1);
        }
        return;
    }

    println!("ABL19 — tiered storage vs archive-less baseline (seed {seed:#x}, run twice)");
    println!();
    let matrix = run_matrix(seed);
    let table = outcome_table(&matrix);
    print!("{table}");
    println!();

    let replay = outcome_table(&run_matrix(seed));
    let deterministic = replay == table;
    println!(
        "replay determinism: {}",
        if deterministic {
            "outcome table byte-identical"
        } else {
            "DIVERGED"
        }
    );

    let (base, tier) = (&matrix[0], &matrix[1]);
    let mut reds: Vec<String> = Vec::new();
    let cold_green = tier.archived_files * 5 >= tier.files * 4;
    if !cold_green {
        reds.push(format!(
            "only {} of {} files went cold to the archive (want >= 80 %)",
            tier.archived_files, tier.files
        ));
    }
    let balance_green = tier.archive_bytes >= 4 * tier.fast_bytes;
    if !balance_green {
        reds.push(format!(
            "archive holds {} bytes vs {} fast-resident (want >= 4x)",
            tier.archive_bytes, tier.fast_bytes
        ));
    }
    let capacity_green = tier.archive_capacity_blocks >= 4 * tier.fast_capacity_blocks;
    if !capacity_green {
        reds.push(format!(
            "archive capacity {} blocks under 4x the fast tier's {}",
            tier.archive_capacity_blocks, tier.fast_capacity_blocks
        ));
    }
    let p99_green = tier.hot_p99.as_ns() * 100 <= base.hot_p99.as_ns() * 115;
    if !p99_green {
        reds.push(format!(
            "tiered hot-set p99 {:.2} ms breaches 1.15x the baseline's {:.2} ms",
            tier.hot_p99.as_ms_f64(),
            base.hot_p99.as_ms_f64()
        ));
    }
    let work_green = tier.demotions >= tier.archived_files && tier.promotions >= 1;
    if !work_green {
        reds.push(format!(
            "migration counters implausible: {} demotions, {} recalls",
            tier.demotions, tier.promotions
        ));
    }
    let greens = [
        cold_green,
        balance_green,
        capacity_green,
        p99_green,
        work_green,
        deterministic,
    ]
    .iter()
    .filter(|&&g| g)
    .count();
    println!("criteria: {greens} of 6 green");
    println!(
        "tier balance: {} of {} files archived, {} archive bytes vs {} fast; \
         hot p99 {:.2} ms vs baseline {:.2} ms",
        tier.archived_files,
        tier.files,
        tier.archive_bytes,
        tier.fast_bytes,
        tier.hot_p99.as_ms_f64(),
        base.hot_p99.as_ms_f64()
    );

    std::fs::create_dir_all("results").expect("results dir");
    let artifact = format!(
        "ABL19 tiered storage (seed {seed:#x})\n{table}replay_deterministic={deterministic} \
         red_criteria={}\n",
        reds.len()
    );
    std::fs::write("results/ablation_tiering.txt", artifact).expect("write artifact");
    println!("wrote results/ablation_tiering.txt");

    if !deterministic {
        eprintln!("ABL19 FAILED: replay diverged from the first run");
        std::process::exit(1);
    }
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL19 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
