//! Ablation ABL9 — the cache eviction policy: the paper's LRU ("an age
//! field to implement an LRU cache strategy") against FIFO, random,
//! segmented-LRU, and 2Q victims, under the cited workload mix with a
//! constrained cache.  (ABL16 re-runs this question at 10k-client
//! event-engine scale, where the scan-resistant policies separate.)
//!
//! Exit status is non-zero if the headline invariant goes red: every
//! policy must land within 5 points of the best hit ratio (the near-null
//! result the paper's two-byte age field banks on), and every cell must
//! actually hit the cache.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_eviction
//! ```

use std::collections::HashMap;

use amoeba_sim::HwProfile;
use bullet_bench::workload::{WorkloadMix, WorkloadOp};
use bullet_core::EvictionPolicy;
use bytes::Bytes;

fn run(policy: EvictionPolicy) -> (f64, f64) {
    use amoeba_net::SimEthernet;
    use amoeba_rpc::{Dispatcher, RpcClient};
    use bullet_core::{BulletClient, BulletConfig, BulletRpcServer, BulletServer};
    use std::sync::Arc;

    let clock = amoeba_sim::SimClock::new();
    let hw = HwProfile::amoeba_1989();
    let replicas: Vec<Arc<dyn amoeba_disk::BlockDevice>> = (0..2)
        .map(|_| {
            Arc::new(amoeba_disk::SimDisk::new(
                amoeba_disk::RamDisk::new(1024, 65_536),
                clock.clone(),
                hw.disk,
            )) as Arc<dyn amoeba_disk::BlockDevice>
        })
        .collect();
    let mut cfg = BulletConfig::small_test();
    cfg.block_size = 1024;
    cfg.disk_blocks = 65_536;
    cfg.cache_capacity = 768 * 1024; // constrained: evictions must happen
    cfg.rnode_slots = 2048;
    cfg.min_inodes = 2048;
    cfg.clock = clock.clone();
    cfg.eviction = policy;
    cfg.eviction_seed = 9; // only Random consumes it
    let server = Arc::new(
        BulletServer::format_on(
            cfg,
            amoeba_disk::MirroredDisk::new(replicas).expect("mirror"),
        )
        .expect("format"),
    );
    let dispatcher = Dispatcher::new(SimEthernet::new(clock.clone(), hw.net));
    dispatcher.register(BulletRpcServer::new(server.clone()));
    let client = BulletClient::new(RpcClient::new(dispatcher), server.port());

    let mut mix = WorkloadMix::unix_mix(0xfeed, 512 * 1024, 700);
    let mut caps = Vec::new();
    let t0 = clock.now();
    for _ in 0..12_000 {
        match mix.next_op() {
            WorkloadOp::Create(size) => {
                if let Ok(cap) = client.create(Bytes::from(vec![1u8; size as usize]), 1) {
                    caps.push(cap);
                }
            }
            WorkloadOp::Read(n) => {
                if !caps.is_empty() {
                    // Real traces have a hot set: 40% of reads go to a few
                    // long-lived files, the rest spread uniformly.
                    let i = if n % 5 < 2 {
                        (n % 8.min(caps.len() as u64)) as usize
                    } else {
                        (n % caps.len() as u64) as usize
                    };
                    let cap = caps[i];
                    let _ = client.read(&cap);
                }
            }
            WorkloadOp::Delete(n) => {
                if !caps.is_empty() {
                    let cap = caps.swap_remove((n % caps.len() as u64) as usize);
                    let _ = client.delete(&cap);
                }
            }
        }
    }
    let wall = clock.now() - t0;
    let stats: HashMap<_, _> = server.cache_stats().into_iter().collect();
    let hits = *stats.get("cache_hits").unwrap_or(&0) as f64;
    let misses = *stats.get("cache_misses").unwrap_or(&0) as f64;
    (hits / (hits + misses).max(1.0), wall.as_secs_f64())
}

fn main() {
    println!("ABL9 — eviction policy under the cited mix (768 KB cache, 12k ops)");
    println!(
        "  {:>10}  {:>10}  {:>18}",
        "policy", "hit ratio", "workload time (s)"
    );
    let mut ratios = Vec::new();
    for (name, policy) in [
        ("LRU", EvictionPolicy::Lru),
        ("FIFO", EvictionPolicy::Fifo),
        ("random", EvictionPolicy::Random),
        ("SLRU", EvictionPolicy::SegmentedLru),
        ("2Q", EvictionPolicy::TwoQ),
    ] {
        let (ratio, secs) = run(policy);
        println!("  {:>10}  {:>9.1}%  {:>18.1}", name, 100.0 * ratio, secs);
        ratios.push((name, ratio));
    }
    println!();
    println!("A near-null result: SLRU edges ahead and every policy lands within ~2 points,");
    println!("so at whole-file granularity the policy matters far less than having the cache");
    println!("at all (ABL1, ABL6) — consistent with the paper spending two bytes per rnode");
    println!("on it and no more.  The gap only opens under one-touch scan pollution, which");
    println!("is exactly what ABL16 (`ablation_evsim`) measures at 10k-client scale.");
    let best = ratios.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
    let mut red = false;
    for &(name, ratio) in &ratios {
        if ratio <= 0.0 {
            eprintln!("ABL9 FAILED: {name} never hit the cache");
            red = true;
        }
        if ratio < best - 0.05 {
            eprintln!(
                "ABL9 FAILED: {name} hit ratio {:.3} more than 5 points behind the best {:.3}",
                ratio, best
            );
            red = true;
        }
    }
    if red {
        std::process::exit(1);
    }
}
