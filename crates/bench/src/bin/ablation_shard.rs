//! Ablation ABL18 — the sharded-service ablation.
//!
//! Runs the three [`bullet_bench::shardbench`] cell families — aggregate
//! cold-read bandwidth scaling across the shard matrix, live-byte
//! preservation under extent rebalancing, and the kill-one-shard
//! degraded-service workload — then runs the whole matrix a *second*
//! time and demands the rendered outcome table come back byte-identical
//! (the ABL13 determinism discipline: placement, routing, and simulated
//! end times are pure functions of the inputs).
//!
//! Exit status is non-zero if any invariant goes red or the replay
//! diverges.  Artifact: `results/ablation_shard.txt`.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_shard              # full matrix
//! cargo run -p bullet-bench --bin ablation_shard -- --shards 4  # reduced CI cell
//! cargo run -p bullet-bench --bin ablation_shard -- --soak    # nightly kill-shard soak
//! ```

use bullet_bench::shardbench::{
    outcome_table, run_kill_shard, run_rebalance, run_scaling_suite, ShardOutcome, SCALING_COUNTS,
};

fn usage() -> ! {
    eprintln!("usage: ablation_shard [--shards 1|2|4|8] [--soak]");
    std::process::exit(2);
}

fn main() {
    let mut shards: Option<u32> = None;
    let mut soak = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--soak" => soak = true,
            "--shards" => {
                let n = args.next().unwrap_or_else(|| usage());
                let n: u32 = n.parse().unwrap_or_else(|_| usage());
                if !SCALING_COUNTS.contains(&n) {
                    usage();
                }
                shards = Some(n);
            }
            _ => usage(),
        }
    }

    // Three shapes: the reduced per-matrix-entry CI cell (--shards N),
    // the nightly soak (--soak), and the full on-demand matrix.
    let (counts, rebalance_seeds, kill_seeds): (Vec<u32>, Vec<u64>, Vec<u64>) = match shards {
        Some(1) => (vec![1], vec![1], vec![1]),
        Some(n) => (vec![1, n], vec![1], vec![1]),
        None if soak => (
            SCALING_COUNTS.to_vec(),
            (1..=10).collect(),
            (1..=25).collect(),
        ),
        None => (SCALING_COUNTS.to_vec(), vec![1, 2, 3], vec![1, 2, 3]),
    };

    println!(
        "ABL18 — sharded-service ablation (scaling x{}, rebalance x{}, kill-shard x{}, run twice)",
        counts.len(),
        rebalance_seeds.len(),
        kill_seeds.len()
    );
    println!();

    let run_matrix = || -> Vec<ShardOutcome> {
        let mut outcomes = run_scaling_suite(&counts);
        outcomes.extend(rebalance_seeds.iter().map(|&s| run_rebalance(s)));
        outcomes.extend(kill_seeds.iter().map(|&s| run_kill_shard(s)));
        outcomes
    };

    let first = run_matrix();
    let table = outcome_table(&first);
    print!("{table}");
    println!();

    // The determinism witness: the same matrix, replayed, must render
    // the same bytes.
    let replay = outcome_table(&run_matrix());
    let deterministic = replay == table;
    let reds = first.iter().filter(|o| !o.green()).count();

    println!(
        "replay determinism: {}",
        if deterministic {
            "outcome table byte-identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "invariants: {} of {} cells green",
        first.len() - reds,
        first.len()
    );

    std::fs::create_dir_all("results").expect("results dir");
    let mut artifact = String::new();
    artifact.push_str("ABL18 sharded-service ablation\n");
    artifact.push_str(&table);
    artifact.push_str(&format!(
        "replay_deterministic={deterministic} green_cells={}/{}\n",
        first.len() - reds,
        first.len()
    ));
    std::fs::write("results/ablation_shard.txt", artifact).expect("write artifact");
    println!("wrote results/ablation_shard.txt");

    if !deterministic {
        eprintln!("ABL18 FAILED: replay diverged from the first run");
        std::process::exit(1);
    }
    if reds > 0 {
        eprintln!("ABL18 FAILED: {reds} cell(s) red");
        std::process::exit(1);
    }
}
