//! Ablation ABL1 — the RAM cache: warm reads (the paper's Fig. 2 setting,
//! "the test file will be completely in memory") against cold reads that
//! must fetch the contiguous extent from disk.
//!
//! Exit status is non-zero if the headline invariant goes red: a warm
//! (cache-hit) read must beat the cold read at every size.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_cache
//! ```

use bullet_bench::rig::BulletRig;
use bullet_bench::table::{bandwidth_kb_s, size_label, SIZES};

fn main() {
    let mut reds: Vec<String> = Vec::new();
    println!("ABL1 — Bullet READ delay, RAM cache hit vs cold (disk) read");
    println!(
        "  {:>12}  {:>14}  {:>14}  {:>10}",
        "File Size", "warm (ms)", "cold (ms)", "cold/warm"
    );
    for &size in &SIZES {
        let rig = BulletRig::paper_1989();
        let warm = rig.measure_read(size);
        let cold = rig.measure_cold_read(size);
        println!(
            "  {:>12}  {:>14.2}  {:>14.2}  {:>9.1}x",
            size_label(size),
            warm.as_ms_f64(),
            cold.as_ms_f64(),
            cold.as_ns() as f64 / warm.as_ns() as f64
        );
        if cold <= warm {
            reds.push(format!(
                "cache hit no faster than disk at {}: warm {:.2} ms vs cold {:.2} ms",
                size_label(size),
                warm.as_ms_f64(),
                cold.as_ms_f64()
            ));
        }
    }
    println!();
    println!("Cold bandwidth at 1 MB: {:.0} KB/s;", {
        let rig = BulletRig::paper_1989();
        bandwidth_kb_s(1 << 20, rig.measure_cold_read(1 << 20))
    });
    println!("with the streaming pipeline (ABL11) a cold multi-segment read runs at");
    println!("max(disk, wire) rather than their sum, so the cold/warm gap at 1 MB is");
    println!("the pipeline fill, not a full extra disk pass; the cache still wins —");
    println!("a warm read never touches the disk arm at all.");
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL1 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
