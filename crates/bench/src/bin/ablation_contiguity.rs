//! Ablation ABL2 — contiguity itself, with the network out of the
//! picture: fetching a file's bytes off the disk as one contiguous extent
//! (Bullet) versus block-at-a-time through indirect blocks on an aged,
//! scattered file system (the traditional design).
//!
//! Both sides run on an identical simulated SCSI drive; only the layout
//! policy differs — this isolates the paper's core architectural bet.
//!
//! Exit status is non-zero if the headline invariant goes red: the
//! contiguous fetch must beat the scattered one at every size.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_contiguity
//! ```

use std::sync::Arc;

use amoeba_disk::{BlockDevice, MirroredDisk, RamDisk, SimDisk};
use amoeba_sim::{HwProfile, Nanos, SimClock};
use bullet_bench::table::{size_label, SIZES};
use bullet_core::{BulletConfig, BulletServer};
use bytes::Bytes;
use nfs_blockfs::BlockFs;

/// Server-side cold fetch from the Bullet layout (one contiguous I/O).
fn bullet_fetch(size: usize) -> Nanos {
    let clock = SimClock::new();
    let hw = HwProfile::amoeba_1989();
    let disk: Arc<dyn BlockDevice> = Arc::new(SimDisk::new(
        RamDisk::new(1024, 65_536),
        clock.clone(),
        hw.disk,
    ));
    let mut cfg = BulletConfig::small_test();
    cfg.clock = clock.clone();
    cfg.cache_capacity = 16 << 20;
    cfg.rnode_slots = 64;
    let server = BulletServer::format_on(cfg, MirroredDisk::new(vec![disk]).expect("one replica"))
        .expect("format");
    let cap = server
        .create(Bytes::from(vec![1u8; size]), 1)
        .expect("create");
    server.clear_cache();
    let t0 = clock.now();
    server.read(&cap).expect("cold read");
    clock.now() - t0
}

/// Server-side cold fetch from the aged block layout (per-block I/O plus
/// indirect-block reads).
fn blockfs_fetch(size: usize) -> Nanos {
    let clock = SimClock::new();
    let hw = HwProfile::amoeba_1989();
    let disk = SimDisk::new(RamDisk::new(1024, 65_536), clock.clone(), hw.disk);
    // Aged: scattered allocation; cache large enough to hold metadata but
    // dropped before the measured read so data comes off the platter.
    let mut fs = BlockFs::format(disk, 64, 8 << 20, Some(0xa6ed)).expect("format");
    let (ino, generation) = fs.create_inode().expect("inode");
    let data = vec![2u8; size];
    for (i, chunk) in data.chunks(1024).enumerate() {
        fs.write(ino, generation, (i * 1024) as u32, chunk)
            .expect("write");
    }
    fs.drop_caches();
    let t0 = clock.now();
    fs.read(ino, generation, 0, size as u32).expect("cold read");
    clock.now() - t0
}

fn main() {
    println!("ABL2 — cold server-side fetch (no network): contiguous vs scattered blocks");
    println!(
        "  {:>12}  {:>16}  {:>16}  {:>10}",
        "File Size", "contiguous (ms)", "scattered (ms)", "ratio"
    );
    let mut reds: Vec<String> = Vec::new();
    for &size in &SIZES {
        let c = bullet_fetch(size);
        let s = blockfs_fetch(size);
        println!(
            "  {:>12}  {:>16.1}  {:>16.1}  {:>9.1}x",
            size_label(size),
            c.as_ms_f64(),
            s.as_ms_f64(),
            s.as_ns() as f64 / c.as_ns() as f64
        );
        if c >= s {
            reds.push(format!(
                "contiguous fetch no faster than scattered at {}: {:.1} ms vs {:.1} ms",
                size_label(size),
                c.as_ms_f64(),
                s.as_ms_f64()
            ));
        }
    }
    println!();
    println!("One seek + one transfer versus a seek per scattered block: this gap is");
    println!("why the Bullet server stores files contiguously (§2).");
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL2 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
