//! Regenerates the entire evaluation in one run and writes
//! `results/REPORT.md`: Figs. 2–3, the §4 claim scorecard, and the
//! headline ablations — the artifact a reviewer diffs against
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p bullet-bench --bin report
//! ```

use std::fmt::Write as _;

use bullet_bench::rig::{BulletRig, NfsRig};
use bullet_bench::table::{measure_bullet, measure_nfs, size_label, Claims, Row};

fn table_md(out: &mut String, title: &str, col2: &str, rows: &[Row]) {
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(
        out,
        "| File size | READ delay (ms) | {col2} delay (ms) | READ bw (KB/s) | {col2} bw (KB/s) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            size_label(r.size),
            r.read.as_ms_f64(),
            r.write.as_ms_f64(),
            r.read_bw(),
            r.write_bw()
        );
    }
    let _ = writeln!(out);
}

fn main() -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Regenerated evaluation report\n\n\
         Produced by `cargo run -p bullet-bench --bin report`.  All numbers are\n\
         deterministic simulated time on the calibrated 1989 testbed; rerunning\n\
         reproduces this file bit-for-bit.\n"
    );

    eprintln!("measuring Fig. 2 (Bullet)…");
    let bullet = measure_bullet(&BulletRig::paper_1989());
    table_md(
        &mut out,
        "Fig. 2 — Bullet file server",
        "CREATE+DEL",
        &bullet,
    );

    eprintln!("measuring Fig. 3 (NFS baseline)…");
    let nfs = measure_nfs(&NfsRig::paper_1989());
    table_md(&mut out, "Fig. 3 — SUN NFS baseline", "CREATE", &nfs);

    let claims = Claims::evaluate(&bullet, &nfs);
    let _ = writeln!(out, "### §4 claims\n");
    let _ = writeln!(out, "| Claim | Paper | Measured |");
    let _ = writeln!(out, "|---|---|---|");
    let speedups: Vec<String> = claims
        .read_speedups
        .iter()
        .map(|(s, r)| format!("{} {:.1}×", size_label(*s), r))
        .collect();
    let _ = writeln!(
        out,
        "| C1 READ speedup | 3–6× all sizes | {} |",
        speedups.join(", ")
    );
    let _ = writeln!(
        out,
        "| C2 1 MB read bandwidth ratio | ~10× | {:.1}× |",
        claims.large_read_bw_ratio
    );
    let _ = writeln!(
        out,
        "| C3 Bullet create bw > NFS read bw | > 64 KB | at {} |",
        claims
            .write_beats_read_at
            .iter()
            .map(|&s| size_label(s))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let (rd, wd) = claims.nfs_dips_at_1mb;
    let _ = writeln!(
        out,
        "| C4 NFS dips at 1 MB | both columns | read {rd}, create {wd} |"
    );
    let _ = writeln!(out);

    eprintln!("measuring headline ablations…");
    let _ = writeln!(out, "### Headline ablations\n");
    let rig = BulletRig::paper_1989();
    let warm = rig.measure_read(1 << 20);
    let cold = rig.measure_cold_read(1 << 20);
    let _ = writeln!(
        out,
        "* RAM cache (ABL1): warm 1 MB read {:.0} ms vs cold {:.0} ms ({:.1}×).",
        warm.as_ms_f64(),
        cold.as_ms_f64(),
        cold.as_ns() as f64 / warm.as_ns() as f64
    );
    let p: Vec<String> = (0..=2)
        .map(|pf| {
            let rig = BulletRig::paper_1989();
            format!(
                "P={pf}: {:.0} ms",
                rig.measure_create(1 << 20, pf).as_ms_f64()
            )
        })
        .collect();
    let _ = writeln!(out, "* P-FACTOR (ABL3), 1 MB create: {}.", p.join(", "));
    let _ = writeln!(out);

    // Server-side counters from the ablation rig above: the cache's
    // hit/miss/eviction tallies and the per-lock acquisition counters
    // introduced with the sharded locking (contended = the uncontended
    // fast path failed and the caller had to block).
    let _ = writeln!(out, "### Server counters (ablation rig)\n");
    let _ = writeln!(out, "| Counter | Value |");
    let _ = writeln!(out, "|---|---|");
    for (k, v) in rig.server.cache_stats() {
        let _ = writeln!(out, "| {k} | {v} |");
    }
    for (k, v) in rig.server.lock_stats() {
        let _ = writeln!(out, "| {k} | {v} |");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Multi-client scaling of the sharded locks is measured separately by\n\
         `cargo run -p bullet-bench --bin ablation_concurrency`\n\
         (`results/ablation_concurrency.txt`)."
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/REPORT.md", &out)?;
    println!("{out}");
    eprintln!("wrote results/REPORT.md");
    Ok(())
}
