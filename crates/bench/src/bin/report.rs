//! Regenerates the entire evaluation in one run and writes
//! `results/REPORT.md`: Figs. 2–3, the §4 claim scorecard, and the
//! headline ablations — the artifact a reviewer diffs against
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p bullet-bench --bin report
//! ```
//!
//! With `--json [PATH]` it instead emits the machine-readable streaming
//! benchmark to `PATH` (default `BENCH_pr2.json`): per file size, the
//! mean latency and bandwidth (pipeline off and on) plus p50/p95/p99
//! latency percentiles per operation, measured over repeated traced runs
//! through [`amoeba_sim::trace::op_histograms`], plus a reduced
//! fault-injection campaign summary (every class × 2 seeds), the ABL14
//! scheduler headline numbers (per-policy seek blocks / read bandwidth /
//! p99 plus the 8-block coalescing knee), the ABL15 group-commit storm
//! counters (baseline vs batched physical writes, log appends, flushes),
//! the reduced ABL16 evsim matrix (every replacement policy's hit rate
//! under Zipf and scan-injection workloads at the small cell size, with
//! the scan-resistance margin), the ABL17 telemetry summary (flight
//! recorder digest delta vs a bare run, ring population, and the SLO
//! watchdog's detection lag under an injected fault burst), the ABL18
//! sharding summary (1- vs 2-shard aggregate cold-read bandwidth, the
//! rebalance cell's extent count, and the kill-one-shard cell's refusal
//! count — the full 8-shard matrix is `ablation_shard`), the ABL19
//! tiering summary (the reduced aged-population pair: archived file and
//! byte counts at the demoted steady state, migration counters, and the
//! tiered vs baseline hot-set p99 — the full cell is
//! `ablation_tiering`), and the
//! per-zone data-area fragmentation report after a deterministic churn.
//! The document leads with a top-level `"schema_version"` key.  Adding
//! `--check` first requires the committed baseline to carry the current
//! schema version (a mismatch fails loudly, naming the version found),
//! compares the fresh pipelined 1 MB cold-read bandwidth against the
//! committed sequential baseline AND the fresh p99 tails against the
//! committed ones (10 % headroom), requires every fresh fault-campaign
//! cell green, requires the committed baseline to carry every scheduler
//! key, and re-judges the fresh scheduler run against the PR's headline
//! invariants (SCAN/SPTF beat FIFO on seeks and bandwidth, the better
//! seek-aware p99 within 1.25× of FIFO's, coalescing never issuing more
//! I/Os, zone free space partitioning the data area), requires the
//! baseline to carry every `group_commit` key and the fresh storm to
//! collapse its writes (≤ 4 log appends, ≤ baseline/4 physical writes),
//! requires the baseline to carry every `evsim`/`cache_policy` key and
//! the fresh reduced matrix to keep the better segmented policy ahead of
//! LRU under scan injection at Zipf parity, requires the baseline to
//! carry every `telemetry` key and the fresh instrumented run to replay
//! the bare timeline bit-identically (digest delta 0) with the watchdog
//! flagging the fault burst within one sampling period, requires the
//! baseline to carry every `sharding` key and the fresh reduced cells to
//! uphold the ABL18 invariants (2-shard bandwidth ≥ 1.5× the baseline,
//! rebalance and kill-shard cells fully green), requires the baseline to
//! carry every `tiering` key and the fresh reduced pair to uphold the
//! ABL19 invariants (≥ 80 % of the aged population archived, the archive
//! holding ≥ 4× the fast tier's bytes on ≥ 4× its capacity, tiered
//! hot-set p99 within 1.15× of the archive-less baseline's),
//! failing the run on any regression or on a baseline missing a gated
//! key — the CI bench-smoke gate:
//!
//! ```text
//! cargo run --release -p bullet-bench --bin report -- --json --check BENCH_pr2.json
//! ```

use std::fmt::Write as _;

use amoeba_sim::trace::{op_histograms, size_class};
use amoeba_sim::{HwProfile, Nanos, TraceConfig};
use bullet_bench::check::{self, CheckError};
use bullet_bench::evsim::{self, EvsimConfig, EvsimRun};
use bullet_bench::faults::{run_class, CampaignOutcome, FaultClass};
use bullet_bench::monitor;
use bullet_bench::rig::{BulletRig, NfsRig};
use bullet_bench::schedbench::{coalesce_knee, run_policies, KneeRow, MixedRun, PR_SEED};
use bullet_bench::shardbench::{self, ShardOutcome};
use bullet_bench::table::{bandwidth_kb_s, measure_bullet, measure_nfs, size_label, Claims, Row};
use bullet_bench::tierbench::{self, TierConfig, TierOutcome};
use bullet_core::FragReport;
use bytes::Bytes;

/// Sizes benched by `--json` (1 KB … 1 MB).
const JSON_SIZES: [usize; 5] = [1024, 4096, 65_536, 262_144, 1 << 20];

struct StreamRow {
    size: usize,
    warm_read: Nanos,
    cold_seq: Nanos,
    cold_pipe: Nanos,
    create: Nanos,
}

fn measure_streaming() -> Vec<StreamRow> {
    let rig = |pipeline: bool| {
        BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |cfg| {
            cfg.pipeline = pipeline;
        })
    };
    JSON_SIZES
        .iter()
        .map(|&size| StreamRow {
            size,
            warm_read: rig(true).measure_read(size),
            cold_seq: rig(false).measure_cold_read(size),
            cold_pipe: rig(true).measure_cold_read(size),
            create: rig(true).measure_create(size, 2),
        })
        .collect()
}

/// p50/p95/p99 of one operation × size class, from the span histograms.
struct Percentiles {
    p50: Nanos,
    p95: Nanos,
    p99: Nanos,
}

struct PctRow {
    size: usize,
    warm_read: Percentiles,
    cold_pipe: Percentiles,
    create: Percentiles,
}

/// Repetitions per operation × size for the percentile histograms.
const REPS: usize = 7;

/// A rig with the span tracer on — identical charged time (asserted by
/// `tests/trace.rs`), plus a span tree to derive histograms from.
fn traced_rig() -> BulletRig {
    BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |cfg| {
        cfg.trace = TraceConfig::enabled(cfg.clock.clone());
    })
}

/// Reads the `(op, size-class)` histogram accumulated on the rig's tracer
/// since the last `clear()`.
fn quantiles(rig: &BulletRig, op: &str, size: usize) -> Percentiles {
    let hists = op_histograms(&rig.tracer.snapshot());
    let h = hists
        .get(&(op, size_class(size as u64)))
        .expect("the traced ops recorded spans");
    Percentiles {
        p50: h.quantile(0.50),
        p95: h.quantile(0.95),
        p99: h.quantile(0.99),
    }
}

/// Measures the latency percentiles: `REPS` warm reads, cold pipelined
/// reads, and mirrored creates per size, server-side op-span durations
/// bucketed by `op_histograms`.
fn measure_percentiles() -> Vec<PctRow> {
    JSON_SIZES
        .iter()
        .map(|&size| {
            let rig = traced_rig();
            let cap = rig
                .client
                .create(Bytes::from(vec![0xa5; size]), 2)
                .expect("create fits the rig");
            rig.client.read(&cap).expect("locate + cache warm-up");

            rig.tracer.clear();
            for _ in 0..REPS {
                rig.client.read(&cap).expect("warm read");
            }
            let warm_read = quantiles(&rig, "read", size);

            rig.tracer.clear();
            for _ in 0..REPS {
                rig.server.clear_cache();
                rig.client.read(&cap).expect("cold read");
            }
            let cold_pipe = quantiles(&rig, "read", size);
            rig.client.delete(&cap).expect("cleanup");

            rig.tracer.clear();
            for _ in 0..REPS {
                let c = rig
                    .client
                    .create(Bytes::from(vec![0x5a; size]), 2)
                    .expect("measured create");
                rig.client.delete(&c).expect("cleanup");
            }
            let create = quantiles(&rig, "create", size);
            PctRow {
                size,
                warm_read,
                cold_pipe,
                create,
            }
        })
        .collect()
}

/// Seeds the `--json` fault-campaign summary runs per class.
const JSON_FAULT_SEEDS: [u64; 2] = [1, 2];

/// One fault class × the `--json` seed set, aggregated.
fn run_fault_summary() -> Vec<CampaignOutcome> {
    FaultClass::ALL
        .iter()
        .flat_map(|&c| JSON_FAULT_SEEDS.iter().map(move |&s| run_class(c, s)))
        .collect()
}

/// Zones the data-area fragmentation report is split into.
const FRAG_ZONES: u32 = 8;

/// The ABL14 measurements `--json` embeds: the three-policy mixed-run
/// comparison, the coalescing knee, and the zone fragmentation snapshot
/// (per-zone plus the whole-area report the gate checks they partition).
struct SchedMeasure {
    sched: Vec<MixedRun>,
    knee: Vec<KneeRow>,
    zones: Vec<FragReport>,
    whole: FragReport,
}

fn measure_scheduler() -> SchedMeasure {
    let (zones, whole) = measure_zone_frag();
    SchedMeasure {
        sched: run_policies(PR_SEED),
        knee: coalesce_knee(),
        zones,
        whole,
    }
}

/// Files in the group-commit storm `--json` embeds (ABL15's headline N).
const GC_STORM_FILES: usize = 32;
/// Bytes per storm file.
const GC_FILE_BYTES: usize = 16 * 1024;

/// The ABL15 headline counters `--json` embeds: the same
/// `GC_STORM_FILES` × `GC_FILE_BYTES` create storm run once per file
/// (baseline) and once through the group-commit log, with the physical
/// write and log-append counts of each.  The full aged-disk latency
/// experiment lives in `ablation_groupcommit`; this summary captures the
/// I/O-collapse invariant the gate holds.
struct GroupCommitMeasure {
    baseline_writes: u64,
    batched_writes: u64,
    log_appends: u64,
    flushes: u64,
}

fn measure_group_commit() -> GroupCommitMeasure {
    let files: Vec<Bytes> = (0..GC_STORM_FILES)
        .map(|i| Bytes::from(vec![i as u8; GC_FILE_BYTES]))
        .collect();

    let base = BulletRig::paper_1989();
    let w0 = base.sched_stats().disk_writes;
    for data in &files {
        base.client
            .create(data.clone(), 2)
            .expect("baseline storm create fits the rig");
    }
    let baseline_writes = base.sched_stats().disk_writes - w0;

    let rig = BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |cfg| {
        cfg.log_blocks = 4096;
    });
    let w0 = rig.sched_stats().disk_writes;
    rig.server
        .create_batch(files, 2)
        .expect("batched storm commits");
    GroupCommitMeasure {
        baseline_writes,
        batched_writes: rig.sched_stats().disk_writes - w0,
        log_appends: rig.server.stats().get("log_appends"),
        flushes: rig.server.stats().get("group_commit_flushes"),
    }
}

/// Seed of the reduced ABL16 matrix `--json` embeds (the seed the evsim
/// unit tests validate scan resistance at small scale under).
const EVSIM_SEED: u64 = 5;

/// The reduced ABL16 matrix: every policy × {zipf, scan} at the *small*
/// cell size (400 clients over 40k files — milliseconds per cell, so the
/// CI gate stays fast; the full 10k-client matrix is `ablation_evsim`).
struct EvsimMeasure {
    zipf: Vec<EvsimRun>,
    scan: Vec<EvsimRun>,
}

fn measure_evsim() -> EvsimMeasure {
    let matrix = |workload| {
        evsim::POLICIES
            .iter()
            .map(|&p| evsim::run(&EvsimConfig::small(p, workload, EVSIM_SEED)))
            .collect()
    };
    EvsimMeasure {
        zipf: matrix("zipf"),
        scan: matrix("scan"),
    }
}

/// The ABL17 headline facts `--json` embeds: flight-recorder overhead
/// (timeline digest XOR between bare and instrumented runs — 0 means the
/// recorder is provably free in virtual time), ring population, and the
/// SLO watchdog's reaction to an injected fault burst.
struct TelemetryMeasure {
    period_us: u64,
    digest_delta: u64,
    series_count: usize,
    samples_total: usize,
    slo_degraded: u64,
    detection_lag_us: u64,
}

/// Runs the [`monitor`] triple at the small cell size (the full
/// 10k-client gate is `ablation_monitor`).
fn measure_telemetry() -> TelemetryMeasure {
    let cfg = monitor::MonitorConfig::small(EVSIM_SEED);
    let o = monitor::run_monitor(&cfg).outcome;
    TelemetryMeasure {
        period_us: cfg.period.as_us(),
        digest_delta: o.bare.digest ^ o.clean.digest,
        series_count: o.series_count,
        samples_total: o.samples_total,
        slo_degraded: o.slo_degraded,
        detection_lag_us: o.detection_lag_us,
    }
}

/// The ABL18 summary `--json` embeds: the reduced 1-vs-2-shard scaling
/// pair plus one rebalance and one kill-one-shard cell at the PR seed
/// (the full 1–8 matrix and seed sweeps are `ablation_shard`).
struct ShardMeasure {
    scaling: Vec<ShardOutcome>,
    rebalance: ShardOutcome,
    kill: ShardOutcome,
}

fn measure_sharding() -> ShardMeasure {
    ShardMeasure {
        scaling: shardbench::run_scaling_suite(&[1, 2]),
        rebalance: shardbench::run_rebalance(1),
        kill: shardbench::run_kill_shard(1),
    }
}

/// The ABL19 summary `--json` embeds: the reduced aged-population pair
/// (archive-less baseline vs tiered) at the PR seed.  Demotion/recall
/// byte-identity is asserted inside the runs; the full cell and the
/// aging soak are `ablation_tiering`.
struct TierMeasure {
    base: TierOutcome,
    tier: TierOutcome,
}

fn measure_tiering() -> TierMeasure {
    TierMeasure {
        base: tierbench::run_tier(&TierConfig::small(tierbench::TIER_SEED, false)),
        tier: tierbench::run_tier(&TierConfig::small(tierbench::TIER_SEED, true)),
    }
}

/// A deterministic create/delete churn on a fresh rig, then the
/// per-zone fragmentation snapshot of the data area (plus the
/// whole-area report the gate checks the zones partition).
fn measure_zone_frag() -> (Vec<FragReport>, FragReport) {
    let rig = BulletRig::paper_1989();
    let caps: Vec<_> = (0..24)
        .map(|i| {
            rig.client
                .create(Bytes::from(vec![i as u8; 8192]), 2)
                .expect("churn create fits the rig")
        })
        .collect();
    for (i, cap) in caps.iter().enumerate() {
        if i % 3 == 1 {
            rig.client.delete(cap).expect("churn delete");
        }
    }
    let zones = rig.server.disk_zone_frag(FRAG_ZONES);
    let whole = rig
        .server
        .disk_zone_frag(1)
        .pop()
        .expect("one-zone report exists");
    (zones, whole)
}

/// Hand-rolled JSON (the workspace carries no serializer): one object
/// per size with delays in milliseconds, latency percentiles, and
/// cold-read bandwidths.
#[allow(clippy::too_many_arguments)]
fn render_json(
    rows: &[StreamRow],
    pcts: &[PctRow],
    faults: &[CampaignOutcome],
    sm: &SchedMeasure,
    gc: &GroupCommitMeasure,
    ev: &EvsimMeasure,
    tm: &TelemetryMeasure,
    sh: &ShardMeasure,
    tr: &TierMeasure,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"schema_version\": {},",
        check::REPORT_SCHEMA_VERSION
    );
    out.push_str("  \"benchmark\": \"bullet streaming transfers\",\n");
    let _ = writeln!(out, "  \"segment_size\": 65536,");
    let _ = writeln!(out, "  \"sizes\": [");
    for (i, (r, p)) in rows.iter().zip(pcts).enumerate() {
        assert_eq!(r.size, p.size, "row tables stay aligned");
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"bytes\": {},", r.size);
        let _ = writeln!(
            out,
            "      \"warm_read_ms\": {:.3},",
            r.warm_read.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"cold_read_sequential_ms\": {:.3},",
            r.cold_seq.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"cold_read_pipelined_ms\": {:.3},",
            r.cold_pipe.as_ms_f64()
        );
        let _ = writeln!(out, "      \"create_ms\": {:.3},", r.create.as_ms_f64());
        let _ = writeln!(
            out,
            "      \"warm_read_p50_ms\": {:.3},",
            p.warm_read.p50.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"warm_read_p95_ms\": {:.3},",
            p.warm_read.p95.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"warm_read_p99_ms\": {:.3},",
            p.warm_read.p99.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"cold_read_pipelined_p50_ms\": {:.3},",
            p.cold_pipe.p50.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"cold_read_pipelined_p99_ms\": {:.3},",
            p.cold_pipe.p99.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"create_p50_ms\": {:.3},",
            p.create.p50.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"create_p99_ms\": {:.3},",
            p.create.p99.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"cold_read_sequential_kb_s\": {:.1},",
            bandwidth_kb_s(r.size, r.cold_seq)
        );
        let _ = writeln!(
            out,
            "      \"cold_read_pipelined_kb_s\": {:.1}",
            bandwidth_kb_s(r.size, r.cold_pipe)
        );
        let _ = writeln!(out, "    }}{}", if i + 1 == rows.len() { "" } else { "," });
    }
    out.push_str("  ],\n");
    // ABL14 headline numbers: the seek-aware scheduler comparison and
    // the coalescing knee at the server's 8-block streaming granularity.
    let _ = writeln!(out, "  \"scheduler\": {{");
    let _ = writeln!(out, "    \"seed\": {PR_SEED},");
    for run in &sm.sched {
        let o = &run.outcome;
        let _ = writeln!(out, "    \"{}_seek_blocks\": {},", o.policy, o.seek_blocks);
        let _ = writeln!(out, "    \"{}_read_mb_s\": {:.3},", o.policy, o.read_mb_s);
        let _ = writeln!(out, "    \"{}_p99_ms\": {:.3},", o.policy, o.p99_ms);
    }
    let k8 = sm
        .knee
        .iter()
        .find(|r| r.segment_blocks == 8)
        .expect("the knee sweeps 8-block segments");
    let _ = writeln!(out, "    \"coalesce_on_ios_8_block\": {},", k8.issued_on);
    let _ = writeln!(out, "    \"coalesce_off_ios_8_block\": {}", k8.issued_off);
    out.push_str("  },\n");
    // ABL15 headline counters: the create storm's physical-write collapse
    // through the group-commit log.
    let _ = writeln!(out, "  \"group_commit\": {{");
    let _ = writeln!(out, "    \"storm_files\": {GC_STORM_FILES},");
    let _ = writeln!(out, "    \"storm_file_bytes\": {GC_FILE_BYTES},");
    let _ = writeln!(out, "    \"baseline_writes\": {},", gc.baseline_writes);
    let _ = writeln!(out, "    \"batched_writes\": {},", gc.batched_writes);
    let _ = writeln!(out, "    \"log_appends\": {},", gc.log_appends);
    let _ = writeln!(out, "    \"group_commit_flushes\": {}", gc.flushes);
    out.push_str("  },\n");
    // ABL16 reduced matrix: the event-engine scale facts of the small
    // cell (the full 10k-client run is `ablation_evsim`).
    let lz = &ev.zipf[0].outcome;
    let ls = &ev.scan[0].outcome;
    let _ = writeln!(out, "  \"evsim\": {{");
    let _ = writeln!(out, "    \"seed\": {EVSIM_SEED},");
    let _ = writeln!(out, "    \"clients\": {},", lz.clients);
    let _ = writeln!(out, "    \"files\": {},", lz.files);
    let _ = writeln!(out, "    \"events\": {},", lz.events);
    let _ = writeln!(out, "    \"zipf_reads\": {},", lz.reads);
    let _ = writeln!(out, "    \"scan_reads\": {}", ls.reads);
    out.push_str("  },\n");
    // ABL16 replacement-policy hit rates: every policy under both
    // workloads, plus the headline scan-resistance margin.
    let _ = writeln!(out, "  \"cache_policy\": {{");
    for r in ev.zipf.iter().chain(&ev.scan) {
        let o = &r.outcome;
        let _ = writeln!(
            out,
            "    \"{}_{}_hit_rate\": {:.4},",
            o.policy, o.workload, o.hit_rate
        );
    }
    let lru_scan = ls.hit_rate;
    let best_scan = ev.scan[2].outcome.hit_rate.max(ev.scan[3].outcome.hit_rate);
    let _ = writeln!(out, "    \"scan_margin\": {:.4}", best_scan - lru_scan);
    out.push_str("  },\n");
    // ABL17 headline facts: flight-recorder cost (digest delta 0 means
    // the instrumented run replayed the bare timeline bit-identically)
    // and the SLO watchdog's reaction to the injected fault burst.
    let _ = writeln!(out, "  \"telemetry\": {{");
    let _ = writeln!(out, "    \"sampling_period_us\": {},", tm.period_us);
    let _ = writeln!(out, "    \"series_count\": {},", tm.series_count);
    let _ = writeln!(out, "    \"samples_total\": {},", tm.samples_total);
    let _ = writeln!(out, "    \"digest_delta\": {},", tm.digest_delta);
    let _ = writeln!(out, "    \"slo_degraded_events\": {},", tm.slo_degraded);
    let _ = writeln!(out, "    \"detection_lag_us\": {}", tm.detection_lag_us);
    out.push_str("  },\n");
    // ABL18 headline facts: the reduced 1-vs-2-shard cold-read scaling
    // pair and the green-ness of the rebalance and kill-shard cells.
    let (base, two) = (&sh.scaling[0], &sh.scaling[1]);
    let _ = writeln!(out, "  \"sharding\": {{");
    let _ = writeln!(out, "    \"baseline_read_mb_s\": {:.3},", base.metric);
    let _ = writeln!(out, "    \"two_shard_read_mb_s\": {:.3},", two.metric);
    let _ = writeln!(
        out,
        "    \"shard_speedup\": {:.3},",
        two.metric / base.metric
    );
    let _ = writeln!(
        out,
        "    \"rebalance_extents_moved\": {},",
        sh.rebalance.metric as u64
    );
    let _ = writeln!(
        out,
        "    \"kill_shard_ops_refused\": {}",
        sh.kill.metric as u64
    );
    out.push_str("  },\n");
    // ABL19 headline facts: the reduced aged-population pair — how much
    // of the population the maintenance scheduler demoted, the tier byte
    // balance at that steady state, and what the migrations cost the
    // hot-set p99 against the archive-less baseline.
    let _ = writeln!(out, "  \"tiering\": {{");
    let _ = writeln!(out, "    \"files\": {},", tr.tier.files);
    let _ = writeln!(out, "    \"hot_files\": {},", tr.tier.hot_files);
    let _ = writeln!(out, "    \"archived_files\": {},", tr.tier.archived_files);
    let _ = writeln!(out, "    \"archive_bytes\": {},", tr.tier.archive_bytes);
    let _ = writeln!(out, "    \"fast_bytes\": {},", tr.tier.fast_bytes);
    let _ = writeln!(
        out,
        "    \"archive_capacity_blocks\": {},",
        tr.tier.archive_capacity_blocks
    );
    let _ = writeln!(
        out,
        "    \"fast_capacity_blocks\": {},",
        tr.tier.fast_capacity_blocks
    );
    let _ = writeln!(out, "    \"tier_demotions\": {},", tr.tier.demotions);
    let _ = writeln!(out, "    \"tier_promotions\": {},", tr.tier.promotions);
    let _ = writeln!(
        out,
        "    \"hot_p99_baseline_ms\": {:.3},",
        tr.base.hot_p99.as_ms_f64()
    );
    let _ = writeln!(
        out,
        "    \"hot_p99_tiered_ms\": {:.3},",
        tr.tier.hot_p99.as_ms_f64()
    );
    let _ = writeln!(
        out,
        "    \"hot_p99_ratio\": {:.4}",
        tr.tier.hot_p99.as_ns() as f64 / tr.base.hot_p99.as_ns() as f64
    );
    out.push_str("  },\n");
    // Per-zone fragmentation of the data area after a deterministic
    // create/delete churn.
    let _ = writeln!(out, "  \"zone_frag\": [");
    for (i, z) in sm.zones.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"zone\": {i},");
        let _ = writeln!(out, "      \"total\": {},", z.total);
        let _ = writeln!(out, "      \"free\": {},", z.free);
        let _ = writeln!(out, "      \"largest_hole\": {},", z.largest_hole);
        let _ = writeln!(out, "      \"hole_count\": {},", z.hole_count);
        let _ = writeln!(
            out,
            "      \"external_fragmentation\": {:.4}",
            z.external_fragmentation
        );
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 == sm.zones.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"fault_campaign\": [");
    for (i, o) in faults.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"class\": \"{}\",", o.class);
        let _ = writeln!(out, "      \"seed\": {},", o.seed);
        let _ = writeln!(out, "      \"ops_attempted\": {},", o.ops_attempted);
        let _ = writeln!(out, "      \"ops_retried\": {},", o.ops_retried);
        let _ = writeln!(out, "      \"ops_succeeded\": {},", o.ops_succeeded);
        let _ = writeln!(out, "      \"faults_injected\": {},", o.faults_injected);
        let _ = writeln!(out, "      \"green\": {}", o.green());
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 == faults.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"fault_campaign_all_green\": {}",
        faults.iter().all(CampaignOutcome::green)
    );
    out.push_str("}\n");
    out
}

/// The `--check` gate: bandwidth floors and p99 ceilings against the
/// committed baseline.  Strict about the baseline itself — a missing file
/// or key is a failure naming what is missing, not a silent pass.
#[allow(clippy::too_many_arguments)]
fn gate(
    path: &str,
    rows: &[StreamRow],
    pcts: &[PctRow],
    faults: &[CampaignOutcome],
    sm: &SchedMeasure,
    gc: &GroupCommitMeasure,
    ev: &EvsimMeasure,
    tm: &TelemetryMeasure,
    sh: &ShardMeasure,
    tr: &TierMeasure,
) -> Result<(), CheckError> {
    let doc = std::fs::read_to_string(path).map_err(|_| CheckError::Unreadable {
        path: path.to_string(),
    })?;
    // Schema gate first: a baseline from a different schema generation
    // fails loudly, naming the version found, before any value checks.
    check::require_schema_version(&doc, path, check::REPORT_SCHEMA_VERSION)?;
    let mb = rows.last().expect("1 MB row");
    let fresh_pipe_bw = bandwidth_kb_s(mb.size, mb.cold_pipe);
    let fresh_seq_bw = bandwidth_kb_s(mb.size, mb.cold_seq);
    // The committed sequential baseline is the floor the pipelined path
    // must never fall back to.
    let committed_seq_bw = check::require_key(&doc, path, 1 << 20, "cold_read_sequential_kb_s")?;
    let floor = committed_seq_bw.max(fresh_seq_bw);
    eprintln!(
        "check: pipelined 1 MB cold read {fresh_pipe_bw:.1} KB/s vs sequential floor {floor:.1} KB/s"
    );
    check::require_at_least(
        "pipelined 1 MB cold-read bandwidth (KB/s)",
        fresh_pipe_bw,
        floor,
    )?;
    // Tail-latency gate: p99 of the pipelined cold read and the mirrored
    // create may not exceed the committed tail by more than 10 %.
    let mbp = pcts.last().expect("1 MB row");
    for (key, fresh) in [
        ("cold_read_pipelined_p99_ms", mbp.cold_pipe.p99),
        ("create_p99_ms", mbp.create.p99),
    ] {
        let committed = check::require_key(&doc, path, 1 << 20, key)?;
        let fresh_ms = fresh.as_ms_f64();
        eprintln!(
            "check: 1 MB {key} {fresh_ms:.3} ms vs committed {committed:.3} ms (+10 % allowed)"
        );
        check::require_at_most(&format!("1 MB {key}"), fresh_ms, committed * 1.10)?;
    }
    // Fault-campaign gate: every freshly-run campaign cell must be
    // green.  This judges the fresh run, never the baseline, so a
    // baseline committed before the campaign existed still passes the
    // bandwidth/tail checks above unchanged.
    let reds: Vec<String> = faults
        .iter()
        .filter(|o| !o.green())
        .map(|o| format!("{} seed {}", o.class, o.seed))
        .collect();
    eprintln!(
        "check: fault campaign {} of {} cells green",
        faults.len() - reds.len(),
        faults.len()
    );
    if !reds.is_empty() {
        return Err(CheckError::Regression {
            what: format!("fault campaign red cells: {}", reds.join(", ")),
            fresh: reds.len() as f64,
            bound: 0.0,
        });
    }
    // Scheduler gate, part 1 — schema: the committed baseline must carry
    // every headline scheduler key (a baseline from before ABL14 fails
    // loudly, naming the key, until regenerated).
    for key in [
        "fifo_seek_blocks",
        "scan_seek_blocks",
        "sptf_seek_blocks",
        "fifo_read_mb_s",
        "scan_read_mb_s",
        "sptf_read_mb_s",
        "fifo_p99_ms",
        "scan_p99_ms",
        "sptf_p99_ms",
        "coalesce_on_ios_8_block",
        "coalesce_off_ios_8_block",
    ] {
        check::require_section_key(&doc, path, "scheduler", key)?;
    }
    // Scheduler gate, part 2 — the fresh run must uphold the PR's
    // headline invariants (these judge the fresh measurement, so a
    // regenerated baseline can never bake in a violation).
    let (fifo, scan, sptf) = (
        &sm.sched[0].outcome,
        &sm.sched[1].outcome,
        &sm.sched[2].outcome,
    );
    eprintln!(
        "check: seek blocks fifo {} scan {} sptf {}; read MB/s fifo {:.2} scan {:.2} sptf {:.2}",
        fifo.seek_blocks,
        scan.seek_blocks,
        sptf.seek_blocks,
        fifo.read_mb_s,
        scan.read_mb_s,
        sptf.read_mb_s
    );
    check::require_at_most(
        "scan seek blocks (vs fifo)",
        scan.seek_blocks as f64,
        fifo.seek_blocks as f64,
    )?;
    check::require_at_most(
        "sptf seek blocks (vs fifo)",
        sptf.seek_blocks as f64,
        fifo.seek_blocks as f64,
    )?;
    check::require_at_least(
        "scan aggregate read bandwidth (MB/s, vs fifo)",
        scan.read_mb_s,
        fifo.read_mb_s,
    )?;
    check::require_at_least(
        "sptf aggregate read bandwidth (MB/s, vs fifo)",
        sptf.read_mb_s,
        fifo.read_mb_s,
    )?;
    eprintln!(
        "check: p99 fifo {:.2} ms, best seek-aware {:.2} ms (1.25x bound {:.2} ms)",
        fifo.p99_ms,
        scan.p99_ms.min(sptf.p99_ms),
        fifo.p99_ms * 1.25
    );
    check::require_at_most(
        "best seek-aware p99 (ms, vs 1.25x fifo)",
        scan.p99_ms.min(sptf.p99_ms),
        fifo.p99_ms * 1.25,
    )?;
    for r in &sm.knee {
        check::require_at_most(
            &format!(
                "coalescing issued I/Os at {}-block segments",
                r.segment_blocks
            ),
            r.issued_on as f64,
            r.issued_off as f64,
        )?;
    }
    // Group-commit gate, part 1 — schema: the committed baseline must
    // carry every `group_commit` key (a baseline from before ABL15 fails
    // loudly, naming the key, until regenerated).
    for key in [
        "storm_files",
        "storm_file_bytes",
        "baseline_writes",
        "batched_writes",
        "log_appends",
        "group_commit_flushes",
    ] {
        check::require_section_key(&doc, path, "group_commit", key)?;
    }
    // Group-commit gate, part 2 — the fresh storm must uphold the PR's
    // headline collapse: the whole batch lands in at most 4 log appends,
    // and the batched path issues at most a quarter of the baseline's
    // physical writes.
    eprintln!(
        "check: group commit — {} files, baseline {} writes vs batched {} ({} appends, {} flushes)",
        GC_STORM_FILES, gc.baseline_writes, gc.batched_writes, gc.log_appends, gc.flushes
    );
    check::require_at_most("group-commit log appends", gc.log_appends as f64, 4.0)?;
    check::require_at_most(
        "batched physical writes (vs baseline / 4)",
        gc.batched_writes as f64,
        gc.baseline_writes as f64 / 4.0,
    )?;
    // Evsim gate, part 1 — schema: the committed baseline must carry the
    // ABL16 scale facts and every policy's hit rate (a baseline from
    // before ABL16 fails loudly, naming the key, until regenerated).
    for key in [
        "seed",
        "clients",
        "files",
        "events",
        "zipf_reads",
        "scan_reads",
    ] {
        check::require_section_key(&doc, path, "evsim", key)?;
    }
    for policy in ["lru", "fifo", "slru", "2q"] {
        for workload in ["zipf", "scan"] {
            check::require_section_key(
                &doc,
                path,
                "cache_policy",
                &format!("{policy}_{workload}_hit_rate"),
            )?;
        }
    }
    check::require_section_key(&doc, path, "cache_policy", "scan_margin")?;
    // Telemetry gate, part 1 — schema: the committed baseline must carry
    // every ABL17 key (a baseline from before the flight recorder fails
    // loudly, naming the key, until regenerated).
    for key in [
        "sampling_period_us",
        "series_count",
        "samples_total",
        "digest_delta",
        "slo_degraded_events",
        "detection_lag_us",
    ] {
        check::require_section_key(&doc, path, "telemetry", key)?;
    }
    // Telemetry gate, part 2 — the fresh run must uphold the PR's
    // headline invariants: the recorder is free in virtual time (the
    // instrumented digest equals the bare digest), and the watchdog
    // flags the injected fault within one sampling period.
    eprintln!(
        "check: telemetry — {} series / {} samples, digest delta {}, {} degraded events, \
         detection lag {} µs (period {} µs)",
        tm.series_count,
        tm.samples_total,
        tm.digest_delta,
        tm.slo_degraded,
        tm.detection_lag_us,
        tm.period_us
    );
    check::require_at_most(
        "instrumented evsim digest delta (vs bare run)",
        tm.digest_delta as f64,
        0.0,
    )?;
    check::require_at_least(
        "watchdog degraded events under fault burst",
        tm.slo_degraded as f64,
        1.0,
    )?;
    check::require_at_most(
        "watchdog detection lag (µs, vs one sampling period)",
        tm.detection_lag_us as f64,
        tm.period_us as f64,
    )?;
    // Evsim gate, part 2 — the fresh reduced matrix must uphold the PR's
    // headline invariants: the better segmented policy beats LRU under
    // scan injection, and scan resistance costs nothing under pure Zipf
    // (every policy within 0.05 of LRU's hit rate).
    let lru_scan = ev.scan[0].outcome.hit_rate;
    let best_scan = ev.scan[2].outcome.hit_rate.max(ev.scan[3].outcome.hit_rate);
    eprintln!("check: evsim scan hit rate — lru {lru_scan:.4}, best segmented {best_scan:.4}");
    check::require_at_least("best segmented scan hit rate (vs lru)", best_scan, lru_scan)?;
    let lru_zipf = ev.zipf[0].outcome.hit_rate;
    for r in &ev.zipf {
        check::require_at_least(
            &format!("{} zipf hit rate (vs lru - 0.05)", r.outcome.policy),
            r.outcome.hit_rate,
            lru_zipf - 0.05,
        )?;
    }
    // Sharding gate, part 1 — schema: the committed baseline must carry
    // every ABL18 key (a baseline from before the sharded service fails
    // loudly, naming the key, until regenerated).
    for key in [
        "baseline_read_mb_s",
        "two_shard_read_mb_s",
        "shard_speedup",
        "rebalance_extents_moved",
        "kill_shard_ops_refused",
    ] {
        check::require_section_key(&doc, path, "sharding", key)?;
    }
    // Sharding gate, part 2 — the fresh reduced cells must uphold the
    // PR's headline invariants: two shards deliver at least 1.5× the
    // one-shard aggregate cold-read bandwidth (the same 0.75/shard floor
    // the full matrix holds at 8 shards), and the rebalance and
    // kill-shard cells come back fully green.
    let (base, two) = (&sh.scaling[0], &sh.scaling[1]);
    eprintln!(
        "check: sharding — 1 shard {:.2} MB/s, 2 shards {:.2} MB/s ({:.2}x); \
         rebalance {}/{} green, kill-shard {}/{} green",
        base.metric,
        two.metric,
        two.metric / base.metric,
        sh.rebalance.invariants.iter().filter(|i| i.pass).count(),
        sh.rebalance.invariants.len(),
        sh.kill.invariants.iter().filter(|i| i.pass).count(),
        sh.kill.invariants.len()
    );
    check::require_at_least(
        "2-shard aggregate cold-read bandwidth (MB/s, vs 1.5x one shard)",
        two.metric,
        1.5 * base.metric,
    )?;
    for (cell, outcome) in [
        ("scaling baseline", base),
        ("scaling 2-shard", two),
        ("rebalance", &sh.rebalance),
        ("kill-shard", &sh.kill),
    ] {
        if let Some(red) = outcome.invariants.iter().find(|i| !i.pass) {
            return Err(CheckError::Regression {
                what: format!("sharding {cell} cell red: {} ({})", red.name, red.detail),
                fresh: 0.0,
                bound: 1.0,
            });
        }
    }
    // Tiering gate, part 1 — schema: the committed baseline must carry
    // every ABL19 key (a baseline from before tiered storage fails
    // loudly, naming the key, until regenerated).
    for key in [
        "files",
        "hot_files",
        "archived_files",
        "archive_bytes",
        "fast_bytes",
        "archive_capacity_blocks",
        "fast_capacity_blocks",
        "tier_demotions",
        "tier_promotions",
        "hot_p99_baseline_ms",
        "hot_p99_tiered_ms",
        "hot_p99_ratio",
    ] {
        check::require_section_key(&doc, path, "tiering", key)?;
    }
    // Tiering gate, part 2 — the fresh reduced pair must uphold the PR's
    // headline invariants: the aging sweep sends ≥ 80 % of the
    // population to the archive, the archive then holds ≥ 4× the fast
    // tier's bytes on ≥ 4× its capacity, the migration counters are
    // alive, and the tiered hot-set p99 stays within 1.15× of the
    // archive-less baseline's.  (Demotion/recall byte-identity is
    // asserted inside the measurement itself.)
    eprintln!(
        "check: tiering — {} of {} files archived ({} bytes vs {} fast); \
         hot p99 {:.2} ms tiered vs {:.2} ms baseline",
        tr.tier.archived_files,
        tr.tier.files,
        tr.tier.archive_bytes,
        tr.tier.fast_bytes,
        tr.tier.hot_p99.as_ms_f64(),
        tr.base.hot_p99.as_ms_f64()
    );
    check::require_at_least(
        "archived share of the aged population (files, vs 80 %)",
        tr.tier.archived_files as f64 * 5.0,
        tr.tier.files as f64 * 4.0,
    )?;
    check::require_at_least(
        "archive-resident bytes (vs 4x fast-resident)",
        tr.tier.archive_bytes as f64,
        4.0 * tr.tier.fast_bytes as f64,
    )?;
    check::require_at_least(
        "archive capacity (blocks, vs 4x the fast data area)",
        tr.tier.archive_capacity_blocks as f64,
        4.0 * tr.tier.fast_capacity_blocks as f64,
    )?;
    check::require_at_least(
        "tier demotions (vs archived file count)",
        tr.tier.demotions as f64,
        tr.tier.archived_files as f64,
    )?;
    check::require_at_least(
        "tier promotions (recalls completed)",
        tr.tier.promotions as f64,
        1.0,
    )?;
    check::require_at_most(
        "tiered hot-set p99 (ns, vs 1.15x baseline)",
        tr.tier.hot_p99.as_ns() as f64,
        1.15 * tr.base.hot_p99.as_ns() as f64,
    )?;
    // Zone-frag gate: the per-zone reports must partition the data area
    // — zone free space sums to the whole-area free count.
    let zone_free: u64 = sm.zones.iter().map(|z| z.free).sum();
    eprintln!(
        "check: zone frag — {} zones, free {} of {} blocks (whole-area free {})",
        sm.zones.len(),
        zone_free,
        sm.whole.total,
        sm.whole.free
    );
    if zone_free != sm.whole.free {
        return Err(CheckError::Regression {
            what: "per-zone free blocks must sum to the data-area free count".to_string(),
            fresh: zone_free as f64,
            bound: sm.whole.free as f64,
        });
    }
    Ok(())
}

fn run_json(path: &str, check: bool) -> std::io::Result<()> {
    eprintln!("measuring streaming transfers (pipeline off/on)…");
    let rows = measure_streaming();
    eprintln!("measuring latency percentiles ({REPS} reps per op × size, traced rigs)…");
    let pcts = measure_percentiles();
    eprintln!(
        "running fault campaigns ({} classes × {} seeds)…",
        FaultClass::ALL.len(),
        JSON_FAULT_SEEDS.len()
    );
    let faults = run_fault_summary();
    eprintln!("running scheduler ablation (3 policies + coalescing knee, seed {PR_SEED})…");
    let sm = measure_scheduler();
    eprintln!("running group-commit storm ({GC_STORM_FILES} × {GC_FILE_BYTES} B creates)…");
    let gc = measure_group_commit();
    eprintln!("running reduced evsim matrix (4 policies × 2 workloads, small cells)…");
    let ev = measure_evsim();
    eprintln!("running telemetry summary (bare vs instrumented vs fault-burst evsim)…");
    let tm = measure_telemetry();
    eprintln!("running sharding summary (1-vs-2-shard scaling + rebalance + kill-shard)…");
    let sh = measure_sharding();
    eprintln!("running tiering summary (aged-population pair, baseline vs archive)…");
    let tr = measure_tiering();
    if check {
        if let Err(e) = gate(path, &rows, &pcts, &faults, &sm, &gc, &ev, &tm, &sh, &tr) {
            eprintln!("BENCH CHECK FAILED: {e}");
            std::process::exit(1);
        }
    }
    std::fs::write(
        path,
        render_json(&rows, &pcts, &faults, &sm, &gc, &ev, &tm, &sh, &tr),
    )?;
    eprintln!("wrote {path}");
    Ok(())
}

fn table_md(out: &mut String, title: &str, col2: &str, rows: &[Row]) {
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(
        out,
        "| File size | READ delay (ms) | {col2} delay (ms) | READ bw (KB/s) | {col2} bw (KB/s) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            size_label(r.size),
            r.read.as_ms_f64(),
            r.write.as_ms_f64(),
            r.read_bw(),
            r.write_bw()
        );
    }
    let _ = writeln!(out);
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        let check = args.iter().any(|a| a == "--check");
        let path = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .map_or("BENCH_pr2.json", String::as_str);
        return run_json(path, check);
    }
    run_report()
}

fn run_report() -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Regenerated evaluation report\n\n\
         Produced by `cargo run -p bullet-bench --bin report`.  All numbers are\n\
         deterministic simulated time on the calibrated 1989 testbed; rerunning\n\
         reproduces this file bit-for-bit.\n"
    );

    eprintln!("measuring Fig. 2 (Bullet)…");
    let bullet = measure_bullet(&BulletRig::paper_1989());
    table_md(
        &mut out,
        "Fig. 2 — Bullet file server",
        "CREATE+DEL",
        &bullet,
    );

    eprintln!("measuring Fig. 3 (NFS baseline)…");
    let nfs = measure_nfs(&NfsRig::paper_1989());
    table_md(&mut out, "Fig. 3 — SUN NFS baseline", "CREATE", &nfs);

    let claims = Claims::evaluate(&bullet, &nfs);
    let _ = writeln!(out, "### §4 claims\n");
    let _ = writeln!(out, "| Claim | Paper | Measured |");
    let _ = writeln!(out, "|---|---|---|");
    let speedups: Vec<String> = claims
        .read_speedups
        .iter()
        .map(|(s, r)| format!("{} {:.1}×", size_label(*s), r))
        .collect();
    let _ = writeln!(
        out,
        "| C1 READ speedup | 3–6× all sizes | {} |",
        speedups.join(", ")
    );
    let _ = writeln!(
        out,
        "| C2 1 MB read bandwidth ratio | ~10× | {:.1}× |",
        claims.large_read_bw_ratio
    );
    let _ = writeln!(
        out,
        "| C3 Bullet create bw > NFS read bw | > 64 KB | at {} |",
        claims
            .write_beats_read_at
            .iter()
            .map(|&s| size_label(s))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let (rd, wd) = claims.nfs_dips_at_1mb;
    let _ = writeln!(
        out,
        "| C4 NFS dips at 1 MB | both columns | read {rd}, create {wd} |"
    );
    let _ = writeln!(out);

    eprintln!("measuring headline ablations…");
    let _ = writeln!(out, "### Headline ablations\n");
    let rig = BulletRig::paper_1989();
    let warm = rig.measure_read(1 << 20);
    let cold = rig.measure_cold_read(1 << 20);
    let _ = writeln!(
        out,
        "* RAM cache (ABL1): warm 1 MB read {:.0} ms vs cold {:.0} ms ({:.1}×).",
        warm.as_ms_f64(),
        cold.as_ms_f64(),
        cold.as_ns() as f64 / warm.as_ns() as f64
    );
    let p: Vec<String> = (0..=2)
        .map(|pf| {
            let rig = BulletRig::paper_1989();
            format!(
                "P={pf}: {:.0} ms",
                rig.measure_create(1 << 20, pf).as_ms_f64()
            )
        })
        .collect();
    let _ = writeln!(out, "* P-FACTOR (ABL3), 1 MB create: {}.", p.join(", "));
    let _ = writeln!(out);

    // Server-side counters from the ablation rig above: the cache's
    // hit/miss/eviction tallies and the per-lock acquisition counters
    // introduced with the sharded locking (contended = the uncontended
    // fast path failed and the caller had to block).
    let _ = writeln!(out, "### Server counters (ablation rig)\n");
    let _ = writeln!(out, "| Counter | Value |");
    let _ = writeln!(out, "|---|---|");
    for (k, v) in rig.server.cache_stats() {
        let _ = writeln!(out, "| {k} | {v} |");
    }
    for (k, v) in rig.server.lock_stats() {
        let _ = writeln!(out, "| {k} | {v} |");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Multi-client scaling of the sharded locks is measured separately by\n\
         `cargo run -p bullet-bench --bin ablation_concurrency`\n\
         (`results/ablation_concurrency.txt`)."
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/REPORT.md", &out)?;
    println!("{out}");
    eprintln!("wrote results/REPORT.md");
    Ok(())
}
