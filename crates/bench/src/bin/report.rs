//! Regenerates the entire evaluation in one run and writes
//! `results/REPORT.md`: Figs. 2–3, the §4 claim scorecard, and the
//! headline ablations — the artifact a reviewer diffs against
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p bullet-bench --bin report
//! ```
//!
//! With `--json [PATH]` it instead emits the machine-readable streaming
//! benchmark (latency and bandwidth per file size, pipeline off and on)
//! to `PATH` (default `BENCH_pr2.json`).  Adding `--check` compares the
//! freshly measured pipelined 1 MB cold-read bandwidth against the
//! sequential baseline in the committed file and fails the run on a
//! regression — the CI bench-smoke gate:
//!
//! ```text
//! cargo run --release -p bullet-bench --bin report -- --json --check BENCH_pr2.json
//! ```

use std::fmt::Write as _;

use amoeba_sim::{HwProfile, Nanos};
use bullet_bench::rig::{BulletRig, NfsRig};
use bullet_bench::table::{bandwidth_kb_s, measure_bullet, measure_nfs, size_label, Claims, Row};

/// Sizes benched by `--json` (1 KB … 1 MB).
const JSON_SIZES: [usize; 5] = [1024, 4096, 65_536, 262_144, 1 << 20];

struct StreamRow {
    size: usize,
    warm_read: Nanos,
    cold_seq: Nanos,
    cold_pipe: Nanos,
    create: Nanos,
}

fn measure_streaming() -> Vec<StreamRow> {
    let rig = |pipeline: bool| {
        BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |cfg| {
            cfg.pipeline = pipeline;
        })
    };
    JSON_SIZES
        .iter()
        .map(|&size| StreamRow {
            size,
            warm_read: rig(true).measure_read(size),
            cold_seq: rig(false).measure_cold_read(size),
            cold_pipe: rig(true).measure_cold_read(size),
            create: rig(true).measure_create(size, 2),
        })
        .collect()
}

/// Hand-rolled JSON (the workspace carries no serializer): one object
/// per size with delays in milliseconds and cold-read bandwidths.
fn render_json(rows: &[StreamRow]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"bullet streaming transfers\",\n");
    let _ = writeln!(out, "  \"segment_size\": 65536,");
    let _ = writeln!(out, "  \"sizes\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"bytes\": {},", r.size);
        let _ = writeln!(
            out,
            "      \"warm_read_ms\": {:.3},",
            r.warm_read.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"cold_read_sequential_ms\": {:.3},",
            r.cold_seq.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "      \"cold_read_pipelined_ms\": {:.3},",
            r.cold_pipe.as_ms_f64()
        );
        let _ = writeln!(out, "      \"create_ms\": {:.3},", r.create.as_ms_f64());
        let _ = writeln!(
            out,
            "      \"cold_read_sequential_kb_s\": {:.1},",
            bandwidth_kb_s(r.size, r.cold_seq)
        );
        let _ = writeln!(
            out,
            "      \"cold_read_pipelined_kb_s\": {:.1}",
            bandwidth_kb_s(r.size, r.cold_pipe)
        );
        let _ = writeln!(out, "    }}{}", if i + 1 == rows.len() { "" } else { "," });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"<key>": <number>` out of the object for `bytes` in committed
/// JSON — enough parsing for the regression gate, no serde needed.
fn json_lookup(doc: &str, bytes: usize, key: &str) -> Option<f64> {
    let obj = doc.split("{").find(|o| {
        o.lines()
            .any(|l| l.trim().starts_with(&format!("\"bytes\": {bytes},")))
    })?;
    let line = obj.lines().find(|l| l.trim().starts_with(&format!("\"{key}\":")))?;
    line.split(':').nth(1)?.trim().trim_end_matches(',').parse().ok()
}

fn run_json(path: &str, check: bool) -> std::io::Result<()> {
    eprintln!("measuring streaming transfers (pipeline off/on)…");
    let rows = measure_streaming();
    if check {
        let mb = rows.last().expect("1 MB row");
        let fresh_pipe_bw = bandwidth_kb_s(mb.size, mb.cold_pipe);
        let fresh_seq_bw = bandwidth_kb_s(mb.size, mb.cold_seq);
        // The committed file's sequential baseline is the floor the
        // pipelined path must never fall back to.
        let committed_seq_bw = std::fs::read_to_string(path)
            .ok()
            .and_then(|doc| json_lookup(&doc, 1 << 20, "cold_read_sequential_kb_s"))
            .unwrap_or(fresh_seq_bw);
        let floor = committed_seq_bw.max(fresh_seq_bw);
        eprintln!(
            "check: pipelined 1 MB cold read {fresh_pipe_bw:.1} KB/s vs sequential floor {floor:.1} KB/s"
        );
        if fresh_pipe_bw < floor {
            eprintln!("BENCH CHECK FAILED: pipelined bandwidth regressed below sequential");
            std::process::exit(1);
        }
    }
    std::fs::write(path, render_json(&rows))?;
    eprintln!("wrote {path}");
    Ok(())
}

fn table_md(out: &mut String, title: &str, col2: &str, rows: &[Row]) {
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(
        out,
        "| File size | READ delay (ms) | {col2} delay (ms) | READ bw (KB/s) | {col2} bw (KB/s) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            size_label(r.size),
            r.read.as_ms_f64(),
            r.write.as_ms_f64(),
            r.read_bw(),
            r.write_bw()
        );
    }
    let _ = writeln!(out);
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--json") {
        let check = args.iter().any(|a| a == "--check");
        let path = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .map_or("BENCH_pr2.json", String::as_str);
        return run_json(path, check);
    }
    run_report()
}

fn run_report() -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Regenerated evaluation report\n\n\
         Produced by `cargo run -p bullet-bench --bin report`.  All numbers are\n\
         deterministic simulated time on the calibrated 1989 testbed; rerunning\n\
         reproduces this file bit-for-bit.\n"
    );

    eprintln!("measuring Fig. 2 (Bullet)…");
    let bullet = measure_bullet(&BulletRig::paper_1989());
    table_md(
        &mut out,
        "Fig. 2 — Bullet file server",
        "CREATE+DEL",
        &bullet,
    );

    eprintln!("measuring Fig. 3 (NFS baseline)…");
    let nfs = measure_nfs(&NfsRig::paper_1989());
    table_md(&mut out, "Fig. 3 — SUN NFS baseline", "CREATE", &nfs);

    let claims = Claims::evaluate(&bullet, &nfs);
    let _ = writeln!(out, "### §4 claims\n");
    let _ = writeln!(out, "| Claim | Paper | Measured |");
    let _ = writeln!(out, "|---|---|---|");
    let speedups: Vec<String> = claims
        .read_speedups
        .iter()
        .map(|(s, r)| format!("{} {:.1}×", size_label(*s), r))
        .collect();
    let _ = writeln!(
        out,
        "| C1 READ speedup | 3–6× all sizes | {} |",
        speedups.join(", ")
    );
    let _ = writeln!(
        out,
        "| C2 1 MB read bandwidth ratio | ~10× | {:.1}× |",
        claims.large_read_bw_ratio
    );
    let _ = writeln!(
        out,
        "| C3 Bullet create bw > NFS read bw | > 64 KB | at {} |",
        claims
            .write_beats_read_at
            .iter()
            .map(|&s| size_label(s))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let (rd, wd) = claims.nfs_dips_at_1mb;
    let _ = writeln!(
        out,
        "| C4 NFS dips at 1 MB | both columns | read {rd}, create {wd} |"
    );
    let _ = writeln!(out);

    eprintln!("measuring headline ablations…");
    let _ = writeln!(out, "### Headline ablations\n");
    let rig = BulletRig::paper_1989();
    let warm = rig.measure_read(1 << 20);
    let cold = rig.measure_cold_read(1 << 20);
    let _ = writeln!(
        out,
        "* RAM cache (ABL1): warm 1 MB read {:.0} ms vs cold {:.0} ms ({:.1}×).",
        warm.as_ms_f64(),
        cold.as_ms_f64(),
        cold.as_ns() as f64 / warm.as_ns() as f64
    );
    let p: Vec<String> = (0..=2)
        .map(|pf| {
            let rig = BulletRig::paper_1989();
            format!(
                "P={pf}: {:.0} ms",
                rig.measure_create(1 << 20, pf).as_ms_f64()
            )
        })
        .collect();
    let _ = writeln!(out, "* P-FACTOR (ABL3), 1 MB create: {}.", p.join(", "));
    let _ = writeln!(out);

    // Server-side counters from the ablation rig above: the cache's
    // hit/miss/eviction tallies and the per-lock acquisition counters
    // introduced with the sharded locking (contended = the uncontended
    // fast path failed and the caller had to block).
    let _ = writeln!(out, "### Server counters (ablation rig)\n");
    let _ = writeln!(out, "| Counter | Value |");
    let _ = writeln!(out, "|---|---|");
    for (k, v) in rig.server.cache_stats() {
        let _ = writeln!(out, "| {k} | {v} |");
    }
    for (k, v) in rig.server.lock_stats() {
        let _ = writeln!(out, "| {k} | {v} |");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Multi-client scaling of the sharded locks is measured separately by\n\
         `cargo run -p bullet-bench --bin ablation_concurrency`\n\
         (`results/ablation_concurrency.txt`)."
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/REPORT.md", &out)?;
    println!("{out}");
    eprintln!("wrote results/REPORT.md");
    Ok(())
}
