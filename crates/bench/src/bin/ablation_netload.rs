//! Ablation ABL7 — the "normally loaded Ethernet": how competing traffic
//! scales the Bullet read tables (the paper measured under real load; we
//! sweep the load factor).
//!
//! Exit status is non-zero if the headline invariant goes red: read
//! delay must grow monotonically with wire contention at every size.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_netload
//! ```

use std::sync::Arc;

use amoeba_disk::{BlockDevice, MirroredDisk, RamDisk, SimDisk};
use amoeba_net::SimEthernet;
use amoeba_rpc::{Dispatcher, RpcClient};
use amoeba_sim::{HwProfile, SimClock};
use bullet_bench::table::{bandwidth_kb_s, size_label};
use bullet_core::{BulletClient, BulletConfig, BulletRpcServer, BulletServer};
use bytes::Bytes;

fn read_delay_ms(load: f64, size: usize) -> (f64, f64) {
    let clock = SimClock::new();
    let hw = HwProfile::amoeba_1989();
    let replicas: Vec<Arc<dyn BlockDevice>> = (0..2)
        .map(|_| {
            Arc::new(SimDisk::new(
                RamDisk::new(1024, 65_536),
                clock.clone(),
                hw.disk,
            )) as Arc<dyn BlockDevice>
        })
        .collect();
    let mut cfg = BulletConfig::small_test();
    cfg.block_size = 1024;
    cfg.disk_blocks = 65_536;
    cfg.cache_capacity = 12 << 20;
    cfg.rnode_slots = 2048;
    cfg.min_inodes = 2048;
    cfg.clock = clock.clone();
    let server = Arc::new(
        BulletServer::format_on(cfg, MirroredDisk::new(replicas).expect("mirror")).expect("format"),
    );
    let net = SimEthernet::with_load(clock.clone(), hw.net, load);
    let dispatcher = Dispatcher::new(net);
    dispatcher.register(BulletRpcServer::new(server.clone()));
    let client = BulletClient::new(RpcClient::new(dispatcher), server.port());

    let cap = client
        .create(Bytes::from(vec![7u8; size]), 2)
        .expect("create");
    client.read(&cap).expect("warm-up");
    let t0 = clock.now();
    client.read(&cap).expect("measured");
    clock.advance(hw.cpu.memcpy(size as u64));
    let dt = clock.now() - t0;
    (dt.as_ms_f64(), bandwidth_kb_s(size, dt))
}

fn main() {
    let mut reds: Vec<String> = Vec::new();
    println!("ABL7 — Ethernet load factor vs warm READ performance");
    for &size in &[512usize, 65_536, 1 << 20] {
        println!("  file size {}:", size_label(size));
        println!("  {:>8}  {:>12}  {:>14}", "load", "delay (ms)", "bw (KB/s)");
        let mut prev = 0.0f64;
        for &load in &[1.0f64, 1.25, 1.5, 2.0, 3.0] {
            let (ms, bw) = read_delay_ms(load, size);
            println!("  {:>7.2}x  {:>12.1}  {:>14.1}", load, ms, bw);
            if ms < prev {
                reds.push(format!(
                    "delay fell from {prev:.1} ms to {ms:.1} ms as load rose to {load:.2}x at {}",
                    size_label(size)
                ));
            }
            prev = ms;
        }
    }
    println!();
    println!("Delays scale linearly with wire contention; the Bullet advantage over the");
    println!("block baseline is load-independent because both ride the same Ethernet.");
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL7 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
