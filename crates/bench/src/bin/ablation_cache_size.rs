//! Ablation ABL6 — cache sizing: hit ratio and mean read delay of the
//! cited workload mix as the RAM cache shrinks from "all remaining
//! memory" (the paper's design point) downward.
//!
//! Exit status is non-zero if the headline invariant goes red: the
//! full-size cache must beat the smallest one on both hit ratio and
//! mean read delay.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_cache_size
//! ```

use std::collections::HashMap;

use amoeba_sim::Histogram;
use bullet_bench::rig::BulletRig;
use bullet_bench::workload::{WorkloadMix, WorkloadOp};
use bytes::Bytes;

fn run(cache_bytes: u64) -> (f64, f64) {
    let rig = BulletRig::with_options(2, amoeba_sim::HwProfile::amoeba_1989(), cache_bytes);
    let mut mix = WorkloadMix::unix_mix(0xcafe, 512 * 1024, 700);
    let mut caps = Vec::new();
    let delays = Histogram::new();
    for _ in 0..12_000 {
        match mix.next_op() {
            WorkloadOp::Create(size) => {
                if let Ok(cap) = rig.client.create(Bytes::from(vec![1u8; size as usize]), 1) {
                    caps.push(cap);
                }
            }
            WorkloadOp::Read(n) => {
                if !caps.is_empty() {
                    let cap = caps[(n % caps.len() as u64) as usize];
                    let t0 = rig.clock.now();
                    let _ = rig.client.read(&cap);
                    delays.record(rig.clock.now() - t0);
                }
            }
            WorkloadOp::Delete(n) => {
                if !caps.is_empty() {
                    let cap = caps.swap_remove((n % caps.len() as u64) as usize);
                    let _ = rig.client.delete(&cap);
                }
            }
        }
    }
    let stats: HashMap<_, _> = rig.server.cache_stats().into_iter().collect();
    let hits = *stats.get("cache_hits").unwrap_or(&0) as f64;
    let misses = *stats.get("cache_misses").unwrap_or(&0) as f64;
    (hits / (hits + misses).max(1.0), delays.mean().as_ms_f64())
}

fn main() {
    println!("ABL6 — cache size vs hit ratio and mean READ delay (cited workload mix)");
    println!(
        "  {:>12}  {:>10}  {:>16}",
        "cache", "hit ratio", "mean read (ms)"
    );
    let mut rows = Vec::new();
    for &kb in &[512u64, 1024, 2048, 4096, 8192, 16_384] {
        let (ratio, mean) = run(kb << 10);
        println!("  {:>9} KB  {:>9.1}%  {:>16.1}", kb, 100.0 * ratio, mean);
        rows.push((ratio, mean));
    }
    println!();
    println!("\"All of the server's remaining memory will be used for file caching\" (§3):");
    println!("the hit ratio — and with it Fig. 2's no-disk read path — is bought with RAM.");
    let (small, large) = (rows.first().expect("rows"), rows.last().expect("rows"));
    if large.0 <= small.0 {
        eprintln!(
            "ABL6 FAILED: full cache hit ratio {:.3} no better than smallest cache's {:.3}",
            large.0, small.0
        );
        std::process::exit(1);
    }
    if large.1 >= small.1 {
        eprintln!(
            "ABL6 FAILED: full cache mean read {:.1} ms no better than smallest cache's {:.1} ms",
            large.1, small.1
        );
        std::process::exit(1);
    }
}
