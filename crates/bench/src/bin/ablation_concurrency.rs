//! Ablation ABL10 — multi-client scaling of the sharded-lock read path.
//!
//! Spawns 1/2/4/8/16 real client threads against ONE Bullet server and
//! runs a cache-hot, read-mostly mix on each (a shared pool of
//! cache-resident files, with an occasional mirrored create+delete).
//! The threads exercise the server's actual per-component locks; the
//! *costs* are settled in virtual time with two independent clocks:
//!
//! * **CPU clock** — request handling and memory copies.  Each client
//!   lane captures its own charges ([`amoeba_sim::capture`]); lanes run
//!   in parallel, so the CPU-side makespan is the slowest single lane.
//! * **Disk clock** — the mirrored pair is one serial resource.  Every
//!   operation's captured disk component (already max-of-replicas,
//!   thanks to the parallel mirror writes) is summed into a total disk
//!   demand that cannot be parallelised away.
//!
//! `makespan = max(slowest lane, total disk demand)` and aggregate read
//! throughput is `reads / makespan`.  Cache-hit reads take only shared
//! locks and charge only CPU, so the read-mostly mix scales with the
//! client count until the creates' disk demand saturates the spindles —
//! which the 16-client row shows.  The network medium is excluded: it
//! is a property of the wire, not of the server's locking, and is
//! measured separately in ABL7 (`ablation_netload`).
//!
//! Exit status is non-zero if the headline invariant goes red:
//! aggregate read throughput must never drop below the single-client
//! baseline, and 4 clients must reach at least 2× it (the sharded read
//! path scales until the spindles bind).
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_concurrency
//! ```

use std::sync::Arc;

use bytes::Bytes;

use amoeba_cap::{Capability, Port};
use amoeba_disk::{BlockDevice, MirroredDisk, RamDisk, SimDisk};
use amoeba_sim::{capture, DetRng, Histogram, HwProfile, Nanos, SimClock};
use bullet_core::{BulletConfig, BulletServer};

/// Operations per client lane.
const OPS: usize = 512;
/// One create+delete pair every this many operations (the rest read).
const WRITE_EVERY: usize = 256;
/// Shared pool of cache-resident files.
const POOL: usize = 64;
/// Size of each pool file and of the created files.
const FILE_SIZE: usize = 4096;

struct LaneResult {
    /// Sum of all per-op costs charged by this lane (CPU + its own disk).
    total: Nanos,
    /// Disk component across the lane's ops (serial-resource demand).
    disk: Nanos,
    reads: u64,
}

/// A Bullet server whose disks charge a *separate* clock, so captured
/// per-op costs can be split into CPU and disk components.
fn build(hw: HwProfile) -> (Arc<BulletServer>, SimClock) {
    let cpu_clock = SimClock::new();
    let disk_clock = SimClock::new();
    let replicas: Vec<Arc<dyn BlockDevice>> = (0..2)
        .map(|_| {
            Arc::new(SimDisk::new(
                RamDisk::new(1024, 65_536),
                disk_clock.clone(),
                hw.disk,
            )) as Arc<dyn BlockDevice>
        })
        .collect();
    let storage = MirroredDisk::new(replicas).expect("replica set is valid");
    let cfg = BulletConfig {
        port: Port::from_u64(0xb1e7),
        min_inodes: 2048,
        cache_capacity: 12 << 20,
        rnode_slots: 2048,
        block_size: 1024,
        disk_blocks: 65_536,
        clock: cpu_clock,
        cpu: hw.cpu,
        scheme_seed: 0x5eed,
        scheme: bullet_core::SchemeKind::Mac,
        rng_seed: 0xfee1,
        repair: bullet_core::table::RepairPolicy::Fail,
        max_age: 8,
        eviction: bullet_core::EvictionPolicy::Lru,
        eviction_seed: 0,
        segment_size: 64 * 1024,
        pipeline: true,
        readahead_segments: u32::MAX,
        placement: bullet_core::Placement::FirstFit,
        trace: amoeba_sim::TraceConfig::off(),
        log_blocks: 0,
        log_batch_files: 32,
        log_batch_bytes: 256 * 1024,
        log_linger: amoeba_sim::Nanos::from_us(250),
        telemetry: amoeba_sim::TelemetryConfig::off(),
        accounting: bullet_core::ClientAccounting::off(),
        shard: bullet_core::ShardSlot::solo(),
        archive_blocks: 0,
        tier_high_water_pct: 75,
        tier_cold_age: 1,
        maint_idle_request_delta: 0,
        maint_moves_per_tick: 1,
    };
    let server = Arc::new(BulletServer::format_on(cfg, storage).expect("formatting succeeds"));
    (server, disk_clock)
}

fn run_lane(
    server: &BulletServer,
    disk_clock: &SimClock,
    pool: &[Capability],
    hw: &HwProfile,
    seed: u64,
    hist: &Histogram,
) -> LaneResult {
    let mut rng = DetRng::new(seed);
    let mut total = Nanos::ZERO;
    let mut disk = Nanos::ZERO;
    let mut reads = 0u64;
    for op in 0..OPS {
        if op % WRITE_EVERY == WRITE_EVERY / 2 {
            let data = Bytes::from(vec![seed as u8; FILE_SIZE]);
            let (cap, log) = capture(|| {
                let cap = server.create(data, 2).expect("create fits the rig");
                server.delete(&cap).expect("delete own file");
                cap
            });
            let _ = cap;
            total += log.total();
            disk += log.charged_to(disk_clock);
        } else {
            let cap = &pool[rng.next_below(pool.len() as u64) as usize];
            let (data, log) = capture(|| server.read(cap).expect("pool file exists"));
            // The client's own copy of the received bytes.
            let cost = log.total() + hw.cpu.memcpy(data.len() as u64);
            hist.record(cost);
            total += cost;
            disk += log.charged_to(disk_clock);
            reads += 1;
        }
    }
    LaneResult { total, disk, reads }
}

fn main() {
    let hw = HwProfile::amoeba_1989();
    println!("ABL10 — aggregate read throughput vs concurrent clients");
    println!("  (cache-hot read-mostly mix: {POOL} pooled {FILE_SIZE}-byte files,");
    println!("   1 mirrored create+delete per {WRITE_EVERY} ops, {OPS} ops/client)");
    println!();
    println!(
        "  {:>8}  {:>10}  {:>12}  {:>9}  {:>9}  {:>9}  {:>10}",
        "Clients", "Makespan", "Reads/s", "Speedup", "p50 (ms)", "p99 (ms)", "Bound by"
    );

    let mut base_rate = 0.0f64;
    let mut reds: Vec<String> = Vec::new();
    for &clients in &[1usize, 2, 4, 8, 16] {
        let (server, disk_clock) = build(hw);
        // Populate and warm the pool: every file cache-resident.
        let pool: Vec<Capability> = (0..POOL)
            .map(|i| {
                server
                    .create(Bytes::from(vec![i as u8; FILE_SIZE]), 2)
                    .expect("pool create")
            })
            .collect();
        for cap in &pool {
            server.read(cap).expect("pool warm-up");
        }

        let hist = Histogram::new();
        let lanes: Vec<LaneResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let server = &server;
                    let pool = &pool;
                    let disk_clock = &disk_clock;
                    let hist = &hist;
                    let hw = &hw;
                    s.spawn(move || run_lane(server, disk_clock, pool, hw, 0x1000 + c as u64, hist))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let slowest_lane = lanes.iter().map(|l| l.total).max().unwrap_or(Nanos::ZERO);
        let disk_demand = lanes.iter().fold(Nanos::ZERO, |a, l| a + l.disk);
        let makespan = slowest_lane.max(disk_demand);
        let reads: u64 = lanes.iter().map(|l| l.reads).sum();
        let rate = reads as f64 / (makespan.as_ns() as f64 / 1e9);
        if clients == 1 {
            base_rate = rate;
        }
        if rate < base_rate {
            reds.push(format!(
                "{clients} clients read {rate:.0}/s, below the 1-client baseline {base_rate:.0}/s"
            ));
        }
        if clients == 4 && rate < 2.0 * base_rate {
            reds.push(format!(
                "4 clients read {rate:.0}/s, under 2x the 1-client baseline {base_rate:.0}/s"
            ));
        }
        println!(
            "  {:>8}  {:>8.0}ms  {:>12.0}  {:>8.1}x  {:>9.1}  {:>9.1}  {:>10}",
            clients,
            makespan.as_ms_f64(),
            rate,
            rate / base_rate,
            hist.quantile(0.5).as_ms_f64(),
            hist.quantile(0.99).as_ms_f64(),
            if disk_demand > slowest_lane {
                "disk"
            } else {
                "cpu lane"
            }
        );

        if clients == 16 {
            println!();
            println!("  lock acquisitions at 16 clients (contended in parentheses):");
            let stats = server.lock_stats();
            let contended = |name: &str| {
                stats
                    .iter()
                    .find(|(k, _)| *k == format!("lock_contended_{name}"))
                    .map_or(0, |&(_, v)| v)
            };
            for (k, v) in &stats {
                if let Some(name) = k.strip_prefix("lock_") {
                    if !name.starts_with("contended_") {
                        println!("    {:<22} {:>8}  ({})", name, v, contended(name));
                    }
                }
            }
        }
    }
    println!();
    println!("Cache-hit reads take only shared locks and charge no disk time, so");
    println!("aggregate read throughput grows with the client count; the occasional");
    println!("mirrored creates are the serial resource that finally binds it.");
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL10 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
