//! Ablation ABL8 — the price of replication: CREATE+DELETE with one,
//! two (the paper's configuration), and three mirrored disks.
//!
//! Exit status is non-zero if the headline invariant goes red: the
//! parallel replica writes must keep 3 disks within 25 % of 1 disk at
//! every size ("a relatively small increment", §3).
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_mirror
//! ```

use amoeba_sim::HwProfile;
use bullet_bench::rig::BulletRig;
use bullet_bench::table::{size_label, SIZES};

fn main() {
    let mut reds: Vec<String> = Vec::new();
    println!("ABL8 — CREATE+DELETE delay (ms) by replica count (P-FACTOR = disks)");
    println!(
        "  {:>12}  {:>10}  {:>10}  {:>10}",
        "File Size", "1 disk", "2 disks", "3 disks"
    );
    for &size in &SIZES {
        let mut cols = Vec::new();
        for disks in 1..=3usize {
            let rig = BulletRig::with_options(disks, HwProfile::amoeba_1989(), 12 << 20);
            // Full durability on every configured disk.
            let warm = rig
                .client
                .create(bytes::Bytes::new(), disks as u32)
                .expect("warm");
            rig.client.delete(&warm).expect("warm delete");
            let data = bytes::Bytes::from(vec![3u8; size]);
            let t0 = rig.clock.now();
            let cap = rig.client.create(data, disks as u32).expect("create");
            rig.client.delete(&cap).expect("delete");
            cols.push((rig.clock.now() - t0).as_ms_f64());
        }
        println!(
            "  {:>12}  {:>10.1}  {:>10.1}  {:>10.1}",
            size_label(size),
            cols[0],
            cols[1],
            cols[2]
        );
        if cols[2] > cols[0] * 1.25 {
            reds.push(format!(
                "3-disk create+delete {:.1} ms more than 25% over 1-disk {:.1} ms at {}",
                cols[2],
                cols[0],
                size_label(size)
            ));
        }
    }
    println!();
    println!("Replica writes are issued in parallel and the create returns when the");
    println!("slowest disk finishes, so extra replicas add *disk-time demand* (one");
    println!("write per spindle, visible under load — see ablation_concurrency) but");
    println!("almost no delay: \"a relatively small increment in total file server");
    println!("cost\" (§3) buys the availability story of the fault_tolerance example.");
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL8 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
