//! Ablation ABL17 — flight recorder, MONITOR telemetry, and the SLO
//! watchdog at event-engine scale.
//!
//! Runs the [`bullet_bench::monitor`] triple — a bare 10k-client evsim
//! cell, the same cell with the flight recorder sampling every second of
//! virtual time, and the same cell again with a mid-run fault burst (a
//! lossy wire plus one failed mirror replica) under an armed watchdog
//! and per-client accounting.  Like ABL16, the whole triple is run a
//! *second* time and the rendered outcome table (which embeds every
//! run's FNV-1a timeline digest) must come back byte-identical.
//!
//! The run is judged against the PR's headline criteria:
//!
//! * overhead: the instrumented clean run's timeline digest equals the
//!   bare run's — sampling is free in virtual time, 0 % ≤ the committed
//!   2 % throughput budget;
//! * injection: the burst actually perturbs the timeline (digest
//!   differs, retries and failovers both non-zero);
//! * detection: the watchdog's first Degraded event lands within one
//!   sampling period of the burst opening;
//! * recovery: the watchdog closes the window (≥ 1 Recovered event)
//!   after the burst ends;
//! * replay: the triple is deterministic, byte for byte.
//!
//! Exit status is non-zero if any criterion goes red or the replay
//! diverges.  Artifacts: `results/ablation_monitor.txt` (the table),
//! `results/flight_recorder.jsonl` (every ring of the burst run, one
//! JSON object per sample), and `results/flight_recorder_trace.json`
//! (the same rings as Chrome `"ph": "C"` counter events — load in
//! Perfetto / `chrome://tracing`).
//!
//! ```text
//! cargo run --release -p bullet-bench --bin ablation_monitor            # PR gate
//! cargo run --release -p bullet-bench --bin ablation_monitor -- --seed 7
//! ```

use bullet_bench::evsim::PR_SEED;
use bullet_bench::monitor::{outcome_table, run_monitor, MonitorConfig};

fn usage() -> ! {
    eprintln!("usage: ablation_monitor [--seed N]");
    std::process::exit(2);
}

fn main() {
    let mut seed = PR_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let n = args.next().unwrap_or_else(|| usage());
                seed = n.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    let wall = std::time::Instant::now();
    let cfg = MonitorConfig::gate(seed);
    println!(
        "ABL17 — flight recorder & SLO watchdog (seed {seed}, {} clients, period {} ms, run twice)",
        cfg.base.clients,
        cfg.period.as_us() / 1_000
    );
    println!();

    let run = run_monitor(&cfg);
    let o = &run.outcome;
    let table = outcome_table(o);
    print!("{table}");
    println!();

    // The determinism witness: the same triple, replayed, must render
    // the same bytes (three timeline digests, the watchdog's event
    // counts, and the accounting table all feed the comparison).
    let replay = outcome_table(&run_monitor(&cfg).outcome);
    let deterministic = replay == table;
    println!(
        "replay determinism: {}",
        if deterministic {
            "outcome table and timeline digests byte-identical"
        } else {
            "DIVERGED"
        }
    );

    let mut reds: Vec<String> = Vec::new();

    // 1. Overhead: sampling must be free in virtual time.
    let overhead_green = o.bare.digest == o.clean.digest;
    if !overhead_green {
        reds.push(format!(
            "instrumented digest {:016x} != bare {:016x}: the recorder moved the timeline",
            o.clean.digest, o.bare.digest
        ));
    }

    // 2. Injection: the burst must actually degrade the system.
    let injection_green =
        o.burst.digest != o.bare.digest && o.burst.retries > 0 && o.burst.failovers > 0;
    if !injection_green {
        reds.push(format!(
            "fault burst had no effect ({} retries, {} failovers)",
            o.burst.retries, o.burst.failovers
        ));
    }

    // 3. Detection: the watchdog flags the burst within one period.
    let detection_green = o.slo_degraded >= 1 && o.detection_lag_us <= cfg.period.as_us();
    if !detection_green {
        reds.push(format!(
            "detection lag {} us exceeds one period ({} us) or no degraded event",
            o.detection_lag_us,
            cfg.period.as_us()
        ));
    }

    // 4. Recovery: the watchdog must close the degradation window.
    let recovery_green = o.slo_recovered >= 1;
    if !recovery_green {
        reds.push("watchdog never emitted a Recovered event".to_string());
    }

    let greens = [
        overhead_green,
        injection_green,
        detection_green,
        recovery_green,
        deterministic,
    ]
    .iter()
    .filter(|&&g| g)
    .count();
    println!("criteria: {greens} of 5 green");
    let secs = wall.elapsed().as_secs_f64();
    println!("wall clock: {secs:.1} s for both runs");

    std::fs::create_dir_all("results").expect("results dir");
    let mut artifact = String::new();
    artifact.push_str(&format!(
        "ABL17 flight recorder & SLO watchdog (seed {seed}, {} clients, period {} ms)\n",
        cfg.base.clients,
        cfg.period.as_us() / 1_000
    ));
    artifact.push_str(&table);
    artifact.push_str(&format!(
        "replay_deterministic={deterministic} red_criteria={}\n",
        reds.len()
    ));
    std::fs::write("results/ablation_monitor.txt", artifact).expect("write artifact");
    println!("wrote results/ablation_monitor.txt");

    std::fs::write(
        "results/flight_recorder.jsonl",
        run.telemetry.export_jsonl(),
    )
    .expect("write flight recorder dump");
    println!("wrote results/flight_recorder.jsonl");
    std::fs::write(
        "results/flight_recorder_trace.json",
        run.telemetry.export_chrome(),
    )
    .expect("write chrome trace");
    println!("wrote results/flight_recorder_trace.json (load in Perfetto / chrome://tracing)");

    if !deterministic {
        eprintln!("ABL17 FAILED: replay diverged from the first run");
        std::process::exit(1);
    }
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL17 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
