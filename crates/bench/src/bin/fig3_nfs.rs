//! Regenerates Fig. 3 of the paper: delay and bandwidth of the SUN
//! NFS-like baseline for READ and CREATE, on the same simulated testbed.
//!
//! ```text
//! cargo run -p bullet-bench --bin fig3_nfs
//! ```

use bullet_bench::rig::NfsRig;
use bullet_bench::table::{measure_nfs, print_tables};

fn main() {
    let rig = NfsRig::paper_1989();
    let rows = measure_nfs(&rig);
    print_tables(
        "Fig. 3 — Performance of the SUN NFS baseline (simulated 1989 testbed)",
        "CREATE",
        &rows,
    );
    println!("Protocol: client caching disabled (the paper's lockf trick); one RPC per");
    println!("8 KB block; server has a 3 MB write-through buffer cache and ONE disk.");
}
