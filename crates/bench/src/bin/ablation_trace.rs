//! Ablation ABL12 — span-tracing decomposition of the streaming paths.
//!
//! Re-runs the two ABL11 headliners — the cold pipelined 1 MB READ and
//! the mirrored 1 MB CREATE — with the simulated-clock span tracer on,
//! and decomposes each end-to-end delay into its span tree: RPC locate
//! and residual wire charges, per-segment pipeline lanes (disk, wire,
//! memcpy), mirrored replica writes, cache events, and lock
//! acquisitions.  Three invariants gate the run (non-zero exit on
//! violation):
//!
//! 1. the root `rpc.trans` span covers exactly the measured end-to-end
//!    simulated delay;
//! 2. the union of the tree's *leaf* spans equals the root duration —
//!    every charged nanosecond is attributed to exactly one leaf
//!    (overlap counted once, and no gap hides an unattributed charge);
//! 3. tracing is free: an identically-configured rig with tracing
//!    disabled charges bit-identical simulated time.
//!
//! Artifacts: `results/ablation_trace.jsonl` (one span per line) and
//! `results/ablation_trace.trace.json` (Chrome trace-event format — load
//! it at <https://ui.perfetto.dev> to see the lane overlap).
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_trace
//! ```

use amoeba_sim::trace::{lane_utilization, leaf_coverage, leaf_spans};
use amoeba_sim::{HwProfile, Nanos, SpanRecord, TraceConfig};
use bullet_bench::rig::BulletRig;
use bytes::Bytes;

const MB: usize = 1 << 20;

fn traced_rig() -> BulletRig {
    BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |cfg| {
        cfg.trace = TraceConfig::enabled(cfg.clock.clone());
    })
}

/// Prints the span tree under `id`, skipping zero-width instants (lock
/// and cache events) but counting them per parent.
fn print_tree(spans: &[SpanRecord], id: u64, depth: usize) {
    let s = spans.iter().find(|s| s.id == id).expect("span exists");
    let mut tag = String::new();
    for key in ["lane", "segment", "replica", "op", "bytes"] {
        if let Some(v) = s.attr(key) {
            use amoeba_sim::AttrValue;
            let rendered = match v {
                AttrValue::U64(n) => format!("{key}={n}"),
                AttrValue::Bool(b) => format!("{key}={b}"),
                AttrValue::Str(t) => format!("{key}={t}"),
            };
            tag.push(' ');
            tag.push_str(&rendered);
        }
    }
    let instants = spans
        .iter()
        .filter(|c| c.parent == Some(id) && c.duration() == Nanos::ZERO)
        .count();
    if instants > 0 {
        tag.push_str(&format!(" (+{instants} instants)"));
    }
    println!(
        "  {:indent$}{:<24} {:>9.3} ms  [{:>9.3} .. {:>9.3}]{}",
        "",
        s.name,
        s.duration().as_ms_f64(),
        s.start.as_ms_f64(),
        s.end.as_ms_f64(),
        tag,
        indent = depth * 2,
    );
    for c in spans.iter().filter(|c| c.parent == Some(id)) {
        if c.duration() > Nanos::ZERO {
            print_tree(spans, c.id, depth + 1);
        }
    }
}

/// Checks invariants 1 and 2 for the last root span of `spans`, printing
/// the decomposition; returns the number of violations.
fn decompose(title: &str, spans: &[SpanRecord], elapsed: Nanos) -> u32 {
    let root = spans
        .iter()
        .rfind(|s| s.parent.is_none() && s.name == "rpc.trans")
        .expect("the transaction records a root span");
    let mut violations = 0;
    println!("  {title}: end-to-end {:.3} ms", elapsed.as_ms_f64());
    println!();
    print_tree(spans, root.id, 1);
    println!();
    if root.duration() != elapsed {
        eprintln!(
            "  VIOLATION: root span {:.3} ms != measured {:.3} ms",
            root.duration().as_ms_f64(),
            elapsed.as_ms_f64()
        );
        violations += 1;
    }
    let covered = leaf_coverage(spans, root.id);
    let leaves = leaf_spans(spans, root.id).len();
    println!(
        "  leaf coverage: {leaves} leaves cover {:.3} ms of {:.3} ms",
        covered.as_ms_f64(),
        root.duration().as_ms_f64()
    );
    if covered != root.duration() {
        eprintln!("  VIOLATION: leaf spans do not tile the root — unattributed time");
        violations += 1;
    }
    let lanes = lane_utilization(spans, root.id);
    if !lanes.is_empty() {
        println!("  lane utilization (busy / end-to-end):");
        for l in &lanes {
            println!(
                "    {:<12} {:>9.3} ms  {:>5.1}%",
                l.lane,
                l.busy.as_ms_f64(),
                l.utilization * 100.0
            );
        }
    }
    println!();
    violations
}

fn main() {
    let mut violations = 0u32;
    println!("ABL12 — simulated-clock span tracing on the streaming paths (1 MB, 64 KB segments)");
    println!();

    let rig = traced_rig();
    let cap = rig
        .client
        .create(Bytes::from(vec![0x11; MB]), 2)
        .expect("create fits the rig");
    rig.client.read(&cap).expect("locate + cache warm-up");
    rig.server.clear_cache();

    rig.tracer.clear();
    let t0 = rig.clock.now();
    rig.client.read(&cap).expect("measured cold read");
    let cold_read = rig.clock.now() - t0;
    violations += decompose("cold pipelined READ", &rig.tracer.snapshot(), cold_read);

    // The create tree is appended to the same tracer so one pair of
    // artifacts carries both decompositions.
    let t0 = rig.clock.now();
    let cap2 = rig
        .client
        .create(Bytes::from(vec![0x22; MB]), 2)
        .expect("measured create");
    let create = rig.clock.now() - t0;
    let spans = rig.tracer.snapshot();
    violations += decompose("mirrored CREATE (P=2)", &spans, create);

    std::fs::create_dir_all("results").expect("results dir");
    let jsonl = rig.tracer.export_jsonl();
    let chrome = rig.tracer.export_chrome();
    // Both artifacts must be well-formed JSON — checked here rather than
    // by an external tool, so the gate travels with the binary.
    for (what, line) in jsonl.lines().enumerate() {
        if let Err(e) = bullet_bench::check::json_valid(line) {
            eprintln!("  VIOLATION: ablation_trace.jsonl line {}: {e}", what + 1);
            violations += 1;
            break;
        }
    }
    if let Err(e) = bullet_bench::check::json_valid(&chrome) {
        eprintln!("  VIOLATION: ablation_trace.trace.json: {e}");
        violations += 1;
    }
    std::fs::write("results/ablation_trace.jsonl", &jsonl).expect("write jsonl");
    std::fs::write("results/ablation_trace.trace.json", &chrome).expect("write chrome trace");
    println!(
        "  wrote results/ablation_trace.jsonl ({} spans) and results/ablation_trace.trace.json (both JSON-validated)",
        spans.len()
    );
    rig.client.delete(&cap2).expect("cleanup");
    rig.client.delete(&cap).expect("cleanup");

    // Invariant 3: tracing must not change what the run costs.
    let run = |traced: bool| {
        let rig = BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |cfg| {
            if traced {
                cfg.trace = TraceConfig::enabled(cfg.clock.clone());
            }
        });
        let cap = rig
            .client
            .create(Bytes::from(vec![0x33; MB]), 2)
            .expect("create");
        rig.client.read(&cap).expect("warm read");
        rig.server.clear_cache();
        rig.client.read(&cap).expect("cold read");
        rig.client.delete(&cap).expect("delete");
        rig.clock.now()
    };
    let (off, on) = (run(false), run(true));
    println!(
        "  disabled-tracing identity: off {:.3} ms, on {:.3} ms",
        off.as_ms_f64(),
        on.as_ms_f64()
    );
    if off != on {
        eprintln!("  VIOLATION: tracing changed the simulated cost");
        violations += 1;
    }
    println!();
    println!("The pipeline lanes make the overlap visible: on the cold read the");
    println!("disk lane stays busy while the wire lane streams the previous");
    println!("segment, and the leaf-coverage identity proves the decomposition");
    println!("accounts for every simulated nanosecond of the delay.");

    if violations > 0 {
        eprintln!("ABL12 FAILED: {violations} violation(s)");
        std::process::exit(1);
    }
}
