//! Ablation ABL14 — seek-aware disk scheduling: FIFO vs SCAN vs SPTF.
//!
//! Drives the closed-loop 8-client mixed workload of
//! [`bullet_bench::schedbench`] through the deterministic virtual-time
//! arm simulation under each scheduling policy, then sweeps the
//! adjacent-extent coalescing knee on concurrent sequential creates.
//! Like ABL13, the whole matrix is run a *second* time and the rendered
//! outcome table must come back byte-identical: the request schedule,
//! the coalescing decisions, and the simulated arm travel are all pure
//! functions of the seed.
//!
//! The run is judged against the PR's headline criteria:
//!
//! * SCAN and SPTF both beat FIFO on total seek blocks **and** on
//!   aggregate read bandwidth;
//! * deadline aging keeps the better seek-aware p99 within 1.25x of
//!   FIFO's (seek-first ordering must not starve the unlucky corner of
//!   the disk);
//! * coalescing never issues more physical I/Os than running without
//!   it, and collapses 8-block sequential segments at least 2x.
//!
//! Exit status is non-zero if any criterion goes red or the replay
//! diverges.  Artifacts: `results/ablation_scheduler.txt` (tables) and
//! `results/ablation_scheduler_queue.jsonl` (the per-I/O queue trace of
//! the first run, one JSON object per physical transfer).
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_scheduler            # PR seed
//! cargo run -p bullet-bench --bin ablation_scheduler -- --seed 7
//! ```

use bullet_bench::schedbench::{
    coalesce_knee, knee_table, outcome_table, run_policies, trace_row, PR_SEED,
};

fn usage() -> ! {
    eprintln!("usage: ablation_scheduler [--seed N]");
    std::process::exit(2);
}

fn main() {
    let mut seed = PR_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let n = args.next().unwrap_or_else(|| usage());
                seed = n.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    println!("ABL14 — seek-aware disk scheduling (seed {seed}, run twice)");
    println!();

    let runs = run_policies(seed);
    let table = outcome_table(&runs);
    print!("{table}");
    println!();

    let knee = coalesce_knee();
    let knee_str = knee_table(&knee);
    println!("coalescing knee — 4 concurrent sequential 64-block creates:");
    print!("{knee_str}");
    println!();

    // The determinism witness: the same matrix, replayed, must render
    // the same bytes.
    let replay = outcome_table(&run_policies(seed));
    let deterministic = replay == table;
    println!(
        "replay determinism: {}",
        if deterministic {
            "outcome table byte-identical"
        } else {
            "DIVERGED"
        }
    );

    // Headline criteria — five booleans, one per criterion, so a
    // criterion that fails on several knee rows still deflates the green
    // count by exactly one.  `reds` carries the detailed messages.
    let (fifo, scan, sptf) = (&runs[0].outcome, &runs[1].outcome, &runs[2].outcome);
    let mut reds: Vec<String> = Vec::new();
    let seek_green = scan.seek_blocks < fifo.seek_blocks && sptf.seek_blocks < fifo.seek_blocks;
    if !seek_green {
        reds.push(format!(
            "seek blocks not reduced: fifo {} scan {} sptf {}",
            fifo.seek_blocks, scan.seek_blocks, sptf.seek_blocks
        ));
    }
    let bw_green = scan.read_mb_s > fifo.read_mb_s && sptf.read_mb_s > fifo.read_mb_s;
    if !bw_green {
        reds.push(format!(
            "read bandwidth not improved: fifo {:.2} scan {:.2} sptf {:.2} MB/s",
            fifo.read_mb_s, scan.read_mb_s, sptf.read_mb_s
        ));
    }
    let best_p99 = scan.p99_ms.min(sptf.p99_ms);
    let p99_green = best_p99 <= fifo.p99_ms * 1.25;
    if !p99_green {
        reds.push(format!(
            "p99 bound violated: fifo {:.2} ms, best seek-aware {:.2} ms (bound {:.2})",
            fifo.p99_ms,
            best_p99,
            fifo.p99_ms * 1.25
        ));
    }
    let mut never_more_green = true;
    for r in &knee {
        if r.issued_on > r.issued_off {
            never_more_green = false;
            reds.push(format!(
                "coalescing issued more I/Os at {}-block segments: on {} off {}",
                r.segment_blocks, r.issued_on, r.issued_off
            ));
        }
    }
    let mut knee8_green = true;
    if let Some(r8) = knee.iter().find(|r| r.segment_blocks == 8) {
        if r8.issued_on * 2 > r8.issued_off {
            knee8_green = false;
            reds.push(format!(
                "8-block segments should coalesce at least 2x: on {} off {}",
                r8.issued_on, r8.issued_off
            ));
        }
    }
    let greens = [
        seek_green,
        bw_green,
        p99_green,
        never_more_green,
        knee8_green,
    ]
    .iter()
    .filter(|&&g| g)
    .count();
    println!("criteria: {greens} of 5 green");

    std::fs::create_dir_all("results").expect("results dir");
    let mut artifact = String::new();
    artifact.push_str(&format!("ABL14 seek-aware disk scheduling (seed {seed})\n"));
    artifact.push_str(&table);
    artifact.push_str("coalescing knee\n");
    artifact.push_str(&knee_str);
    artifact.push_str(&format!(
        "replay_deterministic={deterministic} red_criteria={}\n",
        reds.len()
    ));
    std::fs::write("results/ablation_scheduler.txt", artifact).expect("write artifact");
    println!("wrote results/ablation_scheduler.txt");

    let mut trace = String::new();
    for run in &runs {
        for sv in &run.services {
            trace.push_str(&trace_row(run.outcome.policy, sv));
            trace.push('\n');
        }
    }
    std::fs::write("results/ablation_scheduler_queue.jsonl", trace).expect("write queue trace");
    println!("wrote results/ablation_scheduler_queue.jsonl");

    if !deterministic {
        eprintln!("ABL14 FAILED: replay diverged from the first run");
        std::process::exit(1);
    }
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL14 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
