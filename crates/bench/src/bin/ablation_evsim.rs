//! Ablation ABL16 — cache replacement at event-engine scale:
//! LRU vs FIFO vs SegmentedLRU vs 2Q, 10k clients over 1M files.
//!
//! Runs the [`bullet_bench::evsim`] matrix — every policy under the Zipf
//! workload and under the scan-injection variant (10 % of clients
//! streaming sequential cold files through the cache) — on the
//! virtual-time event engine, with the real `FileCache` in the loop.
//! Like ABL13/ABL14, the whole matrix is run a *second* time and the
//! rendered outcome table (which embeds each run's FNV-1a timeline
//! digest) must come back byte-identical.
//!
//! The run is judged against the PR's headline criteria:
//!
//! * scale: every client completes every op — ≥ 10k clients, ≥ 500k
//!   files, driven through one binary heap;
//! * replay: the matrix is deterministic, byte for byte;
//! * scan resistance: the better of SegmentedLRU/2Q beats LRU hit-rate
//!   under scan injection by at least [`SCAN_MARGIN`];
//! * Zipf parity: without scans the four policies stay within
//!   [`ZIPF_PARITY`] of LRU (the ABL9 null result must survive scale —
//!   scan resistance may not cost the common case);
//! * tail latency: the better segmented policy's scan p99 does not
//!   exceed LRU's (fewer misses ⇒ shorter disk queues).
//!
//! Exit status is non-zero if any criterion goes red or the replay
//! diverges.  Artifacts: `results/ablation_evsim.txt` (the table) and
//! `results/ablation_evsim_curve.jsonl` (windowed hit-rate curves of the
//! first run, one JSON object per window).
//!
//! ```text
//! cargo run --release -p bullet-bench --bin ablation_evsim             # PR gate
//! cargo run --release -p bullet-bench --bin ablation_evsim -- --seed 7
//! cargo run --release -p bullet-bench --bin ablation_evsim -- --clients 100000
//! ```

use bullet_bench::evsim::{
    curve_row, outcome_table, run, EvsimConfig, EvsimRun, POLICIES, PR_SEED,
};

/// The committed scan-resistance margin: best(SLRU, 2Q) must beat LRU's
/// scan hit-rate by at least this much (absolute hit-rate delta).
/// Measured at the PR seed: SLRU 0.3152 vs LRU 0.2761, a delta of
/// ≈ 0.039 — about 30 % above this bound.  The matrix is a pure function
/// of the seed, so the gate is deterministic, not statistical.
pub const SCAN_MARGIN: f64 = 0.03;

/// Zipf-parity band: without scan pollution no policy may fall more than
/// this far below LRU's hit rate.
pub const ZIPF_PARITY: f64 = 0.05;

fn usage() -> ! {
    eprintln!("usage: ablation_evsim [--seed N] [--clients N]");
    std::process::exit(2);
}

fn run_matrix(seed: u64, clients: usize) -> Vec<EvsimRun> {
    let mut runs = Vec::new();
    for workload in ["zipf", "scan"] {
        for policy in POLICIES {
            let mut cfg = EvsimConfig::gate(policy, workload, seed);
            cfg.clients = clients;
            runs.push(run(&cfg));
        }
    }
    runs
}

fn main() {
    let mut seed = PR_SEED;
    let mut clients = bullet_bench::evsim::CLIENTS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let n = args.next().unwrap_or_else(|| usage());
                seed = n.parse().unwrap_or_else(|_| usage());
            }
            "--clients" => {
                let n = args.next().unwrap_or_else(|| usage());
                clients = n.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    let wall = std::time::Instant::now();
    println!("ABL16 — cache replacement at event-engine scale (seed {seed}, {clients} clients, run twice)");
    println!();

    let runs = run_matrix(seed, clients);
    let table = outcome_table(&runs);
    print!("{table}");
    println!();

    // The determinism witness: the same matrix, replayed, must render
    // the same bytes (the table embeds each run's timeline digest, so a
    // single reordered event anywhere in ~10M flips it).
    let replay = outcome_table(&run_matrix(seed, clients));
    let deterministic = replay == table;
    println!(
        "replay determinism: {}",
        if deterministic {
            "outcome table and timeline digests byte-identical"
        } else {
            "DIVERGED"
        }
    );

    let find = |workload: &str, policy: &str| {
        &runs
            .iter()
            .find(|r| r.outcome.workload == workload && r.outcome.policy == policy)
            .expect("matrix covers all cells")
            .outcome
    };
    let mut reds: Vec<String> = Vec::new();

    // 1. Scale: every client completed every op, at the demanded scale.
    let mut scale_green = clients >= 10_000;
    for r in &runs {
        let o = &r.outcome;
        let scanners = if o.workload == "scan" {
            o.clients as u64 / bullet_bench::evsim::SCAN_DENOM as u64
        } else {
            0
        };
        let ops = bullet_bench::evsim::OPS_PER_CLIENT as u64;
        let expect = (o.clients as u64 - scanners) * ops
            + scanners * ops * bullet_bench::evsim::SCAN_BURST as u64;
        if o.reads != expect || o.files < 500_000 {
            scale_green = false;
            reds.push(format!(
                "{}/{}: {} reads (expected {}), {} files",
                o.workload, o.policy, o.reads, expect, o.files
            ));
        }
    }

    // 2. Scan resistance: the headline.
    let lru_scan = find("scan", "lru");
    let slru_scan = find("scan", "slru");
    let twoq_scan = find("scan", "2q");
    let best_rate = slru_scan.hit_rate.max(twoq_scan.hit_rate);
    let margin_green = best_rate >= lru_scan.hit_rate + SCAN_MARGIN;
    if !margin_green {
        reds.push(format!(
            "scan margin not met: lru {:.4}, best segmented {:.4}, required +{SCAN_MARGIN}",
            lru_scan.hit_rate, best_rate
        ));
    }

    // 3. Zipf parity: scan resistance may not cost the common case.
    let lru_zipf = find("zipf", "lru").hit_rate;
    let mut parity_green = true;
    for policy in ["slru", "2q"] {
        let rate = find("zipf", policy).hit_rate;
        if rate + ZIPF_PARITY < lru_zipf {
            parity_green = false;
            reds.push(format!(
                "{policy} zipf hit rate {rate:.4} more than {ZIPF_PARITY} below lru {lru_zipf:.4}"
            ));
        }
    }

    // 4. Tail latency: fewer scan misses must shorten the disk queues.
    let best_p99 = slru_scan.p99_ms.min(twoq_scan.p99_ms);
    let p99_green = best_p99 <= lru_scan.p99_ms;
    if !p99_green {
        reds.push(format!(
            "scan p99 not improved: lru {:.1} ms, best segmented {:.1} ms",
            lru_scan.p99_ms, best_p99
        ));
    }

    let greens = [
        scale_green,
        deterministic,
        margin_green,
        parity_green,
        p99_green,
    ]
    .iter()
    .filter(|&&g| g)
    .count();
    println!("criteria: {greens} of 5 green");
    let secs = wall.elapsed().as_secs_f64();
    println!("wall clock: {secs:.1} s for both runs");

    std::fs::create_dir_all("results").expect("results dir");
    let mut artifact = String::new();
    artifact.push_str(&format!(
        "ABL16 cache replacement at event-engine scale (seed {seed}, {clients} clients)\n"
    ));
    artifact.push_str(&table);
    artifact.push_str(&format!(
        "replay_deterministic={deterministic} red_criteria={}\n",
        reds.len()
    ));
    std::fs::write("results/ablation_evsim.txt", artifact).expect("write artifact");
    println!("wrote results/ablation_evsim.txt");

    let mut curves = String::new();
    for r in &runs {
        for p in &r.curve {
            curves.push_str(&curve_row(&r.outcome, p));
            curves.push('\n');
        }
    }
    std::fs::write("results/ablation_evsim_curve.jsonl", curves).expect("write curve");
    println!("wrote results/ablation_evsim_curve.jsonl");

    if !deterministic {
        eprintln!("ABL16 FAILED: replay diverged from the first run");
        std::process::exit(1);
    }
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL16 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
