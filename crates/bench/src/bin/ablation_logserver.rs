//! Ablation ABL5 — the §2 log-file caveat: "each append to a log file
//! would require the whole file to be copied … for log files we have
//! implemented a separate server."
//!
//! Compares the cumulative simulated cost of N appends done naively
//! (`BULLET.APPEND`, a whole new file per append — quadratic total work)
//! against the log server's segment chain (linear).
//!
//! Exit status is non-zero if the headline invariant goes red: the log
//! server must beat the naive path in total, and read back every
//! appended byte.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_logserver
//! ```

use std::sync::Arc;

use amoeba_log::LogServer;
use amoeba_sim::Nanos;
use bullet_core::{BulletConfig, BulletServer};
use bytes::Bytes;

const APPENDS: usize = 400;
const ENTRY: usize = 256;
const REPORT_EVERY: usize = 80;

fn rig() -> (amoeba_sim::SimClock, Arc<BulletServer>) {
    let mut cfg = BulletConfig::small_test();
    cfg.disk_blocks = 32_768; // 16 MB
    cfg.cache_capacity = 8 << 20;
    cfg.min_inodes = 2048;
    cfg.rnode_slots = 2048;
    let clock = cfg.clock.clone();
    (
        clock,
        Arc::new(BulletServer::format(cfg, 2).expect("format")),
    )
}

fn main() {
    // Naive: BULLET.APPEND derives a whole new file per entry.
    let (clock_a, bullet_a) = rig();
    let mut naive_points = Vec::new();
    let mut cap = bullet_a.create(Bytes::new(), 1).expect("create");
    let t0 = clock_a.now();
    for i in 1..=APPENDS {
        let new = bullet_a.append(&cap, &[b'x'; ENTRY], 1).expect("append");
        bullet_a.delete(&cap).expect("retire old version");
        cap = new;
        if i % REPORT_EVERY == 0 {
            naive_points.push(clock_a.now() - t0);
        }
    }

    // Log server: segment chain, O(entry) per append.
    let (clock_b, bullet_b) = rig();
    let logs = LogServer::bootstrap(bullet_b).expect("bootstrap");
    let log = logs.create_log().expect("create log");
    let mut log_points = Vec::new();
    let t0 = clock_b.now();
    for i in 1..=APPENDS {
        logs.append(&log, &[b'x'; ENTRY]).expect("append");
        if i % REPORT_EVERY == 0 {
            log_points.push(clock_b.now() - t0);
        }
    }
    logs.checkpoint(&log).expect("final checkpoint");

    println!("ABL5 — cumulative cost of {ENTRY}-byte appends (simulated time)");
    println!(
        "  {:>8}  {:>18}  {:>18}  {:>8}",
        "appends", "naive BULLET (ms)", "log server (ms)", "ratio"
    );
    for (i, (naive, fast)) in naive_points.iter().zip(&log_points).enumerate() {
        let n = (i + 1) * REPORT_EVERY;
        let ratio = if fast.as_ns() == 0 {
            "   (tail in RAM)".to_string()
        } else {
            format!("{:>7.1}x", naive.as_ns() as f64 / fast.as_ns() as f64)
        };
        println!(
            "  {:>8}  {:>18.1}  {:>18.1}  {ratio}",
            n,
            naive.as_ms_f64(),
            fast.as_ms_f64(),
        );
    }

    let naive_total: Nanos = *naive_points.last().expect("points");
    let log_total: Nanos = *log_points.last().expect("points");
    println!();
    println!(
        "Total: naive {:.1} ms vs log server {:.1} ms — the gap grows with log length,",
        naive_total.as_ms_f64(),
        log_total.as_ms_f64()
    );
    println!("because each naive append rewrites the whole log to disk (twice, mirrored).");
    let read_back = logs.len(&log).expect("len");
    println!(
        "Log server sealed {} segments; read-back length {}.",
        logs.segment_count(&log).expect("count"),
        read_back
    );
    let mut red = false;
    if log_total >= naive_total {
        eprintln!(
            "ABL5 FAILED: log server total {:.1} ms not below naive {:.1} ms",
            log_total.as_ms_f64(),
            naive_total.as_ms_f64()
        );
        red = true;
    }
    if read_back != (APPENDS * ENTRY) as u64 {
        eprintln!(
            "ABL5 FAILED: read-back length {} != {} appended bytes",
            read_back,
            APPENDS * ENTRY
        );
        red = true;
    }
    if red {
        std::process::exit(1);
    }
}
