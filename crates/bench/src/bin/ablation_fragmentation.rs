//! Ablation ABL4 — the cost the paper consciously accepts: external
//! fragmentation of the contiguous data area under a realistic
//! create/delete churn, and what the "3 a.m." compaction buys back.
//!
//! Exit status is non-zero if the headline invariant goes red:
//! compaction must leave the free space in at most one hole (every free
//! block usable again).
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_fragmentation
//! ```

use std::sync::Arc;

use amoeba_disk::{BlockDevice, MirroredDisk, RamDisk, SimDisk};
use amoeba_sim::HwProfile;
use bullet_bench::workload::{WorkloadMix, WorkloadOp};
use bullet_core::{BulletConfig, BulletError, BulletServer};
use bytes::Bytes;

fn main() {
    let mut cfg = BulletConfig::small_test();
    cfg.disk_blocks = 16_384; // 8 MB data area: small enough to stress
    cfg.cache_capacity = 4 << 20;
    cfg.min_inodes = 1024;
    cfg.rnode_slots = 1024;
    let clock = cfg.clock.clone();
    let hw = HwProfile::amoeba_1989();
    let replicas: Vec<Arc<dyn BlockDevice>> = (0..2)
        .map(|_| {
            Arc::new(SimDisk::new(
                RamDisk::new(cfg.block_size, cfg.disk_blocks),
                clock.clone(),
                hw.disk,
            )) as Arc<dyn BlockDevice>
        })
        .collect();
    let storage = MirroredDisk::new(replicas).expect("mirror");
    let server = BulletServer::format_on(cfg, storage).expect("format");

    let mut mix = WorkloadMix::unix_mix(0xf4a6, 256 * 1024, 400);
    let mut caps = Vec::new();
    let mut failures_with_free_space = 0u64;

    println!("ABL4 — external fragmentation under churn (75% reads, 1984 size mix)");
    println!(
        "  {:>8}  {:>7}  {:>10}  {:>12}  {:>8}  {:>22}",
        "ops", "files", "free blks", "largest hole", "holes", "external fragmentation"
    );
    for step in 1..=12_000u64 {
        match mix.next_op() {
            WorkloadOp::Create(size) => {
                match server.create(Bytes::from(vec![7u8; size as usize]), 1) {
                    Ok(cap) => caps.push(cap),
                    Err(BulletError::NoSpace) => {
                        // The interesting case: free space exists but no
                        // hole is big enough for the file.
                        let r = server.disk_frag_report();
                        let block = server.describe_layout().0.block_size as u64;
                        if r.free * block > size {
                            failures_with_free_space += 1;
                        }
                    }
                    Err(BulletError::NoInodes) => {}
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            WorkloadOp::Read(n) => {
                if !caps.is_empty() {
                    let cap = caps[(n % caps.len() as u64) as usize];
                    server.read(&cap).expect("read live file");
                }
            }
            WorkloadOp::Delete(n) => {
                if !caps.is_empty() {
                    let cap = caps.swap_remove((n % caps.len() as u64) as usize);
                    server.delete(&cap).expect("delete live file");
                }
            }
        }
        if step % 2000 == 0 {
            let r = server.disk_frag_report();
            println!(
                "  {:>8}  {:>7}  {:>10}  {:>12}  {:>8}  {:>22.3}",
                step,
                server.live_files(),
                r.free,
                r.largest_hole,
                r.hole_count,
                r.external_fragmentation
            );
        }
    }

    println!();
    println!(
        "creates refused for lack of a large-enough hole (although free space existed): {failures_with_free_space}"
    );

    let before = server.disk_frag_report();
    let t0 = clock.now();
    let moved = server.compact_disk().expect("compaction");
    let compaction_time = clock.now() - t0;
    let after = server.disk_frag_report();
    println!();
    println!("3 a.m. compaction: moved {moved} files in {compaction_time} of simulated disk time");
    println!(
        "  before: largest hole {:>6} of {:>6} free  ({:>3} holes, frag {:.3})",
        before.largest_hole, before.free, before.hole_count, before.external_fragmentation
    );
    println!(
        "  after : largest hole {:>6} of {:>6} free  ({:>3} holes, frag {:.3})",
        after.largest_hole, after.free, after.hole_count, after.external_fragmentation
    );
    println!();
    println!(
        "Unusable-when-needed space before compaction: {:.1}% of all free space",
        100.0 * before.external_fragmentation
    );
    println!("(the paper: buy an 800 MB disk to store 500 MB — a conscious trade for speed).");
    if after.hole_count > 1 || after.largest_hole != after.free {
        eprintln!(
            "ABL4 FAILED: compaction left {} holes (largest {} of {} free blocks)",
            after.hole_count, after.largest_hole, after.free
        );
        std::process::exit(1);
    }
}
