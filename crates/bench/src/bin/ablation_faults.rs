//! Ablation ABL13 — the deterministic fault-injection campaign.
//!
//! Runs the three fault classes of [`bullet_bench::faults`] — mirrored
//! disk failure mid-workload, crash-drop of unsynced writes with the
//! startup consistency scan, and a lossy-wire soak under the retrying
//! at-most-once client — over a seed matrix, then runs the whole matrix
//! a *second* time and demands the rendered outcome table come back
//! byte-identical: the fault schedule, the retries, and the simulated
//! end times are all pure functions of the seed.
//!
//! Exit status is non-zero if any invariant goes red or the replay
//! diverges.  Artifact: `results/ablation_faults.txt`.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_faults            # 3 classes x 5 seeds
//! cargo run -p bullet-bench --bin ablation_faults -- --wide  # nightly: 25 seeds
//! cargo run -p bullet-bench --bin ablation_faults -- --class lossy-wire --seed 7
//! ```

use bullet_bench::faults::{outcome_table, run_class, CampaignOutcome, FaultClass, PR_SEEDS};

fn usage() -> ! {
    eprintln!(
        "usage: ablation_faults [--wide] [--class {}] [--seed N]",
        FaultClass::ALL
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join("|")
    );
    std::process::exit(2);
}

fn main() {
    let mut class: Option<FaultClass> = None;
    let mut seed: Option<u64> = None;
    let mut wide = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--wide" => wide = true,
            "--class" => {
                let name = args.next().unwrap_or_else(|| usage());
                class = Some(FaultClass::parse(&name).unwrap_or_else(|| usage()));
            }
            "--seed" => {
                let n = args.next().unwrap_or_else(|| usage());
                seed = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }

    let classes: Vec<FaultClass> = match class {
        Some(c) => vec![c],
        None => FaultClass::ALL.to_vec(),
    };
    let seeds: Vec<u64> = match seed {
        Some(s) => vec![s],
        None if wide => (1..=25).collect(),
        None => PR_SEEDS.to_vec(),
    };

    println!(
        "ABL13 — deterministic fault-injection campaign ({} class(es) x {} seed(s), run twice)",
        classes.len(),
        seeds.len()
    );
    println!();

    let run_matrix = || -> Vec<CampaignOutcome> {
        classes
            .iter()
            .flat_map(|&c| seeds.iter().map(move |&s| run_class(c, s)))
            .collect()
    };

    let first = run_matrix();
    let table = outcome_table(&first);
    print!("{table}");
    println!();

    // The determinism witness: the same matrix, replayed, must render
    // the same bytes.
    let replay = outcome_table(&run_matrix());
    let deterministic = replay == table;
    let reds = first.iter().filter(|o| !o.green()).count();

    println!(
        "replay determinism: {}",
        if deterministic {
            "outcome table byte-identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "invariants: {} of {} cells green",
        first.len() - reds,
        first.len()
    );

    std::fs::create_dir_all("results").expect("results dir");
    let mut artifact = String::new();
    artifact.push_str("ABL13 fault-injection campaign\n");
    artifact.push_str(&table);
    artifact.push_str(&format!(
        "replay_deterministic={deterministic} green_cells={}/{}\n",
        first.len() - reds,
        first.len()
    ));
    std::fs::write("results/ablation_faults.txt", artifact).expect("write artifact");
    println!("wrote results/ablation_faults.txt");

    if !deterministic {
        eprintln!("ABL13 FAILED: replay diverged from the first run");
        std::process::exit(1);
    }
    if reds > 0 {
        eprintln!("ABL13 FAILED: {reds} campaign cell(s) red");
        std::process::exit(1);
    }
}
