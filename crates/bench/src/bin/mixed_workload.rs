//! A macro-benchmark the paper implies but never prints: the *cited*
//! workload mix (75 % whole-file reads; median 1 KB / 99 % < 64 KB
//! sizes) run through the full RPC stack, Bullet vs the block baseline,
//! with per-operation latency distributions.
//!
//! ```text
//! cargo run -p bullet-bench --bin mixed_workload
//! ```

use amoeba_sim::Histogram;
use bullet_bench::rig::{BulletRig, NfsRig};
use bullet_bench::workload::{WorkloadMix, WorkloadOp};
use bytes::Bytes;
use nfs_blockfs::FileHandle;

const OPS: usize = 6000;
const MAX_SIZE: u64 = 256 * 1024;
const POPULATION: u64 = 150;

struct Lat {
    create: Histogram,
    read: Histogram,
    delete: Histogram,
}

impl Lat {
    fn new() -> Lat {
        Lat {
            create: Histogram::new(),
            read: Histogram::new(),
            delete: Histogram::new(),
        }
    }

    fn print(&self, label: &str, wall: amoeba_sim::Nanos) {
        println!("  {label}:");
        println!(
            "    {:>8}  {:>8}  {:>12}  {:>10}  {:>10}",
            "op", "count", "mean (ms)", "p90 (ms)", "max (ms)"
        );
        for (name, h) in [
            ("create", &self.create),
            ("read", &self.read),
            ("delete", &self.delete),
        ] {
            println!(
                "    {:>8}  {:>8}  {:>12.1}  {:>10.1}  {:>10.1}",
                name,
                h.count(),
                h.mean().as_ms_f64(),
                h.quantile(0.9).as_ms_f64(),
                h.max().as_ms_f64()
            );
        }
        println!("    total simulated time: {wall}");
    }
}

fn run_bullet() -> (Lat, amoeba_sim::Nanos) {
    let rig = BulletRig::paper_1989();
    let mut mix = WorkloadMix::unix_mix(0x31337, MAX_SIZE, POPULATION);
    let lat = Lat::new();
    let mut caps = Vec::new();
    let t0 = rig.clock.now();
    for _ in 0..OPS {
        match mix.next_op() {
            WorkloadOp::Create(size) => {
                let t = rig.clock.now();
                if let Ok(cap) = rig.client.create(Bytes::from(vec![1u8; size as usize]), 2) {
                    caps.push(cap);
                }
                lat.create.record(rig.clock.now() - t);
            }
            WorkloadOp::Read(n) => {
                if caps.is_empty() {
                    continue;
                }
                let cap = caps[(n % caps.len() as u64) as usize];
                let t = rig.clock.now();
                rig.client.read(&cap).expect("live file");
                lat.read.record(rig.clock.now() - t);
            }
            WorkloadOp::Delete(n) => {
                if caps.is_empty() {
                    continue;
                }
                let cap = caps.swap_remove((n % caps.len() as u64) as usize);
                let t = rig.clock.now();
                rig.client.delete(&cap).expect("live file");
                lat.delete.record(rig.clock.now() - t);
            }
        }
    }
    let wall = rig.clock.now() - t0;
    (lat, wall)
}

fn run_nfs() -> (Lat, amoeba_sim::Nanos) {
    let rig = NfsRig::paper_1989();
    let mut mix = WorkloadMix::unix_mix(0x31337, MAX_SIZE, POPULATION);
    let lat = Lat::new();
    let mut files: Vec<FileHandle> = Vec::new();
    let t0 = rig.clock.now();
    for _ in 0..OPS {
        match mix.next_op() {
            WorkloadOp::Create(size) => {
                let t = rig.clock.now();
                if let Ok(fh) = rig.client.create_file(&vec![1u8; size as usize]) {
                    files.push(fh);
                }
                lat.create.record(rig.clock.now() - t);
            }
            WorkloadOp::Read(n) => {
                if files.is_empty() {
                    continue;
                }
                let fh = files[(n % files.len() as u64) as usize];
                let t = rig.clock.now();
                rig.client.read_file(fh).expect("live file");
                lat.read.record(rig.clock.now() - t);
            }
            WorkloadOp::Delete(n) => {
                if files.is_empty() {
                    continue;
                }
                let fh = files.swap_remove((n % files.len() as u64) as usize);
                let t = rig.clock.now();
                rig.client.remove(fh).expect("live file");
                lat.delete.record(rig.clock.now() - t);
            }
        }
    }
    let wall = rig.clock.now() - t0;
    (lat, wall)
}

fn main() {
    println!(
        "Mixed workload — {OPS} ops of the cited mix (75% reads, 1984 sizes, ~{POPULATION} live files)"
    );
    let (bullet, bullet_wall) = run_bullet();
    bullet.print("Bullet (two mirrored disks, P-FACTOR 2)", bullet_wall);
    let (nfs, nfs_wall) = run_nfs();
    nfs.print("NFS baseline (one disk, 8 KB blocks)", nfs_wall);
    println!();
    println!(
        "Whole-workload speedup: {:.1}x ({} vs {})",
        nfs_wall.as_ns() as f64 / bullet_wall.as_ns() as f64,
        bullet_wall,
        nfs_wall
    );
    println!("The small-file-dominated mix is where the fixed per-RPC gap compounds.");
}
