//! Ablation ABL3 — the P-FACTOR durability dial of `BULLET.CREATE`:
//! reply-from-cache (P=0) vs one disk (P=1) vs both disks (P=2).
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_pfactor
//! ```

use bullet_bench::rig::BulletRig;
use bullet_bench::table::{size_label, SIZES};

fn main() {
    println!("ABL3 — BULLET.CREATE delay (ms) by P-FACTOR");
    println!(
        "  {:>12}  {:>10}  {:>10}  {:>10}",
        "File Size", "P=0", "P=1", "P=2"
    );
    for &size in &SIZES {
        let mut cols = Vec::new();
        for p in 0..=2 {
            let rig = BulletRig::paper_1989();
            cols.push(rig.measure_create(size, p));
        }
        println!(
            "  {:>12}  {:>10.1}  {:>10.1}  {:>10.1}",
            size_label(size),
            cols[0].as_ms_f64(),
            cols[1].as_ms_f64(),
            cols[2].as_ms_f64()
        );
    }
    println!();
    println!("P=0 returns after the RAM-cache insert (fast, crash-vulnerable);");
    println!("P=N returns after the file and inode are on N disks (§2.2).  The N");
    println!("replica writes run in parallel, so P=2 costs what the slowest disk");
    println!("costs — the same as P=1 on identical spindles.");
}
