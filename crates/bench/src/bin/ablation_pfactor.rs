//! Ablation ABL3 — the P-FACTOR durability dial of `BULLET.CREATE`:
//! reply-from-cache (P=0) vs one disk (P=1) vs both disks (P=2).
//!
//! Exit status is non-zero if the headline invariant goes red: P=0 must
//! never cost more than P=1, and P=2's parallel replica writes must stay
//! within 25 % of P=1.
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_pfactor
//! ```

use bullet_bench::rig::BulletRig;
use bullet_bench::table::{size_label, SIZES};

fn main() {
    let mut reds: Vec<String> = Vec::new();
    println!("ABL3 — BULLET.CREATE delay (ms) by P-FACTOR");
    println!(
        "  {:>12}  {:>10}  {:>10}  {:>10}",
        "File Size", "P=0", "P=1", "P=2"
    );
    for &size in &SIZES {
        let mut cols = Vec::new();
        for p in 0..=2 {
            let rig = BulletRig::paper_1989();
            cols.push(rig.measure_create(size, p));
        }
        println!(
            "  {:>12}  {:>10.1}  {:>10.1}  {:>10.1}",
            size_label(size),
            cols[0].as_ms_f64(),
            cols[1].as_ms_f64(),
            cols[2].as_ms_f64()
        );
        if cols[0] > cols[1] {
            reds.push(format!(
                "P=0 ({:.1} ms) slower than P=1 ({:.1} ms) at {}",
                cols[0].as_ms_f64(),
                cols[1].as_ms_f64(),
                size_label(size)
            ));
        }
        if cols[2].as_ns() as f64 > cols[1].as_ns() as f64 * 1.25 {
            reds.push(format!(
                "P=2 ({:.1} ms) more than 25% over P=1 ({:.1} ms) at {}",
                cols[2].as_ms_f64(),
                cols[1].as_ms_f64(),
                size_label(size)
            ));
        }
    }
    println!();
    println!("P=0 returns after the RAM-cache insert (fast, crash-vulnerable);");
    println!("P=N returns after the file and inode are on N disks (§2.2).  The N");
    println!("replica writes run in parallel, so P=2 costs what the slowest disk");
    println!("costs — the same as P=1 on identical spindles.");
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL3 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
