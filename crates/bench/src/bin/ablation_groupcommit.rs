//! Ablation ABL15 — the log-structured create path: group commit,
//! batched extent allocation, and idle-time log migration.
//!
//! The headline storm: 32 concurrent 16 KB creates, all arriving at
//! t = 0 and served by a two-way mirrored pair of seek-modelled disks.
//! Without the log each create is its own mirrored data write plus an
//! inode write-through — ~32 physical I/O chains, served serially by the
//! arm.  With the log the storm collapses into a couple of sequential,
//! checksummed record appends (byte-capped at 256 KB per record) plus
//! one deduplicated inode-block write per record, so the last create
//! finishes orders of magnitude sooner.
//!
//! A second storm draws its sizes from the Zipf popularity-skewed
//! small-file generator ([`bullet_bench::workload::small_file_storm`]) —
//! the size mix the literature says create traffic actually has — and
//! must coalesce at least 8 files per append on average.
//!
//! Criteria (exit non-zero if any goes red):
//!
//! * the 32×16 KB storm commits in ≤ 4 log appends;
//! * batched physical write I/Os are ≤ ¼ of the baseline's;
//! * the batched storm *completes entirely* in less than half the
//!   baseline's p99 create latency (so every batched create, including
//!   the last, beats 2× on p99);
//! * every file reads back byte-identical, in both modes;
//! * the Zipf storm averages ≥ 8 files per log append;
//! * the whole matrix, run a second time, renders byte-identically.
//!
//! Artifacts: `results/ablation_groupcommit.txt` (the outcome table) and
//! `results/ablation_groupcommit_trace.jsonl` (one JSON object per
//! storm create of the first run: mode, index, size, completion time).
//!
//! ```text
//! cargo run -p bullet-bench --bin ablation_groupcommit            # PR seed
//! cargo run -p bullet-bench --bin ablation_groupcommit -- --seed 7
//! ```

use bytes::Bytes;

use amoeba_sim::{HwProfile, Nanos};
use bullet_bench::workload::small_file_storm;
use bullet_bench::BulletRig;

/// The PR's pinned seed: `report --check` gates the numbers this seed
/// produces.
const PR_SEED: u64 = 0xab15;
/// Files in the headline storm.
const STORM_FILES: usize = 32;
/// Size of each headline-storm file.
const STORM_SIZE: usize = 16 * 1024;
/// Files in the Zipf storm.
const ZIPF_FILES: usize = 64;

/// One storm's measured outcome.
struct StormOutcome {
    /// Completion time of the i-th create, measured from storm start
    /// (all creates arrive at t = 0; the disk serves them from there).
    completions: Vec<Nanos>,
    /// Physical write I/Os across both replicas, storm only.
    disk_writes: u64,
    /// `log_appends` across the storm (0 in baseline mode).
    log_appends: u64,
    /// `group_commit_flushes` across the storm.
    flushes: u64,
    /// Payload sizes, for the trace artifact.
    sizes: Vec<usize>,
}

impl StormOutcome {
    fn p99(&self) -> Nanos {
        let mut c = self.completions.clone();
        c.sort_unstable();
        amoeba_sim::exact_quantile(&c, 99).expect("storm produced completions")
    }

    fn total(&self) -> Nanos {
        self.completions
            .iter()
            .copied()
            .max()
            .unwrap_or(Nanos::ZERO)
    }
}

fn rig(batched: bool) -> BulletRig {
    BulletRig::with_config(2, HwProfile::amoeba_1989(), 12 << 20, |cfg| {
        if batched {
            cfg.log_blocks = 4096; // 4 MB window at 1 KB blocks
            cfg.log_batch_files = 32;
            cfg.log_batch_bytes = 256 * 1024;
        }
    })
}

/// Ages the disk in place: fills it with large direct-path files, then
/// frees every other one in the *far* half.  The surviving free space
/// sits far from the inode table, so a subsequent per-file create pays
/// the realistic seek round-trip (data area ↔ inode table) an aged
/// first-fit disk exacts — while the group-commit log, whose window is
/// contiguous by construction, keeps appending sequentially.  A fresh
/// empty disk would flatter the baseline: first-fit would pack the storm
/// right next to the inode table, where seeks are nearly free.
fn age_disk(rig: &BulletRig) {
    // Bigger than `log_batch_bytes`, so fillers take the direct path in
    // both modes and the aging I/O pattern is identical.
    const FILLER: usize = 512 * 1024;
    let mut caps = Vec::new();
    while let Ok(cap) = rig.server.create(Bytes::from(vec![0xfe; FILLER]), 2) {
        caps.push(cap);
    }
    let half = caps.len() / 2;
    for cap in caps.iter().skip(half).step_by(2) {
        rig.server.delete(cap).expect("filler delete");
    }
}

/// Runs one storm: `sizes[i]` bytes for create `i`, fill byte = index.
/// In batched mode the storm goes through `create_batch` (the
/// deterministic group-commit entry point); in baseline mode each create
/// is a separate call — the disk arm serves the resulting I/O chains
/// serially, which is exactly what 32 concurrent arrivals see.
fn run_storm(rig: &BulletRig, sizes: &[usize], batched: bool) -> StormOutcome {
    age_disk(rig);
    let files: Vec<Bytes> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| Bytes::from(vec![i as u8; n]))
        .collect();
    let writes0 = rig.sched_stats().disk_writes;
    let appends0 = rig.server.stats().get("log_appends");
    let flushes0 = rig.server.stats().get("group_commit_flushes");
    let t0 = rig.clock.now();
    let (caps, completions) = if batched {
        let caps = rig
            .server
            .create_batch(files, 2)
            .expect("batched storm fits the rig");
        // Every batched create completes no later than the whole call:
        // charge each file the full storm duration (a conservative upper
        // bound — most finished with an earlier chunk).
        let done = rig.clock.now() - t0;
        (caps, vec![done; sizes.len()])
    } else {
        let mut caps = Vec::with_capacity(files.len());
        let mut completions = Vec::with_capacity(files.len());
        for data in files {
            caps.push(rig.server.create(data, 2).expect("create fits the rig"));
            completions.push(rig.clock.now() - t0);
        }
        (caps, completions)
    };
    // Read-back: every file byte-identical (grouped files are readable
    // straight out of the log window).
    for (i, cap) in caps.iter().enumerate() {
        let data = rig.server.read(cap).expect("storm file reads back");
        assert_eq!(data.len(), sizes[i], "file {i} size");
        assert!(
            data.iter().all(|&b| b == i as u8),
            "file {i} content intact"
        );
    }
    StormOutcome {
        completions,
        disk_writes: rig.sched_stats().disk_writes - writes0,
        log_appends: rig.server.stats().get("log_appends") - appends0,
        flushes: rig.server.stats().get("group_commit_flushes") - flushes0,
        sizes: sizes.to_vec(),
    }
}

/// The full matrix at one seed: headline storm and Zipf storm, baseline
/// and batched.
fn run_matrix(seed: u64) -> [(&'static str, bool, StormOutcome); 4] {
    let headline = vec![STORM_SIZE; STORM_FILES];
    let zipf: Vec<usize> = small_file_storm(seed, ZIPF_FILES, 1024, 32 * 1024)
        .into_iter()
        .map(|s| s as usize)
        .collect();
    [
        ("headline", false, run_storm(&rig(false), &headline, false)),
        ("headline", true, run_storm(&rig(true), &headline, true)),
        ("zipf", false, run_storm(&rig(false), &zipf, false)),
        ("zipf", true, run_storm(&rig(true), &zipf, true)),
    ]
}

fn outcome_table(matrix: &[(&'static str, bool, StormOutcome)]) -> String {
    let mut t =
        String::from("storm     mode      files  appends  flushes  writes  p99_ms   total_ms\n");
    for (storm, batched, o) in matrix {
        t.push_str(&format!(
            "{storm:<9} {:<9} {:>5}  {:>7}  {:>7}  {:>6}  {:>7.2}  {:>8.2}\n",
            if *batched { "batched" } else { "baseline" },
            o.completions.len(),
            o.log_appends,
            o.flushes,
            o.disk_writes,
            o.p99().as_ms_f64(),
            o.total().as_ms_f64(),
        ));
    }
    t
}

fn usage() -> ! {
    eprintln!("usage: ablation_groupcommit [--seed N]");
    std::process::exit(2);
}

fn main() {
    let mut seed = PR_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let n = args.next().unwrap_or_else(|| usage());
                seed = n.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    println!("ABL15 — group-commit create path (seed {seed:#x}, run twice)");
    println!();
    let matrix = run_matrix(seed);
    let table = outcome_table(&matrix);
    print!("{table}");
    println!();

    let replay = outcome_table(&run_matrix(seed));
    let deterministic = replay == table;
    println!(
        "replay determinism: {}",
        if deterministic {
            "outcome table byte-identical"
        } else {
            "DIVERGED"
        }
    );

    let (base, batched) = (&matrix[0].2, &matrix[1].2);
    let (zipf_base, zipf_batched) = (&matrix[2].2, &matrix[3].2);
    let mut reds: Vec<String> = Vec::new();
    let appends_green = batched.log_appends <= 4;
    if !appends_green {
        reds.push(format!(
            "headline storm took {} log appends (want <= 4)",
            batched.log_appends
        ));
    }
    let io_green = batched.disk_writes * 4 <= base.disk_writes;
    if !io_green {
        reds.push(format!(
            "physical writes not collapsed 4x: baseline {} batched {}",
            base.disk_writes, batched.disk_writes
        ));
    }
    // The batched side's per-file bound is the *whole storm's* duration,
    // so this is "every batched create beats 2x the baseline p99".
    let p99_green = batched.total().as_ns() * 2 <= base.p99().as_ns();
    if !p99_green {
        reds.push(format!(
            "p99 not halved: baseline p99 {:.2} ms, batched total {:.2} ms",
            base.p99().as_ms_f64(),
            batched.total().as_ms_f64()
        ));
    }
    let zipf_green =
        zipf_batched.log_appends > 0 && ZIPF_FILES as u64 >= 8 * zipf_batched.log_appends;
    if !zipf_green {
        reds.push(format!(
            "zipf storm averaged under 8 files per append ({} appends for {} files)",
            zipf_batched.log_appends, ZIPF_FILES
        ));
    }
    let greens = [
        appends_green,
        io_green,
        p99_green,
        zipf_green,
        deterministic,
    ]
    .iter()
    .filter(|&&g| g)
    .count();
    println!("criteria: {greens} of 5 green");
    println!(
        "headline collapse: {} baseline writes -> {} batched ({} appends), \
         p99 {:.2} ms -> <= {:.2} ms",
        base.disk_writes,
        batched.disk_writes,
        batched.log_appends,
        base.p99().as_ms_f64(),
        batched.total().as_ms_f64()
    );
    println!(
        "zipf storm: {} files in {} appends ({} flushes), baseline p99 {:.2} ms",
        ZIPF_FILES,
        zipf_batched.log_appends,
        zipf_batched.flushes,
        zipf_base.p99().as_ms_f64()
    );

    std::fs::create_dir_all("results").expect("results dir");
    let mut artifact = String::new();
    artifact.push_str(&format!(
        "ABL15 group-commit create path (seed {seed:#x})\n"
    ));
    artifact.push_str(&table);
    artifact.push_str(&format!(
        "replay_deterministic={deterministic} red_criteria={}\n",
        reds.len()
    ));
    std::fs::write("results/ablation_groupcommit.txt", artifact).expect("write artifact");
    println!("wrote results/ablation_groupcommit.txt");

    let mut trace = String::new();
    for (storm, batched, o) in &matrix {
        for (i, (c, s)) in o.completions.iter().zip(&o.sizes).enumerate() {
            trace.push_str(&format!(
                "{{\"storm\":\"{storm}\",\"mode\":\"{}\",\"file\":{i},\"bytes\":{s},\
                 \"completion_ns\":{}}}\n",
                if *batched { "batched" } else { "baseline" },
                c.as_ns()
            ));
        }
    }
    std::fs::write("results/ablation_groupcommit_trace.jsonl", trace).expect("write trace");
    println!("wrote results/ablation_groupcommit_trace.jsonl");

    if !deterministic {
        eprintln!("ABL15 FAILED: replay diverged from the first run");
        std::process::exit(1);
    }
    if !reds.is_empty() {
        for r in &reds {
            eprintln!("ABL15 FAILED: {r}");
        }
        std::process::exit(1);
    }
}
