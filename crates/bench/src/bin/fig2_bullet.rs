//! Regenerates Fig. 2 of the paper: delay and bandwidth of the Bullet
//! file server for READ and CREATE+DELETE, on the simulated 1989 testbed.
//!
//! ```text
//! cargo run -p bullet-bench --bin fig2_bullet
//! ```

use bullet_bench::rig::BulletRig;
use bullet_bench::table::{measure_bullet, print_tables};

fn main() {
    let rig = BulletRig::paper_1989();
    let rows = measure_bullet(&rig);
    print_tables(
        "Fig. 2 — Performance of the Bullet file server (simulated 1989 testbed)",
        "CREATE+DEL",
        &rows,
    );
    println!("Protocol: READ is warm (file completely in the server's RAM cache);");
    println!("CREATE+DEL writes the file and its inode to BOTH mirrored disks (P-FACTOR 2).");
}
