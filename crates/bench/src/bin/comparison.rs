//! Evaluates the §4 comparison claims (C1–C4) from freshly measured
//! Fig. 2 and Fig. 3 tables.
//!
//! ```text
//! cargo run -p bullet-bench --bin comparison
//! ```

use bullet_bench::rig::{BulletRig, NfsRig};
use bullet_bench::table::{measure_bullet, measure_nfs, print_tables, Claims};

fn main() {
    let bullet = measure_bullet(&BulletRig::paper_1989());
    let nfs = measure_nfs(&NfsRig::paper_1989());
    print_tables("Bullet (Fig. 2)", "CREATE+DEL", &bullet);
    print_tables("NFS baseline (Fig. 3)", "CREATE", &nfs);
    Claims::evaluate(&bullet, &nfs).print();
}
