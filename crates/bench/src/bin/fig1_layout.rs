//! Renders Fig. 1 of the paper — the Bullet disk layout — from a *live*
//! server: the disk descriptor, the inode table, and the contiguous
//! files-and-holes map of the data area, after some create/delete churn.
//!
//! ```text
//! cargo run -p bullet-bench --bin fig1_layout
//! ```

use bullet_core::{BulletConfig, BulletServer};
use bytes::Bytes;

fn main() {
    let server = BulletServer::format(BulletConfig::small_test(), 2).expect("format");
    // Create a handful of files and delete a couple to open holes.
    let caps: Vec<_> = [1500usize, 4000, 700, 9000, 2300]
        .iter()
        .map(|&n| {
            server
                .create(Bytes::from(vec![0xaa; n]), 2)
                .expect("create")
        })
        .collect();
    server.delete(&caps[1]).expect("delete");
    server.delete(&caps[3]).expect("delete");

    let (desc, rows) = server.describe_layout();
    println!("Fig. 1 — The Bullet disk layout (live server dump)");
    println!();
    println!("Disk descriptor (inode 0):");
    println!("  block size   : {} bytes", desc.block_size);
    println!(
        "  control size : {} blocks (inode table)",
        desc.control_blocks
    );
    println!("  data size    : {} blocks", desc.data_blocks);
    println!();
    println!("Inode table:");
    for row in &rows {
        println!(
            "  inode {:>4} -> blocks [{}, {}) = {} bytes{}",
            row.inode,
            row.start_block,
            row.start_block as u64 + row.blocks,
            row.size_bytes,
            if row.cached { "  [in RAM cache]" } else { "" }
        );
    }
    println!();
    println!("Contiguous files and holes:");
    let mut cursor = desc.data_start();
    for row in &rows {
        if (row.start_block as u64) > cursor {
            println!(
                "  [{:>6}, {:>6})  free ({} blocks)",
                cursor,
                row.start_block,
                row.start_block as u64 - cursor
            );
        }
        println!(
            "  [{:>6}, {:>6})  file (inode {})",
            row.start_block,
            row.start_block as u64 + row.blocks,
            row.inode
        );
        cursor = row.start_block as u64 + row.blocks;
    }
    if cursor < desc.data_end() {
        println!(
            "  [{:>6}, {:>6})  free ({} blocks)",
            cursor,
            desc.data_end(),
            desc.data_end() - cursor
        );
    }
    let frag = server.disk_frag_report();
    println!();
    println!(
        "Free space: {} of {} blocks in {} hole(s); largest hole {} blocks; external fragmentation {:.2}",
        frag.free, frag.total, frag.hole_count, frag.largest_hole, frag.external_fragmentation
    );
}
