//! Workload generation calibrated to the literature the paper cites.
//!
//! * File sizes: "the median file size in a UNIX system is 1 Kbyte and
//!   99 % of all files are less than 64 Kbytes" (Mullender & Tanenbaum,
//!   *Immediate Files*, 1984 — the paper's \[1\]).  A log-normal with
//!   median 1 KB whose 99th percentile is 64 KB matches both quantiles
//!   exactly: μ = ln 1024, σ = (ln 65536 − ln 1024) / z₀.₉₉.
//! * Access mix: "most files (about 75 %) are accessed in entirety"
//!   (Ousterhout et al. 1985 — the paper's \[4\]); we generate 75 %
//!   whole-file reads against creates and deletes.

use amoeba_sim::DetRng;

/// The calibrated log-normal file-size distribution.
#[derive(Debug, Clone)]
pub struct SizeDistribution {
    rng: DetRng,
    mu: f64,
    sigma: f64,
    max: u64,
}

impl SizeDistribution {
    /// The distribution from the paper's citations: median 1 KB, 99 %
    /// below 64 KB, truncated at `max` bytes (files must fit the cache).
    pub fn unix_1984(seed: u64, max: u64) -> SizeDistribution {
        let z99 = 2.326_347_874_040_841; // Φ⁻¹(0.99)
        SizeDistribution {
            rng: DetRng::new(seed),
            mu: (1024f64).ln(),
            sigma: ((65536f64).ln() - (1024f64).ln()) / z99,
            max,
        }
    }

    /// Draws one file size in bytes (at least 1).
    pub fn sample(&mut self) -> u64 {
        let z = self.rng.next_gaussian();
        let size = (self.mu + self.sigma * z).exp();
        (size as u64).clamp(1, self.max)
    }
}

/// One step of a mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Create a file of this size.
    Create(u64),
    /// Read the nth live file (mod the live count).
    Read(u64),
    /// Delete the nth live file (mod the live count).
    Delete(u64),
}

/// A generator of create/read/delete mixes around a target population.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    sizes: SizeDistribution,
    rng: DetRng,
    /// Probability of a read among all operations (the cited 75 %).
    read_fraction: f64,
    /// Target number of live files; creates and deletes balance around it.
    target_population: u64,
    live: u64,
}

impl WorkloadMix {
    /// The paper-cited mix: 75 % whole-file reads, the 1984 size
    /// distribution, balancing around `target_population` live files.
    pub fn unix_mix(seed: u64, max_size: u64, target_population: u64) -> WorkloadMix {
        let mut rng = DetRng::new(seed ^ 0x3177);
        WorkloadMix {
            sizes: SizeDistribution::unix_1984(rng.next_u64(), max_size),
            rng,
            read_fraction: 0.75,
            target_population,
            live: 0,
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> WorkloadOp {
        if self.live == 0 {
            self.live += 1;
            return WorkloadOp::Create(self.sizes.sample());
        }
        if self.rng.next_f64() < self.read_fraction {
            return WorkloadOp::Read(self.rng.next_u64());
        }
        // Mutations: drift toward the target population.
        let p_create = if self.live >= self.target_population {
            0.45
        } else {
            0.55
        };
        if self.rng.next_f64() < p_create {
            self.live += 1;
            WorkloadOp::Create(self.sizes.sample())
        } else {
            self.live -= 1;
            WorkloadOp::Delete(self.rng.next_u64())
        }
    }
}

/// A Zipf (power-law) rank sampler: rank `k` (0-based) is drawn with
/// probability ∝ 1/(k+1)^θ.  θ ≈ 1 is the classic popularity skew
/// observed in file accesses — a few files take most of the traffic.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    rng: DetRng,
    /// Cumulative distribution over ranks, monotone to 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(seed: u64, n: usize, theta: f64) -> ZipfSampler {
        assert!(n > 0, "a Zipf sampler needs at least one rank");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfSampler {
            rng: DetRng::new(seed),
            cdf,
        }
    }

    /// Draws one 0-based rank (0 is the most popular).
    pub fn sample(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Sizes for a small-file create storm with popularity-skewed size
/// classes: power-of-two classes spanning `[min, max]` bytes, class
/// popularity Zipf-distributed (θ = 1.1, small files most common —
/// matching the observation behind the paper's \[1\] that small files
/// dominate), with ±12 % deterministic jitter inside the class so
/// payloads are not all block-aligned.
///
/// This is the workload of the group-commit ablation (ABL15): `n`
/// concurrent small creates that the log should collapse into a couple
/// of sequential appends.
pub fn small_file_storm(seed: u64, n: usize, min: u64, max: u64) -> Vec<u64> {
    assert!(min >= 1 && min <= max, "need 1 <= min <= max");
    let classes: Vec<u64> = std::iter::successors(Some(min), |&s| Some(s * 2))
        .take_while(|&s| s <= max)
        .collect();
    let mut zipf = ZipfSampler::new(seed ^ 0x5102f, classes.len(), 1.1);
    let mut jitter = DetRng::new(seed ^ 0x7e44);
    (0..n)
        .map(|_| {
            let base = classes[zipf.sample()];
            let spread = (base / 8).max(1);
            let off = jitter.next_u64() % (2 * spread);
            (base + off).saturating_sub(spread).clamp(min, max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_distribution_matches_cited_quantiles() {
        let mut dist = SizeDistribution::unix_1984(7, 1 << 30);
        let mut sizes: Vec<u64> = (0..50_000).map(|_| dist.sample()).collect();
        sizes.sort_unstable();
        let median = amoeba_sim::exact_quantile(&sizes, 50).unwrap();
        let p99 = amoeba_sim::exact_quantile(&sizes, 99).unwrap();
        assert!(
            (700..1500).contains(&median),
            "median {median} should be ≈ 1 KB"
        );
        assert!(
            (45_000..95_000).contains(&p99),
            "p99 {p99} should be ≈ 64 KB"
        );
    }

    #[test]
    fn sizes_respect_truncation() {
        let mut dist = SizeDistribution::unix_1984(3, 8192);
        for _ in 0..10_000 {
            let s = dist.sample();
            assert!((1..=8192).contains(&s));
        }
    }

    #[test]
    fn mix_is_three_quarters_reads() {
        let mut mix = WorkloadMix::unix_mix(11, 1 << 20, 100);
        let mut reads = 0;
        let n = 50_000;
        for _ in 0..n {
            if matches!(mix.next_op(), WorkloadOp::Read(_)) {
                reads += 1;
            }
        }
        let frac = reads as f64 / n as f64;
        assert!((0.70..0.80).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn mix_population_stays_near_target() {
        let mut mix = WorkloadMix::unix_mix(5, 1 << 20, 50);
        for _ in 0..20_000 {
            mix.next_op();
        }
        assert!(
            (10..200).contains(&mix.live),
            "population drifted to {}",
            mix.live
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = WorkloadMix::unix_mix(9, 1 << 20, 10);
        let mut b = WorkloadMix::unix_mix(9, 1 << 20, 10);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let mut z = ZipfSampler::new(17, 16, 1.1);
        let mut counts = [0u64; 16];
        for _ in 0..20_000 {
            counts[z.sample()] += 1;
        }
        assert!(
            counts[0] > counts[1] && counts[1] > counts[4] && counts[4] > counts[15],
            "popularity must fall with rank: {counts:?}"
        );
        assert!(
            counts[0] as f64 / 20_000.0 > 0.25,
            "the head rank takes a large share"
        );
    }

    #[test]
    fn storm_sizes_stay_in_range_and_skew_small() {
        let sizes = small_file_storm(3, 5_000, 1024, 65_536);
        assert_eq!(sizes.len(), 5_000);
        assert!(sizes.iter().all(|&s| (1024..=65_536).contains(&s)));
        let small = sizes.iter().filter(|&&s| s <= 4096).count();
        assert!(
            small * 2 > sizes.len(),
            "small files dominate the storm ({small}/5000 ≤ 4 KB)"
        );
    }

    #[test]
    fn storm_is_deterministic() {
        assert_eq!(
            small_file_storm(42, 256, 1024, 32_768),
            small_file_storm(42, 256, 1024, 32_768)
        );
    }
}
