//! Assembled measurement stacks reproducing the paper's testbed.

use std::sync::Arc;

use bytes::Bytes;

use amoeba_cap::Port;
use amoeba_disk::{BlockDevice, MirroredDisk, RamDisk, SchedConfig, SchedDisk, SimDisk};
use amoeba_net::SimEthernet;
use amoeba_rpc::{Dispatcher, RpcClient};
use amoeba_sim::{HwProfile, Nanos, SimClock, Tracer};
use bullet_core::{BulletClient, BulletConfig, BulletRpcServer, BulletServer};
use nfs_blockfs::{NfsClient, NfsServer, NfsServerConfig};

/// The Bullet measurement stack of §4: a dedicated server with two
/// mirrored, latency-modelled disks, talking to one client over the
/// simulated Ethernet.
///
/// Scale note: the original machine had two 800 MB drives and 16 MB RAM;
/// we run 64 MB drives and a 12 MB cache.  The seek model works on
/// *fractions* of the disk, and no test file exceeds 1 MB, so the scaling
/// does not change any per-operation cost.
pub struct BulletRig {
    /// The shared simulated clock.
    pub clock: SimClock,
    /// The hardware cost profile in force.
    pub hw: HwProfile,
    /// The server under test.
    pub server: Arc<BulletServer>,
    /// The client issuing operations.
    pub client: BulletClient,
    /// The RPC fabric.
    pub dispatcher: Arc<Dispatcher>,
    /// The span tracer every layer shares — disabled unless the rig was
    /// built with `cfg.trace = TraceConfig::enabled(..)` in its tweak.
    pub tracer: Tracer,
    /// Concrete handles on the scheduled replica disks, for scheduler
    /// counter aggregation (the mirror only sees `dyn BlockDevice`).
    pub disks: Vec<Arc<SchedDisk<RamDisk>>>,
}

impl BulletRig {
    /// The paper's configuration: two mirrored SCSI disks, write-through.
    pub fn paper_1989() -> BulletRig {
        BulletRig::with_options(2, HwProfile::amoeba_1989(), 12 << 20)
    }

    /// A rig with an explicit disk count, hardware profile, and cache
    /// capacity (ablations use this).
    ///
    /// # Panics
    ///
    /// Panics if the stack cannot be assembled (a bug, not an input
    /// condition).
    pub fn with_options(disks: usize, hw: HwProfile, cache_capacity: u64) -> BulletRig {
        BulletRig::with_config(disks, hw, cache_capacity, |_| {})
    }

    /// A rig whose [`BulletConfig`] is adjusted by `tweak` before the
    /// server is formatted — the streaming ablations flip
    /// `cfg.pipeline` and sweep `cfg.segment_size` through this.
    ///
    /// # Panics
    ///
    /// Panics if the stack cannot be assembled (a bug, not an input
    /// condition).
    pub fn with_config(
        disks: usize,
        hw: HwProfile,
        cache_capacity: u64,
        tweak: impl FnOnce(&mut BulletConfig),
    ) -> BulletRig {
        let clock = SimClock::new();
        // Each replica sits behind its own seek-aware scheduler.  At
        // queue depth 1 a SchedDisk charges exactly what a SimDisk would,
        // so single-client numbers are unchanged; under concurrency the
        // arm serves requests in SCAN order and coalesces neighbours.
        let sched_disks: Vec<Arc<SchedDisk<RamDisk>>> = (0..disks.max(1))
            .map(|_| {
                Arc::new(SchedDisk::new(
                    RamDisk::new(1024, 65_536), // 64 MB per drive
                    clock.clone(),
                    hw.disk,
                    SchedConfig::default(),
                ))
            })
            .collect();
        let replicas: Vec<Arc<dyn BlockDevice>> = sched_disks
            .iter()
            .map(|d| d.clone() as Arc<dyn BlockDevice>)
            .collect();
        let storage = MirroredDisk::new(replicas).expect("replica set is valid");
        let mut cfg = BulletConfig {
            port: Port::from_u64(0xb1e7),
            min_inodes: 2048,
            cache_capacity,
            rnode_slots: 2048,
            block_size: 1024,
            disk_blocks: 65_536,
            clock: clock.clone(),
            cpu: hw.cpu,
            scheme_seed: 0x5eed,
            scheme: bullet_core::SchemeKind::Mac,
            rng_seed: 0xfee1,
            repair: bullet_core::table::RepairPolicy::Fail,
            max_age: 8,
            eviction: bullet_core::EvictionPolicy::Lru,
            eviction_seed: 0,
            segment_size: 64 * 1024,
            pipeline: true,
            readahead_segments: u32::MAX,
            placement: bullet_core::Placement::FirstFit,
            trace: amoeba_sim::TraceConfig::off(),
            log_blocks: 0,
            log_batch_files: 32,
            log_batch_bytes: 256 * 1024,
            log_linger: amoeba_sim::Nanos::from_us(250),
            telemetry: amoeba_sim::TelemetryConfig::off(),
            accounting: bullet_core::ClientAccounting::off(),
            shard: bullet_core::ShardSlot::solo(),
            archive_blocks: 0,
            tier_high_water_pct: 75,
            tier_cold_age: 1,
            maint_idle_request_delta: 0,
            maint_moves_per_tick: 1,
        };
        tweak(&mut cfg);
        let tracer = cfg.trace.tracer().clone();
        let telemetry = cfg.telemetry.telemetry().clone();
        for (i, d) in sched_disks.iter().enumerate() {
            d.set_tracer(tracer.clone());
            d.set_telemetry(telemetry.clone(), i as u32);
        }
        let server = Arc::new(BulletServer::format_on(cfg, storage).expect("formatting succeeds"));
        let net = SimEthernet::with_load(clock.clone(), hw.net, 1.0);
        let dispatcher = Dispatcher::new(net);
        dispatcher.set_tracer(tracer.clone());
        dispatcher.register(BulletRpcServer::new(server.clone()));
        let client = BulletClient::new(RpcClient::new(dispatcher.clone()), server.port());
        BulletRig {
            clock,
            hw,
            server,
            client,
            dispatcher,
            tracer,
            disks: sched_disks,
        }
    }

    /// Scheduler counters aggregated across the replica disks: sums for
    /// the monotone counters (`disk_seek_blocks`, `disk_coalesced_ios`,
    /// `sched_deadline_promotions`), maximum for the depth high-water
    /// mark.
    pub fn sched_stats(&self) -> SchedSummary {
        let mut s = SchedSummary::default();
        for d in &self.disks {
            let st = d.stats();
            s.seek_blocks += st.get("disk_seek_blocks");
            s.coalesced_ios += st.get("disk_coalesced_ios");
            s.deadline_promotions += st.get("sched_deadline_promotions");
            s.queue_depth_max = s.queue_depth_max.max(st.get("disk_queue_depth_max"));
            s.disk_reads += st.get("disk_reads");
            s.disk_writes += st.get("disk_writes");
        }
        s
    }

    /// Measures the delay of one warm `BULLET.READ` of a `size`-byte file
    /// — "in all cases the test file will be completely in memory, and no
    /// disk accesses are necessary" (§4).  Includes the client's copy of
    /// the received file into its own memory.
    ///
    /// # Panics
    ///
    /// Panics if the operations fail (the rig is sized so they cannot).
    pub fn measure_read(&self, size: usize) -> Nanos {
        let cap = self
            .client
            .create(Bytes::from(vec![0xa5; size]), 2)
            .expect("create fits the rig");
        self.client.read(&cap).expect("warm-up read"); // absorbs locate cost
        let t0 = self.clock.now();
        let data = self.client.read(&cap).expect("measured read");
        self.clock.advance(self.hw.cpu.memcpy(data.len() as u64));
        let dt = self.clock.now() - t0;
        self.client.delete(&cap).expect("cleanup");
        dt
    }

    /// Measures "a create and a delete operation together … the file is
    /// written to both disks" (§4).
    ///
    /// # Panics
    ///
    /// Panics if the operations fail.
    pub fn measure_create_delete(&self, size: usize) -> Nanos {
        // Warm the locate cache.
        let warm = self.client.create(Bytes::new(), 2).expect("warm-up");
        self.client.delete(&warm).expect("warm-up delete");
        let data = Bytes::from(vec![0x5a; size]);
        let t0 = self.clock.now();
        let cap = self.client.create(data, 2).expect("measured create");
        self.client.delete(&cap).expect("measured delete");
        self.clock.now() - t0
    }

    /// Measures a create alone at the given P-FACTOR (ablation).
    ///
    /// # Panics
    ///
    /// Panics if the operations fail.
    pub fn measure_create(&self, size: usize, p_factor: u32) -> Nanos {
        let warm = self.client.create(Bytes::new(), 2).expect("warm-up");
        self.client.delete(&warm).expect("warm-up delete");
        let data = Bytes::from(vec![0x77; size]);
        let t0 = self.clock.now();
        let cap = self.client.create(data, p_factor).expect("measured create");
        let dt = self.clock.now() - t0;
        self.server.sync().expect("background flush");
        self.client.delete(&cap).expect("cleanup");
        dt
    }

    /// Measures one *cold* read: the cache is flushed first, so the whole
    /// contiguous extent comes off the disk (ablation).
    ///
    /// # Panics
    ///
    /// Panics if the operations fail.
    pub fn measure_cold_read(&self, size: usize) -> Nanos {
        let cap = self
            .client
            .create(Bytes::from(vec![0x11; size]), 2)
            .expect("create fits the rig");
        self.client.read(&cap).expect("locate warm-up");
        self.server.clear_cache();
        let t0 = self.clock.now();
        self.client.read(&cap).expect("measured cold read");
        self.clock.advance(self.hw.cpu.memcpy(size as u64));
        let dt = self.clock.now() - t0;
        self.client.delete(&cap).expect("cleanup");
        dt
    }
}

/// Aggregated per-rig disk-scheduler counters (see
/// [`BulletRig::sched_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedSummary {
    /// Total blocks of arm travel across all replicas.
    pub seek_blocks: u64,
    /// Requests merged into a neighbour's transfer.
    pub coalesced_ios: u64,
    /// Requests granted by deadline aging over the policy pick.
    pub deadline_promotions: u64,
    /// Highest request-queue depth any replica saw.
    pub queue_depth_max: u64,
    /// Physical block reads across all replicas.
    pub disk_reads: u64,
    /// Physical block writes across all replicas.
    pub disk_writes: u64,
}

/// The SUN NFS measurement stack of §4: a SUN 3/180-like server with one
/// latency-modelled disk and a 3 MB write-through buffer cache, and a
/// client whose local caching is disabled (the paper's `lockf` trick).
pub struct NfsRig {
    /// The shared simulated clock.
    pub clock: SimClock,
    /// The server under test.
    pub server: Arc<NfsServer>,
    /// The block-at-a-time client.
    pub client: NfsClient,
    /// The RPC fabric.
    pub dispatcher: Arc<Dispatcher>,
}

impl NfsRig {
    /// The paper's configuration.
    pub fn paper_1989() -> NfsRig {
        NfsRig::with_config(|_| {})
    }

    /// A rig with the configuration adjusted by `tweak` (ablations).
    ///
    /// # Panics
    ///
    /// Panics if the stack cannot be assembled.
    pub fn with_config(tweak: impl FnOnce(&mut NfsServerConfig)) -> NfsRig {
        let clock = SimClock::new();
        let hw = HwProfile::amoeba_1989();
        let mut cfg = NfsServerConfig::sun_3_180(clock.clone());
        tweak(&mut cfg);
        let dev: Arc<dyn BlockDevice> = Arc::new(SimDisk::new(
            RamDisk::new(cfg.block_size, cfg.disk_blocks),
            clock.clone(),
            hw.disk,
        ));
        let server = Arc::new(NfsServer::format_on(cfg, dev).expect("formatting succeeds"));
        let net = SimEthernet::with_load(clock.clone(), hw.net, 1.0);
        let dispatcher = Dispatcher::new(net);
        dispatcher.register(server.clone());
        let client = NfsClient::new(
            RpcClient::new(dispatcher.clone()),
            server.port(),
            server.transfer_size(),
            server.profile(),
            clock.clone(),
        );
        NfsRig {
            clock,
            server,
            client,
            dispatcher,
        }
    }

    /// Measures a warm whole-file read (the server's buffer cache holds
    /// the file after the preceding create; the client has no cache).
    ///
    /// # Panics
    ///
    /// Panics if the operations fail.
    pub fn measure_read(&self, size: usize) -> Nanos {
        let fh = self.client.create_file(&vec![0xa5; size]).expect("create");
        self.client.read_file(fh).expect("warm-up read");
        let t0 = self.clock.now();
        self.client.read_file(fh).expect("measured read");
        let dt = self.clock.now() - t0;
        self.client.remove(fh).expect("cleanup");
        dt
    }

    /// Measures a create (`creat` + per-block `write` + `close`,
    /// write-through to the single disk).
    ///
    /// # Panics
    ///
    /// Panics if the operations fail.
    pub fn measure_create(&self, size: usize) -> Nanos {
        let warm = self.client.create_file(&[]).expect("warm-up");
        self.client.remove(warm).expect("warm-up remove");
        let data = vec![0x5a; size];
        let t0 = self.clock.now();
        let fh = self.client.create_file(&data).expect("measured create");
        let dt = self.clock.now() - t0;
        self.client.remove(fh).expect("cleanup");
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bullet_rig_read_is_milliseconds_warm() {
        let rig = BulletRig::paper_1989();
        let dt = rig.measure_read(1);
        assert!(
            (0.5..10.0).contains(&dt.as_ms_f64()),
            "1-byte read took {dt}"
        );
        // Deterministic: measuring again gives the same number.
        assert_eq!(rig.measure_read(1), dt);
    }

    #[test]
    fn bullet_create_hits_both_disks() {
        let rig = BulletRig::paper_1989();
        rig.measure_create_delete(4096);
        let mirror = rig.server.storage();
        assert_eq!(mirror.replica_count(), 2);
        assert_eq!(mirror.pending_background(), 0, "p=2 writes synchronously");
    }

    #[test]
    fn nfs_rig_read_is_per_block() {
        let rig = NfsRig::paper_1989();
        let msgs0 = rig.dispatcher.net().stats().get("net_messages");
        rig.measure_read(64 * 1024);
        let msgs = rig.dispatcher.net().stats().get("net_messages") - msgs0;
        // 2 ops warm-up/cleanup aside, a 64 KB read is 8 READ RPCs + 1
        // GETATTR, twice (warm-up + measured), plus create/remove traffic:
        // the point is it is *far* more than the Bullet client's 2.
        assert!(msgs > 20, "messages {msgs}");
    }

    #[test]
    fn rigs_are_deterministic() {
        let a = NfsRig::paper_1989().measure_create(8192);
        let b = NfsRig::paper_1989().measure_create(8192);
        assert_eq!(a, b);
    }
}
