//! The sharded-service ablation (ABL18): scaling, rebalance, and
//! degraded-shard behaviour of N Bullet servers behind one
//! [`amoeba_rpc::ShardRouter`].
//!
//! Three cell families, each a deterministic function of its seed:
//!
//! * [`run_scaling_suite`] — aggregate *cold* read bandwidth over a
//!   round-robin-placed pool as the shard count grows.  Costs settle in
//!   virtual time on two kinds of clock: one shared CPU clock (client
//!   lanes run in parallel, so the CPU side's makespan is the slowest
//!   lane) and one disk clock **per shard** (each shard's mirrored pair
//!   is its own serial resource).  `makespan = max(slowest lane, busiest
//!   shard's disk demand)` — sharding wins exactly because the disk
//!   demand splits across spindle sets, and the headline invariant is
//!   the ISSUE's: 8 shards ≥ 6× the 1-shard bandwidth.
//! * [`run_rebalance`] — moves a deterministic subset of live extents
//!   between shards through [`BulletShards::rebalance`] and proves no
//!   live byte went anywhere but between shards: the placement-
//!   independent digest is unchanged, the per-shard
//!   `shard_rebalance_extents` counters sum to exactly the moves made,
//!   and every pre-move capability still reads back on its new home.
//! * [`run_kill_shard`] — the ABL13-style fault cell: a full client
//!   workload through the router, one shard marked down mid-run.  Its
//!   objects must fail with [`Status::ShardDown`] (distinctly — never
//!   wrong bytes, never `NotFound`), the other N−1 must keep serving
//!   bit-identically, the router's per-shard accounting must match what
//!   the client observed, and recovery must restore every byte.
//!
//! [`outcome_table`] renders the cells; the string is the determinism
//! witness `ablation_shard` byte-compares across a full replay.

use std::sync::Arc;

use bytes::Bytes;

use amoeba_cap::{shard_of, Capability};
use amoeba_disk::{BlockDevice, MirroredDisk, RamDisk, SimDisk};
use amoeba_net::SimEthernet;
use amoeba_rpc::{Dispatcher, RpcClient, RpcServer, ShardRouter, Status};
use amoeba_sim::{capture, DetRng, HwProfile, Nanos, NetProfile, SimClock};
use bullet_core::counters::SHARD_REBALANCE_EXTENTS;
use bullet_core::{
    BulletClient, BulletConfig, BulletRpcServer, BulletServer, BulletShards, ShardSlot,
};

use crate::faults::Invariant;

/// The shard counts the on-push scaling suite sweeps.
pub const SCALING_COUNTS: [u32; 4] = [1, 2, 4, 8];
/// Files in the scaling pool (placed round-robin, so every shard holds
/// an equal slice).
const POOL: usize = 96;
/// Size of each pool file.
const FILE_SIZE: usize = 32 * 1024;
/// Client lanes issuing reads in parallel (CPU side).
const LANES: usize = 8;
/// Required speedup per shard: N shards must deliver at least
/// `N * SCALING_FLOOR` times the 1-shard bandwidth (6x at 8 shards, the
/// ISSUE's acceptance bar).
const SCALING_FLOOR: f64 = 0.75;

/// The outcome of one ABL18 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Cell family: `scaling`, `rebalance`, or `kill-shard`.
    pub cell: &'static str,
    /// Shard count the cell ran with.
    pub shards: u32,
    /// Seed that generated the workload (0 for the seedless scaling rows).
    pub seed: u64,
    /// Client operations issued.
    pub ops: u64,
    /// Name of the headline metric.
    pub metric_name: &'static str,
    /// The headline metric (MB/s, extents moved, ops refused).
    pub metric: f64,
    /// Simulated end time / makespan in milliseconds — the determinism
    /// witness' most sensitive column.
    pub end_ms: f64,
    /// The invariants checked, in order.
    pub invariants: Vec<Invariant>,
}

impl ShardOutcome {
    /// True when every invariant held.
    pub fn green(&self) -> bool {
        self.invariants.iter().all(|i| i.pass)
    }
}

fn inv(name: &'static str, pass: bool, detail: String) -> Invariant {
    Invariant { name, pass, detail }
}

/// Deterministic pool-file fill byte.
fn fill(n: usize) -> u8 {
    (n as u8).wrapping_mul(37).wrapping_add(11)
}

// ---------------------------------------------------------------------
// Scaling.
// ---------------------------------------------------------------------

/// One shard set on latency-modelled disks: a shared CPU clock plus one
/// disk clock per shard.
fn scaling_set(hw: HwProfile, count: u32) -> (BulletShards, Vec<SimClock>) {
    let cpu_clock = SimClock::new();
    let mut disk_clocks = Vec::with_capacity(count as usize);
    let mut servers = Vec::with_capacity(count as usize);
    for i in 0..count {
        let disk_clock = SimClock::new();
        let replicas: Vec<Arc<dyn BlockDevice>> = (0..2)
            .map(|_| {
                Arc::new(SimDisk::new(
                    RamDisk::new(1024, 65_536),
                    disk_clock.clone(),
                    hw.disk,
                )) as Arc<dyn BlockDevice>
            })
            .collect();
        let storage = MirroredDisk::new(replicas).expect("replica set is valid");
        let mut cfg = BulletConfig::small_test();
        cfg.min_inodes = 2048;
        cfg.cache_capacity = 12 << 20;
        cfg.rnode_slots = 2048;
        cfg.block_size = 1024;
        cfg.disk_blocks = 65_536;
        cfg.clock = cpu_clock.clone();
        cfg.cpu = hw.cpu;
        cfg.shard = ShardSlot::new(i, count);
        servers.push(Arc::new(
            BulletServer::format_on(cfg, storage).expect("formatting succeeds"),
        ));
        disk_clocks.push(disk_clock);
    }
    (
        BulletShards::new(servers).expect("validated shard set"),
        disk_clocks,
    )
}

/// One scaling row: cold aggregate read bandwidth at `count` shards.
fn run_scaling(hw: HwProfile, count: u32) -> (f64, ShardOutcome) {
    let (shards, disk_clocks) = scaling_set(hw, count);

    // Round-robin placement, exactly the router's service-cap policy:
    // every shard ends up holding POOL / count files of its own stripe.
    let caps: Vec<(usize, Capability)> = (0..POOL)
        .map(|n| {
            let home = n % count as usize;
            let cap = shards
                .shard(home)
                .create(Bytes::from(vec![fill(n); FILE_SIZE]), 2)
                .expect("pool create fits");
            (home, cap)
        })
        .collect();
    // Every read below must come off the platters.
    for s in shards.iter() {
        s.clear_cache();
    }

    // LANES client lanes, each reading its slice of the pool once; the
    // disk component of every read is attributed to the owning shard's
    // spindle pair.
    let mut lane_totals = [Nanos::ZERO; LANES];
    let mut shard_disk = vec![Nanos::ZERO; count as usize];
    let mut mismatches = 0u64;
    let mut reads = 0u64;
    for (n, (home, cap)) in caps.iter().enumerate() {
        assert_eq!(
            shard_of(cap.object.value(), count) as usize,
            *home,
            "striped minting keeps objects routable"
        );
        let (data, log) = capture(|| shards.shard(*home).read(cap).expect("pool file exists"));
        if !data.iter().all(|&b| b == fill(n)) {
            mismatches += 1;
        }
        lane_totals[n % LANES] += log.total() + hw.cpu.memcpy(data.len() as u64);
        shard_disk[*home] += log.charged_to(&disk_clocks[*home]);
        reads += 1;
    }

    let slowest_lane = lane_totals.iter().copied().max().unwrap_or(Nanos::ZERO);
    let busiest_disk = shard_disk.iter().copied().max().unwrap_or(Nanos::ZERO);
    let makespan = slowest_lane.max(busiest_disk);
    let mbps =
        (reads as f64 * FILE_SIZE as f64 / (1 << 20) as f64) / (makespan.as_ns() as f64 / 1e9);

    let outcome = ShardOutcome {
        cell: "scaling",
        shards: count,
        seed: 0,
        ops: reads,
        metric_name: "read MB/s",
        metric: mbps,
        end_ms: makespan.as_ms_f64(),
        invariants: vec![inv(
            "every byte read back intact",
            mismatches == 0,
            format!("{mismatches} mismatched files"),
        )],
    };
    (mbps, outcome)
}

/// The scaling suite: one row per entry of `counts` (which must start
/// at 1 — the baseline every speedup is measured against).  Each row
/// past the baseline carries the near-linear-scaling invariant:
/// aggregate bandwidth ≥ `SCALING_FLOOR` × shards × baseline.
pub fn run_scaling_suite(counts: &[u32]) -> Vec<ShardOutcome> {
    assert_eq!(counts.first(), Some(&1), "the suite needs the baseline");
    let hw = HwProfile::amoeba_1989();
    let mut base = 0.0f64;
    counts
        .iter()
        .map(|&count| {
            let (mbps, mut outcome) = run_scaling(hw, count);
            if count == 1 {
                base = mbps;
            } else {
                let need = SCALING_FLOOR * count as f64;
                outcome.invariants.push(inv(
                    "aggregate bandwidth scales near-linearly",
                    mbps >= need * base,
                    format!(
                        "{:.1} MB/s = {:.2}x baseline (need >= {:.2}x)",
                        mbps,
                        mbps / base,
                        need
                    ),
                ));
            }
            outcome
        })
        .collect()
}

// ---------------------------------------------------------------------
// Rebalance.
// ---------------------------------------------------------------------

/// The rebalance cell: seeded workload onto 4 shards, then every third
/// object migrates one shard to the right.  Proves byte preservation,
/// counter accounting, and pre-move capability routing.
pub fn run_rebalance(seed: u64) -> ShardOutcome {
    const SHARDS: u32 = 4;
    let clock = SimClock::new();
    let mut cfg = BulletConfig::small_test();
    cfg.clock = clock.clone();
    let shards = BulletShards::format(&cfg, SHARDS, 2).expect("shard set formats");

    let mut rng = DetRng::new(seed);
    let mut model: Vec<(Capability, usize)> = Vec::new(); // (cap, current shard)
    for n in 0..60usize {
        let size = 1 + rng.next_below(4000) as usize;
        let home = n % SHARDS as usize;
        let cap = shards
            .shard(home)
            .create(Bytes::from(vec![fill(n); size]), 1)
            .expect("pool create fits");
        model.push((cap, home));
    }
    let digest_before = shards.live_digest().expect("digest");
    let bytes_before = shards.total_live_bytes().expect("bytes");

    let mut moved = 0u64;
    for (n, (cap, at)) in model.iter_mut().enumerate() {
        if n % 3 != 0 {
            continue;
        }
        let to = (*at + 1) % SHARDS as usize;
        shards
            .rebalance(*at, to, cap.object.value())
            .expect("rebalance succeeds");
        *at = to;
        moved += 1;
    }

    let digest_after = shards.live_digest().expect("digest");
    let bytes_after = shards.total_live_bytes().expect("bytes");
    let counted: u64 = (0..SHARDS as usize)
        .map(|i| shards.shard(i).stats().get(SHARD_REBALANCE_EXTENTS))
        .sum();
    let mut misplaced = 0u64;
    let mut mismatches = 0u64;
    for (n, (cap, at)) in model.iter().enumerate() {
        match shards.shard(*at).read(cap) {
            Ok(data) if data.iter().all(|&b| b == fill(n)) => {}
            Ok(_) => mismatches += 1,
            Err(_) => misplaced += 1,
        }
    }

    ShardOutcome {
        cell: "rebalance",
        shards: SHARDS,
        seed,
        ops: model.len() as u64,
        metric_name: "extents moved",
        metric: moved as f64,
        end_ms: clock.now().as_ms_f64(),
        invariants: vec![
            inv(
                "every live byte preserved",
                digest_after == digest_before && bytes_after == bytes_before,
                format!(
                    "digest {:016x} -> {:016x}, bytes {} -> {}",
                    digest_before, digest_after, bytes_before, bytes_after
                ),
            ),
            inv(
                "rebalance counters account every move",
                counted == moved,
                format!("counted={counted} moved={moved}"),
            ),
            inv(
                "every pre-move capability still serves",
                misplaced == 0 && mismatches == 0,
                format!("misplaced={misplaced} mismatches={mismatches}"),
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// Kill-one-shard.
// ---------------------------------------------------------------------

/// The degraded-shard cell: a client workload through the router with
/// one shard (chosen by the seed) marked down mid-run.
pub fn run_kill_shard(seed: u64) -> ShardOutcome {
    const SHARDS: u32 = 4;
    let clock = SimClock::new();
    let mut cfg = BulletConfig::small_test();
    cfg.clock = clock.clone();
    let shards = BulletShards::format(&cfg, SHARDS, 2).expect("shard set formats");
    let router = Arc::new(ShardRouter::new(
        shards
            .iter()
            .map(|s| BulletRpcServer::new(s.clone()) as Arc<dyn RpcServer>)
            .collect(),
    ));
    let net = SimEthernet::new(clock.clone(), NetProfile::ethernet_10mbit());
    let dispatcher = Dispatcher::new(net);
    dispatcher.register(router.clone());
    let client = BulletClient::new(RpcClient::new(dispatcher), shards.shard(0).port());

    let mut rng = DetRng::new(seed ^ 0x5a5a);
    let files: Vec<(Capability, Vec<u8>)> = (0..24usize)
        .map(|n| {
            let data = vec![fill(n); 64 + rng.next_below(2000) as usize];
            let cap = client
                .create(Bytes::from(data.clone()), 1)
                .expect("create through the router");
            (cap, data)
        })
        .collect();
    let ops = files.len() as u64 * 3; // creates + degraded sweep + recovery sweep

    let victim = (seed % SHARDS as u64) as usize;
    router.set_down(victim, true);
    let on_victim = |cap: &Capability| shard_of(cap.object.value(), SHARDS) as usize == victim;

    let mut refused = 0u64;
    let mut served = 0u64;
    let mut wrong_status = 0u64;
    let mut mismatches = 0u64;
    for (cap, expect) in &files {
        match (on_victim(cap), client.read(cap)) {
            (true, Err(Status::ShardDown)) => refused += 1,
            (true, _) => wrong_status += 1,
            (false, Ok(data)) if data == *expect => served += 1,
            (false, _) => mismatches += 1,
        }
    }
    let expected_refused = files.iter().filter(|(c, _)| on_victim(c)).count() as u64;

    router.set_down(victim, false);
    let mut recovered = 0u64;
    for (cap, expect) in &files {
        if client.read(cap).is_ok_and(|d| d == *expect) {
            recovered += 1;
        }
    }

    ShardOutcome {
        cell: "kill-shard",
        shards: SHARDS,
        seed,
        ops,
        metric_name: "ops refused",
        metric: refused as f64,
        end_ms: clock.now().as_ms_f64(),
        invariants: vec![
            inv(
                "down shard fails distinctly",
                refused == expected_refused && wrong_status == 0,
                format!(
                    "refused={refused} expected={expected_refused} wrong_status={wrong_status}"
                ),
            ),
            inv(
                "survivors serve bit-identically",
                served == files.len() as u64 - expected_refused && mismatches == 0,
                format!("served={served} mismatches={mismatches}"),
            ),
            inv(
                "router accounting matches the client",
                router.degraded(victim) == refused,
                format!(
                    "router_degraded={} client_refused={refused}",
                    router.degraded(victim)
                ),
            ),
            inv(
                "recovery restores every byte",
                recovered == files.len() as u64,
                format!("recovered={recovered}/{}", files.len()),
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

/// Renders the cell table.  The string is ABL18's determinism witness:
/// a replayed cell must reproduce its row byte for byte.
pub fn outcome_table(outcomes: &[ShardOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>6} {:>6} {:>6} {:>12} {:<16} {:>10} {:>12}  {}\n",
        "cell", "shards", "seed", "ops", "metric", "", "sim_ms", "invariants", "result"
    ));
    for o in outcomes {
        let held = o.invariants.iter().filter(|i| i.pass).count();
        out.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>6} {:>12.1} {:<16} {:>10.3} {:>9}/{:<2}  {}\n",
            o.cell,
            o.shards,
            o.seed,
            o.ops,
            o.metric,
            o.metric_name,
            o.end_ms,
            held,
            o.invariants.len(),
            if o.green() { "PASS" } else { "FAIL" },
        ));
    }
    for o in outcomes.iter().filter(|o| !o.green()) {
        for i in o.invariants.iter().filter(|i| !i.pass) {
            out.push_str(&format!(
                "  FAILED {} shards={} seed {}: {} ({})\n",
                o.cell, o.shards, o.seed, i.name, i.detail
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_pair_is_green_and_deterministic() {
        // The reduced CI cell: baseline plus one scaled point.
        let a = run_scaling_suite(&[1, 2]);
        assert!(a.iter().all(|o| o.green()), "{}", outcome_table(&a));
        let b = run_scaling_suite(&[1, 2]);
        assert_eq!(outcome_table(&a), outcome_table(&b));
    }

    #[test]
    fn rebalance_cell_is_green_and_deterministic() {
        let a = run_rebalance(1);
        assert!(a.green(), "{}", outcome_table(std::slice::from_ref(&a)));
        let b = run_rebalance(1);
        assert_eq!(
            outcome_table(std::slice::from_ref(&a)),
            outcome_table(std::slice::from_ref(&b))
        );
    }

    #[test]
    fn kill_shard_cell_is_green_and_deterministic() {
        let a = run_kill_shard(1);
        assert!(a.green(), "{}", outcome_table(std::slice::from_ref(&a)));
        let b = run_kill_shard(1);
        assert_eq!(
            outcome_table(std::slice::from_ref(&a)),
            outcome_table(std::slice::from_ref(&b))
        );
    }
}
