//! Seeded fault-injection campaigns (ABL13).
//!
//! Three fault classes, each a deterministic function of its seed on the
//! simulated clock — rerunning a `(class, seed)` cell reproduces the
//! exact fault schedule, byte for byte:
//!
//! * [`FaultClass::MirrorFail`] — a mirrored disk dies mid-workload:
//!   cold reads must fail over to the survivor, creates must degrade to
//!   one replica without failing, and a `resync` after reattach must
//!   leave the replicas bit-identical.
//! * [`FaultClass::CrashRecovery`] — a crash drops unsynced background
//!   writes and a torn inode, then the startup consistency scan runs:
//!   committed (P ≥ 1) files survive bit-identical, P = 0 tail creates
//!   are lost cleanly (never read back as garbage), and the torn inode
//!   is reaped.
//! * [`FaultClass::LossyWire`] — a [`FaultyWire`] drops, delays,
//!   duplicates, and truncates messages while a [`RetryClient`] pushes
//!   a create/read/delete mix through it: every operation must
//!   eventually succeed, contents stay bit-identical, and the at-most-
//!   once cache must keep duplicated CREATEs from allocating twice.
//!
//! [`run_class`] executes one cell and returns a [`CampaignOutcome`]
//! whose rendering ([`outcome_table`]) is the determinism witness the
//! `ablation_faults` binary compares across replays.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};

use amoeba_cap::{Capability, CAP_WIRE_LEN};
use amoeba_disk::{BlockDevice, FaultyDisk, MirroredDisk, RamDisk, SimDisk};
use amoeba_net::SimEthernet;
use amoeba_rpc::fault::{FAULT_REQUEST_DUPS, RPC_GIVEUPS, RPC_RETRIES};
use amoeba_rpc::{Dispatcher, FaultPlan, FaultyWire, RetryClient, RetryPolicy, Status};
use amoeba_sim::{DetRng, HwProfile, SimClock};
use bullet_core::counters::{DEDUP_HITS, FAILOVER_READS, RECOVERY_REPAIRED_INODES};
use bullet_core::table::RepairPolicy;
use bullet_core::{commands, BulletConfig, BulletRpcServer, BulletServer, DiskDescriptor, Inode};

/// The on-push seed matrix (the nightly sweep widens this).
pub const PR_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

/// One fault class of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A mirrored disk fails mid-workload and is later resynced.
    MirrorFail,
    /// A crash drops unsynced writes; the consistency scan recovers.
    CrashRecovery,
    /// A lossy wire under a retrying at-most-once client.
    LossyWire,
}

impl FaultClass {
    /// Every class, in campaign order.
    pub const ALL: [FaultClass; 3] = [
        FaultClass::MirrorFail,
        FaultClass::CrashRecovery,
        FaultClass::LossyWire,
    ];

    /// The class's stable CLI / table name.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::MirrorFail => "mirror-fail",
            FaultClass::CrashRecovery => "crash-recovery",
            FaultClass::LossyWire => "lossy-wire",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// One named invariant checked by a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    /// What must hold.
    pub name: &'static str,
    /// Whether it held.
    pub pass: bool,
    /// Deterministic supporting detail (counts, never addresses).
    pub detail: String,
}

impl Invariant {
    fn new(name: &'static str, pass: bool, detail: String) -> Invariant {
        Invariant { name, pass, detail }
    }
}

/// The outcome of one `(class, seed)` campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// The fault class exercised.
    pub class: &'static str,
    /// The seed that generated the workload and the fault schedule.
    pub seed: u64,
    /// Client operations issued.
    pub ops_attempted: u64,
    /// Retransmissions the client needed (lossy-wire only).
    pub ops_retried: u64,
    /// Operations that (eventually) succeeded.
    pub ops_succeeded: u64,
    /// Faults injected across the run.
    pub faults_injected: u64,
    /// Simulated end time in milliseconds — part of the determinism
    /// witness: a divergent schedule shows up here first.
    pub end_ms: f64,
    /// The invariants checked, in order.
    pub invariants: Vec<Invariant>,
}

impl CampaignOutcome {
    /// True when every invariant held.
    pub fn green(&self) -> bool {
        self.invariants.iter().all(|i| i.pass)
    }
}

/// A small, fast campaign configuration: 512-byte blocks, 2 MB disks.
fn campaign_config(clock: &SimClock) -> BulletConfig {
    let mut cfg = BulletConfig::small_test();
    cfg.clock = clock.clone();
    cfg
}

/// Runs one campaign cell.  Deterministic: the outcome (including the
/// rendered table row) is a pure function of `(class, seed)`.
pub fn run_class(class: FaultClass, seed: u64) -> CampaignOutcome {
    match class {
        FaultClass::MirrorFail => run_mirror_fail(seed),
        FaultClass::CrashRecovery => run_crash_recovery(seed),
        FaultClass::LossyWire => run_lossy_wire(seed),
    }
}

/// Deterministic file content for workload step `i`.
fn content(rng: &mut DetRng, len: usize) -> Bytes {
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    Bytes::from(buf)
}

// ---------------------------------------------------------------------
// Class 1: mirrored-disk failure mid-workload.
// ---------------------------------------------------------------------

fn run_mirror_fail(seed: u64) -> CampaignOutcome {
    let clock = SimClock::new();
    let hw = HwProfile::amoeba_1989();
    let cfg = campaign_config(&clock);
    let disks: Vec<Arc<FaultyDisk<SimDisk<RamDisk>>>> = (0..2)
        .map(|_| {
            Arc::new(FaultyDisk::new(SimDisk::new(
                RamDisk::new(cfg.block_size, cfg.disk_blocks),
                clock.clone(),
                hw.disk,
            )))
        })
        .collect();
    // The seed decides which physical disk sits in the primary slot;
    // the victim is always the mirror's replica 0, so cold reads are
    // guaranteed to trip over the corpse and fail over.
    let mut rng = DetRng::new(seed ^ 0x6d69_7272);
    let victim = rng.next_below(2) as usize;
    let order = [victim, 1 - victim];
    let storage = MirroredDisk::new(
        order
            .iter()
            .map(|&i| disks[i].clone() as Arc<dyn BlockDevice>)
            .collect(),
    )
    .expect("mirror");
    let server = BulletServer::format_on(cfg, storage).expect("format");
    let mut files: Vec<(Capability, Bytes)> = Vec::new();
    let mut attempted = 0u64;
    let mut succeeded = 0u64;
    let mut mismatches = 0u64;
    let mut degraded_create_failures = 0u64;

    // Phase 1: a healthy workload.
    for _ in 0..12 {
        let len = 1 + rng.next_below(8 * 1024) as usize;
        let data = content(&mut rng, len);
        attempted += 1;
        match server.create(data.clone(), 2) {
            Ok(cap) => {
                succeeded += 1;
                files.push((cap, data));
            }
            Err(_) => mismatches += 1,
        }
    }

    // The primary replica dies.
    disks[victim].fail_now();

    // Phase 2: degraded. Cold reads must fail over; creates must still
    // commit on the survivor.
    server.clear_cache();
    for (cap, expect) in &files {
        attempted += 1;
        match server.read(cap) {
            Ok(got) if got == *expect => succeeded += 1,
            _ => mismatches += 1,
        }
    }
    for _ in 0..6 {
        let len = 1 + rng.next_below(8 * 1024) as usize;
        let data = content(&mut rng, len);
        attempted += 1;
        match server.create(data.clone(), 2) {
            Ok(cap) => {
                succeeded += 1;
                files.push((cap, data));
            }
            Err(_) => degraded_create_failures += 1,
        }
    }

    // Reattach, flush, resync.
    disks[victim].repair();
    server.sync().expect("flush background writes");
    let resync = server
        .storage()
        .resync_replica(0, 64) // the victim sits in the mirror's slot 0
        .map(|()| true)
        .unwrap_or(false);

    // Every committed file must still read bit-identical.
    server.clear_cache();
    for (cap, expect) in &files {
        attempted += 1;
        match server.read(cap) {
            Ok(got) if got == *expect => succeeded += 1,
            _ => mismatches += 1,
        }
    }

    // Replicas must be bit-identical after the resync.
    let bytes_total = (disks[0].num_blocks() * disks[0].block_size() as u64) as usize;
    let mut images: Vec<Vec<u8>> = Vec::new();
    for d in &disks {
        let mut img = vec![0u8; bytes_total];
        d.read_blocks(0, &mut img).expect("replica dump");
        images.push(img);
    }
    let replicas_identical = images[0] == images[1];

    let failovers = server.stats().get(FAILOVER_READS);
    let outcome = CampaignOutcome {
        class: FaultClass::MirrorFail.name(),
        seed,
        ops_attempted: attempted,
        ops_retried: 0,
        ops_succeeded: succeeded,
        faults_injected: 1, // one replica failure
        end_ms: clock.now().as_ms_f64(),
        invariants: vec![
            Invariant::new(
                "no lost committed file",
                mismatches == 0,
                format!("{mismatches} mismatched reads"),
            ),
            Invariant::new(
                "degraded creates succeed",
                degraded_create_failures == 0,
                format!("{degraded_create_failures} failures"),
            ),
            Invariant::new(
                "reads failed over",
                failovers > 0,
                format!("failover_reads={failovers}"),
            ),
            Invariant::new(
                "replicas bit-identical after resync",
                resync && replicas_identical,
                format!("resync_ok={resync} identical={replicas_identical}"),
            ),
        ],
    };
    outcome
}

// ---------------------------------------------------------------------
// Class 2: crash-drop of unsynced writes + startup consistency scan.
// ---------------------------------------------------------------------

fn run_crash_recovery(seed: u64) -> CampaignOutcome {
    let clock = SimClock::new();
    let hw = HwProfile::amoeba_1989();
    let mut cfg = campaign_config(&clock);
    cfg.repair = RepairPolicy::ZeroBad;
    let replicas: Vec<Arc<dyn BlockDevice>> = (0..2)
        .map(|_| {
            Arc::new(SimDisk::new(
                RamDisk::new(cfg.block_size, cfg.disk_blocks),
                clock.clone(),
                hw.disk,
            )) as Arc<dyn BlockDevice>
        })
        .collect();
    let storage = MirroredDisk::new(replicas).expect("mirror");
    let server = BulletServer::format_on(cfg.clone(), storage).expect("format");

    let mut rng = DetRng::new(seed ^ 0x6372_6173);
    let mut committed: Vec<(Capability, Bytes, u32)> = Vec::new();
    let mut attempted = 0u64;
    let mut succeeded = 0u64;

    // Committed workload: P-FACTOR 1 and 2 creates, a few deletes.
    for i in 0..12u64 {
        let p = 1 + rng.next_below(2) as u32;
        let len = 1 + rng.next_below(6 * 1024) as usize;
        let data = content(&mut rng, len);
        attempted += 1;
        if let Ok(cap) = server.create(data.clone(), p) {
            succeeded += 1;
            committed.push((cap, data, p));
        }
        if i % 5 == 4 && !committed.is_empty() {
            let gone = committed.remove(rng.next_below(committed.len() as u64) as usize);
            attempted += 1;
            if server.delete(&gone.0).is_ok() {
                succeeded += 1;
            }
        }
    }

    // The volatile tail: P = 0 creates directly before the crash, so
    // their data and inodes are still in the background queues.
    let mut volatile: Vec<Capability> = Vec::new();
    for _ in 0..1 + rng.next_below(3) {
        let len = 1 + rng.next_below(2 * 1024) as usize;
        let data = content(&mut rng, len);
        attempted += 1;
        if let Ok(cap) = server.create(data, 0) {
            succeeded += 1;
            volatile.push(cap);
        }
    }

    // Crash: queued background writes vanish.  A torn inode lands on the
    // platters too — the footprint of a create interrupted mid-commit —
    // pointing past the end of the data area.
    let storage = server.crash();
    let block_size = cfg.block_size;
    let mut block0 = vec![0u8; block_size as usize];
    storage
        .read_blocks(0, &mut block0)
        .expect("read descriptor");
    let desc =
        DiskDescriptor::decode(block0[..16].try_into().expect("16 bytes")).expect("descriptor");
    // The highest inode slot lives at the tail of the last control
    // block; the campaign's workload never grows that far, so it is
    // guaranteed free.
    let torn_block = desc.control_blocks as u64 - 1;
    let torn = Inode {
        random: 0xdead_beef_cafe,
        index: 0,
        start_block: cfg.disk_blocks as u32 - 2,
        size_bytes: block_size * 8, // extends past the data area
    };
    let mut blk = vec![0u8; block_size as usize];
    storage
        .read_blocks(torn_block, &mut blk)
        .expect("read inode block");
    let slot_off = block_size as usize - 16;
    blk[slot_off..slot_off + 16].copy_from_slice(&torn.encode());
    storage
        .write_blocks(torn_block, &blk)
        .expect("plant torn inode");

    // Recovery: the paper's startup sequence under ZeroBad.
    let server = BulletServer::recover(cfg, storage).expect("recover");
    let repaired = server.stats().get(RECOVERY_REPAIRED_INODES);

    let mut mismatches = 0u64;
    for (cap, expect, _p) in &committed {
        attempted += 1;
        match server.read(cap) {
            Ok(got) if got == *expect => succeeded += 1,
            _ => mismatches += 1,
        }
    }
    // P = 0 files are allowed to be gone — but must never read garbage.
    let mut volatile_garbage = 0u64;
    let mut volatile_lost = 0u64;
    for cap in &volatile {
        match server.read(cap) {
            Err(_) => volatile_lost += 1,
            Ok(_) => volatile_garbage += 1, // survived whole: also fine, but
                                            // counted separately below
        }
    }
    // A surviving p=0 file must at least verify its capability; a served
    // read proved cap + content checks, so "garbage" here means only
    // that it unexpectedly survived — tolerated, not an invariant
    // failure.  The invariant is that recovery never *invents* data:
    let live = server.live_files() as u64;
    let expected_live = committed.len() as u64 + volatile_garbage;

    CampaignOutcome {
        class: FaultClass::CrashRecovery.name(),
        seed,
        ops_attempted: attempted,
        ops_retried: 0,
        ops_succeeded: succeeded,
        faults_injected: 1 + volatile_lost, // the crash + each dropped create
        end_ms: clock.now().as_ms_f64(),
        invariants: vec![
            Invariant::new(
                "committed files survive bit-identical",
                mismatches == 0,
                format!("{mismatches} mismatches of {}", committed.len()),
            ),
            Invariant::new(
                "torn inode reaped by the scan",
                repaired >= 1,
                format!("recovery_repaired_inodes={repaired}"),
            ),
            Invariant::new(
                "volatile tail lost cleanly or survived whole",
                volatile_lost + volatile_garbage == volatile.len() as u64,
                format!("lost={volatile_lost} survived={volatile_garbage}"),
            ),
            Invariant::new(
                "live-file census matches",
                live == expected_live,
                format!("live={live} expected={expected_live}"),
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// Class 3: lossy-wire soak under retry + at-most-once.
// ---------------------------------------------------------------------

fn run_lossy_wire(seed: u64) -> CampaignOutcome {
    let clock = SimClock::new();
    let hw = HwProfile::amoeba_1989();
    let cfg = campaign_config(&clock);
    let block_size = cfg.block_size as u64;
    let replicas: Vec<Arc<dyn BlockDevice>> = (0..2)
        .map(|_| {
            Arc::new(SimDisk::new(
                RamDisk::new(cfg.block_size, cfg.disk_blocks),
                clock.clone(),
                hw.disk,
            )) as Arc<dyn BlockDevice>
        })
        .collect();
    let storage = MirroredDisk::new(replicas).expect("mirror");
    let server = Arc::new(BulletServer::format_on(cfg, storage).expect("format"));
    let rpc = BulletRpcServer::new(server.clone());
    let net = SimEthernet::with_load(clock.clone(), hw.net, 1.0);
    let dispatcher = Dispatcher::new(net);
    dispatcher.register(rpc.clone());

    let wire = FaultyWire::new(
        dispatcher,
        clock.clone(),
        FaultPlan::lossy(0.8),
        seed ^ 0x7769_7265,
    );
    let client = RetryClient::new(wire.clone(), RetryPolicy::standard(), 1, seed ^ 0x6a69_7474);
    let mut rng = DetRng::new(seed ^ 0x6c6f_7373);

    let service_cap = {
        let mut c = Capability::null();
        c.port = server.port();
        c
    };
    let create = |data: Bytes| -> Result<Capability, Status> {
        let mut params = BytesMut::with_capacity(4);
        params.put_u32(2);
        let reply = client.trans(service_cap, commands::CREATE, params.freeze(), data)?;
        if reply.params.len() < CAP_WIRE_LEN {
            return Err(Status::BadParam);
        }
        Capability::from_wire(&reply.params[..CAP_WIRE_LEN]).map_err(|_| Status::BadParam)
    };

    let mut files: BTreeMap<u64, (Capability, Bytes)> = BTreeMap::new();
    let mut next_id = 0u64;
    let mut attempted = 0u64;
    let mut succeeded = 0u64;
    let mut failures = 0u64;
    let mut mismatches = 0u64;

    for _ in 0..40 {
        let op = rng.next_below(10);
        if op < 4 || files.is_empty() {
            // Create: mostly small, sometimes bigger than one segment so
            // frame faults have something to hit.
            let len = if rng.next_below(5) == 0 {
                (64 * 1024 + 1) + rng.next_below(64 * 1024) as usize
            } else {
                1 + rng.next_below(12 * 1024) as usize
            };
            let data = content(&mut rng, len);
            attempted += 1;
            match create(data.clone()) {
                Ok(cap) => {
                    succeeded += 1;
                    files.insert(next_id, (cap, data));
                    next_id += 1;
                }
                Err(_) => failures += 1,
            }
        } else if op < 8 {
            // Read a random live file and verify its bytes.
            let keys: Vec<u64> = files.keys().copied().collect();
            let key = keys[rng.next_below(keys.len() as u64) as usize];
            let (cap, expect) = files.get(&key).expect("key is live").clone();
            attempted += 1;
            match client.trans(cap, commands::READ, Bytes::new(), Bytes::new()) {
                Ok(reply) if reply.data == expect => succeeded += 1,
                Ok(_) => mismatches += 1,
                Err(_) => failures += 1,
            }
        } else {
            // Delete a random live file.
            let keys: Vec<u64> = files.keys().copied().collect();
            let key = keys[rng.next_below(keys.len() as u64) as usize];
            let (cap, _) = files.remove(&key).expect("key is live");
            attempted += 1;
            match client.trans(cap, commands::DELETE, Bytes::new(), Bytes::new()) {
                Ok(_) => succeeded += 1,
                Err(_) => failures += 1,
            }
        }
    }

    // After the storm: every live file must read back bit-identical.
    for (cap, expect) in files.values() {
        attempted += 1;
        match client.trans(*cap, commands::READ, Bytes::new(), Bytes::new()) {
            Ok(reply) if reply.data == *expect => succeeded += 1,
            Ok(_) => mismatches += 1,
            Err(_) => failures += 1,
        }
    }

    // No duplicate allocation: the server holds exactly the expected
    // files, and the data-area census matches the expected footprint.
    server.sync().expect("flush");
    let live = server.live_files() as u64;
    let expected_live = files.len() as u64;
    let frag = server.disk_frag_report();
    let expected_used: u64 = files
        .values()
        .map(|(_, d)| (d.len() as u64).div_ceil(block_size).max(1))
        .sum();
    let census_ok = frag.total - frag.free == expected_used;

    let dedup_hits = rpc.dedup_stats().get(DEDUP_HITS);
    let dup_faults = wire.stats().get(FAULT_REQUEST_DUPS);
    let giveups = client.stats().get(RPC_GIVEUPS);

    CampaignOutcome {
        class: FaultClass::LossyWire.name(),
        seed,
        ops_attempted: attempted,
        ops_retried: client.stats().get(RPC_RETRIES),
        ops_succeeded: succeeded,
        faults_injected: wire.faults_injected(),
        end_ms: clock.now().as_ms_f64(),
        invariants: vec![
            Invariant::new(
                "every op eventually succeeds",
                failures == 0 && giveups == 0,
                format!("failures={failures} giveups={giveups}"),
            ),
            Invariant::new(
                "contents bit-identical",
                mismatches == 0,
                format!("{mismatches} mismatches"),
            ),
            Invariant::new(
                "no duplicate allocation",
                live == expected_live && census_ok,
                format!(
                    "live={live} expected={expected_live} used_blocks={} expected_blocks={expected_used}",
                    frag.total - frag.free
                ),
            ),
            Invariant::new(
                "duplicates collapsed by dedup",
                dedup_hits >= dup_faults,
                format!("dedup_hits={dedup_hits} duplicate_faults={dup_faults}"),
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

/// Renders the per-fault-class outcome table.  The string is the
/// campaign's determinism witness: a replayed `(class, seed)` cell must
/// reproduce its rows byte for byte.
pub fn outcome_table(outcomes: &[CampaignOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>6} {:>6} {:>8} {:>6} {:>7} {:>10} {:>12}  {}\n",
        "class", "seed", "ops", "retried", "ok", "faults", "sim_ms", "invariants", "result"
    ));
    for o in outcomes {
        let held = o.invariants.iter().filter(|i| i.pass).count();
        out.push_str(&format!(
            "{:<16} {:>6} {:>6} {:>8} {:>6} {:>7} {:>10.3} {:>9}/{:<2}  {}\n",
            o.class,
            o.seed,
            o.ops_attempted,
            o.ops_retried,
            o.ops_succeeded,
            o.faults_injected,
            o.end_ms,
            held,
            o.invariants.len(),
            if o.green() { "PASS" } else { "FAIL" },
        ));
    }
    for o in outcomes.iter().filter(|o| !o.green()) {
        for inv in o.invariants.iter().filter(|i| !i.pass) {
            out.push_str(&format!(
                "  FAILED {} seed {}: {} ({})\n",
                o.class, o.seed, inv.name, inv.detail
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_is_green_and_deterministic_on_seed_1() {
        for class in FaultClass::ALL {
            let a = run_class(class, 1);
            assert!(
                a.green(),
                "{} seed 1 failed: {}",
                class.name(),
                outcome_table(std::slice::from_ref(&a))
            );
            let b = run_class(class, 1);
            assert_eq!(
                outcome_table(std::slice::from_ref(&a)),
                outcome_table(std::slice::from_ref(&b)),
                "{} is not deterministic",
                class.name()
            );
        }
    }

    #[test]
    fn class_names_roundtrip() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::parse(class.name()), Some(class));
        }
        assert_eq!(FaultClass::parse("nope"), None);
    }
}
