//! The benchmark harness: everything needed to regenerate the paper's
//! tables and figures.
//!
//! * [`rig`] — assembled simulation stacks: a Bullet server on two
//!   latency-modelled mirrored disks behind the simulated Ethernet, and
//!   the NFS-like baseline on one disk behind the same Ethernet.
//! * [`workload`] — the file-size distribution from the literature the
//!   paper cites (median 1 KB, 99 % under 64 KB), an operation-mix
//!   generator (75 % whole-file reads), and the Zipf popularity-skew
//!   small-file storm behind the group-commit ablation (ABL15).
//! * [`check`] — the regression-gate machinery behind `report --check`:
//!   baseline-key lookup that *fails loudly* when a key is missing, and
//!   floor/ceiling comparisons with human-readable errors.
//! * [`table`] — measurement loops and the delay/bandwidth table
//!   formatting used by every `fig*`/`ablation_*` binary, plus the §4
//!   claim checks the `comparison` binary (and the integration tests)
//!   evaluate.
//! * [`faults`] — the seeded fault-injection campaigns (ABL13):
//!   mirrored-disk failure, crash-recovery, and lossy-wire soak, each a
//!   deterministic function of its seed with an invariant checklist.
//! * [`schedbench`] — the seek-aware disk-scheduler ablation (ABL14):
//!   an 8-client closed-loop mixed workload over the deterministic
//!   virtual-time arm simulation, comparing FIFO/SCAN/SPTF, plus the
//!   coalescing on/off knee on sequential creates.
//! * [`evsim`] — the virtual-time event-engine cache ablation (ABL16):
//!   10k+ simulated clients over ~1M files on one [`amoeba_sim::EventQueue`],
//!   squeezing the real `FileCache` through LRU/FIFO/SegmentedLRU/2Q
//!   under Zipf and scan-injection workloads.
//! * [`shardbench`] — the sharded-service ablation (ABL18): aggregate
//!   read bandwidth scaling across 1–8 shards behind the
//!   [`amoeba_rpc::ShardRouter`], live-byte preservation under
//!   rebalancing, and the kill-one-shard degraded-service cell.
//! * [`tierbench`] — the tiered-storage ablation (ABL19): an aged Zipf
//!   population demoted to the WORM archive by the ranked maintenance
//!   scheduler, byte-identical demotion/recall, and the hot-set p99
//!   interference gate against an archive-less baseline.
//!
//! Binaries (see DESIGN.md's experiment index):
//! `fig1_layout`, `fig2_bullet`, `fig3_nfs`, `comparison`,
//! `ablation_cache`, `ablation_contiguity`, `ablation_pfactor`,
//! `ablation_fragmentation`, `ablation_logserver`, `ablation_faults`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod evsim;
pub mod faults;
pub mod monitor;
pub mod rig;
pub mod schedbench;
pub mod shardbench;
pub mod table;
pub mod tierbench;
pub mod workload;

pub use check::CheckError;
pub use evsim::{EvsimConfig, EvsimOutcome, EvsimRun};
pub use faults::{CampaignOutcome, FaultClass, Invariant};
pub use rig::{BulletRig, NfsRig, SchedSummary};
pub use schedbench::{KneeRow, MixedRun, PolicyOutcome};
pub use shardbench::ShardOutcome;
pub use table::{bandwidth_kb_s, Claims, Row, SIZES};
pub use tierbench::{TierConfig, TierOutcome};
pub use workload::{small_file_storm, SizeDistribution, WorkloadMix, WorkloadOp, ZipfSampler};
