//! Table generation and the §4 claim checks.

use amoeba_sim::Nanos;

use crate::rig::{BulletRig, NfsRig};

/// The file-size column of Figs. 2 and 3.
///
/// The scraped paper text preserves six rows ("1 byte … 1 Mbyte") but
/// lost the middle values; we use the canonical spread {1 B, 64 B,
/// 512 B, 4 KB, 64 KB, 1 MB} (documented inference — see DESIGN.md §4).
pub const SIZES: [usize; 6] = [1, 64, 512, 4096, 65_536, 1 << 20];

/// Human label for a size row.
pub fn size_label(size: usize) -> String {
    match size {
        s if s < 1024 => format!("{s} byte{}", if s == 1 { "" } else { "s" }),
        s if s < (1 << 20) => format!("{} Kbytes", s / 1024),
        s => format!("{} Mbyte", s / (1 << 20)),
    }
}

/// Bandwidth in KB/s for `size` bytes moved in `dt`.
pub fn bandwidth_kb_s(size: usize, dt: Nanos) -> f64 {
    if dt == Nanos::ZERO {
        return f64::INFINITY;
    }
    size as f64 / 1024.0 / dt.as_secs_f64()
}

/// One measured table row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// File size in bytes.
    pub size: usize,
    /// Delay of the first operation column (READ).
    pub read: Nanos,
    /// Delay of the second column (CREATE+DELETE for Bullet, CREATE for
    /// NFS).
    pub write: Nanos,
}

impl Row {
    /// READ bandwidth in KB/s.
    pub fn read_bw(&self) -> f64 {
        bandwidth_kb_s(self.size, self.read)
    }

    /// Write-column bandwidth in KB/s.
    pub fn write_bw(&self) -> f64 {
        bandwidth_kb_s(self.size, self.write)
    }
}

/// Measures Fig. 2: the Bullet table over all sizes.
pub fn measure_bullet(rig: &BulletRig) -> Vec<Row> {
    SIZES
        .iter()
        .map(|&size| Row {
            size,
            read: rig.measure_read(size),
            write: rig.measure_create_delete(size),
        })
        .collect()
}

/// Measures Fig. 3: the NFS table over all sizes.
pub fn measure_nfs(rig: &NfsRig) -> Vec<Row> {
    SIZES
        .iter()
        .map(|&size| Row {
            size,
            read: rig.measure_read(size),
            write: rig.measure_create(size),
        })
        .collect()
}

/// Prints a Fig. 2/3-style pair of tables (delay then bandwidth).
pub fn print_tables(title: &str, col2: &str, rows: &[Row]) {
    println!("{title}");
    println!("  Delay (msec)");
    println!("  {:>12}  {:>12}  {:>12}", "File Size", "READ", col2);
    for r in rows {
        println!(
            "  {:>12}  {:>12.1}  {:>12.1}",
            size_label(r.size),
            r.read.as_ms_f64(),
            r.write.as_ms_f64()
        );
    }
    println!("  Bandwidth (Kbytes/sec)");
    println!("  {:>12}  {:>12}  {:>12}", "File Size", "READ", col2);
    for r in rows {
        println!(
            "  {:>12}  {:>12.1}  {:>12.1}",
            size_label(r.size),
            r.read_bw(),
            r.write_bw()
        );
    }
    println!();
}

/// The §4 comparison claims, evaluated from the two measured tables.
#[derive(Debug, Clone)]
pub struct Claims {
    /// C1: per-size READ speedup Bullet over NFS (paper: 3–6× for all
    /// sizes).
    pub read_speedups: Vec<(usize, f64)>,
    /// C2: the 1 MB READ bandwidth ratio (paper: ≈ 10×).
    pub large_read_bw_ratio: f64,
    /// C3: sizes (> 64 KB per the paper) where Bullet CREATE bandwidth
    /// exceeds NFS READ bandwidth.
    pub write_beats_read_at: Vec<usize>,
    /// C4: NFS bandwidth at 1 MB is lower than at 64 KB (read, create).
    pub nfs_dips_at_1mb: (bool, bool),
}

impl Claims {
    /// Evaluates the claims from measured tables (same size column).
    ///
    /// # Panics
    ///
    /// Panics if the tables do not cover [`SIZES`].
    pub fn evaluate(bullet: &[Row], nfs: &[Row]) -> Claims {
        assert_eq!(bullet.len(), SIZES.len());
        assert_eq!(nfs.len(), SIZES.len());
        let read_speedups = bullet
            .iter()
            .zip(nfs)
            .map(|(b, n)| (b.size, n.read.as_ns() as f64 / b.read.as_ns() as f64))
            .collect();
        let last = SIZES.len() - 1;
        let k64 = SIZES.iter().position(|&s| s == 65_536).expect("64 KB row");
        Claims {
            read_speedups,
            large_read_bw_ratio: bullet[last].read_bw() / nfs[last].read_bw(),
            write_beats_read_at: bullet
                .iter()
                .zip(nfs)
                .filter(|(b, n)| b.write_bw() > n.read_bw())
                .map(|(b, _)| b.size)
                .collect(),
            nfs_dips_at_1mb: (
                nfs[last].read_bw() < nfs[k64].read_bw(),
                nfs[last].write_bw() < nfs[k64].write_bw(),
            ),
        }
    }

    /// Prints the claim scorecard.
    pub fn print(&self) {
        println!("Claim C1 — Bullet READ speedup over NFS (paper: 3-6x at all sizes):");
        for (size, ratio) in &self.read_speedups {
            println!("  {:>12}: {ratio:.1}x", size_label(*size));
        }
        println!(
            "Claim C2 — 1 MB READ bandwidth ratio (paper: ~10x): {:.1}x",
            self.large_read_bw_ratio
        );
        println!(
            "Claim C3 — Bullet CREATE bandwidth beats NFS READ bandwidth at: {}",
            if self.write_beats_read_at.is_empty() {
                "never".to_string()
            } else {
                self.write_beats_read_at
                    .iter()
                    .map(|&s| size_label(s))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        );
        let (read_dip, write_dip) = self.nfs_dips_at_1mb;
        println!(
            "Claim C4 — NFS 1 MB bandwidth below 64 KB bandwidth: read {read_dip}, create {write_dip}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(1), "1 byte");
        assert_eq!(size_label(64), "64 bytes");
        assert_eq!(size_label(4096), "4 Kbytes");
        assert_eq!(size_label(1 << 20), "1 Mbyte");
    }

    #[test]
    fn bandwidth_math() {
        assert!((bandwidth_kb_s(1024, Nanos::from_secs(1)) - 1.0).abs() < 1e-9);
        assert!(bandwidth_kb_s(1, Nanos::ZERO).is_infinite());
    }
}
