//! ABL16 — the virtual-time event-engine cache ablation.
//!
//! The thread-per-client rigs (ABL10/ABL14/ABL15) top out at 8 clients —
//! enough to exercise locking, nowhere near enough to put real eviction
//! pressure on the RAM cache.  This rig drives the *actual*
//! [`bullet_core::FileCache`] with the server's 1989 op costs on an
//! [`amoeba_sim::EventQueue`]: each of 10,000+ simulated clients is a
//! tiny state machine whose next wake-up is one heap entry, popped in
//! virtual-time order by a single real thread.  A run over a million
//! files completes in a couple of wall-clock seconds and is a pure
//! function of its seed — the timeline digest and every counter replay
//! byte-identically.
//!
//! # Cost model
//!
//! Per read: request wire time ([`amoeba_sim::NetProfile::one_way`]) + the
//! fixed 250 µs request service ([`amoeba_sim::CpuProfile::request`]), then
//! on a miss one disk I/O ([`amoeba_sim::DiskProfile::io_time`]) against
//! the file's home disk —
//! disks are the contended resource, modelled as per-disk FIFO queues
//! (`max(arrival, disk_free)`), with the arm position carried between
//! I/Os so seek distance is real — then the reply copy
//! ([`amoeba_sim::CpuProfile::memcpy`]) and reply wire time.  CPU and wire are
//! charged per-op but not queued: the rig models the paper's
//! multi-threaded server as storage-bound, so hit-rate differences show
//! up undiluted in p99 and makespan.
//!
//! # Workloads
//!
//! * `zipf` — every client draws file ranks from the PR 6
//!   [`ZipfSampler`] (θ = 1.0) over the whole file population.
//! * `scan` — same, except 10 % of the clients are *scanners*: each op
//!   streams [`SCAN_BURST`] sequential never-reused files from the cold
//!   half of the population through the cache.  One-touch traffic is
//!   exactly what LRU cannot tell from the working set and what the
//!   segmented policies filter (probation / A1in absorb it).

use amoeba_sim::{DetRng, EventQueue, Histogram, HwProfile, Nanos, Stats, Telemetry};
use bullet_core::{counters, ClientAccounting, EvictionPolicy, FileCache};
use bytes::Bytes;

use crate::workload::{SizeDistribution, ZipfSampler};

/// Simulated clients in the PR-gate configuration.
pub const CLIENTS: usize = 10_000;
/// Files in the simulated volume (PR-gate configuration).
pub const FILES: u64 = 1_000_000;
/// Closed-loop operations each client completes.
pub const OPS_PER_CLIENT: u32 = 40;
/// RAM cache capacity the ablation squeezes the policies through.
/// Sized so the [`RNODE_SLOTS`] slot table binds before the bytes do
/// (mean file ≈ 3.3 KB ⇒ 8192 residents ≈ 27 MB): the ablation studies
/// *which files* each policy keeps, not byte-fragmentation compaction,
/// and a slot-bound cache keeps the first-fit arena out of the replay's
/// inner loop.
pub const CACHE_BYTES: u64 = 40 << 20;
/// Rnode slots in the gate configuration.
pub const RNODE_SLOTS: usize = 8_192;
/// Independent disks behind the cache (round-robin by file id).
pub const DISKS: usize = 8;
/// Blocks per simulated disk (1 KB blocks — 2 GB drives).
pub const DISK_BLOCKS: u64 = 1 << 21;
/// Sequential cold files one scanner op streams through the cache.
pub const SCAN_BURST: u32 = 8;
/// Scanner share of the client population in the `scan` workload.
pub const SCAN_DENOM: usize = 10;
/// The seed the PR gate runs under.
pub const PR_SEED: u64 = 16;

/// A mid-run fault burst: a lossy wire plus one failed mirror replica,
/// active over a virtual-time window (the ABL17 degradation injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBurst {
    /// Virtual time the burst opens.
    pub start: Nanos,
    /// Virtual time the burst closes.
    pub end: Nanos,
    /// Inside the window, one request in `drop_denom` loses its packet
    /// and eats [`retry_delay`](Self::retry_delay).
    pub drop_denom: u64,
    /// Fixed retransmission penalty per dropped request.
    pub retry_delay: Nanos,
    /// Inside the window, reads homed on this disk fail over to its
    /// mirror neighbour `(d + 1) % DISKS`, piling backlog onto it.
    pub failed_disk: usize,
    /// Seed of the dedicated fault RNG (never consumed outside the
    /// window, so a clean run's draws are untouched).
    pub seed: u64,
}

/// One ablation cell: a policy under a workload at a scale.
#[derive(Debug, Clone)]
pub struct EvsimConfig {
    /// Eviction policy under test.
    pub policy: EvictionPolicy,
    /// `"zipf"` or `"scan"`.
    pub workload: &'static str,
    /// Simulated client population.
    pub clients: usize,
    /// Files in the volume.
    pub files: u64,
    /// Ops per client.
    pub ops_per_client: u32,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Rnode slots.
    pub rnode_slots: usize,
    /// Base seed.
    pub seed: u64,
    /// Flight-recorder handle ([`Telemetry::off`] by default).  Sampling
    /// never advances virtual time, so an enabled run's timeline digest
    /// equals the disabled run's — the ABL17 overhead gate.
    pub telemetry: Telemetry,
    /// Optional mid-run fault burst (`None` by default — byte-identical
    /// to the pre-fault rig).
    pub fault: Option<FaultBurst>,
    /// Per-client accounting ([`ClientAccounting::off`] by default).
    pub accounting: ClientAccounting,
}

impl EvsimConfig {
    /// The PR-gate cell for one policy/workload pair.
    pub fn gate(policy: EvictionPolicy, workload: &'static str, seed: u64) -> EvsimConfig {
        EvsimConfig {
            policy,
            workload,
            clients: CLIENTS,
            files: FILES,
            ops_per_client: OPS_PER_CLIENT,
            cache_bytes: CACHE_BYTES,
            rnode_slots: RNODE_SLOTS,
            seed,
            telemetry: Telemetry::off(),
            fault: None,
            accounting: ClientAccounting::off(),
        }
    }

    /// A small cell for unit tests (hundreds of clients, tens of
    /// thousands of files; same structure, milliseconds of wall clock).
    pub fn small(policy: EvictionPolicy, workload: &'static str, seed: u64) -> EvsimConfig {
        EvsimConfig {
            policy,
            workload,
            clients: 400,
            files: 40_000,
            ops_per_client: 25,
            cache_bytes: 1 << 20,
            rnode_slots: 512,
            seed,
            telemetry: Telemetry::off(),
            fault: None,
            accounting: ClientAccounting::off(),
        }
    }

    fn scanners(&self) -> usize {
        if self.workload == "scan" {
            self.clients / SCAN_DENOM
        } else {
            0
        }
    }
}

/// Aggregate outcome of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct EvsimOutcome {
    /// Policy label.
    pub policy: &'static str,
    /// Workload label.
    pub workload: &'static str,
    /// Clients simulated.
    pub clients: usize,
    /// Files in the volume.
    pub files: u64,
    /// File reads completed (scanner bursts count each file).
    pub reads: u64,
    /// Cache hits among them.
    pub hits: u64,
    /// Hit rate over the whole run.
    pub hit_rate: f64,
    /// Median op latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile op latency, ms.
    pub p99_ms: f64,
    /// Virtual time to drain the run, seconds.
    pub makespan_s: f64,
    /// Cache evictions.
    pub evictions: u64,
    /// Probation/A1in promotions + ghost readmissions (scan filter hits).
    pub scan_promotions: u64,
    /// Events the engine processed.
    pub events: u64,
    /// Requests that lost their packet to the fault burst's lossy wire
    /// (0 without a [`FaultBurst`]).
    pub retries: u64,
    /// Miss reads rerouted off the burst's failed disk (0 without one).
    pub failovers: u64,
    /// FNV-1a digest of the (seq, time, client, file, hit) timeline.
    pub digest: u64,
}

/// One point of the hit-rate-over-time curve artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Reads completed when the window closed.
    pub reads: u64,
    /// Hit rate within the window.
    pub window_hit_rate: f64,
}

/// One cell's run: the aggregate plus its hit-rate curve.
#[derive(Debug, Clone)]
pub struct EvsimRun {
    /// Aggregate numbers.
    pub outcome: EvsimOutcome,
    /// Windowed hit-rate curve (window = [`CURVE_WINDOW`] reads).
    pub curve: Vec<CurvePoint>,
}

/// Reads per hit-rate-curve window.
pub const CURVE_WINDOW: u64 = 16_384;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(digest: u64, word: u64) -> u64 {
    let mut d = digest;
    for byte in word.to_le_bytes() {
        d ^= byte as u64;
        d = d.wrapping_mul(FNV_PRIME);
    }
    d
}

enum ClientKind {
    /// Draws from the shared Zipf sampler.
    Zipf,
    /// Streams sequential cold files; the cursor wraps in the cold half.
    Scanner { cursor: u64 },
}

struct Client {
    kind: ClientKind,
    ops_done: u32,
    think: amoeba_sim::DetRng,
}

/// Runs one cell.  Pure function of the config — identical configs yield
/// identical outcomes, digests, and curves.
///
/// # Panics
///
/// Panics only on internal bookkeeping bugs (e.g. a file bigger than the
/// cache, impossible under the 64 KB size cap).
pub fn run(cfg: &EvsimConfig) -> EvsimRun {
    let hw = HwProfile::amoeba_1989();
    let stats = Stats::new();

    // Per-file sizes: the cited log-normal (median 1 KB, 99 % < 64 KB).
    let mut dist = SizeDistribution::unix_1984(cfg.seed ^ 0x512e, 64 * 1024);
    let file_sizes: Vec<u32> = (0..cfg.files).map(|_| dist.sample() as u32).collect();
    // All payloads are slices of one shared buffer: a cache insert is a
    // refcount bump, so 10k clients over 1M files cost no allocations.
    let backing = Bytes::from(vec![0u8; 64 * 1024]);

    let mut zipf = ZipfSampler::new(cfg.seed ^ 0x21bf, cfg.files as usize, 1.0);
    let mut cache =
        FileCache::with_policy_seeded(cfg.cache_bytes, cfg.rnode_slots, cfg.policy, cfg.seed);

    let scanners = cfg.scanners();
    let cold_base = cfg.files / 2;
    let mut clients: Vec<Client> = (0..cfg.clients)
        .map(|i| {
            let mut think = amoeba_sim::DetRng::new(
                cfg.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
            );
            let kind = if i < scanners {
                // Scanners start scattered through the cold half so their
                // sweeps do not trivially overlap.
                let offset = think.next_below(cfg.files / 2);
                ClientKind::Scanner {
                    cursor: cold_base + offset,
                }
            } else {
                ClientKind::Zipf
            };
            Client {
                kind,
                ops_done: 0,
                think,
            }
        })
        .collect();

    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..cfg.clients {
        // Staggered ramp: arrivals spread over the first ~40 ms.
        q.schedule(Nanos::from_us((i as u64 % 997) * 40), i as u32);
    }

    let mut disk_free = [Nanos::ZERO; DISKS];
    let mut disk_head = [0u64; DISKS];
    let hist = Histogram::new();
    let mut digest = FNV_OFFSET;
    let mut seq = 0u64;
    let (mut reads, mut hits) = (0u64, 0u64);
    let (mut window_reads, mut window_hits) = (0u64, 0u64);
    let mut curve = Vec::new();
    let mut makespan = Nanos::ZERO;
    // Dedicated fault RNG: drawn only inside the burst window, so the
    // clean run's timeline never sees it.
    let mut fault_rng = DetRng::new(cfg.fault.map_or(0, |f| f.seed ^ 0xfa17));
    let (mut retries, mut failovers) = (0u64, 0u64);

    while let Some((t, ci)) = q.pop() {
        // Flight recorder: once per period, the event at the head of the
        // queue samples every disk's backlog and the cache level.  The
        // recorder never touches `when`, so the timeline digest of an
        // instrumented run equals the bare run's — measured by ABL17.
        if cfg.telemetry.tick(t) {
            for (d, free) in disk_free.iter().enumerate() {
                cfg.telemetry.gauge(
                    counters::GAUGE_EVSIM_DISK_BACKLOG_US,
                    d as u32,
                    t,
                    free.saturating_sub(t).as_us(),
                );
            }
            cfg.telemetry
                .gauge(counters::GAUGE_CACHE_USED_BYTES, 0, t, cache.used_bytes());
            cfg.telemetry
                .counter_delta(counters::GAUGE_EVSIM_RETRIES, 0, t, retries);
            cfg.telemetry.sample_counters(
                t,
                cache.stats(),
                &[counters::CACHE_HITS, counters::CACHE_MISSES],
            );
        }
        let c = &mut clients[ci as usize];
        let burst = match c.kind {
            ClientKind::Zipf => 1,
            ClientKind::Scanner { .. } => SCAN_BURST,
        };
        let mut when = t;
        for _ in 0..burst {
            let file = match &mut c.kind {
                ClientKind::Zipf => zipf.sample() as u64,
                ClientKind::Scanner { cursor } => {
                    let f = *cursor;
                    *cursor += 1;
                    if *cursor >= cfg.files {
                        *cursor = cold_base;
                    }
                    f
                }
            };
            let size = file_sizes[file as usize] as u64;
            // Request packet + fixed request service.
            when = when + hw.net.one_way(64) + hw.cpu.request();
            // Lossy wire inside the fault window: the request packet is
            // lost and the client's RPC layer eats one retry delay.
            if let Some(b) = &cfg.fault {
                if when >= b.start && when < b.end && fault_rng.next_below(b.drop_denom) == 0 {
                    when += b.retry_delay;
                    retries += 1;
                    cfg.accounting.charge(ci as u64, |u| u.retries += 1);
                }
            }
            let hit = cache.get(file as u32).is_some();
            if !hit {
                // Miss: one I/O against the file's home disk, FIFO behind
                // whatever that disk is already committed to.
                let mut d = (file % DISKS as u64) as usize;
                // Mirror failure inside the window: reads homed on the
                // failed replica reroute to its neighbour, whose queue
                // absorbs both populations.
                if let Some(b) = &cfg.fault {
                    if when >= b.start && when < b.end && d == b.failed_disk {
                        d = (d + 1) % DISKS;
                        failovers += 1;
                    }
                }
                let target = (file / DISKS as u64).wrapping_mul(9973) % (DISK_BLOCKS - 64);
                let start = when.max(disk_free[d]);
                let io = hw.disk.io_time(disk_head[d], target, DISK_BLOCKS, size);
                disk_free[d] = start + io;
                disk_head[d] = target;
                when = start + io;
                cache
                    .insert(file as u32, backing.slice(..size as usize))
                    .expect("64 KB cap < cache capacity");
            }
            // Reply: arena→buffer copy + the payload on the wire.
            when = when + hw.cpu.memcpy(size) + hw.net.one_way(size);

            reads += 1;
            window_reads += 1;
            if hit {
                hits += 1;
                window_hits += 1;
            }
            cfg.accounting.charge(ci as u64, |u| {
                u.requests += 1;
                u.bytes_read += size;
                if hit {
                    u.cache_hits += 1;
                } else {
                    u.cache_misses += 1;
                    u.disk_ios += 1;
                }
            });
            for word in [seq, when.as_ns(), ci as u64, file, hit as u64] {
                digest = fnv1a(digest, word);
            }
            seq += 1;
            if window_reads == CURVE_WINDOW {
                curve.push(CurvePoint {
                    reads,
                    window_hit_rate: window_hits as f64 / window_reads as f64,
                });
                window_reads = 0;
                window_hits = 0;
            }
        }
        hist.record(when.saturating_sub(t));
        makespan = makespan.max(when);
        c.ops_done += 1;
        if c.ops_done < cfg.ops_per_client {
            q.schedule(when + Nanos::from_us(c.think.next_below(40_000)), ci);
        }
    }
    if window_reads > 0 {
        curve.push(CurvePoint {
            reads,
            window_hit_rate: window_hits as f64 / window_reads as f64,
        });
    }

    stats.add(counters::EVSIM_EVENTS, q.scheduled());
    stats.set_max(counters::EVSIM_CLIENTS_MAX, cfg.clients as u64);
    let cs = cache.stats();
    EvsimRun {
        outcome: EvsimOutcome {
            policy: cfg.policy.label(),
            workload: cfg.workload,
            clients: cfg.clients,
            files: cfg.files,
            reads,
            hits,
            hit_rate: hits as f64 / reads.max(1) as f64,
            p50_ms: hist.quantile(0.50).as_ms_f64(),
            p99_ms: hist.quantile(0.99).as_ms_f64(),
            makespan_s: makespan.as_secs_f64(),
            evictions: cs.get(counters::CACHE_EVICTIONS),
            scan_promotions: cs.get(counters::CACHE_SCAN_PROMOTIONS)
                + cs.get(counters::CACHE_GHOST_HITS),
            events: stats.get(counters::EVSIM_EVENTS),
            retries,
            failovers,
            digest,
        },
        curve,
    }
}

/// The four policies the ablation compares, in table order.
pub const POLICIES: [EvictionPolicy; 4] = [
    EvictionPolicy::Lru,
    EvictionPolicy::Fifo,
    EvictionPolicy::SegmentedLru,
    EvictionPolicy::TwoQ,
];

/// The full PR-gate matrix: 4 policies × {zipf, scan}.
pub fn run_matrix(seed: u64) -> Vec<EvsimRun> {
    let mut runs = Vec::new();
    for workload in ["zipf", "scan"] {
        for policy in POLICIES {
            runs.push(run(&EvsimConfig::gate(policy, workload, seed)));
        }
    }
    runs
}

/// Renders the matrix as a fixed-width table — the byte string the
/// replay gate compares.
pub fn outcome_table(runs: &[EvsimRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:>8} {:>6} {:>9} {:>7} {:>8} {:>9} {:>8} {:>9} {:>7} {:>18}\n",
        "workload",
        "policy",
        "reads",
        "hit%",
        "p50_ms",
        "p99_ms",
        "span_s",
        "evicted",
        "promo",
        "digest"
    ));
    for r in runs {
        let o = &r.outcome;
        out.push_str(&format!(
            "  {:>8} {:>6} {:>9} {:>6.2}% {:>8.2} {:>9.1} {:>8.1} {:>9} {:>7} {:>18}\n",
            o.workload,
            o.policy,
            o.reads,
            100.0 * o.hit_rate,
            o.p50_ms,
            o.p99_ms,
            o.makespan_s,
            o.evictions,
            o.scan_promotions,
            format!("{:016x}", o.digest),
        ));
    }
    out
}

/// Serializes one curve point as a JSONL row for the artifact upload.
pub fn curve_row(o: &EvsimOutcome, p: &CurvePoint) -> String {
    format!(
        "{{\"workload\":\"{}\",\"policy\":\"{}\",\"reads\":{},\"window_hit_rate\":{:.4}}}",
        o.workload, o.policy, p.reads, p.window_hit_rate
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_runs(workload: &'static str) -> Vec<EvsimRun> {
        POLICIES
            .iter()
            .map(|&p| run(&EvsimConfig::small(p, workload, 5)))
            .collect()
    }

    #[test]
    fn replay_is_byte_identical() {
        let a = outcome_table(&small_runs("scan"));
        let b = outcome_table(&small_runs("scan"));
        assert_eq!(a, b);
    }

    #[test]
    fn every_client_completes_every_op() {
        for r in small_runs("zipf") {
            let o = &r.outcome;
            assert_eq!(o.reads, 400 * 25, "zipf clients read once per op");
        }
        for r in small_runs("scan") {
            let o = &r.outcome;
            // 10% scanners burst SCAN_BURST reads per op.
            let scanners = 400 / SCAN_DENOM as u64;
            let expect = (400 - scanners) * 25 + scanners * 25 * SCAN_BURST as u64;
            assert_eq!(o.reads, expect);
        }
    }

    #[test]
    fn zipf_hit_rates_are_sane_and_policies_comparable() {
        let runs = small_runs("zipf");
        for r in &runs {
            assert!(
                (0.15..0.95).contains(&r.outcome.hit_rate),
                "{} zipf hit rate {:.2} out of plausible range",
                r.outcome.policy,
                r.outcome.hit_rate
            );
        }
        // Without scans the four policies should be within shouting
        // distance of each other (the ABL9 null result, at scale).
        let rates: Vec<f64> = runs.iter().map(|r| r.outcome.hit_rate).collect();
        let spread = rates.iter().cloned().fold(f64::MIN, f64::max)
            - rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.15, "zipf spread {spread:.2} suspiciously wide");
    }

    #[test]
    fn scan_resistant_policies_beat_lru_under_scan() {
        let runs = small_runs("scan");
        let get = |label: &str| {
            runs.iter()
                .find(|r| r.outcome.policy == label)
                .unwrap()
                .outcome
                .hit_rate
        };
        let lru = get("lru");
        let best = get("slru").max(get("2q"));
        assert!(
            best > lru,
            "scan resistance absent: lru {lru:.3} vs best segmented {best:.3}"
        );
    }

    #[test]
    fn digests_differ_across_policies() {
        let runs = small_runs("scan");
        let mut digests: Vec<u64> = runs.iter().map(|r| r.outcome.digest).collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(
            digests.len(),
            runs.len(),
            "policies produced identical timelines"
        );
    }

    #[test]
    fn curve_covers_the_run() {
        let r = run(&EvsimConfig::small(EvictionPolicy::Lru, "zipf", 5));
        assert!(!r.curve.is_empty());
        assert_eq!(r.curve.last().unwrap().reads, r.outcome.reads);
        for p in &r.curve {
            assert!((0.0..=1.0).contains(&p.window_hit_rate));
        }
    }

    #[test]
    fn telemetry_never_perturbs_the_timeline() {
        let bare = run(&EvsimConfig::small(EvictionPolicy::TwoQ, "scan", 5));
        let mut cfg = EvsimConfig::small(EvictionPolicy::TwoQ, "scan", 5);
        cfg.telemetry = Telemetry::on(Nanos::from_ms(5), 256);
        cfg.accounting = ClientAccounting::on();
        let instrumented = run(&cfg);
        assert_eq!(bare.outcome.digest, instrumented.outcome.digest);
        assert_eq!(bare.outcome.p99_ms, instrumented.outcome.p99_ms);
        // ... but it did record: every disk produced a backlog series.
        for d in 0..DISKS as u32 {
            assert!(
                !cfg.telemetry
                    .series(counters::GAUGE_EVSIM_DISK_BACKLOG_US, d)
                    .is_empty(),
                "disk {d} never sampled"
            );
        }
        assert!(!cfg.accounting.is_empty());
    }

    #[test]
    fn fault_burst_shows_up_and_replays_identically() {
        let mut cfg = EvsimConfig::small(EvictionPolicy::Lru, "zipf", 5);
        let clean = run(&EvsimConfig::small(EvictionPolicy::Lru, "zipf", 5));
        cfg.fault = Some(FaultBurst {
            start: Nanos::from_ms(200),
            end: Nanos::from_ms(600),
            drop_denom: 4,
            retry_delay: Nanos::from_ms(2),
            failed_disk: 3,
            seed: 5,
        });
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.outcome.digest, b.outcome.digest, "faulty run not pure");
        assert_ne!(a.outcome.digest, clean.outcome.digest);
        assert!(a.outcome.retries > 0, "lossy wire never fired");
        assert!(a.outcome.failovers > 0, "failed disk never rerouted");
        assert_eq!(clean.outcome.retries, 0);
        assert_eq!(clean.outcome.failovers, 0);
    }

    #[test]
    fn accounting_ranks_scanners_as_top_offenders() {
        let mut cfg = EvsimConfig::small(EvictionPolicy::Lru, "scan", 5);
        cfg.accounting = ClientAccounting::on();
        run(&cfg);
        // Clients 0..39 are the scanners (400 / SCAN_DENOM): they read
        // SCAN_BURST cold files per op, so they dominate the cost board.
        let scanners = 400 / SCAN_DENOM;
        let top = cfg.accounting.top_k(5);
        assert_eq!(top.len(), 5);
        for (client, usage) in &top {
            assert!(
                (*client as usize) < scanners,
                "non-scanner {client} out-spent the scanners"
            );
            assert!(usage.disk_ios > 0);
        }
    }

    #[test]
    fn events_are_counted() {
        let r = run(&EvsimConfig::small(EvictionPolicy::Lru, "zipf", 5));
        // One event per op per client (closed loop): exactly clients*ops.
        assert_eq!(r.outcome.events, 400 * 25);
    }
}
