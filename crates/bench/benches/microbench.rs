//! Real wall-clock micro-benchmarks (criterion) of the core data paths.
//!
//! The paper's tables are regenerated in *simulated* time by the `fig*`
//! binaries; these benches instead measure what the implementation costs
//! on the host today — cache hits, creates, the allocator, the
//! capability cipher, and the block baseline — so regressions in the
//! code itself are visible independent of the cost model.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use amoeba_cap::{check::CheckScheme, MacScheme, ObjNum, Port, Rights};
use amoeba_sim::DetRng;
use bullet_core::{BulletConfig, BulletServer, ExtentAllocator};
use bytes::Bytes;
use nfs_blockfs::BlockFs;

fn bullet_server() -> BulletServer {
    let mut cfg = BulletConfig::small_test();
    cfg.disk_blocks = 65_536; // 32 MB
    cfg.cache_capacity = 16 << 20;
    cfg.rnode_slots = 4096;
    cfg.min_inodes = 4096;
    BulletServer::format(cfg, 2).expect("format")
}

fn bench_bullet_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("bullet_read_warm");
    for &size in &[1usize, 4096, 65_536, 1 << 20] {
        let server = bullet_server();
        let cap = server
            .create(Bytes::from(vec![7u8; size]), 2)
            .expect("create");
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| server.read(&cap).expect("read"))
        });
    }
    group.finish();
}

fn bench_bullet_create_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("bullet_create_delete");
    for &size in &[1usize, 4096, 65_536] {
        let server = bullet_server();
        let data = Bytes::from(vec![7u8; size]);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let cap = server.create(data.clone(), 2).expect("create");
                server.delete(&cap).expect("delete");
            })
        });
    }
    group.finish();
}

/// Cache-hit reads fanned out over real threads: with the sharded locks a
/// hit takes only shared `table`/`cache` read locks, so per-read cost
/// should stay roughly flat as the thread count grows instead of
/// degrading the way a single global mutex would.
fn bench_bullet_read_concurrent(c: &mut Criterion) {
    const READS_PER_THREAD: usize = 64;
    let mut group = c.benchmark_group("bullet_read_concurrent");
    for &threads in &[1usize, 2, 4, 8] {
        let server = bullet_server();
        let caps: Vec<_> = (0..16)
            .map(|i| {
                server
                    .create(Bytes::from(vec![i as u8; 4096]), 2)
                    .expect("create")
            })
            .collect();
        for cap in &caps {
            server.read(cap).expect("warm-up");
        }
        group.throughput(Throughput::Elements((threads * READS_PER_THREAD) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for n in 0..t {
                        let server = &server;
                        let caps = &caps;
                        s.spawn(move || {
                            for i in 0..READS_PER_THREAD {
                                server.read(&caps[(n + i) % caps.len()]).expect("read");
                            }
                        });
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_capability_schemes(c: &mut Criterion) {
    let scheme = MacScheme::from_seed(7);
    let port = Port::from_u64(1);
    let obj = ObjNum::new(42).expect("small");
    let cap = scheme.mint(port, obj, Rights::ALL, 0xfeed);
    c.bench_function("cap_mint", |b| {
        b.iter(|| scheme.mint(port, obj, Rights::READ, 0xfeed))
    });
    c.bench_function("cap_verify", |b| b.iter(|| scheme.verify(&cap, 0xfeed)));
}

fn bench_extent_allocator(c: &mut Criterion) {
    c.bench_function("extent_alloc_free_churn", |b| {
        b.iter_batched(
            || ExtentAllocator::new(0, 1 << 20),
            |mut alloc| {
                let mut rng = DetRng::new(3);
                let mut held = Vec::new();
                for _ in 0..1000 {
                    if held.len() < 100 || rng.next_f64() < 0.5 {
                        let len = rng.next_below(64) + 1;
                        if let Some(start) = alloc.alloc(len) {
                            held.push((start, len));
                        }
                    } else {
                        let i = rng.next_below(held.len() as u64) as usize;
                        let (start, len) = held.swap_remove(i);
                        alloc.free(start, len).expect("valid free");
                    }
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_blockfs_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("blockfs_read");
    for &size in &[4096usize, 65_536] {
        let dev = Arc::new(amoeba_disk::RamDisk::new(8192, 8192));
        let mut fs = BlockFs::format(dev, 64, 3 << 20, Some(1)).expect("format");
        let (ino, generation) = fs.create_inode().expect("inode");
        let data = vec![9u8; size];
        for (i, chunk) in data.chunks(8192).enumerate() {
            fs.write(ino, generation, (i * 8192) as u32, chunk)
                .expect("write");
        }
        let fs = std::sync::Mutex::new(fs);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                fs.lock()
                    .unwrap()
                    .read(ino, generation, 0, size as u32)
                    .expect("read")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bullet_read,
    bench_bullet_read_concurrent,
    bench_bullet_create_delete,
    bench_capability_schemes,
    bench_extent_allocator,
    bench_blockfs_io
);
criterion_main!(benches);
