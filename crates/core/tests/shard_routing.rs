//! End-to-end sharded stack: N Bullet servers behind a `ShardRouter` on
//! one dispatcher port, driven through the ordinary `BulletClient` —
//! the client cannot tell a shard set from a single server until a
//! shard goes down.

use std::sync::Arc;

use amoeba_net::SimEthernet;
use amoeba_rpc::{Dispatcher, RpcClient, RpcServer, ShardRouter, Status};
use amoeba_sim::{NetProfile, SimClock};
use bullet_core::{BulletClient, BulletConfig, BulletRpcServer, BulletShards};
use bytes::Bytes;

fn stack(count: u32) -> (BulletShards, Arc<ShardRouter>, BulletClient) {
    let mut cfg = BulletConfig::small_test();
    let clock = SimClock::new();
    cfg.clock = clock.clone();
    let shards = BulletShards::format(&cfg, count, 2).unwrap();
    let router = Arc::new(ShardRouter::new(
        shards
            .iter()
            .map(|s| BulletRpcServer::new(s.clone()) as Arc<dyn RpcServer>)
            .collect(),
    ));
    let net = SimEthernet::new(clock, NetProfile::ethernet_10mbit());
    let dispatcher = Dispatcher::new(net);
    dispatcher.register(router.clone());
    let port = shards.shard(0).port();
    let client = BulletClient::new(RpcClient::new(dispatcher), port);
    (shards, router, client)
}

#[test]
fn the_client_cannot_tell_a_shard_set_from_one_server() {
    let (shards, router, client) = stack(4);
    let mut caps = Vec::new();
    for n in 0..12u32 {
        let cap = client.create(Bytes::from(format!("file {n}")), 1).unwrap();
        caps.push(cap);
    }
    // Round-robin creates spread the files over the set…
    let landed = (0..4).filter(|&i| shards.shard(i).live_files() > 0).count();
    assert!(landed >= 2, "creates landed on only {landed} shard(s)");
    // …and each capability reads back through the hash route.
    for (n, cap) in caps.iter().enumerate() {
        assert_eq!(client.read(cap).unwrap(), Bytes::from(format!("file {n}")));
        assert_eq!(
            router.route_of(cap.object.value()),
            amoeba_cap::shard_of(cap.object.value(), 4)
        );
    }
    client.delete(&caps[0]).unwrap();
    assert_eq!(client.read(&caps[0]).unwrap_err(), Status::NotFound);
}

#[test]
fn a_capability_minted_before_a_rebalance_still_routes() {
    let (shards, router, client) = stack(2);
    let cap = client
        .create(Bytes::from_static(b"minted before the move"), 1)
        .unwrap();
    let idx = cap.object.value();
    let home = amoeba_cap::shard_of(idx, 2) as usize;
    let dest = 1 - home;

    // Move the extent, then pin routing at the gateway — the order the
    // rebalancer uses, so the object is served from exactly one shard at
    // every instant.
    shards.rebalance(home, dest, idx).unwrap();
    router.reroute(idx, dest as u32);

    assert_eq!(
        client.read(&cap).unwrap(),
        Bytes::from_static(b"minted before the move"),
        "the pre-move capability must keep working unchanged"
    );
    assert_eq!(router.route_of(idx), dest as u32);

    // The override is load-bearing: without it the hash sends the
    // capability back to the old home, which only has a tombstone.
    router.clear_reroute(idx);
    assert_eq!(client.read(&cap).unwrap_err(), Status::NotFound);
}

#[test]
fn a_down_shard_degrades_only_its_own_objects() {
    let (_shards, router, client) = stack(2);
    let mut caps = Vec::new();
    while caps.len() < 2 {
        let cap = client
            .create(Bytes::from(format!("f{}", caps.len())), 1)
            .unwrap();
        caps.push(cap);
    }
    // Find one object on each shard (striped minting guarantees the
    // shard a create lands on owns the number).
    fn on(caps: &[amoeba_cap::Capability], s: u32) -> Option<amoeba_cap::Capability> {
        caps.iter()
            .find(|c| amoeba_cap::shard_of(c.object.value(), 2) == s)
            .cloned()
    }
    let mut tries = 0;
    while (on(&caps, 0).is_none() || on(&caps, 1).is_none()) && tries < 32 {
        caps.push(client.create(Bytes::from_static(b"more"), 1).unwrap());
        tries += 1;
    }
    let (a, b) = (on(&caps, 0).unwrap(), on(&caps, 1).unwrap());

    router.set_down(0, true);
    assert_eq!(
        client.read(&a).unwrap_err(),
        Status::ShardDown,
        "the dead shard's objects fail with the distinct status"
    );
    assert!(client.read(&b).is_ok(), "the live shard keeps serving");
    assert!(router.degraded(0) >= 1);

    router.set_down(0, false);
    assert!(client.read(&a).is_ok(), "recovery restores service");
}

#[test]
fn monitor_aggregates_per_shard_snapshots() {
    let (_shards, router, client) = stack(3);
    client.create(Bytes::from_static(b"watched"), 1).unwrap();
    router.set_down(2, true);
    let snap = client.monitor().unwrap();
    assert!(snap.starts_with("{\"shard_monitor_schema\":1"), "{snap}");
    assert!(snap.contains("\"shard_count\":3"), "{snap}");
    assert!(snap.contains("\"down\":true"), "{snap}");
    // The up shards embed their ordinary PR 8 snapshots verbatim.
    assert!(snap.matches("\"monitor_schema\":1").count() >= 2, "{snap}");
}
