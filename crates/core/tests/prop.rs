//! Model-based property tests: the Bullet server must behave like a map
//! from capabilities to immutable byte strings, under any operation
//! sequence, across compactions and restarts.

use std::collections::HashMap;

use amoeba_cap::Capability;
use bullet_core::{BulletConfig, BulletError, BulletServer};
use bytes::Bytes;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Create a file of this size filled with this byte, at this p-factor.
    Create { size: usize, fill: u8, p: u32 },
    /// Read back the nth live file (mod live count).
    Read(usize),
    /// Delete the nth live file.
    Delete(usize),
    /// Derive a new version of the nth live file.
    Modify { nth: usize, offset: u16, fill: u8 },
    /// Read a random slice of the nth live file and compare to the model.
    ReadSection { nth: usize, offset: u16, len: u16 },
    /// Round-trip a restricted (read-only) capability of the nth file.
    Restrict(usize),
    /// Compact the disk.
    CompactDisk,
    /// Compact the cache arena.
    CompactMemory,
    /// Flush background writes.
    Sync,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..6000, any::<u8>(), 0u32..=2).prop_map(|(size, fill, p)| Op::Create { size, fill, p }),
        4 => any::<prop::sample::Index>().prop_map(|i| Op::Read(i.index(1 << 16))),
        2 => any::<prop::sample::Index>().prop_map(|i| Op::Delete(i.index(1 << 16))),
        2 => (any::<prop::sample::Index>(), any::<u16>(), any::<u8>())
            .prop_map(|(i, offset, fill)| Op::Modify { nth: i.index(1 << 16), offset, fill }),
        2 => (any::<prop::sample::Index>(), any::<u16>(), any::<u16>())
            .prop_map(|(i, offset, len)| Op::ReadSection { nth: i.index(1 << 16), offset, len }),
        1 => any::<prop::sample::Index>().prop_map(|i| Op::Restrict(i.index(1 << 16))),
        1 => Just(Op::CompactDisk),
        1 => Just(Op::CompactMemory),
        1 => Just(Op::Sync),
    ]
}

fn cfg() -> BulletConfig {
    let mut cfg = BulletConfig::small_test();
    // Small enough that eviction, NoSpace and fragmentation all actually
    // happen during the walk.
    cfg.cache_capacity = 64 * 1024;
    cfg.rnode_slots = 64;
    cfg.disk_blocks = 1024; // 512 KB per disk
    cfg
}

fn run_model(ops: &[Op], server: &BulletServer) -> HashMap<u32, (Capability, Vec<u8>)> {
    let mut model: HashMap<u32, (Capability, Vec<u8>)> = HashMap::new();
    for op in ops {
        let live: Vec<u32> = {
            let mut v: Vec<u32> = model.keys().copied().collect();
            v.sort_unstable();
            v
        };
        match op {
            Op::Create { size, fill, p } => {
                let data = vec![*fill; *size];
                match server.create(Bytes::from(data.clone()), *p) {
                    Ok(cap) => {
                        model.insert(cap.object.value(), (cap, data));
                    }
                    Err(BulletError::NoSpace | BulletError::NoInodes) => {
                        // Legitimate: the tiny disk filled up.
                    }
                    Err(e) => panic!("unexpected create failure: {e}"),
                }
            }
            Op::Read(nth) => {
                if live.is_empty() {
                    continue;
                }
                let key = live[nth % live.len()];
                let (cap, expect) = &model[&key];
                let got = server.read(cap).expect("live file must read");
                assert_eq!(&got[..], &expect[..], "read mismatch on object {key}");
            }
            Op::Delete(nth) => {
                if live.is_empty() {
                    continue;
                }
                let key = live[nth % live.len()];
                let (cap, _) = model.remove(&key).expect("chosen from model");
                server.delete(&cap).expect("live file must delete");
            }
            Op::Modify { nth, offset, fill } => {
                if live.is_empty() {
                    continue;
                }
                let key = live[nth % live.len()];
                let (cap, base) = model[&key].clone();
                let offset = (*offset as usize) % (base.len() + 1);
                let patch = vec![*fill; 16];
                match server.modify(&cap, offset as u32, &patch, 1) {
                    Ok(new_cap) => {
                        let mut expect = base;
                        if expect.len() < offset + 16 {
                            expect.resize(offset + 16, 0);
                        }
                        expect[offset..offset + 16].copy_from_slice(&patch);
                        model.insert(new_cap.object.value(), (new_cap, expect));
                    }
                    Err(BulletError::NoSpace | BulletError::NoInodes) => {}
                    Err(e) => panic!("unexpected modify failure: {e}"),
                }
            }
            Op::ReadSection { nth, offset, len } => {
                if live.is_empty() {
                    continue;
                }
                let key = live[nth % live.len()];
                let (cap, expect) = &model[&key];
                let offset = (*offset as usize) % (expect.len() + 1);
                let len = (*len as usize) % 64;
                let end = (offset + len).min(expect.len());
                let got = server
                    .read_section(cap, offset as u32, (end - offset) as u32)
                    .expect("in-range section");
                assert_eq!(&got[..], &expect[offset..end], "section mismatch on {key}");
                // Out-of-range sections must be rejected, never truncated.
                assert_eq!(
                    server
                        .read_section(cap, expect.len() as u32, 1)
                        .unwrap_err(),
                    BulletError::BadRange
                );
            }
            Op::Restrict(nth) => {
                if live.is_empty() {
                    continue;
                }
                let key = live[nth % live.len()];
                let (cap, expect) = &model[&key];
                let reader = server
                    .restrict(cap, amoeba_cap::Rights::READ)
                    .expect("restrict");
                assert_eq!(&server.read(&reader).unwrap()[..], &expect[..]);
                assert_eq!(
                    server.delete(&reader).unwrap_err(),
                    BulletError::Denied,
                    "read-only cap must not delete"
                );
            }
            Op::CompactDisk => {
                server.compact_disk().expect("compaction must succeed");
            }
            Op::CompactMemory => {
                server.compact_memory();
            }
            Op::Sync => server.sync().expect("sync must succeed"),
        }
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn server_behaves_like_a_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let server = BulletServer::format(cfg(), 2).unwrap();
        let model = run_model(&ops, &server);
        // Final sweep: every surviving file reads back exactly.
        prop_assert_eq!(server.live_files(), model.len());
        for (cap, expect) in model.values() {
            prop_assert_eq!(&server.read(cap).unwrap()[..], &expect[..]);
        }
        // Free-space accounting is consistent: allocator-free plus live
        // blocks equals the whole data area.
        let report = server.disk_frag_report();
        prop_assert!(report.free <= report.total);
    }

    #[test]
    fn synced_files_survive_crash_and_restart(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let configuration = cfg();
        let server = BulletServer::format(configuration.clone(), 2).unwrap();
        let model = run_model(&ops, &server);
        server.sync().unwrap();
        let storage = server.crash();
        let server2 = BulletServer::recover(configuration, storage).unwrap();
        prop_assert_eq!(server2.live_files(), model.len());
        for (cap, expect) in model.values() {
            prop_assert_eq!(&server2.read(cap).unwrap()[..], &expect[..]);
        }
    }

    #[test]
    fn rebalance_preserves_every_live_byte(
        files in proptest::collection::vec((1usize..4000, any::<u8>()), 1..24),
        moves in proptest::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>()),
            1..16,
        ),
    ) {
        use bullet_core::BulletShards;

        let shards = BulletShards::format(&cfg(), 4, 2).unwrap();
        let mut model: Vec<(Capability, Vec<u8>)> = Vec::new();
        for (i, (size, fill)) in files.iter().enumerate() {
            let data = vec![*fill; *size];
            let home = i % shards.count();
            match shards.shard(home).create(Bytes::from(data.clone()), 1) {
                Ok(cap) => model.push((cap, data)),
                Err(BulletError::NoSpace | BulletError::NoInodes) => {}
                Err(e) => panic!("unexpected create failure: {e}"),
            }
        }
        prop_assume!(!model.is_empty());
        let digest = shards.live_digest().unwrap();
        let bytes = shards.total_live_bytes().unwrap();
        let mut at: Vec<usize> = model
            .iter()
            .map(|(c, _)| amoeba_cap::shard_of(c.object.value(), 4) as usize)
            .collect();

        for (which, dest) in &moves {
            let n = which.index(model.len());
            let to = dest.index(shards.count());
            let from = at[n];
            if from != to {
                shards
                    .rebalance(from, to, model[n].0.object.value())
                    .unwrap();
                at[n] = to;
            }
        }

        // Counter accounting: every cross-shard move is counted, on the
        // destination, exactly once.
        let moved: u64 = (0..shards.count())
            .map(|i| {
                shards
                    .shard(i)
                    .stats()
                    .get(bullet_core::counters::SHARD_REBALANCE_EXTENTS)
            })
            .sum();
        let expected: u64 = moves
            .iter()
            .scan(
                model
                    .iter()
                    .map(|(c, _)| amoeba_cap::shard_of(c.object.value(), 4) as usize)
                    .collect::<Vec<_>>(),
                |pos, (which, dest)| {
                    let n = which.index(model.len());
                    let to = dest.index(shards.count());
                    let hop = (pos[n] != to) as u64;
                    pos[n] = to;
                    Some(hop)
                },
            )
            .sum();
        prop_assert_eq!(moved, expected);

        // Every live byte survives, placement-independently, and every
        // pre-move capability still reads back on its current shard.
        prop_assert_eq!(shards.live_digest().unwrap(), digest);
        prop_assert_eq!(shards.total_live_bytes().unwrap(), bytes);
        prop_assert_eq!(shards.total_live_files(), model.len());
        for (n, (cap, expect)) in model.iter().enumerate() {
            prop_assert_eq!(&shards.shard(at[n]).read(cap).unwrap()[..], &expect[..]);
        }
    }

    #[test]
    fn compaction_then_restart_preserves_everything(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let configuration = cfg();
        let server = BulletServer::format(configuration.clone(), 2).unwrap();
        let model = run_model(&ops, &server);
        server.compact_disk().unwrap();
        let report = server.disk_frag_report();
        prop_assert!(report.hole_count <= 1, "compaction must leave one hole: {report:?}");
        let storage = server.shutdown().unwrap();
        let server2 = BulletServer::recover(configuration, storage).unwrap();
        for (cap, expect) in model.values() {
            prop_assert_eq!(&server2.read(cap).unwrap()[..], &expect[..]);
        }
    }
}
