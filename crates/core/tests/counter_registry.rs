//! Registry drift test: the counter/gauge name registry in
//! `bullet_core::counters` and the names the workspace actually uses
//! must agree, in both directions.
//!
//! * Every `pub const NAME: &str = "..."` declared in `counters.rs`
//!   appears in exactly one of [`counters::ALL`] / [`counters::GAUGES`]
//!   — a name cannot be declared and forgotten by the registry (MONITOR
//!   snapshots and doc tables iterate the registry, so an unregistered
//!   name would be invisible to them).
//! * Every declared name is referenced somewhere outside `counters.rs`
//!   (by const identifier or quoted literal) — the registry carries no
//!   dead names.
//! * Every quoted counter-style literal passed to a stats or telemetry
//!   call (`.incr(` / `.add(` / `.set_max(` / `.gauge(` /
//!   `.counter_delta(` / `.get(`) in the core and bench crates is a
//!   registered name — a typo'd literal mints a silent parallel counter
//!   instead of failing, so this is the only place it can be caught.
//!   Bench rigs also read the disk/net/scheduler crates' own stats
//!   handles; those crates own their name families, covered by the
//!   prefix allowlist below.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use bullet_core::counters;

/// Name families owned by lower crates (their own `Stats` handles, not
/// the core registry): the bench rigs read them through the disk and
/// net handles they assemble.
const FOREIGN_PREFIXES: &[&str] = &["disk_", "net_", "sched_", "mirror_"];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every `pub const IDENT: &str = "name";` in counters.rs, plus the
/// rpc-layer names counters.rs re-exports (`pub use amoeba_rpc::fault`).
fn declared_consts() -> Vec<(String, String)> {
    let src =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("src/counters.rs"))
            .expect("counters.rs is readable");
    let mut out = vec![
        ("DEDUP_HITS".to_string(), counters::DEDUP_HITS.to_string()),
        (
            "DEDUP_EVICTIONS".to_string(),
            counters::DEDUP_EVICTIONS.to_string(),
        ),
        ("RPC_RETRIES".to_string(), counters::RPC_RETRIES.to_string()),
        (
            "RPC_TIMEOUTS".to_string(),
            counters::RPC_TIMEOUTS.to_string(),
        ),
        ("RPC_GIVEUPS".to_string(), counters::RPC_GIVEUPS.to_string()),
        (
            "SHARD_ROUTED_OPS".to_string(),
            counters::SHARD_ROUTED_OPS.to_string(),
        ),
        (
            "SHARD_DEGRADED_OPS".to_string(),
            counters::SHARD_DEGRADED_OPS.to_string(),
        ),
        (
            "GAUGE_SHARD_ROUTED_OPS".to_string(),
            counters::GAUGE_SHARD_ROUTED_OPS.to_string(),
        ),
        (
            "GAUGE_SHARD_DEGRADED_OPS".to_string(),
            counters::GAUGE_SHARD_DEGRADED_OPS.to_string(),
        ),
    ];
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("pub const ") else {
            continue;
        };
        let Some((ident, rest)) = rest.split_once(": &str = \"") else {
            continue;
        };
        let Some((value, _)) = rest.split_once('"') else {
            continue;
        };
        out.push((ident.to_string(), value.to_string()));
    }
    out
}

fn registry() -> BTreeSet<&'static str> {
    counters::ALL
        .iter()
        .chain(counters::GAUGES)
        .copied()
        .collect()
}

/// True if `hay[i..]` starts with `ident` as a whole word.
fn word_at(hay: &str, i: usize, ident: &str) -> bool {
    let ident_char = |c: char| c.is_ascii_alphanumeric() || c == '_';
    hay[i..].starts_with(ident)
        && !hay[i + ident.len()..].starts_with(ident_char)
        && (i == 0 || !hay[..i].ends_with(ident_char))
}

fn contains_word(hay: &str, ident: &str) -> bool {
    let mut from = 0;
    while let Some(off) = hay[from..].find(ident) {
        if word_at(hay, from + off, ident) {
            return true;
        }
        from += off + 1;
    }
    false
}

#[test]
fn every_declared_name_is_registered_exactly_once() {
    let consts = declared_consts();
    assert!(
        consts.len() >= 60,
        "the const parser must see the registry ({} found)",
        consts.len()
    );
    let reg = registry();
    for (ident, value) in &consts {
        assert!(
            reg.contains(value.as_str()),
            "{ident} (\"{value}\") is declared but missing from counters::ALL / counters::GAUGES"
        );
    }
    assert_eq!(
        consts.len(),
        counters::ALL.len() + counters::GAUGES.len(),
        "ALL + GAUGES must list each declared name exactly once"
    );
}

#[test]
fn every_registered_name_is_referenced_outside_the_registry() {
    let consts = declared_consts();
    let mut sources = Vec::new();
    for krate in std::fs::read_dir(workspace_root().join("crates")).expect("crates dir") {
        rust_sources(&krate.expect("crate dir").path().join("src"), &mut sources);
    }
    let bodies: Vec<String> = sources
        .iter()
        .filter(|p| !p.ends_with("core/src/counters.rs"))
        .map(|p| std::fs::read_to_string(p).expect("readable source"))
        .collect();
    for (ident, value) in &consts {
        let quoted = format!("\"{value}\"");
        let used = bodies
            .iter()
            .any(|b| contains_word(b, ident) || b.contains(&quoted));
        assert!(
            used,
            "registered name {ident} (\"{value}\") is never referenced outside counters.rs"
        );
    }
}

#[test]
fn every_counter_literal_in_core_and_bench_is_registered() {
    let reg = registry();
    let root = workspace_root();
    let mut sources = Vec::new();
    rust_sources(&root.join("crates/core/src"), &mut sources);
    rust_sources(&root.join("crates/bench/src"), &mut sources);
    let calls = [
        ".incr(\"",
        ".add(\"",
        ".set_max(\"",
        ".gauge(\"",
        ".counter_delta(\"",
        ".get(\"",
    ];
    let mut unregistered = Vec::new();
    for path in &sources {
        let body = std::fs::read_to_string(path).expect("readable source");
        for call in calls {
            let mut from = 0;
            while let Some(off) = body[from..].find(call) {
                let start = from + off + call.len();
                from = start;
                let Some(end) = body[start..].find('"') else {
                    continue;
                };
                let name = &body[start..start + end];
                // Only counter-style names: lowercase words joined by
                // underscores (plain `.get("key")` map lookups with
                // other shapes are not stats reads).
                if !name.contains('_')
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                {
                    continue;
                }
                if reg.contains(name) || FOREIGN_PREFIXES.iter().any(|p| name.starts_with(p)) {
                    continue;
                }
                unregistered.push(format!("{}: \"{name}\"", path.display()));
            }
        }
    }
    assert!(
        unregistered.is_empty(),
        "counter literals missing from counters::ALL / counters::GAUGES:\n{}",
        unregistered.join("\n")
    );
}
