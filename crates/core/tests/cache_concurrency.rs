//! Compaction racing concurrent lookups.
//!
//! The server serves cache hits under a read lock: `FileCache::get` takes
//! `&self` and refreshes the rnode age (and, under SegmentedLru, the
//! segment tag and protected-byte count) through atomics.  Compaction and
//! eviction run under the write lock and rewrite arena offsets.  These
//! tests race the two sides the way the server does — many readers
//! hammering `get` between write-locked insert/remove/compact storms —
//! and assert the map survives exactly: no entry lost, none double-freed
//! (the arena's `free` panics on an invalid extent, so a double free
//! cannot pass silently), byte accounting exact.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use bullet_core::{EvictionPolicy, FileCache};
use bytes::Bytes;
use parking_lot::RwLock;
use proptest::prelude::*;

fn fill_for(inode: u32, len: usize) -> Bytes {
    Bytes::from([inode as u8, len as u8].repeat(len / 2 + 1)[..len].to_vec())
}

/// The barrier race: readers age-refresh through `&self` while a writer
/// compacts and churns under `&mut self`, exactly the server's locking.
fn race(policy: EvictionPolicy, seed: u64) {
    let cache = Arc::new(RwLock::new(FileCache::with_policy(64 * 1024, 64, policy)));
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(5)); // 4 readers + the writer

    std::thread::scope(|s| {
        for reader in 0..4u64 {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let mut rng = amoeba_sim::DetRng::new(seed ^ (reader + 1));
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let inode = rng.next_below(96) as u32;
                    // A hit must always return the exact bytes that were
                    // inserted for this inode, mid-compaction or not.
                    if let Some(data) = cache.read().get(inode) {
                        assert_eq!(data[0], inode as u8, "foreign bytes surfaced");
                        assert_eq!(data[1], data.len() as u8, "truncated entry");
                    }
                }
            });
        }

        // The writer drives churn sized to force both eviction (64 KB
        // capacity, entries up to 2 KB) and fragmentation → compaction
        // (removals punch holes; insert compacts when free bytes suffice
        // but no hole is contiguous).
        let mut rng = amoeba_sim::DetRng::new(seed);
        let mut model: HashMap<u32, usize> = HashMap::new();
        barrier.wait();
        for i in 0..4_000u64 {
            let mut c = cache.write();
            match rng.next_below(10) {
                0..=5 => {
                    let inode = rng.next_below(96) as u32;
                    let len = 64 + rng.next_below(2_000) as usize;
                    let out = c.insert(inode, fill_for(inode, len)).unwrap();
                    model.insert(inode, len);
                    for victim in out.evicted {
                        model.remove(&victim);
                    }
                }
                6..=8 => {
                    let inode = rng.next_below(96) as u32;
                    let removed = c.remove(inode);
                    assert_eq!(removed.is_some(), model.remove(&inode).is_some());
                }
                _ => {
                    c.compact();
                }
            }
            // Give readers lock air every few writes.
            if i % 16 == 0 {
                drop(c);
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);

        // Exactness: the cache holds the model, entry for entry.
        let c = cache.read();
        assert_eq!(c.len(), model.len(), "entries lost or duplicated");
        let mut live_bytes = 0u64;
        for (&inode, &len) in &model {
            let data = c.peek(inode).expect("model entry missing from cache");
            assert_eq!(data.len(), len);
            assert_eq!(data, fill_for(inode, len));
            live_bytes += (len as u64).max(1);
        }
        assert_eq!(c.used_bytes(), live_bytes, "arena accounting drifted");
        assert!(
            c.stats().get("cache_compactions") + c.stats().get("cache_evictions") > 0,
            "the race never exercised the interesting paths"
        );
    });
}

#[test]
fn compaction_races_concurrent_age_refreshes_lru() {
    for seed in [1, 0xbeef, 0x5eed] {
        race(EvictionPolicy::Lru, seed);
    }
}

#[test]
fn compaction_races_concurrent_promotions_slru() {
    // SegmentedLru is the hard case: readers also flip segment tags and
    // bump the protected-byte count under the read lock.
    for seed in [2, 0xcafe, 0x7eed] {
        race(EvictionPolicy::SegmentedLru, seed);
    }
}

#[test]
fn compaction_races_concurrent_lookups_twoq() {
    for seed in [3, 0xdead, 0x9eed] {
        race(EvictionPolicy::TwoQ, seed);
    }
}

/// Single-threaded model equivalence across random op walks, per policy:
/// whatever the policy evicts, the surviving map must match a shadow
/// model exactly after every step (proptest shrinks any divergence to a
/// minimal op sequence).
#[derive(Debug, Clone)]
enum CacheOp {
    Insert { inode: u32, len: usize },
    Get(u32),
    Remove(u32),
    Compact,
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        5 => (0u32..48, 16usize..3_000).prop_map(|(inode, len)| CacheOp::Insert { inode, len }),
        3 => (0u32..48).prop_map(CacheOp::Get),
        2 => (0u32..48).prop_map(CacheOp::Remove),
        1 => Just(CacheOp::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn policies_never_lose_or_double_free_entries(
        ops in prop::collection::vec(arb_cache_op(), 1..200),
        policy_idx in 0usize..3,
    ) {
        let policy = [
            EvictionPolicy::Lru,
            EvictionPolicy::SegmentedLru,
            EvictionPolicy::TwoQ,
        ][policy_idx];
        let mut c = FileCache::with_policy(32 * 1024, 32, policy);
        let mut model: HashMap<u32, usize> = HashMap::new();
        for op in &ops {
            match *op {
                CacheOp::Insert { inode, len } => {
                    let out = c.insert(inode, fill_for(inode, len)).unwrap();
                    model.insert(inode, len);
                    for victim in out.evicted {
                        prop_assert!(model.remove(&victim).is_some(), "evicted a non-entry");
                    }
                }
                CacheOp::Get(inode) => {
                    prop_assert_eq!(c.get(inode).is_some(), model.contains_key(&inode));
                }
                CacheOp::Remove(inode) => {
                    prop_assert_eq!(c.remove(inode).is_some(), model.remove(&inode).is_some());
                }
                CacheOp::Compact => {
                    c.compact();
                }
            }
            prop_assert_eq!(c.len(), model.len());
            let live: u64 = model.values().map(|&l| (l as u64).max(1)).sum();
            prop_assert_eq!(c.used_bytes(), live);
        }
        for (&inode, &len) in &model {
            let data = c.peek(inode).expect("model entry missing");
            prop_assert_eq!(data, fill_for(inode, len));
        }
    }
}
