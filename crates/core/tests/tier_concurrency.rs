//! Tier migrations racing concurrent reads.
//!
//! Demotion streams a cold file's extent to the WORM archive and frees
//! its fast-tier home; the first post-demotion read schedules a recall
//! that later moves the file back.  These tests race the sides the way
//! the server does — reader threads hammering `read` while maintenance
//! ticks demote and recall underneath them — and assert the bytes stay
//! exact through every migration and the fast-tier allocator never
//! double-frees an extent (`ExtentAllocator::free` errors on an invalid
//! free, so a double free fails the tick loudly instead of passing).
//! The proptest walks random op sequences against a shadow model and
//! additionally checks the allocator's byte accounting after every step.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use amoeba_cap::Capability;
use bullet_core::{counters, BulletConfig, BulletServer, CompactTick};
use bytes::Bytes;
use proptest::prelude::*;

fn fill_for(tag: u8, len: usize) -> Bytes {
    Bytes::from([tag, len as u8].repeat(len / 2 + 1)[..len].to_vec())
}

fn drain_maintenance(s: &BulletServer) {
    loop {
        if let CompactTick::Idle = s.compact_tick().unwrap() {
            return;
        }
    }
}

/// The barrier race: readers fetch files mid-migration while the driver
/// clears the cache (making everything a demotion candidate) and ticks
/// maintenance.  The gate is configured to tolerate the readers'
/// traffic, so demotions and recalls really do interleave with reads.
#[test]
fn tier_migrations_race_concurrent_reads() {
    let mut cfg = BulletConfig::small_test();
    cfg.archive_blocks = 1 << 16;
    cfg.tier_high_water_pct = 0; // any occupancy is "above water"
    cfg.tier_cold_age = 0; // every uncached live file is a candidate
    cfg.maint_idle_request_delta = u64::MAX; // run despite reader traffic
    cfg.maint_moves_per_tick = 4;
    let s = Arc::new(BulletServer::format(cfg, 2).unwrap());
    let caps: Arc<Vec<Capability>> = Arc::new(
        (0..24)
            .map(|i| s.create(fill_for(i as u8, 600 + 37 * i), 2).unwrap())
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(4)); // 3 readers + the driver

    std::thread::scope(|scope| {
        for reader in 0..3u64 {
            let s = Arc::clone(&s);
            let caps = Arc::clone(&caps);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut rng = amoeba_sim::DetRng::new(0x7143 ^ (reader + 1));
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let i = rng.next_below(24) as usize;
                    // A read must return the exact bytes whichever tier
                    // the file sits on — or is moving between — now.
                    let data = s.read(&caps[i]).unwrap();
                    assert_eq!(data[0], i as u8, "foreign bytes mid-migration");
                    assert_eq!(data.len(), 600 + 37 * i, "truncated file");
                }
            });
        }

        barrier.wait();
        for round in 0..150u64 {
            if round % 3 == 0 {
                s.clear_cache();
            }
            s.compact_tick().unwrap();
            if round % 16 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesce, then force the full round trip deterministically: archive
    // everything, read it all back (scheduling 24 recalls), and let the
    // scheduler bring every file home.
    drain_maintenance(&s);
    s.clear_cache();
    drain_maintenance(&s);
    let (desc, rows) = s.describe_layout();
    assert!(
        rows.iter().all(|r| r.start_block as u64 >= desc.data_end()),
        "every file ends up archived"
    );
    let report = s.disk_frag_report();
    assert_eq!(
        report.free, report.total,
        "fast tier fully reclaimed — nothing leaked or double-freed"
    );
    for (i, cap) in caps.iter().enumerate() {
        assert_eq!(s.read(cap).unwrap(), fill_for(i as u8, 600 + 37 * i));
    }
    assert_eq!(s.tier_recall_backlog(), 24);
    drain_maintenance(&s);
    assert_eq!(s.tier_recall_backlog(), 0);
    let promoted = s.stats().get(counters::TIER_PROMOTIONS);
    assert!(
        promoted >= 24,
        "all scheduled recalls completed: {promoted}"
    );
    for (i, cap) in caps.iter().enumerate() {
        assert_eq!(s.read(cap).unwrap(), fill_for(i as u8, 600 + 37 * i));
    }
}

/// Random op walks against a shadow model (proptest shrinks any
/// divergence to a minimal sequence).  The model mirrors the aging map
/// exactly — reads do *not* refresh ages, only creation does — so
/// expiry, demotion eligibility, and the allocator's byte accounting
/// are all checked deterministically after every step.
#[derive(Debug, Clone)]
enum TierOp {
    Create { len: usize, fill: u8 },
    Read(u8),
    Delete(u8),
    ClearCache,
    Age,
    Tick,
}

fn arb_tier_op() -> impl Strategy<Value = TierOp> {
    prop_oneof![
        4 => (64usize..2_000, any::<u8>()).prop_map(|(len, fill)| TierOp::Create { len, fill }),
        4 => any::<u8>().prop_map(TierOp::Read),
        2 => any::<u8>().prop_map(TierOp::Delete),
        2 => Just(TierOp::ClearCache),
        1 => Just(TierOp::Age),
        3 => Just(TierOp::Tick),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn demote_read_promote_never_loses_bytes_or_extents(
        ops in prop::collection::vec(arb_tier_op(), 1..120),
    ) {
        let mut cfg = BulletConfig::small_test();
        cfg.archive_blocks = 1 << 16;
        cfg.tier_high_water_pct = 0;
        cfg.tier_cold_age = 1;
        let max_age = cfg.max_age;
        let s = BulletServer::format(cfg, 2).unwrap();
        // One slot per file ever created: (cap, bytes, model age).
        let mut files: Vec<Option<(Capability, Bytes, u32)>> = Vec::new();
        for op in &ops {
            match *op {
                TierOp::Create { len, fill } => {
                    let data = fill_for(fill, len);
                    let cap = s.create(data.clone(), 2).unwrap();
                    files.push(Some((cap, data, max_age)));
                }
                TierOp::Read(i) => {
                    if files.is_empty() {
                        continue;
                    }
                    let slot = i as usize % files.len();
                    // Expired slots hold None and are simply skipped.
                    if let Some((cap, data, _)) = &files[slot] {
                        prop_assert_eq!(&s.read(cap).unwrap(), data);
                    }
                }
                TierOp::Delete(i) => {
                    if files.is_empty() {
                        continue;
                    }
                    let slot = i as usize % files.len();
                    if let Some((cap, _, _)) = files[slot].take() {
                        s.delete(&cap).unwrap();
                    }
                }
                TierOp::ClearCache => s.clear_cache(),
                TierOp::Age => {
                    let mut expired_model = 0u64;
                    for entry in files.iter_mut() {
                        let expired = match entry {
                            Some((_, _, age)) => {
                                *age -= 1;
                                *age == 0
                            }
                            None => false,
                        };
                        if expired {
                            expired_model += 1;
                            *entry = None;
                        }
                    }
                    prop_assert_eq!(s.age_all().unwrap(), expired_model);
                }
                TierOp::Tick => {
                    s.compact_tick().unwrap();
                }
            }
            // Allocator exactness after every op: fast-tier usage must
            // equal the live fast-resident extents.  A migration that
            // leaked an extent or freed one twice diverges here.
            let (desc, rows) = s.describe_layout();
            let fast: u64 = rows
                .iter()
                .filter(|r| (r.start_block as u64) < desc.data_end())
                .map(|r| r.blocks)
                .sum();
            let report = s.disk_frag_report();
            prop_assert_eq!(report.total - report.free, fast);
        }
        for entry in files.iter().flatten() {
            prop_assert_eq!(&s.read(&entry.0).unwrap(), &entry.1);
        }
    }
}
