//! End-to-end tests of the pipelined streaming transfer path: timing
//! bounds, zero-copy guarantees, readahead, and bit-identity of streamed
//! replies (including real frame reassembly over the channel transport).

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use amoeba_disk::{BlockDevice, MirroredDisk, RamDisk, SimDisk};
use amoeba_net::{duplex, SimEthernet};
use amoeba_rpc::client::{serve_chan, RemoteClient};
use amoeba_rpc::{Dispatcher, RpcClient, RpcServer};
use amoeba_sim::{DiskProfile, HwProfile, Nanos, NetProfile, SimClock};
use bullet_core::{commands, BulletClient, BulletConfig, BulletRpcServer, BulletServer};

/// A full measurement stack on latency-modelled mirrored disks.
fn stack(
    disk: DiskProfile,
    net: NetProfile,
    tweak: impl FnOnce(&mut BulletConfig),
) -> (SimClock, BulletClient, Arc<BulletServer>) {
    let clock = SimClock::new();
    let replicas: Vec<Arc<dyn BlockDevice>> = (0..2)
        .map(|_| {
            Arc::new(SimDisk::new(
                RamDisk::new(1024, 65_536),
                clock.clone(),
                disk,
            )) as Arc<dyn BlockDevice>
        })
        .collect();
    let storage = MirroredDisk::new(replicas).unwrap();
    let mut cfg = BulletConfig::small_test();
    cfg.clock = clock.clone();
    cfg.block_size = 1024;
    cfg.disk_blocks = 65_536;
    cfg.cache_capacity = 12 << 20;
    cfg.min_inodes = 2048;
    cfg.rnode_slots = 2048;
    tweak(&mut cfg);
    let server = Arc::new(BulletServer::format_on(cfg, storage).unwrap());
    let fabric = SimEthernet::new(clock.clone(), net);
    let dispatcher = Dispatcher::new(fabric);
    dispatcher.register(BulletRpcServer::new(server.clone()));
    let client = BulletClient::new(RpcClient::new(dispatcher), server.port());
    (clock, client, server)
}

fn paper_stack(
    tweak: impl FnOnce(&mut BulletConfig),
) -> (SimClock, BulletClient, Arc<BulletServer>) {
    let hw = HwProfile::amoeba_1989();
    stack(hw.disk, hw.net, tweak)
}

/// A zero-cost network, to isolate the disk lane.
fn free_net() -> NetProfile {
    NetProfile {
        per_message_us: 0.0,
        per_packet_us: 0.0,
        per_byte_us: 0.0,
        mtu_payload: 1480,
    }
}

/// Cold-read time of a fresh `size`-byte file over the given stack.
fn cold_read_time(
    clock: &SimClock,
    client: &BulletClient,
    server: &BulletServer,
    size: usize,
) -> Nanos {
    let cap = client.create(Bytes::from(vec![0x42; size]), 2).unwrap();
    client.read(&cap).unwrap(); // locate warm-up
    server.clear_cache();
    let (data, dt) = clock.time(|| client.read(&cap).unwrap());
    assert_eq!(data.len(), size);
    client.delete(&cap).unwrap();
    dt
}

fn create_time(clock: &SimClock, client: &BulletClient, size: usize) -> Nanos {
    let warm = client.create(Bytes::new(), 2).unwrap();
    client.delete(&warm).unwrap();
    let data = Bytes::from(vec![0x27; size]);
    let (cap, dt) = clock.time(|| client.create(data, 2).unwrap());
    client.delete(&cap).unwrap();
    dt
}

#[test]
fn pipelined_cold_read_beats_sequential_and_respects_lane_bounds() {
    const MB: usize = 1 << 20;
    let (clock, client, server) = paper_stack(|_| {});
    let pipelined = cold_read_time(&clock, &client, &server, MB);
    assert!(server.stats().get("pipelined_reads") >= 1);

    let (clock, client, server) = paper_stack(|cfg| cfg.pipeline = false);
    let sequential = cold_read_time(&clock, &client, &server, MB);
    assert_eq!(server.stats().get("pipelined_reads"), 0);

    // The acceptance bar: overlapping disk with wire buys at least 1.4x
    // on a cold 1 MB read.
    let speedup = sequential.as_secs_f64() / pipelined.as_secs_f64();
    assert!(
        speedup >= 1.4,
        "cold 1 MB read: pipelined {pipelined} vs sequential {sequential} ({speedup:.2}x)"
    );

    // Lower bounds: the pipeline cannot beat either lane alone.
    let hw = HwProfile::amoeba_1989();
    let (clock, client, server) = stack(DiskProfile::instant(), hw.net, |cfg| {
        cfg.pipeline = false;
    });
    let wire_only = cold_read_time(&clock, &client, &server, MB);
    let (clock, client, server) = stack(hw.disk, free_net(), |cfg| cfg.pipeline = false);
    let disk_only = cold_read_time(&clock, &client, &server, MB);
    assert!(
        pipelined >= wire_only && pipelined >= disk_only,
        "pipelined {pipelined} vs wire {wire_only} / disk {disk_only}"
    );
}

#[test]
fn pipelined_create_beats_sequential() {
    const MB: usize = 1 << 20;
    let (clock, client, server) = paper_stack(|_| {});
    let pipelined = create_time(&clock, &client, MB);
    assert!(server.stats().get("pipelined_creates") >= 1);

    let (clock, client, _server) = paper_stack(|cfg| cfg.pipeline = false);
    let sequential = create_time(&clock, &client, MB);
    let speedup = sequential.as_secs_f64() / pipelined.as_secs_f64();
    assert!(
        speedup >= 1.4,
        "1 MB create: pipelined {pipelined} vs sequential {sequential} ({speedup:.2}x)"
    );
}

#[test]
fn pipelined_never_exceeds_sequential_at_any_size() {
    for size in [1024, 64 * 1024, 100_000, 256 * 1024, 1 << 20] {
        let (clock, client, server) = paper_stack(|_| {});
        let pipelined = cold_read_time(&clock, &client, &server, size);
        let (clock, client, server) = paper_stack(|cfg| cfg.pipeline = false);
        let sequential = cold_read_time(&clock, &client, &server, size);
        assert!(
            pipelined <= sequential,
            "{size} bytes: pipelined {pipelined} > sequential {sequential}"
        );
    }
}

#[test]
fn warm_reads_never_stream_and_share_the_cache_buffer() {
    let (_clock, client, server) = paper_stack(|_| {});
    let cap = client.create(Bytes::from(vec![9u8; 300_000]), 2).unwrap();
    let first = client.read(&cap).unwrap();
    let segments = server.stats().get("stream_segments");
    let copied = server.stats().get("payload_bytes_copied");
    let second = client.read(&cap).unwrap();
    // Zero-copy: both warm reads hand out the same cached buffer, and no
    // payload byte was copied server-side between cache and wire.
    assert_eq!(first.as_ptr(), second.as_ptr());
    assert_eq!(server.stats().get("payload_bytes_copied"), copied);
    assert_eq!(server.stats().get("stream_segments"), segments);
}

#[test]
fn cache_insert_shares_the_payload_buffer() {
    // The create path's cache insert is a reference-count bump: the bytes
    // the client sent, the cached copy, and a subsequent read are all the
    // same allocation.
    let s = BulletServer::format(BulletConfig::small_test(), 2).unwrap();
    let sent = Bytes::from(vec![5u8; 4000]);
    let cap = s.create(sent.clone(), 2).unwrap();
    let read = s.read(&cap).unwrap();
    assert_eq!(sent.as_ptr(), read.as_ptr());

    // The miss path too: the buffer the disk read into is the buffer the
    // cache holds and every warm read returns.
    s.clear_cache();
    let cold = s.read(&cap).unwrap();
    let warm = s.read(&cap).unwrap();
    assert_eq!(cold.as_ptr(), warm.as_ptr());
}

#[test]
fn bounded_readahead_loads_only_a_window() {
    let (_clock, client, server) = paper_stack(|cfg| {
        cfg.segment_size = 4096;
        cfg.readahead_segments = 1;
    });
    let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let cap = client.create(Bytes::from(body.clone()), 2).unwrap();
    client.read(&cap).unwrap(); // locate warm-up
    server.clear_cache();
    // A cold section read deep inside the file loads its covering segment
    // plus one readahead segment — not the whole 100 KB.
    let section = client.read_section(&cap, 50_000, 1000).unwrap();
    assert_eq!(&section[..], &body[50_000..51_000]);
    assert_eq!(server.stats().get("partial_section_loads"), 1);
    // The partial load did not populate the whole-file cache...
    let misses_before = {
        let m: std::collections::HashMap<_, _> = server.cache_stats().into_iter().collect();
        m["cache_misses"]
    };
    let whole = client.read(&cap).unwrap();
    assert_eq!(&whole[..], &body[..]);
    let misses_after = {
        let m: std::collections::HashMap<_, _> = server.cache_stats().into_iter().collect();
        m["cache_misses"]
    };
    assert_eq!(misses_after, misses_before + 1, "whole read was a miss");
    // ...but a section read at the file head with enough readahead covers
    // the whole file and does cache it.
    server.clear_cache();
    let (_clock, client2, server2) = paper_stack(|cfg| {
        cfg.segment_size = 4096;
        cfg.readahead_segments = 64; // 64 * 4 KB > 100 KB: covers the file
    });
    let cap2 = client2.create(Bytes::from(body.clone()), 2).unwrap();
    client2.read(&cap2).unwrap();
    server2.clear_cache();
    let s2 = client2.read_section(&cap2, 0, 1000).unwrap();
    assert_eq!(&s2[..], &body[..1000]);
    assert_eq!(server2.stats().get("partial_section_loads"), 0);
}

/// Streams a cold read over the *threaded channel* transport, where the
/// payload really travels as frames, and checks bit-identity.
#[test]
fn chan_streamed_cold_read_is_bit_identical() {
    let (_clock, _client, server) = paper_stack(|cfg| cfg.segment_size = 16 * 1024);
    let body: Vec<u8> = (0..500_000u32).map(|i| (i % 253) as u8).collect();
    let cap = server.create(Bytes::from(body.clone()), 2).unwrap();
    server.clear_cache();

    let net = SimEthernet::new(SimClock::new(), NetProfile::ethernet_10mbit());
    let (client_end, server_end) = duplex(&net);
    let rpc: Arc<dyn RpcServer> = BulletRpcServer::new(server.clone());
    let t = std::thread::spawn(move || serve_chan(server_end, rpc));
    let remote = RemoteClient::new(client_end);
    let reply = remote
        .trans(cap, commands::READ, Bytes::new(), Bytes::new())
        .unwrap();
    assert_eq!(&reply.data[..], &body[..], "reassembled payload differs");
    assert!(
        net.stats().get("net_stream_frames") >= 31,
        "500 KB / 16 KB segments should stream dozens of frames, got {}",
        net.stats().get("net_stream_frames")
    );
    // Warm read over the same channel: served whole, no frames.
    let frames = net.stats().get("net_stream_frames");
    let reply = remote
        .trans(cap, commands::READ, Bytes::new(), Bytes::new())
        .unwrap();
    assert_eq!(&reply.data[..], &body[..]);
    assert_eq!(net.stats().get("net_stream_frames"), frames);
    drop(remote);
    t.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pipelined (streamed) reads are bit-identical to sequential ones
    /// for arbitrary sizes, offsets, and segment sizes — whole files and
    /// sections, cold and warm.
    #[test]
    fn pipelined_reads_bit_identical(
        size in 1usize..150_000,
        seg_kb in prop_oneof![Just(1u32), Just(4u32), Just(16u32), Just(64u32)],
        window in (any::<u32>(), any::<u32>()),
    ) {
        let (_clock, client, server) = paper_stack(|cfg| {
            cfg.segment_size = seg_kb * 1024;
        });
        let body: Vec<u8> = (0..size as u32).map(|i| (i % 249) as u8).collect();
        let cap = client.create(Bytes::from(body.clone()), 2).unwrap();

        // Cold whole-file read (streamed when multi-segment).
        client.read(&cap).unwrap();
        server.clear_cache();
        let cold = client.read(&cap).unwrap();
        prop_assert_eq!(&cold[..], &body[..]);
        // Warm again.
        let warm = client.read(&cap).unwrap();
        prop_assert_eq!(&warm[..], &body[..]);

        // Cold section read with an arbitrary in-range window.
        let offset = (window.0 as usize) % size;
        let len = ((window.1 as usize) % (size - offset)).min(size - offset);
        server.clear_cache();
        let section = client.read_section(&cap, offset as u32, len as u32).unwrap();
        prop_assert_eq!(&section[..], &body[offset..offset + len]);
    }
}
