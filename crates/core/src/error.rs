//! Error type for the Bullet server.

use amoeba_cap::CapError;
use amoeba_disk::DiskError;
use amoeba_rpc::Status;

/// Errors produced by Bullet server operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BulletError {
    /// The presented capability is forged or stale.
    CapBad,
    /// The capability is genuine but lacks the required rights.
    Denied,
    /// The object number does not name a live file.
    NotFound,
    /// The data area has no hole large enough for the file.
    NoSpace,
    /// The inode table is full.
    NoInodes,
    /// The file does not fit in the server's RAM cache (files must fit in
    /// memory, §2).
    TooLarge {
        /// The file size requested.
        size: u64,
        /// The cache capacity.
        cache_capacity: u64,
    },
    /// A section request fell outside the file.
    BadRange,
    /// The requested P-FACTOR exceeds the number of disks: "this requires
    /// the file server to have at least N disks available" (§2.2).
    BadPFactor {
        /// The P-FACTOR the client asked for.
        requested: u32,
        /// The number of disks the server has.
        disks: u32,
    },
    /// The disk layer failed.
    Disk(DiskError),
    /// On-disk state failed a start-up consistency check.
    Corrupt(String),
}

impl std::fmt::Display for BulletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BulletError::CapBad => write!(f, "capability failed verification"),
            BulletError::Denied => write!(f, "capability lacks the required rights"),
            BulletError::NotFound => write!(f, "no such file"),
            BulletError::NoSpace => write!(f, "no contiguous hole large enough on disk"),
            BulletError::NoInodes => write!(f, "inode table is full"),
            BulletError::TooLarge {
                size,
                cache_capacity,
            } => write!(
                f,
                "file of {size} bytes cannot fit in the {cache_capacity}-byte RAM cache"
            ),
            BulletError::BadRange => write!(f, "requested range falls outside the file"),
            BulletError::BadPFactor { requested, disks } => write!(
                f,
                "p-factor {requested} requires at least {requested} disks, server has {disks}"
            ),
            BulletError::Disk(e) => write!(f, "disk failure: {e}"),
            BulletError::Corrupt(msg) => write!(f, "on-disk state corrupt: {msg}"),
        }
    }
}

impl std::error::Error for BulletError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BulletError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for BulletError {
    fn from(e: DiskError) -> Self {
        BulletError::Disk(e)
    }
}

impl From<CapError> for BulletError {
    fn from(e: CapError) -> Self {
        match e {
            CapError::InsufficientRights => BulletError::Denied,
            _ => BulletError::CapBad,
        }
    }
}

impl From<BulletError> for Status {
    fn from(e: BulletError) -> Status {
        match e {
            BulletError::CapBad => Status::CapBad,
            BulletError::Denied => Status::Denied,
            BulletError::NotFound => Status::NotFound,
            BulletError::NoSpace => Status::NoSpace,
            BulletError::NoInodes => Status::NoSpace,
            BulletError::TooLarge { .. } => Status::NoMem,
            BulletError::BadRange | BulletError::BadPFactor { .. } => Status::BadParam,
            BulletError::Disk(_) | BulletError::Corrupt(_) => Status::SysErr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_map_sensibly() {
        assert_eq!(Status::from(BulletError::CapBad), Status::CapBad);
        assert_eq!(Status::from(BulletError::NoSpace), Status::NoSpace);
        assert_eq!(
            Status::from(BulletError::TooLarge {
                size: 10,
                cache_capacity: 5
            }),
            Status::NoMem
        );
        assert_eq!(
            BulletError::from(CapError::InsufficientRights),
            BulletError::Denied
        );
        assert_eq!(
            BulletError::from(CapError::BadCheckField),
            BulletError::CapBad
        );
        assert!(matches!(
            BulletError::from(DiskError::DeviceFailed),
            BulletError::Disk(_)
        ));
    }

    #[test]
    fn display_nonempty() {
        for e in [
            BulletError::CapBad,
            BulletError::NoSpace,
            BulletError::Corrupt("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
