//! Canonical counter names for the Bullet server's [`amoeba_sim::Stats`].
//!
//! Every counter the core crate increments is declared here once, so the
//! name a component bumps and the name a benchmark or test reads cannot
//! silently fork (a typo in a string literal would just read zero).  The
//! same table, with prose descriptions, lives in DESIGN.md §9.3; the disk
//! and net crates keep their own small namespaces (`mirror_*`, `net_*`)
//! because they are reusable below the Bullet layer.
//!
//! Naming scheme: operation counters are plural verbs (`creates`,
//! `reads`), byte totals end in `_bytes` or start with `bytes_`, and each
//! sharded lock contributes a pair `lock_<shard>` / `lock_contended_<shard>`
//! counting acquisitions and try-lock misses.

pub use amoeba_rpc::fault::{DEDUP_EVICTIONS, DEDUP_HITS, RPC_GIVEUPS, RPC_RETRIES, RPC_TIMEOUTS};
pub use amoeba_rpc::shard::{
    GAUGE_SHARD_DEGRADED_OPS, GAUGE_SHARD_ROUTED_OPS, SHARD_DEGRADED_OPS, SHARD_ROUTED_OPS,
};

/// Extents moved between shards by [`crate::shard::BulletShards::rebalance`]
/// (counted on the destination shard's stats).
pub const SHARD_REBALANCE_EXTENTS: &str = "shard_rebalance_extents";

/// Inodes repaired (zeroed after a half-committed create) during
/// [`crate::server::BulletServer::recover`].
pub const RECOVERY_REPAIRED_INODES: &str = "recovery_repaired_inodes";

/// Live files the startup consistency scan accepted during
/// [`crate::server::BulletServer::recover`].
pub const RECOVERY_LIVE_FILES: &str = "recovery_live_files";

/// Cold disk reads that were served by a surviving replica after the
/// preferred one failed (the mirror's failover, observed at the server).
pub const FAILOVER_READS: &str = "failover_reads";

/// Successful `BULLET.CREATE` operations.
pub const CREATES: &str = "creates";

/// Payload bytes accepted by successful creates.
pub const BYTES_CREATED: &str = "bytes_created";

/// Creates whose payload took the segmented receive→copy→disk pipeline.
pub const PIPELINED_CREATES: &str = "pipelined_creates";

/// Whole-file `BULLET.READ` operations.
pub const READS: &str = "reads";

/// `BULLET.READ_SECTION` operations (byte-range reads).
pub const SECTION_READS: &str = "section_reads";

/// Section reads served by loading only the touched blocks, not the file.
pub const PARTIAL_SECTION_LOADS: &str = "partial_section_loads";

/// Extra bytes pulled in beyond a requested section by readahead.
pub const READAHEAD_BYTES: &str = "readahead_bytes";

/// Cold reads that streamed disk→wire through the segment pipeline.
pub const PIPELINED_READS: &str = "pipelined_reads";

/// Transfer segments moved by the streaming paths (either direction).
pub const STREAM_SEGMENTS: &str = "stream_segments";

/// Bytes memcpy'd between request/reply buffers and the cache arena.
pub const PAYLOAD_BYTES_COPIED: &str = "payload_bytes_copied";

/// Successful `BULLET.DELETE` operations.
pub const DELETES: &str = "deletes";

/// Successful `BULLET.MODIFY`/`BULLET.APPEND` operations (each is a
/// create-new + delete-old pair under the immutable-file rule).
pub const MODIFIES: &str = "modifies";

/// Live extents moved while compacting the on-disk data area.
pub const DISK_COMPACTION_MOVES: &str = "disk_compaction_moves";

/// Idle-time compaction ticks that yielded to foreground traffic instead
/// of moving an extent.
pub const COMPACTION_PREEMPTIONS: &str = "compaction_preemptions";

/// Highest per-disk request-queue depth observed (high-water mark,
/// aggregated across replicas as the maximum).
pub const DISK_QUEUE_DEPTH_MAX: &str = "disk_queue_depth_max";

/// Requests absorbed into an adjacent request's transfer by the disk
/// scheduler (charged transfer time only — no seek, no rotation).
pub const DISK_COALESCED_IOS: &str = "disk_coalesced_ios";

/// Queued requests granted by deadline aging instead of the arm policy
/// (the scheduler's starvation bound firing).
pub const SCHED_DEADLINE_PROMOTIONS: &str = "sched_deadline_promotions";

/// Files removed by ageing (the garbage collector's touch-or-die rule).
pub const AGED_OUT: &str = "aged_out";

/// Maintenance-scheduler ticks that got past the idleness gate (preempted
/// ticks count under [`COMPACTION_PREEMPTIONS`] instead).
pub const MAINTENANCE_TICKS: &str = "maintenance_ticks";

/// Ticks on which the log→home migration job reported nothing to do.
pub const MAINT_SKIPS_LOG_MIGRATION: &str = "maint_skips_log_migration";

/// Ticks on which the data-area packing job reported nothing to do.
pub const MAINT_SKIPS_PACKING: &str = "maint_skips_packing";

/// Ticks on which the archive-recall (promotion) job had an empty queue.
pub const MAINT_SKIPS_RECALL: &str = "maint_skips_recall";

/// Ticks on which the demotion job found no cold candidate (or the fast
/// tier was under its high-water mark).
pub const MAINT_SKIPS_DEMOTION: &str = "maint_skips_demotion";

/// Cold files streamed from the fast tier to the WORM archive.
pub const TIER_DEMOTIONS: &str = "tier_demotions";

/// Archived files recalled to the fast tier after a read scheduled them.
pub const TIER_PROMOTIONS: &str = "tier_promotions";

/// Payload bytes burned onto the archive tier by demotion (WORM media:
/// this total never decreases).
pub const TIER_ARCHIVE_BYTES: &str = "tier_archive_bytes";

/// Physical record appends to the group-commit log (batch commits plus
/// the occasional one-block seal record written before deleting a file
/// of the newest batch).
pub const LOG_APPENDS: &str = "log_appends";

/// Group-commit flushes: batches committed as one sequential log append.
pub const GROUP_COMMIT_FLUSHES: &str = "group_commit_flushes";

/// Files committed through the group-commit log (sum of batch sizes).
pub const LOG_BATCH_FILES: &str = "log_batch_files";

/// Cumulative payload bytes that became log-resident at commit time
/// (files later migrate to their contiguous homes during idle time).
pub const LOG_RESIDENT_BYTES: &str = "log_resident_bytes";

/// Log-resident files migrated to their contiguous data-area home by the
/// idle-time maintenance job.
pub const LOG_MIGRATIONS: &str = "log_migrations";

/// Whole-file cache lookups that found the file resident.
pub const CACHE_HITS: &str = "cache_hits";

/// Cache lookups that missed (and usually triggered a cold load).
pub const CACHE_MISSES: &str = "cache_misses";

/// Files inserted into the RAM cache.
pub const CACHE_INSERTS: &str = "cache_inserts";

/// Files evicted to make room.
pub const CACHE_EVICTIONS: &str = "cache_evictions";

/// Arena compactions run to coalesce free space for an insert.
pub const CACHE_COMPACTIONS: &str = "cache_compactions";

/// Re-referenced files promoted into the protected/Am segment (a
/// SegmentedLru probation hit, or a TwoQ ghost-list readmission) — the
/// scan filter admitting a file to the scan-proof part of the cache.
pub const CACHE_SCAN_PROMOTIONS: &str = "cache_scan_promotions";

/// Evictions taken from the probation (SegmentedLru) / A1in (TwoQ)
/// segment — churn absorbed by the scan zone instead of the working set.
pub const CACHE_PROBATION_EVICTIONS: &str = "cache_probation_evictions";

/// SegmentedLru protected-LRU entries demoted back to probation because
/// the protected segment outgrew its byte cap.
pub const CACHE_PROTECTED_DEMOTIONS: &str = "cache_protected_demotions";

/// TwoQ inserts whose inode was found on the A1out ghost list (the 2Q
/// "second reference after eviction" admission signal).
pub const CACHE_GHOST_HITS: &str = "cache_ghost_hits";

/// Events processed by the virtual-time event engine across an evsim run.
pub const EVSIM_EVENTS: &str = "evsim_events";

/// Maximum concurrent simulated clients an evsim run drove (high-water
/// mark across the matrix).
pub const EVSIM_CLIENTS_MAX: &str = "evsim_clients_max";

/// Acquisitions of the inode-table read lock.
pub const LOCK_TABLE_READ: &str = "lock_table_read";
/// Contended acquisitions (try-lock misses) of the inode-table read lock.
pub const LOCK_CONTENDED_TABLE_READ: &str = "lock_contended_table_read";
/// Acquisitions of the inode-table write lock.
pub const LOCK_TABLE_WRITE: &str = "lock_table_write";
/// Contended acquisitions of the inode-table write lock.
pub const LOCK_CONTENDED_TABLE_WRITE: &str = "lock_contended_table_write";
/// Acquisitions of the cache read lock.
pub const LOCK_CACHE_READ: &str = "lock_cache_read";
/// Contended acquisitions of the cache read lock.
pub const LOCK_CONTENDED_CACHE_READ: &str = "lock_contended_cache_read";
/// Acquisitions of the cache write lock.
pub const LOCK_CACHE_WRITE: &str = "lock_cache_write";
/// Contended acquisitions of the cache write lock.
pub const LOCK_CONTENDED_CACHE_WRITE: &str = "lock_contended_cache_write";
/// Acquisitions of the disk-allocator lock.
pub const LOCK_ALLOC: &str = "lock_alloc";
/// Contended acquisitions of the disk-allocator lock.
pub const LOCK_CONTENDED_ALLOC: &str = "lock_contended_alloc";
/// Acquisitions of the age-table lock.
pub const LOCK_AGES: &str = "lock_ages";
/// Contended acquisitions of the age-table lock.
pub const LOCK_CONTENDED_AGES: &str = "lock_contended_ages";
/// Acquisitions of the inode-I/O ordering lock.
pub const LOCK_INODE_IO: &str = "lock_inode_io";
/// Contended acquisitions of the inode-I/O ordering lock.
pub const LOCK_CONTENDED_INODE_IO: &str = "lock_contended_inode_io";
/// Read-side acquisitions of the maintenance (compaction/ageing) lock.
pub const LOCK_MAINTENANCE_READ: &str = "lock_maintenance_read";
/// Contended read-side acquisitions of the maintenance lock.
pub const LOCK_CONTENDED_MAINTENANCE_READ: &str = "lock_contended_maintenance_read";
/// Write-side acquisitions of the maintenance lock.
pub const LOCK_MAINTENANCE_WRITE: &str = "lock_maintenance_write";
/// Contended write-side acquisitions of the maintenance lock.
pub const LOCK_CONTENDED_MAINTENANCE_WRITE: &str = "lock_contended_maintenance_write";
/// Acquisitions of the in-flight cold-load registry lock.
pub const LOCK_INFLIGHT: &str = "lock_inflight";
/// Contended acquisitions of the in-flight registry lock.
pub const LOCK_CONTENDED_INFLIGHT: &str = "lock_contended_inflight";

/// Telemetry gauge: instantaneous per-disk request-queue depth, sampled
/// by the disk scheduler once per telemetry period (instance = disk id).
pub const GAUGE_DISK_QUEUE_DEPTH: &str = "disk_queue_depth";

/// Telemetry gauge: the disk arm's current block position at sample time
/// (instance = disk id).
pub const GAUGE_DISK_ARM_BLOCK: &str = "disk_arm_block";

/// Telemetry gauge: bytes of payload resident in the RAM cache.
pub const GAUGE_CACHE_USED_BYTES: &str = "cache_used_bytes";

/// Telemetry gauge: bytes held by the protected/Am segment of the
/// scan-resistant cache policy (zero under plain LRU).
pub const GAUGE_CACHE_PROTECTED_BYTES: &str = "cache_protected_bytes";

/// Telemetry gauge: entries on the TwoQ A1out ghost list (zero for
/// policies without a ghost list).
pub const GAUGE_CACHE_GHOST_LEN: &str = "cache_ghost_len";

/// Telemetry gauge: free allocation units in the extent allocator.
pub const GAUGE_ALLOC_FREE_BLOCKS: &str = "alloc_free_blocks";

/// Telemetry gauge: largest contiguous free hole (allocation units) —
/// the allocator's fragmentation headline.
pub const GAUGE_ALLOC_MAX_HOLE: &str = "alloc_max_hole";

/// Telemetry gauge: files whose payload still lives in the group-commit
/// log region (not yet migrated to a contiguous home).
pub const GAUGE_LOG_RESIDENT_FILES: &str = "log_resident_files";

/// Telemetry gauge: creates queued in the group committer awaiting a
/// leader flush at sample time (batch occupancy).
pub const GAUGE_GC_BATCH_OCCUPANCY: &str = "gc_batch_occupancy";

/// Telemetry gauge: write-once blocks burned on the archive tier (the
/// WORM platter's occupancy; monotonic by construction).
pub const GAUGE_TIER_ARCHIVE_BLOCKS: &str = "tier_archive_blocks";

/// Telemetry gauge: archived files queued for recall to the fast tier.
pub const GAUGE_TIER_RECALL_QUEUE: &str = "tier_recall_queue";

/// Telemetry gauge (evsim rig): per-disk backlog in simulated µs — how
/// far the disk's free time is ahead of the arriving request (instance =
/// disk id).
pub const GAUGE_EVSIM_DISK_BACKLOG_US: &str = "evsim_disk_backlog_us";

/// Telemetry counter-delta series (evsim rig): requests that lost their
/// packet to a lossy wire since the last sample — the SLO watchdog's
/// fault-burst tripwire (any non-zero rate is a degradation).
pub const GAUGE_EVSIM_RETRIES: &str = "evsim_retries";

/// Every telemetry gauge name the workspace can sample, for exhaustive
/// iteration (MONITOR snapshots, doc tables, the registry drift test).
/// Counter-delta series reuse names from [`ALL`] and are not repeated
/// here.
pub const GAUGES: &[&str] = &[
    GAUGE_DISK_QUEUE_DEPTH,
    GAUGE_DISK_ARM_BLOCK,
    GAUGE_CACHE_USED_BYTES,
    GAUGE_CACHE_PROTECTED_BYTES,
    GAUGE_CACHE_GHOST_LEN,
    GAUGE_ALLOC_FREE_BLOCKS,
    GAUGE_ALLOC_MAX_HOLE,
    GAUGE_LOG_RESIDENT_FILES,
    GAUGE_GC_BATCH_OCCUPANCY,
    GAUGE_TIER_ARCHIVE_BLOCKS,
    GAUGE_TIER_RECALL_QUEUE,
    GAUGE_EVSIM_DISK_BACKLOG_US,
    GAUGE_EVSIM_RETRIES,
    GAUGE_SHARD_ROUTED_OPS,
    GAUGE_SHARD_DEGRADED_OPS,
];

/// Every counter name the core crate can emit, for exhaustive iteration
/// (status dumps, doc tables, tests that no name is duplicated).
pub const ALL: &[&str] = &[
    RECOVERY_REPAIRED_INODES,
    RECOVERY_LIVE_FILES,
    FAILOVER_READS,
    RPC_RETRIES,
    RPC_TIMEOUTS,
    RPC_GIVEUPS,
    DEDUP_HITS,
    DEDUP_EVICTIONS,
    CREATES,
    BYTES_CREATED,
    PIPELINED_CREATES,
    READS,
    SECTION_READS,
    PARTIAL_SECTION_LOADS,
    READAHEAD_BYTES,
    PIPELINED_READS,
    STREAM_SEGMENTS,
    PAYLOAD_BYTES_COPIED,
    DELETES,
    MODIFIES,
    DISK_COMPACTION_MOVES,
    COMPACTION_PREEMPTIONS,
    DISK_QUEUE_DEPTH_MAX,
    DISK_COALESCED_IOS,
    SCHED_DEADLINE_PROMOTIONS,
    AGED_OUT,
    MAINTENANCE_TICKS,
    MAINT_SKIPS_LOG_MIGRATION,
    MAINT_SKIPS_PACKING,
    MAINT_SKIPS_RECALL,
    MAINT_SKIPS_DEMOTION,
    TIER_DEMOTIONS,
    TIER_PROMOTIONS,
    TIER_ARCHIVE_BYTES,
    LOG_APPENDS,
    GROUP_COMMIT_FLUSHES,
    LOG_BATCH_FILES,
    LOG_RESIDENT_BYTES,
    LOG_MIGRATIONS,
    CACHE_HITS,
    CACHE_MISSES,
    CACHE_INSERTS,
    CACHE_EVICTIONS,
    CACHE_COMPACTIONS,
    CACHE_SCAN_PROMOTIONS,
    CACHE_PROBATION_EVICTIONS,
    CACHE_PROTECTED_DEMOTIONS,
    CACHE_GHOST_HITS,
    EVSIM_EVENTS,
    EVSIM_CLIENTS_MAX,
    LOCK_TABLE_READ,
    LOCK_CONTENDED_TABLE_READ,
    LOCK_TABLE_WRITE,
    LOCK_CONTENDED_TABLE_WRITE,
    LOCK_CACHE_READ,
    LOCK_CONTENDED_CACHE_READ,
    LOCK_CACHE_WRITE,
    LOCK_CONTENDED_CACHE_WRITE,
    LOCK_ALLOC,
    LOCK_CONTENDED_ALLOC,
    LOCK_AGES,
    LOCK_CONTENDED_AGES,
    LOCK_INODE_IO,
    LOCK_CONTENDED_INODE_IO,
    LOCK_MAINTENANCE_READ,
    LOCK_CONTENDED_MAINTENANCE_READ,
    LOCK_MAINTENANCE_WRITE,
    LOCK_CONTENDED_MAINTENANCE_WRITE,
    LOCK_INFLIGHT,
    LOCK_CONTENDED_INFLIGHT,
    SHARD_ROUTED_OPS,
    SHARD_DEGRADED_OPS,
    SHARD_REBALANCE_EXTENTS,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate counter name {name}");
        }
        for name in GAUGES {
            assert!(seen.insert(*name), "gauge name {name} collides");
        }
    }

    #[test]
    fn rpc_layer_counters_are_registered() {
        // The retry/dedup names are declared by `amoeba_rpc::fault` and
        // re-exported here; the registry must carry them so status dumps
        // and benchmarks iterate over the full set.
        for name in [
            RPC_RETRIES,
            RPC_TIMEOUTS,
            RPC_GIVEUPS,
            DEDUP_HITS,
            DEDUP_EVICTIONS,
        ] {
            assert!(ALL.contains(&name), "{name} missing from ALL");
        }
    }

    #[test]
    fn cache_policy_and_evsim_counters_are_registered() {
        for name in [
            CACHE_SCAN_PROMOTIONS,
            CACHE_PROBATION_EVICTIONS,
            CACHE_PROTECTED_DEMOTIONS,
            CACHE_GHOST_HITS,
            EVSIM_EVENTS,
            EVSIM_CLIENTS_MAX,
        ] {
            assert!(ALL.contains(&name), "{name} missing from ALL");
        }
    }

    #[test]
    fn shard_counters_are_registered() {
        // The routed/degraded names are declared by `amoeba_rpc::shard`
        // (the router lives below the core crate) and re-exported here;
        // the rebalance counter is the core rebalancer's own.
        for name in [
            SHARD_ROUTED_OPS,
            SHARD_DEGRADED_OPS,
            SHARD_REBALANCE_EXTENTS,
        ] {
            assert!(ALL.contains(&name), "{name} missing from ALL");
        }
        for name in [GAUGE_SHARD_ROUTED_OPS, GAUGE_SHARD_DEGRADED_OPS] {
            assert!(GAUGES.contains(&name), "{name} missing from GAUGES");
        }
    }

    #[test]
    fn tiering_and_maintenance_counters_are_registered() {
        for name in [
            MAINTENANCE_TICKS,
            MAINT_SKIPS_LOG_MIGRATION,
            MAINT_SKIPS_PACKING,
            MAINT_SKIPS_RECALL,
            MAINT_SKIPS_DEMOTION,
            TIER_DEMOTIONS,
            TIER_PROMOTIONS,
            TIER_ARCHIVE_BYTES,
        ] {
            assert!(ALL.contains(&name), "{name} missing from ALL");
        }
        for name in [GAUGE_TIER_ARCHIVE_BLOCKS, GAUGE_TIER_RECALL_QUEUE] {
            assert!(GAUGES.contains(&name), "{name} missing from GAUGES");
        }
    }

    #[test]
    fn every_lock_counter_has_a_contended_twin() {
        for name in ALL
            .iter()
            .filter(|n| n.starts_with("lock_") && !n.starts_with("lock_contended_"))
        {
            let twin = format!("lock_contended_{}", &name["lock_".len()..]);
            assert!(
                ALL.contains(&twin.as_str()),
                "{name} has no {twin} counterpart"
            );
        }
    }
}
