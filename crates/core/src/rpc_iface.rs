//! The Bullet server's RPC facade and client stubs.
//!
//! "The Bullet interface consists of four functions" (§2.2) —
//! `BULLET.CREATE`, `BULLET.SIZE`, `BULLET.READ`, `BULLET.DELETE` — plus
//! the §5 extensions.  Whole files travel as the bulk-data part of a
//! single request or reply.

use std::cell::Cell;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use amoeba_cap::{Capability, Port, Rights, CAP_WIRE_LEN};
use amoeba_rpc::fault::untag_request;
use amoeba_rpc::{DedupCache, Reply, Request, RpcClient, RpcServer, Status, StreamWire};

use crate::accounting::ClientScope;
use crate::server::BulletServer;

/// Command codes of the Bullet protocol.
pub mod commands {
    /// `BULLET.CREATE(DATA, P-FACTOR) → CAPABILITY`.
    pub const CREATE: u32 = 1;
    /// `BULLET.SIZE(CAP) → SIZE`.
    pub const SIZE: u32 = 2;
    /// `BULLET.READ(CAP) → DATA`.
    pub const READ: u32 = 3;
    /// `BULLET.DELETE(CAP)`.
    pub const DELETE: u32 = 4;
    /// Partial read: `(CAP, OFFSET, LEN) → DATA` (§5 extension).
    pub const READ_SECTION: u32 = 5;
    /// Derive a new file: `(CAP, OFFSET, P) + patch → CAPABILITY` (§5).
    pub const MODIFY: u32 = 6;
    /// Derive by appending: `(CAP, P) + data → CAPABILITY` (§5).
    pub const APPEND: u32 = 7;
    /// Restrict rights server-side: `(CAP, MASK) → CAPABILITY`.
    pub const RESTRICT: u32 = 8;
    /// Flush background replica writes.
    pub const SYNC: u32 = 9;
}

/// Replies the at-most-once cache remembers per server (the paper-era
/// reply cache was similarly small: enough to cover every client's
/// outstanding transaction, not a history).
const DEDUP_CAPACITY: usize = 1024;

/// The RPC wrapper: exposes a [`BulletServer`] on its port.
///
/// Requests tagged with a transaction id (see
/// [`amoeba_rpc::fault::tag_request`]) get at-most-once semantics: a
/// retransmitted `CREATE` replays the original reply instead of
/// allocating a second extent.  Untagged requests — everything the
/// plain [`BulletClient`] sends — skip the cache entirely.
pub struct BulletRpcServer {
    server: Arc<BulletServer>,
    dedup: DedupCache,
}

impl BulletRpcServer {
    /// Wraps a server for registration with a dispatcher.
    pub fn new(server: Arc<BulletServer>) -> Arc<BulletRpcServer> {
        Arc::new(BulletRpcServer {
            server,
            dedup: DedupCache::new(DEDUP_CAPACITY),
        })
    }

    /// The wrapped server.
    pub fn server(&self) -> &Arc<BulletServer> {
        &self.server
    }

    /// The at-most-once reply cache counters: `dedup_hits`,
    /// `dedup_evictions`.
    pub fn dedup_stats(&self) -> &amoeba_sim::Stats {
        self.dedup.stats()
    }
}

impl BulletRpcServer {
    fn std_info(&self, req: &Request) -> Reply {
        if req.cap.object.value() == 0 {
            let frag = self.server.disk_frag_report();
            return Reply::ok(
                Bytes::new(),
                Bytes::from(format!(
                    "bullet file server at {}: {} files, {}/{} data blocks free",
                    self.server.port(),
                    self.server.live_files(),
                    frag.free,
                    frag.total
                )),
            );
        }
        match self.server.size(&req.cap) {
            Ok(size) => Reply::ok(
                Bytes::new(),
                Bytes::from(format!("bullet file #{}: {} bytes", req.cap.object, size)),
            ),
            Err(e) => Reply::error(e.into()),
        }
    }

    fn std_status(&self) -> Reply {
        let mut out = String::new();
        for (k, v) in self.server.stats().snapshot() {
            out.push_str(&format!("{k}={v}\n"));
        }
        for (k, v) in self.server.cache_stats() {
            out.push_str(&format!("{k}={v}\n"));
        }
        for (k, v) in self.server.lock_stats() {
            out.push_str(&format!("{k}={v}\n"));
        }
        for (k, v) in self.dedup.stats().snapshot() {
            out.push_str(&format!("{k}={v}\n"));
        }
        let frag = self.server.disk_frag_report();
        out.push_str(&format!(
            "disk_free_blocks={} disk_holes={} disk_frag={:.3}\n",
            frag.free, frag.hole_count, frag.external_fragmentation
        ));
        Reply::ok(Bytes::new(), Bytes::from(out))
    }
}

impl RpcServer for BulletRpcServer {
    fn port(&self) -> Port {
        self.server.port()
    }

    fn handle(&self, req: Request) -> Reply {
        let (req, txn) = untag_request(req);
        match txn {
            Some(txn) => {
                // All server-side work for this request — including the
                // data-path charges deep in `BulletServer` — bills to the
                // transaction tag's client while the scope is open.
                let _scope = ClientScope::enter(txn.client);
                let executed = Cell::new(false);
                let reply = self.dedup.execute(txn, || {
                    executed.set(true);
                    self.dispatch(req)
                });
                if !executed.get() {
                    // Replayed from the at-most-once cache: the client's
                    // RPC layer retransmitted.
                    self.server
                        .accounting()
                        .charge(txn.client, |u| u.retries += 1);
                }
                reply
            }
            None => self.dispatch(req),
        }
    }

    fn handle_streamed(&self, req: Request, wire: &StreamWire) -> Reply {
        let (req, txn) = untag_request(req);
        match txn {
            Some(txn) => {
                let _scope = ClientScope::enter(txn.client);
                let executed = Cell::new(false);
                let reply = self.dedup.execute(txn, || {
                    executed.set(true);
                    self.dispatch_streamed(req, wire)
                });
                if !executed.get() {
                    self.server
                        .accounting()
                        .charge(txn.client, |u| u.retries += 1);
                }
                reply
            }
            None => self.dispatch_streamed(req, wire),
        }
    }
}

impl BulletRpcServer {
    fn dispatch(&self, req: Request) -> Reply {
        use amoeba_rpc::std_commands;
        let result = match req.command {
            std_commands::INFO => return self.std_info(&req),
            std_commands::STATUS => return self.std_status(),
            std_commands::MONITOR => {
                return Reply::ok(Bytes::new(), Bytes::from(self.server.monitor_snapshot()))
            }
            commands::CREATE => {
                let Some(p) = read_u32(&req.params, 0) else {
                    return Reply::error(Status::BadParam);
                };
                self.server
                    .create(req.data, p)
                    .map(|cap| Reply::ok(cap_bytes(&cap), Bytes::new()))
            }
            commands::SIZE => self.server.size(&req.cap).map(|size| {
                let mut params = BytesMut::with_capacity(4);
                params.put_u32(size);
                Reply::ok(params.freeze(), Bytes::new())
            }),
            commands::READ => self
                .server
                .read(&req.cap)
                .map(|data| Reply::ok(Bytes::new(), data)),
            commands::DELETE => self
                .server
                .delete(&req.cap)
                .map(|()| Reply::ok(Bytes::new(), Bytes::new())),
            commands::READ_SECTION => {
                let (Some(offset), Some(len)) =
                    (read_u32(&req.params, 0), read_u32(&req.params, 4))
                else {
                    return Reply::error(Status::BadParam);
                };
                self.server
                    .read_section(&req.cap, offset, len)
                    .map(|data| Reply::ok(Bytes::new(), data))
            }
            commands::MODIFY => {
                let (Some(offset), Some(p)) = (read_u32(&req.params, 0), read_u32(&req.params, 4))
                else {
                    return Reply::error(Status::BadParam);
                };
                self.server
                    .modify(&req.cap, offset, &req.data, p)
                    .map(|cap| Reply::ok(cap_bytes(&cap), Bytes::new()))
            }
            commands::APPEND => {
                let Some(p) = read_u32(&req.params, 0) else {
                    return Reply::error(Status::BadParam);
                };
                self.server
                    .append(&req.cap, &req.data, p)
                    .map(|cap| Reply::ok(cap_bytes(&cap), Bytes::new()))
            }
            commands::RESTRICT => {
                let Some(&mask) = req.params.first() else {
                    return Reply::error(Status::BadParam);
                };
                self.server
                    .restrict(&req.cap, Rights::from_bits(mask))
                    .map(|cap| Reply::ok(cap_bytes(&cap), Bytes::new()))
            }
            commands::SYNC => self
                .server
                .sync()
                .map(|()| Reply::ok(Bytes::new(), Bytes::new())),
            _ => return Reply::error(Status::ComBad),
        };
        result.unwrap_or_else(|e| Reply::error(e.into()))
    }

    fn dispatch_streamed(&self, req: Request, wire: &StreamWire) -> Reply {
        let result = match req.command {
            commands::CREATE => {
                let Some(p) = read_u32(&req.params, 0) else {
                    return Reply::error(Status::BadParam);
                };
                self.server
                    .create_streamed(req.data, p, Some(wire))
                    .map(|cap| Reply::ok(cap_bytes(&cap), Bytes::new()))
            }
            commands::READ => self
                .server
                .read_streamed(&req.cap, Some(wire))
                .map(|data| streamed_reply(wire, data)),
            commands::READ_SECTION => {
                let (Some(offset), Some(len)) =
                    (read_u32(&req.params, 0), read_u32(&req.params, 4))
                else {
                    return Reply::error(Status::BadParam);
                };
                self.server
                    .read_section_streamed(&req.cap, offset, len, Some(wire))
                    .map(|data| streamed_reply(wire, data))
            }
            // Everything else moves little bulk data; the monolithic path
            // is already optimal for it.
            _ => return self.dispatch(req),
        };
        result.unwrap_or_else(|e| Reply::error(e.into()))
    }
}

/// Closes out a read reply whose payload may have been streamed: frames
/// owed to a channel peer are delivered (zero-copy slices of `data`), and
/// if they carry the payload the closing reply travels empty — the client
/// reassembles.
fn streamed_reply(wire: &StreamWire, data: Bytes) -> Reply {
    wire.finish_reply(&data);
    if wire.delivers_frames() && wire.reply_streamed() > 0 {
        Reply::ok(Bytes::new(), Bytes::new())
    } else {
        Reply::ok(Bytes::new(), data)
    }
}

fn read_u32(buf: &Bytes, at: usize) -> Option<u32> {
    buf.get(at..at + 4).map(|mut s| s.get_u32())
}

fn cap_bytes(cap: &Capability) -> Bytes {
    Bytes::copy_from_slice(&cap.to_wire())
}

fn cap_from_params(params: &Bytes) -> Result<Capability, Status> {
    if params.len() < CAP_WIRE_LEN {
        return Err(Status::BadParam);
    }
    Capability::from_wire(&params[..CAP_WIRE_LEN]).map_err(|_| Status::BadParam)
}

/// Client stubs for the Bullet protocol: what a workstation links against.
#[derive(Debug, Clone)]
pub struct BulletClient {
    rpc: RpcClient,
    server: Port,
}

impl BulletClient {
    /// A client of the Bullet service at `server`.
    pub fn new(rpc: RpcClient, server: Port) -> BulletClient {
        BulletClient { rpc, server }
    }

    /// The service port this client talks to (the SERVER argument of
    /// `BULLET.CREATE` — a client may hold several of these to use more
    /// than one Bullet server).
    pub fn server_port(&self) -> Port {
        self.server
    }

    fn service_cap(&self) -> Capability {
        let mut cap = Capability::null();
        cap.port = self.server;
        cap
    }

    /// `BULLET.CREATE`: stores `data` as a new immutable file.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn create(&self, data: Bytes, p_factor: u32) -> Result<Capability, Status> {
        let mut params = BytesMut::with_capacity(4);
        params.put_u32(p_factor);
        let reply = self
            .rpc
            .trans(self.service_cap(), commands::CREATE, params.freeze(), data)?;
        cap_from_params(&reply.params)
    }

    /// `BULLET.SIZE`.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn size(&self, cap: &Capability) -> Result<u32, Status> {
        let reply = self
            .rpc
            .trans(*cap, commands::SIZE, Bytes::new(), Bytes::new())?;
        read_u32(&reply.params, 0).ok_or(Status::BadParam)
    }

    /// `BULLET.READ`: fetches the whole file.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn read(&self, cap: &Capability) -> Result<Bytes, Status> {
        let reply = self
            .rpc
            .trans(*cap, commands::READ, Bytes::new(), Bytes::new())?;
        Ok(reply.data)
    }

    /// `BULLET.DELETE`.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn delete(&self, cap: &Capability) -> Result<(), Status> {
        self.rpc
            .trans(*cap, commands::DELETE, Bytes::new(), Bytes::new())?;
        Ok(())
    }

    /// Partial read (§5 extension).
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn read_section(&self, cap: &Capability, offset: u32, len: u32) -> Result<Bytes, Status> {
        let mut params = BytesMut::with_capacity(8);
        params.put_u32(offset);
        params.put_u32(len);
        let reply = self
            .rpc
            .trans(*cap, commands::READ_SECTION, params.freeze(), Bytes::new())?;
        Ok(reply.data)
    }

    /// Derives a new file with `patch` overlaid at `offset` (§5).
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn modify(
        &self,
        cap: &Capability,
        offset: u32,
        patch: Bytes,
        p_factor: u32,
    ) -> Result<Capability, Status> {
        let mut params = BytesMut::with_capacity(8);
        params.put_u32(offset);
        params.put_u32(p_factor);
        let reply = self
            .rpc
            .trans(*cap, commands::MODIFY, params.freeze(), patch)?;
        cap_from_params(&reply.params)
    }

    /// Derives a new file by appending (§5).
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn append(
        &self,
        cap: &Capability,
        data: Bytes,
        p_factor: u32,
    ) -> Result<Capability, Status> {
        let mut params = BytesMut::with_capacity(4);
        params.put_u32(p_factor);
        let reply = self
            .rpc
            .trans(*cap, commands::APPEND, params.freeze(), data)?;
        cap_from_params(&reply.params)
    }

    /// Asks the server for a capability with `cap.rights ∩ mask`.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn restrict(&self, cap: &Capability, mask: Rights) -> Result<Capability, Status> {
        let reply = self.rpc.trans(
            *cap,
            commands::RESTRICT,
            Bytes::copy_from_slice(&[mask.bits()]),
            Bytes::new(),
        )?;
        cap_from_params(&reply.params)
    }

    /// `STD_MONITOR`: fetches the server's live telemetry snapshot — a
    /// versioned JSON object (top-level `"monitor_schema"` key) carrying
    /// every counter, the tail of each time-series ring, the SLO
    /// watchdog's event log, and the top per-client resource consumers.
    /// See [`BulletServer::monitor_snapshot`].
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn monitor(&self) -> Result<String, Status> {
        let reply = self.rpc.trans(
            self.service_cap(),
            amoeba_rpc::std_commands::MONITOR,
            Bytes::new(),
            Bytes::new(),
        )?;
        String::from_utf8(reply.data.to_vec()).map_err(|_| Status::BadParam)
    }

    /// Flushes the server's background replica writes.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn sync(&self) -> Result<(), Status> {
        self.rpc.trans(
            self.service_cap(),
            commands::SYNC,
            Bytes::new(),
            Bytes::new(),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::BulletConfig;
    use amoeba_net::SimEthernet;
    use amoeba_rpc::Dispatcher;
    use amoeba_sim::{NetProfile, SimClock};

    fn stack() -> (SimClock, BulletClient, Arc<BulletServer>) {
        let mut cfg = BulletConfig::small_test();
        let clock = SimClock::new();
        cfg.clock = clock.clone();
        let server = Arc::new(BulletServer::format(cfg, 2).unwrap());
        let net = SimEthernet::new(clock.clone(), NetProfile::ethernet_10mbit());
        let dispatcher = Dispatcher::new(net);
        dispatcher.register(BulletRpcServer::new(server.clone()));
        let client = BulletClient::new(RpcClient::new(dispatcher), server.port());
        (clock, client, server)
    }

    #[test]
    fn full_protocol_round_trip() {
        let (_clock, client, _server) = stack();
        let cap = client
            .create(Bytes::from_static(b"remote file"), 1)
            .unwrap();
        assert_eq!(client.size(&cap).unwrap(), 11);
        assert_eq!(
            client.read(&cap).unwrap(),
            Bytes::from_static(b"remote file")
        );
        assert_eq!(
            client.read_section(&cap, 7, 4).unwrap(),
            Bytes::from_static(b"file")
        );
        let v2 = client
            .modify(&cap, 0, Bytes::from_static(b"REMOTE"), 1)
            .unwrap();
        assert_eq!(
            client.read(&v2).unwrap(),
            Bytes::from_static(b"REMOTE file")
        );
        let v3 = client.append(&cap, Bytes::from_static(b"!"), 1).unwrap();
        assert_eq!(
            client.read(&v3).unwrap(),
            Bytes::from_static(b"remote file!")
        );
        client.delete(&cap).unwrap();
        assert_eq!(client.read(&cap).unwrap_err(), Status::NotFound);
        client.sync().unwrap();
    }

    #[test]
    fn monitor_rpc_returns_versioned_snapshot() {
        let mut cfg = BulletConfig::small_test();
        let clock = SimClock::new();
        cfg.clock = clock.clone();
        cfg.telemetry = amoeba_sim::TelemetryConfig::enabled(amoeba_sim::Nanos::from_us(1), 64);
        let server = Arc::new(BulletServer::format(cfg, 2).unwrap());
        let net = SimEthernet::new(clock.clone(), NetProfile::ethernet_10mbit());
        let dispatcher = Dispatcher::new(net);
        dispatcher.register(BulletRpcServer::new(server.clone()));
        let client = BulletClient::new(RpcClient::new(dispatcher), server.port());
        let cap = client.create(Bytes::from_static(b"monitored"), 1).unwrap();
        client.read(&cap).unwrap();
        client.read(&cap).unwrap();
        let snap = client.monitor().unwrap();
        assert!(snap.starts_with("{\"monitor_schema\":1"), "{snap}");
        assert!(snap.contains("\"counters\":{"), "{snap}");
        // With a 1 µs period, the per-request tick fired and sampled the
        // layer gauges into the rings.
        assert!(snap.contains("\"series\":\"cache_used_bytes\""), "{snap}");
        assert!(snap.contains("\"slo_events\":["), "{snap}");
    }

    #[test]
    fn tagged_requests_charge_client_accounting() {
        use amoeba_rpc::fault::{tag_request, TxnId};
        let mut cfg = BulletConfig::small_test();
        cfg.accounting = crate::ClientAccounting::on();
        let server = Arc::new(BulletServer::format(cfg, 2).unwrap());
        let rpc = BulletRpcServer::new(server.clone());
        let cap = server.create(Bytes::from_static(b"abcde"), 1).unwrap();
        let make = || Request {
            cap,
            command: commands::READ,
            params: Bytes::new(),
            data: Bytes::new(),
        };
        let txn = TxnId { client: 42, seq: 1 };
        let first = rpc.handle(tag_request(make(), txn));
        assert_eq!(first.status, Status::Ok);
        let usage = server.accounting().usage(42).unwrap();
        assert_eq!(usage.requests, 1);
        assert_eq!(usage.bytes_read, 5);
        // A retransmission of the same transaction replays from the
        // dedup cache: no new work charged, one retry recorded.
        let replay = rpc.handle(tag_request(make(), txn));
        assert_eq!(replay.status, Status::Ok);
        let usage = server.accounting().usage(42).unwrap();
        assert_eq!(usage.requests, 1);
        assert_eq!(usage.retries, 1);
        // Untagged traffic is charged to nobody.
        rpc.handle(make());
        assert_eq!(server.accounting().len(), 1);
        let snap = server.monitor_snapshot();
        assert!(snap.contains("\"client\":42"), "{snap}");
    }

    #[test]
    fn restricted_cap_via_rpc() {
        let (_clock, client, _server) = stack();
        let owner = client.create(Bytes::from_static(b"data"), 1).unwrap();
        let reader = client.restrict(&owner, Rights::READ).unwrap();
        assert_eq!(client.read(&reader).unwrap(), Bytes::from_static(b"data"));
        assert_eq!(client.delete(&reader).unwrap_err(), Status::Denied);
    }

    #[test]
    fn malformed_params_rejected() {
        let (_clock, client, server) = stack();
        // Hand-roll a CREATE with truncated params.
        let reply = client
            .rpc
            .trans(
                {
                    let mut c = Capability::null();
                    c.port = server.port();
                    c
                },
                commands::CREATE,
                Bytes::from_static(&[1, 2]),
                Bytes::new(),
            )
            .unwrap_err();
        assert_eq!(reply, Status::BadParam);
        // Unknown command.
        let err = client
            .rpc
            .trans(client.service_cap(), 999, Bytes::new(), Bytes::new())
            .unwrap_err();
        assert_eq!(err, Status::ComBad);
    }

    #[test]
    fn whole_file_transfer_is_one_rpc() {
        let (_clock, client, _server) = stack();
        let net_msgs_before = client.rpc.dispatcher().net().stats().get("net_messages");
        let cap = client.create(Bytes::from(vec![7u8; 100_000]), 2).unwrap();
        client.read(&cap).unwrap();
        let net_msgs = client.rpc.dispatcher().net().stats().get("net_messages") - net_msgs_before;
        // One request + one reply per operation — never per block.
        assert_eq!(net_msgs, 4);
    }

    #[test]
    fn simulated_delay_structure_matches_paper() {
        // A cached 1-byte read must be around a millisecond; a cached
        // large read is dominated by wire time.
        let (clock, client, _server) = stack();
        let tiny = client.create(Bytes::from_static(b"x"), 1).unwrap();
        let big = client.create(Bytes::from(vec![1u8; 1 << 20]), 1).unwrap();
        client.read(&tiny).unwrap();
        client.read(&big).unwrap(); // both now cached

        let (_, t_tiny) = clock.time(|| client.read(&tiny).unwrap());
        let (_, t_big) = clock.time(|| client.read(&big).unwrap());
        assert!(
            (0.5..8.0).contains(&t_tiny.as_ms_f64()),
            "1-byte read {t_tiny}"
        );
        // Server-side only (the client's reception copy is charged by the
        // benchmark harness, not the RPC layer), so this sits near the
        // raw-wire ~1.1 MB/s rather than the user-to-user ~800 KB/s.
        let bw = (1 << 20) as f64 / 1024.0 / t_big.as_secs_f64();
        assert!(
            (500.0..1300.0).contains(&bw),
            "1 MB read bandwidth {bw} KB/s"
        );
    }
}
