//! The Bullet file server — the paper's primary contribution.
//!
//! The Bullet server stores **immutable** files **contiguously** — on disk,
//! in its RAM cache, and on the wire.  There are no update-in-place
//! operations: the interface is `CREATE`, `SIZE`, `READ`, `DELETE`
//! (§2.2), plus the §5 extensions (`MODIFY`/`APPEND`, which derive a *new*
//! file from an existing one server-side, and partial reads for small
//! clients).
//!
//! # Architecture (matching §3 of the paper)
//!
//! * [`layout`] — the on-disk format: block 0 region holds the inode
//!   table; inode 0 is the *disk descriptor* (block size, inode-table
//!   size, data-area size); every other inode is 16 bytes — a 6-byte
//!   random number, a 2-byte cache index, a 4-byte start block, and a
//!   4-byte byte count.  The rest of the disk is contiguous files and
//!   holes.
//! * [`table`] — the in-RAM inode table, read in full at start-up and kept
//!   permanently; performs the start-up consistency scan (overlap and
//!   bounds checks) and write-through inode updates (whole containing
//!   block).
//! * [`freelist`] — the extent allocator over the data area: first-fit,
//!   coalescing frees, fragmentation reporting, and compaction planning
//!   (the paper's "3 a.m." defragmentation).
//! * [`cache`] — the RAM file cache: *rnodes* referencing contiguous
//!   cache extents, LRU eviction by age field, and memory compaction.
//! * [`server`] — [`BulletServer`]: the operations, P-FACTOR durability
//!   over a mirrored disk pair, crash/recovery, and administration.
//! * [`rpc_iface`] — the RPC facade and the [`BulletClient`] stubs
//!   (`BULLET.CREATE` and friends as seen by remote clients).
//!
//! # Example
//!
//! ```
//! use bullet_core::{BulletConfig, BulletServer};
//! use bytes::Bytes;
//!
//! let server = BulletServer::format(BulletConfig::small_test(), 2)?;
//! let cap = server.create(Bytes::from_static(b"an immutable file"), 1)?;
//! assert_eq!(server.size(&cap)?, 17);
//! assert_eq!(server.read(&cap)?, Bytes::from_static(b"an immutable file"));
//! server.delete(&cap)?;
//! assert!(server.read(&cap).is_err());
//! # Ok::<(), bullet_core::BulletError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod cache;
pub mod counters;
pub mod error;
pub mod freelist;
pub mod gclog;
pub mod groupcommit;
pub mod layout;
pub mod maintenance;
pub mod rpc_iface;
pub mod server;
pub mod shard;
pub mod table;

pub use accounting::{ClientAccounting, ClientScope, ClientUsage};
pub use cache::{EvictionPolicy, FileCache};
pub use error::BulletError;
pub use freelist::{ExtentAllocator, FragReport, Move, Placement};
pub use gclog::{ChainScan, LogEntry, LogRecord};
pub use groupcommit::{BatchCaps, GroupCommitter};
pub use layout::{DiskDescriptor, Inode};
pub use maintenance::{JobTick, MaintenanceJob};
pub use rpc_iface::{commands, BulletClient, BulletRpcServer};
pub use server::{ArchiveDevice, BulletConfig, BulletServer, CompactTick, LayoutEntry, SchemeKind};
pub use shard::{BulletShards, ShardSlot};
