//! The in-RAM inode table.
//!
//! "When the file server starts up, it reads the complete inode table into
//! the RAM inode table and keeps it there permanently." (§3)  Updates are
//! written through by rewriting the whole disk block containing the inode
//! — exactly what the server does on create and delete.

use amoeba_disk::BlockDevice;

use crate::layout::{DiskDescriptor, Inode, INODE_SIZE};
use crate::BulletError;

/// How [`InodeTable::load`] reacts to inodes that fail the start-up
/// consistency scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPolicy {
    /// Refuse to start: return [`BulletError::Corrupt`].
    Fail,
    /// Zero the offending inodes (losing those files) and continue; the
    /// count is reported in [`LoadReport::repaired`].
    ZeroBad,
}

/// Result of loading the table at start-up.
#[derive(Debug)]
pub struct LoadReport {
    /// The loaded table.
    pub table: InodeTable,
    /// Number of inodes zeroed by [`RepairPolicy::ZeroBad`].
    pub repaired: u32,
}

/// The complete inode table, resident in RAM.
#[derive(Debug, Clone)]
pub struct InodeTable {
    desc: DiskDescriptor,
    inodes: Vec<Inode>,
    free: Vec<u32>,
    /// When set to `(index, count)`, this table belongs to shard `index`
    /// of a `count`-wide shard set: only object numbers whose
    /// [`amoeba_cap::shard_of`] hash lands on this shard may ever be
    /// *minted* here, so a capability's object number alone names its
    /// home shard.  Foreign-stripe slots can still be *installed*
    /// (adoption during a rebalance) and cleared — they just never return
    /// to the free list.
    stripe: Option<(u32, u32)>,
}

impl InodeTable {
    /// Formats `dev` with an empty Bullet layout: a disk descriptor sized
    /// so the inode table holds at least `min_inodes` slots, zeroed
    /// inodes, and all remaining blocks as the data area.
    ///
    /// # Errors
    ///
    /// Disk errors, or [`BulletError::Corrupt`] if the device is too small
    /// to hold the table plus at least one data block.
    pub fn format(dev: &dyn BlockDevice, min_inodes: u32) -> Result<InodeTable, BulletError> {
        let block_size = dev.block_size();
        let per_block = block_size / INODE_SIZE as u32;
        if per_block == 0 {
            return Err(BulletError::Corrupt(format!(
                "block size {block_size} cannot hold a {INODE_SIZE}-byte inode"
            )));
        }
        // +1 for the descriptor in slot 0.
        let control_blocks = (min_inodes + 1).div_ceil(per_block).max(1);
        let total = dev.num_blocks();
        if total <= control_blocks as u64 {
            return Err(BulletError::Corrupt(format!(
                "device of {total} blocks cannot hold {control_blocks} control blocks plus data"
            )));
        }
        let desc = DiskDescriptor {
            block_size,
            control_blocks,
            data_blocks: (total - control_blocks as u64)
                .try_into()
                .map_err(|_| BulletError::Corrupt("data area exceeds 32-bit blocks".into()))?,
        };
        let table = InodeTable::fresh(desc);
        for b in 0..control_blocks as u64 {
            dev.write_blocks(b, &table.block_image(b))?;
        }
        dev.sync()?;
        Ok(table)
    }

    fn fresh(desc: DiskDescriptor) -> InodeTable {
        let slots = desc.inode_slots();
        InodeTable {
            desc,
            inodes: vec![Inode::default(); slots as usize],
            // Descending so that low object numbers are handed out first.
            free: (1..slots).rev().collect(),
            stripe: None,
        }
    }

    /// Reads the complete inode table from a formatted device, performing
    /// the start-up consistency scan (bounds; overlap detection is the
    /// allocator's job via [`used_extents`](Self::used_extents)).
    ///
    /// # Errors
    ///
    /// Disk errors, a corrupt descriptor, or — under
    /// [`RepairPolicy::Fail`] — any inode pointing outside the data area.
    pub fn load(dev: &dyn BlockDevice, policy: RepairPolicy) -> Result<LoadReport, BulletError> {
        InodeTable::load_with_archive(dev, policy, 0)
    }

    /// [`load`](Self::load) for a server with a WORM archive tier of
    /// `archive_blocks` blocks: an inode whose extent lies wholly within
    /// `[data_end, data_end + archive_blocks)` encodes an archive-resident
    /// file (the archive device block is `start_block - data_end`) and
    /// passes the consistency scan.
    ///
    /// # Errors
    ///
    /// As [`load`](Self::load).
    pub fn load_with_archive(
        dev: &dyn BlockDevice,
        policy: RepairPolicy,
        archive_blocks: u64,
    ) -> Result<LoadReport, BulletError> {
        let bs = dev.block_size() as usize;
        let mut block0 = vec![0u8; bs];
        dev.read_blocks(0, &mut block0)?;
        let desc = DiskDescriptor::decode(
            block0[..INODE_SIZE]
                .try_into()
                .expect("block holds an inode"),
        )?;
        if desc.block_size != dev.block_size() {
            return Err(BulletError::Corrupt(format!(
                "descriptor block size {} does not match device block size {}",
                desc.block_size,
                dev.block_size()
            )));
        }
        if desc.data_end() > dev.num_blocks() {
            return Err(BulletError::Corrupt(
                "descriptor claims more blocks than the device has".into(),
            ));
        }

        let mut raw = vec![0u8; desc.control_blocks as usize * bs];
        dev.read_blocks(0, &mut raw)?;

        let slots = desc.inode_slots() as usize;
        let mut inodes = vec![Inode::default(); slots];
        let mut repaired = 0;
        for (i, inode) in inodes.iter_mut().enumerate().skip(1) {
            let off = i * INODE_SIZE;
            let mut parsed =
                Inode::decode(raw[off..off + INODE_SIZE].try_into().expect("within table"));
            // "The index has no significance on disk."
            parsed.index = 0;
            if !parsed.is_free() {
                let start = parsed.start_block as u64;
                let end = start + parsed.blocks(desc.block_size);
                let in_data = start >= desc.data_start() && end <= desc.data_end();
                let in_archive =
                    start >= desc.data_end() && end <= desc.data_end() + archive_blocks;
                if !in_data && !in_archive {
                    match policy {
                        RepairPolicy::Fail => {
                            return Err(BulletError::Corrupt(format!(
                                "inode {i} extent [{start}, {end}) outside data area"
                            )))
                        }
                        RepairPolicy::ZeroBad => {
                            repaired += 1;
                            continue; // leave zeroed
                        }
                    }
                }
            }
            *inode = parsed;
        }

        let free = (1..slots as u32)
            .rev()
            .filter(|&i| inodes[i as usize].is_free())
            .collect();
        Ok(LoadReport {
            table: InodeTable {
                desc,
                inodes,
                free,
                stripe: None,
            },
            repaired,
        })
    }

    /// The disk descriptor.
    pub fn descriptor(&self) -> &DiskDescriptor {
        &self.desc
    }

    /// Restricts this table to stripe `index` of a `count`-wide shard
    /// set: every free slot whose object number hashes elsewhere is
    /// dropped from the free list, so [`alloc`](Self::alloc) can only
    /// mint capabilities the shard router would deliver back here.
    /// `count <= 1` clears the stripe (the single-server layout).
    pub fn set_stripe(&mut self, index: u32, count: u32) {
        if count <= 1 {
            self.stripe = None;
            return;
        }
        self.stripe = Some((index, count));
        self.free
            .retain(|&i| amoeba_cap::shard_of(i, count) == index);
    }

    /// The `(index, count)` stripe, when sharded.
    pub fn stripe(&self) -> Option<(u32, u32)> {
        self.stripe
    }

    /// Whether object number `idx` belongs to this table's own stripe
    /// (always true for an unsharded table).
    pub fn owns_stripe(&self, idx: u32) -> bool {
        match self.stripe {
            None => true,
            Some((index, count)) => amoeba_cap::shard_of(idx, count) == index,
        }
    }

    /// Number of free inode slots.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of live files.  Counted directly rather than derived from
    /// the free-list length: a striped table drops foreign-stripe slots
    /// from the free list without them being live.
    pub fn live_count(&self) -> usize {
        self.inodes.iter().skip(1).filter(|i| !i.is_free()).count()
    }

    /// Allocates a slot for `inode`, returning its index.
    ///
    /// # Errors
    ///
    /// [`BulletError::NoInodes`] when the table is full.
    pub fn alloc(&mut self, inode: Inode) -> Result<u32, BulletError> {
        debug_assert!(!inode.is_free(), "allocating a zero inode");
        let idx = self.free.pop().ok_or(BulletError::NoInodes)?;
        self.inodes[idx as usize] = inode;
        Ok(idx)
    }

    /// Installs `inode` into the specific free slot `idx` — log-replay's
    /// reinstallation path, where the slot number is dictated by the
    /// record being replayed rather than chosen by the allocator.
    ///
    /// # Errors
    ///
    /// [`BulletError::Corrupt`] if `idx` is slot 0, out of range, or
    /// currently live.
    pub fn install(&mut self, idx: u32, inode: Inode) -> Result<(), BulletError> {
        debug_assert!(!inode.is_free(), "installing a zero inode");
        match self.inodes.get(idx as usize) {
            Some(slot) if idx != 0 && slot.is_free() => {}
            _ => {
                return Err(BulletError::Corrupt(format!(
                    "cannot install into slot {idx}: missing or live"
                )))
            }
        }
        self.inodes[idx as usize] = inode;
        self.free.retain(|&f| f != idx);
        Ok(())
    }

    /// Looks up a live inode.
    ///
    /// # Errors
    ///
    /// [`BulletError::NotFound`] for slot 0, out-of-range, or free slots.
    pub fn get(&self, idx: u32) -> Result<&Inode, BulletError> {
        match self.inodes.get(idx as usize) {
            Some(inode) if idx != 0 && !inode.is_free() => Ok(inode),
            _ => Err(BulletError::NotFound),
        }
    }

    /// Mutable access to a live inode (cache-index updates).
    ///
    /// # Errors
    ///
    /// [`BulletError::NotFound`] as for [`get`](Self::get).
    pub fn get_mut(&mut self, idx: u32) -> Result<&mut Inode, BulletError> {
        match self.inodes.get_mut(idx as usize) {
            Some(inode) if idx != 0 && !inode.is_free() => Ok(inode),
            _ => Err(BulletError::NotFound),
        }
    }

    /// Zeroes a live inode (file deletion) and returns the freed slot to
    /// the allocator.
    ///
    /// # Errors
    ///
    /// [`BulletError::NotFound`] if the slot is not live.
    pub fn clear(&mut self, idx: u32) -> Result<(), BulletError> {
        self.clear_keep_slot(idx)?;
        self.release_slot(idx);
        Ok(())
    }

    /// Zeroes a live inode *without* returning the slot to the free list.
    /// The concurrent server uses this during deletion so the slot cannot
    /// be reallocated while the zeroed inode's write-through is still in
    /// flight; [`release_slot`](Self::release_slot) completes the pair.
    ///
    /// # Errors
    ///
    /// [`BulletError::NotFound`] if the slot is not live.
    pub fn clear_keep_slot(&mut self, idx: u32) -> Result<(), BulletError> {
        self.get(idx)?;
        self.inodes[idx as usize] = Inode::default();
        Ok(())
    }

    /// Returns a slot zeroed by [`clear_keep_slot`](Self::clear_keep_slot)
    /// to the free list, making it allocatable again.  A sharded table
    /// silently retires foreign-stripe slots instead: an adopted object's
    /// number must never be re-minted by a shard the router would not
    /// deliver it to.
    pub fn release_slot(&mut self, idx: u32) {
        debug_assert!(self.inodes[idx as usize].is_free(), "slot still live");
        if self.owns_stripe(idx) {
            self.free.push(idx);
        }
    }

    /// The control block containing inode `idx` (for write-through).
    pub fn block_of(&self, idx: u32) -> u64 {
        (idx / (self.desc.block_size / INODE_SIZE as u32)) as u64
    }

    /// Serializes control block `block` from the RAM table — "the whole
    /// disk block containing the inode has to be written".
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a control block.
    pub fn block_image(&self, block: u64) -> Vec<u8> {
        assert!(
            block < self.desc.control_blocks as u64,
            "not a control block"
        );
        let per_block = (self.desc.block_size / INODE_SIZE as u32) as usize;
        let mut out = vec![0u8; self.desc.block_size as usize];
        for i in 0..per_block {
            let idx = block as usize * per_block + i;
            let enc = if idx == 0 {
                self.desc.encode()
            } else if idx < self.inodes.len() {
                self.inodes[idx].encode()
            } else {
                [0u8; INODE_SIZE]
            };
            out[i * INODE_SIZE..(i + 1) * INODE_SIZE].copy_from_slice(&enc);
        }
        out
    }

    /// All live `(start_block, blocks)` extents, for the allocator rebuild
    /// and the overlap check.
    pub fn used_extents(&self) -> Vec<(u64, u64)> {
        self.inodes
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, inode)| !inode.is_free())
            .map(|(_, inode)| (inode.start_block as u64, inode.blocks(self.desc.block_size)))
            .collect()
    }

    /// Iterates over `(index, inode)` for all live files.
    pub fn live(&self) -> impl Iterator<Item = (u32, &Inode)> {
        self.inodes
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, inode)| !inode.is_free())
            .map(|(i, inode)| (i as u32, inode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_disk::RamDisk;

    fn dev() -> RamDisk {
        RamDisk::new(512, 256)
    }

    #[test]
    fn format_and_reload_empty() {
        let d = dev();
        let t = InodeTable::format(&d, 100).unwrap();
        assert!(t.descriptor().inode_slots() >= 101);
        let r = InodeTable::load(&d, RepairPolicy::Fail).unwrap();
        assert_eq!(r.repaired, 0);
        assert_eq!(r.table.live_count(), 0);
        assert_eq!(r.table.descriptor(), t.descriptor());
    }

    #[test]
    fn format_rejects_tiny_device() {
        let d = RamDisk::new(512, 1);
        assert!(InodeTable::format(&d, 100).is_err());
        let d2 = RamDisk::new(8, 16); // block too small for an inode
        assert!(InodeTable::format(&d2, 4).is_err());
    }

    #[test]
    fn alloc_get_clear() {
        let d = dev();
        let mut t = InodeTable::format(&d, 10).unwrap();
        let idx = t
            .alloc(Inode {
                random: 42,
                index: 0,
                start_block: t.descriptor().data_start() as u32,
                size_bytes: 100,
            })
            .unwrap();
        assert_eq!(idx, 1, "low slots first");
        assert_eq!(t.get(idx).unwrap().random, 42);
        assert_eq!(t.live_count(), 1);
        t.clear(idx).unwrap();
        assert!(t.get(idx).is_err());
        assert_eq!(t.live_count(), 0);
        // Freed slot is reused.
        let again = t
            .alloc(Inode {
                random: 1,
                ..Inode::default()
            })
            .unwrap();
        assert_eq!(again, idx);
    }

    #[test]
    fn slot_zero_and_free_slots_not_gettable() {
        let d = dev();
        let t = InodeTable::format(&d, 10).unwrap();
        assert!(t.get(0).is_err());
        assert!(t.get(1).is_err());
        assert!(t.get(9999).is_err());
    }

    #[test]
    fn exhaustion_reports_noinodes() {
        let d = dev();
        // One control block of 512/16 = 32 slots, 31 usable.
        let mut t = InodeTable::format(&d, 1).unwrap();
        let slots = t.descriptor().inode_slots() - 1;
        for _ in 0..slots {
            t.alloc(Inode {
                random: 1,
                ..Inode::default()
            })
            .unwrap();
        }
        assert_eq!(
            t.alloc(Inode {
                random: 1,
                ..Inode::default()
            })
            .unwrap_err(),
            BulletError::NoInodes
        );
    }

    #[test]
    fn write_back_and_reload_preserves_inodes() {
        let d = dev();
        let mut t = InodeTable::format(&d, 10).unwrap();
        let data_start = t.descriptor().data_start() as u32;
        let idx = t
            .alloc(Inode {
                random: 0xbeef,
                index: 3, // in-RAM cache index; must NOT survive reload
                start_block: data_start,
                size_bytes: 512,
            })
            .unwrap();
        d.write_blocks(t.block_of(idx), &t.block_image(t.block_of(idx)))
            .unwrap();

        let r = InodeTable::load(&d, RepairPolicy::Fail).unwrap();
        let got = r.table.get(idx).unwrap();
        assert_eq!(got.random, 0xbeef);
        assert_eq!(got.index, 0, "cache index has no significance on disk");
        assert_eq!(got.start_block, data_start);
        assert_eq!(r.table.used_extents(), vec![(data_start as u64, 1)]);
    }

    #[test]
    fn load_detects_out_of_area_extent() {
        let d = dev();
        let mut t = InodeTable::format(&d, 10).unwrap();
        let idx = t
            .alloc(Inode {
                random: 7,
                index: 0,
                start_block: 0, // inside the control area: invalid
                size_bytes: 512,
            })
            .unwrap();
        d.write_blocks(t.block_of(idx), &t.block_image(t.block_of(idx)))
            .unwrap();

        assert!(matches!(
            InodeTable::load(&d, RepairPolicy::Fail),
            Err(BulletError::Corrupt(_))
        ));
        let r = InodeTable::load(&d, RepairPolicy::ZeroBad).unwrap();
        assert_eq!(r.repaired, 1);
        assert_eq!(r.table.live_count(), 0);
    }

    #[test]
    fn load_with_archive_accepts_archive_range_extents() {
        let d = dev();
        let mut t = InodeTable::format(&d, 10).unwrap();
        let data_end = t.descriptor().data_end() as u32;
        let idx = t
            .alloc(Inode {
                random: 9,
                index: 0,
                start_block: data_end + 2, // archive block 2
                size_bytes: 512,
            })
            .unwrap();
        d.write_blocks(t.block_of(idx), &t.block_image(t.block_of(idx)))
            .unwrap();

        // Without archive geometry the extent is out of area.
        assert!(InodeTable::load(&d, RepairPolicy::Fail).is_err());
        let r = InodeTable::load_with_archive(&d, RepairPolicy::Fail, 8).unwrap();
        assert_eq!(r.table.get(idx).unwrap().start_block, data_end + 2);
        // An archive too small for the extent still rejects it.
        assert!(InodeTable::load_with_archive(&d, RepairPolicy::Fail, 2).is_err());
    }

    #[test]
    fn load_rejects_foreign_disk() {
        let d = dev();
        assert!(matches!(
            InodeTable::load(&d, RepairPolicy::Fail),
            Err(BulletError::Corrupt(_))
        ));
    }

    #[test]
    fn block_of_maps_indices_to_blocks() {
        let d = dev();
        let t = InodeTable::format(&d, 100).unwrap();
        let per_block = 512 / 16;
        assert_eq!(t.block_of(0), 0);
        assert_eq!(t.block_of(per_block - 1), 0);
        assert_eq!(t.block_of(per_block), 1);
    }

    #[test]
    fn live_iterates_only_live() {
        let d = dev();
        let mut t = InodeTable::format(&d, 10).unwrap();
        let a = t
            .alloc(Inode {
                random: 1,
                ..Inode::default()
            })
            .unwrap();
        let b = t
            .alloc(Inode {
                random: 2,
                ..Inode::default()
            })
            .unwrap();
        t.clear(a).unwrap();
        let live: Vec<u32> = t.live().map(|(i, _)| i).collect();
        assert_eq!(live, vec![b]);
    }
}
