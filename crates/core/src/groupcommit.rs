//! The group committer: batches concurrent CREATE payloads for one
//! sequential log append.
//!
//! Concurrent creates submit their payloads here; the first submitter of
//! a quiet period becomes the *leader*, lingers briefly so stragglers can
//! join, then drains the queue in cap-bounded batches and commits each
//! batch through the server's log-append path (one seek amortized over
//! the whole batch).  Followers block on a per-entry slot until the
//! leader distributes their result.  While a leader is committing, new
//! submitters keep enqueueing — the leader loops until the queue is dry,
//! so a create storm naturally coalesces into a few large records even
//! without the linger.
//!
//! This module is pure coordination: the actual commit — allocation,
//! table publish, checksummed record append, cache insert — is the
//! closure the server passes to [`GroupCommitter::submit`], which also
//! charges the simulated linger window.  Batch *composition* under real
//! threads depends on scheduling; the deterministic ablation path
//! (`BulletServer::create_batch`) bypasses this queue and forms batches
//! by position instead.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bytes::Bytes;

use amoeba_cap::Capability;

use crate::BulletError;

/// Byte/count caps bounding one committed batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchCaps {
    /// Maximum files per record.
    pub max_files: usize,
    /// Maximum total payload bytes per record.
    pub max_bytes: u64,
    /// How long a lone leader waits (host time) for stragglers before
    /// flushing.  The *simulated* linger is charged by the commit closure.
    pub linger: Duration,
}

/// One waiter's result slot.
struct Slot {
    result: Mutex<Option<Result<Capability, BulletError>>>,
    cv: Condvar,
}

impl Slot {
    fn deliver(&self, r: Result<Capability, BulletError>) {
        *self
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
        self.cv.notify_one();
    }

    fn wait(&self) -> Result<Capability, BulletError> {
        let mut guard = self
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self
                .cv
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

struct Pending {
    data: Bytes,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct Queue {
    pending: Vec<Pending>,
    leader_active: bool,
}

/// The shared submit queue (see the module docs).
#[derive(Default)]
pub struct GroupCommitter {
    queue: Mutex<Queue>,
}

impl GroupCommitter {
    /// A fresh, empty committer.
    pub fn new() -> GroupCommitter {
        GroupCommitter::default()
    }

    /// Payloads currently queued awaiting a leader flush (telemetry's
    /// batch-occupancy gauge; racy by nature, read without blocking
    /// submitters for long).
    pub fn pending_len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pending
            .len()
    }

    /// Submits one payload and blocks until a leader commits it.
    ///
    /// `commit` receives a cap-bounded batch (this payload is in exactly
    /// one of the batches committed during the call) and returns one
    /// result per file, in order.
    ///
    /// # Errors
    ///
    /// Whatever the commit closure reports for this payload.
    pub fn submit(
        &self,
        data: Bytes,
        caps: BatchCaps,
        commit: impl Fn(Vec<Bytes>) -> Vec<Result<Capability, BulletError>>,
    ) -> Result<Capability, BulletError> {
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        });
        let (lead, lone) = {
            let mut q = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q.pending.push(Pending {
                data,
                slot: Arc::clone(&slot),
            });
            let lone = q.pending.len() == 1;
            if q.leader_active {
                (false, lone)
            } else {
                q.leader_active = true;
                (true, lone)
            }
        };
        if lead {
            // Only a lone leader lingers (outside the queue lock, so
            // stragglers can join): with company already queued the batch
            // exists, flush immediately.
            if lone && !caps.linger.is_zero() {
                std::thread::sleep(caps.linger);
            }
            self.drain(caps, &commit);
        }
        slot.wait()
    }

    /// Leader duty: commit cap-bounded batches until the queue is dry.
    fn drain(
        &self,
        caps: BatchCaps,
        commit: &impl Fn(Vec<Bytes>) -> Vec<Result<Capability, BulletError>>,
    ) {
        loop {
            let batch: Vec<Pending> = {
                let mut q = self
                    .queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if q.pending.is_empty() {
                    q.leader_active = false;
                    return;
                }
                let mut take = 0;
                let mut bytes = 0u64;
                for p in &q.pending {
                    if take == caps.max_files.max(1)
                        || (take > 0 && bytes + p.data.len() as u64 > caps.max_bytes)
                    {
                        break;
                    }
                    bytes += p.data.len() as u64;
                    take += 1;
                }
                q.pending.drain(..take).collect()
            };
            let results = commit(batch.iter().map(|p| p.data.clone()).collect());
            debug_assert_eq!(results.len(), batch.len(), "one result per file");
            for (p, r) in batch.into_iter().zip(results) {
                p.slot.deliver(r);
            }
        }
    }
}

impl std::fmt::Debug for GroupCommitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitter").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_cap::{ObjNum, Port, Rights};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn caps(max_files: usize, max_bytes: u64) -> BatchCaps {
        BatchCaps {
            max_files,
            max_bytes,
            linger: Duration::from_micros(300),
        }
    }

    fn fake_cap(n: u32) -> Capability {
        Capability {
            port: Port::from_u64(1),
            object: ObjNum::new(n).unwrap(),
            rights: Rights::ALL,
            check: 0,
        }
    }

    #[test]
    fn single_submit_commits_a_batch_of_one() {
        let gc = GroupCommitter::new();
        let flushes = AtomicUsize::new(0);
        let got = gc
            .submit(Bytes::from_static(b"hello"), caps(8, 1 << 20), |batch| {
                flushes.fetch_add(1, Ordering::SeqCst);
                assert_eq!(batch.len(), 1);
                vec![Ok(fake_cap(7))]
            })
            .unwrap();
        assert_eq!(got.object.value(), 7);
        assert_eq!(flushes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_submits_coalesce_into_few_flushes() {
        let gc = Arc::new(GroupCommitter::new());
        let flushes = Arc::new(AtomicUsize::new(0));
        let next = Arc::new(AtomicUsize::new(0));
        let n = 16;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let gc = Arc::clone(&gc);
                let flushes = Arc::clone(&flushes);
                let next = Arc::clone(&next);
                std::thread::spawn(move || {
                    gc.submit(Bytes::from_static(b"x"), caps(32, 1 << 20), |batch| {
                        flushes.fetch_add(1, Ordering::SeqCst);
                        batch
                            .iter()
                            .map(|_| Ok(fake_cap(next.fetch_add(1, Ordering::SeqCst) as u32 + 1)))
                            .collect()
                    })
                    .unwrap()
                })
            })
            .collect();
        let mut objs: Vec<u32> = handles
            .into_iter()
            .map(|h| h.join().unwrap().object.value())
            .collect();
        objs.sort_unstable();
        objs.dedup();
        assert_eq!(objs.len(), n, "every waiter got a distinct result");
        // Scheduling-dependent, but never worse than one flush per file.
        assert!(flushes.load(Ordering::SeqCst) <= n);
    }

    #[test]
    fn caps_split_oversized_queues() {
        let gc = Arc::new(GroupCommitter::new());
        let sizes = Arc::new(Mutex::new(Vec::new()));
        let n = 9;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let gc = Arc::clone(&gc);
                let sizes = Arc::clone(&sizes);
                std::thread::spawn(move || {
                    gc.submit(Bytes::from(vec![0u8; 100]), caps(4, 1 << 20), |batch| {
                        sizes.lock().unwrap().push(batch.len());
                        batch.iter().map(|_| Ok(fake_cap(1))).collect()
                    })
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(sizes.lock().unwrap().iter().all(|&s| s <= 4));
    }

    #[test]
    fn errors_reach_their_submitters() {
        let gc = GroupCommitter::new();
        let err = gc.submit(Bytes::from_static(b"x"), caps(8, 1 << 20), |batch| {
            batch.iter().map(|_| Err(BulletError::NoSpace)).collect()
        });
        assert_eq!(err.unwrap_err(), BulletError::NoSpace);
    }
}
