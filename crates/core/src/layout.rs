//! The on-disk format (Fig. 1 of the paper).
//!
//! ```text
//! +--------------------+
//! | inode 0: disk      |   the disk descriptor: block size, inode-table
//! |          descriptor|   blocks ("control size"), data blocks
//! | inode 1            |
//! | inode 2            |   16 bytes each: 6-byte random number, 2-byte
//! |  ...               |   cache index, 4-byte start block, 4-byte size
//! | inode N            |
//! +--------------------+
//! | file 2             |
//! | (free)             |   contiguous files and holes
//! | file 1             |
//! | (free)             |
//! +--------------------+
//! ```

use crate::BulletError;

/// Size of one on-disk inode in bytes (6 + 2 + 4 + 4, §3).
pub const INODE_SIZE: usize = 16;

/// The disk descriptor stored in inode slot 0: "three 4 byte integers"
/// (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DiskDescriptor {
    /// The physical sector size used by the disk hardware.
    pub block_size: u32,
    /// The number of blocks in the inode table ("control size").
    pub control_blocks: u32,
    /// The number of blocks in the data area ("data size").
    pub data_blocks: u32,
}

impl DiskDescriptor {
    /// Serializes into an inode slot (the remaining 4 bytes hold a magic
    /// number so start-up can reject a foreign disk).
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut out = [0u8; INODE_SIZE];
        out[0..4].copy_from_slice(&self.block_size.to_be_bytes());
        out[4..8].copy_from_slice(&self.control_blocks.to_be_bytes());
        out[8..12].copy_from_slice(&self.data_blocks.to_be_bytes());
        out[12..16].copy_from_slice(Self::MAGIC);
        out
    }

    /// Parses inode slot 0.
    ///
    /// # Errors
    ///
    /// [`BulletError::Corrupt`] if the magic number is absent or the
    /// geometry is nonsensical.
    pub fn decode(buf: &[u8; INODE_SIZE]) -> Result<DiskDescriptor, BulletError> {
        if &buf[12..16] != Self::MAGIC {
            return Err(BulletError::Corrupt(
                "disk descriptor magic mismatch".into(),
            ));
        }
        let d = DiskDescriptor {
            block_size: u32::from_be_bytes(buf[0..4].try_into().expect("4 bytes")),
            control_blocks: u32::from_be_bytes(buf[4..8].try_into().expect("4 bytes")),
            data_blocks: u32::from_be_bytes(buf[8..12].try_into().expect("4 bytes")),
        };
        if d.block_size == 0 || d.control_blocks == 0 {
            return Err(BulletError::Corrupt(
                "disk descriptor geometry is zero".into(),
            ));
        }
        Ok(d)
    }

    const MAGIC: &'static [u8; 4] = b"BLT1";

    /// Number of inode slots the inode table holds (including slot 0).
    pub fn inode_slots(&self) -> u32 {
        self.control_blocks * (self.block_size / INODE_SIZE as u32)
    }

    /// First block of the data area.
    pub fn data_start(&self) -> u64 {
        self.control_blocks as u64
    }

    /// One-past-last block of the data area.
    pub fn data_end(&self) -> u64 {
        self.control_blocks as u64 + self.data_blocks as u64
    }
}

/// One on-disk inode (§3): "An inode consists of four fields."
///
/// A zero-filled inode is *unused* — deletion zeroes the inode and writes
/// it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Inode {
    /// "A 6-byte random number that is used for access protection.  It is
    /// essentially the key used to decrypt capabilities."  Only the low 48
    /// bits are stored.
    pub random: u64,
    /// "A 2-byte integer that is called the index.  The index has no
    /// significance on disk, but is used for cache management": 0 means
    /// not cached; otherwise it is 1 + the rnode slot.
    pub index: u16,
    /// "A 4-byte integer specifying the first block of the file on disk.
    /// Files are aligned on blocks."  Absolute device block number.
    pub start_block: u32,
    /// "A 4-byte integer giving the size of the file in bytes."
    pub size_bytes: u32,
}

impl Inode {
    /// True for a zero-filled (unused) slot.
    pub fn is_free(&self) -> bool {
        *self == Inode::default()
    }

    /// Number of whole blocks the file occupies for the given block size
    /// (zero-length files occupy one block so that every live file has a
    /// distinct extent).
    pub fn blocks(&self, block_size: u32) -> u64 {
        (self.size_bytes as u64).div_ceil(block_size as u64).max(1)
    }

    /// Serializes to the 16-byte on-disk form.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut out = [0u8; INODE_SIZE];
        let r = self.random.to_be_bytes();
        out[0..6].copy_from_slice(&r[2..8]);
        out[6..8].copy_from_slice(&self.index.to_be_bytes());
        out[8..12].copy_from_slice(&self.start_block.to_be_bytes());
        out[12..16].copy_from_slice(&self.size_bytes.to_be_bytes());
        out
    }

    /// Parses the 16-byte on-disk form.
    pub fn decode(buf: &[u8; INODE_SIZE]) -> Inode {
        Inode {
            random: u64::from_be_bytes([0, 0, buf[0], buf[1], buf[2], buf[3], buf[4], buf[5]]),
            index: u16::from_be_bytes([buf[6], buf[7]]),
            start_block: u32::from_be_bytes(buf[8..12].try_into().expect("4 bytes")),
            size_bytes: u32::from_be_bytes(buf[12..16].try_into().expect("4 bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip() {
        let d = DiskDescriptor {
            block_size: 512,
            control_blocks: 8,
            data_blocks: 1000,
        };
        assert_eq!(DiskDescriptor::decode(&d.encode()).unwrap(), d);
        assert_eq!(d.inode_slots(), 8 * 32);
        assert_eq!(d.data_start(), 8);
        assert_eq!(d.data_end(), 1008);
    }

    #[test]
    fn descriptor_rejects_bad_magic() {
        let mut buf = DiskDescriptor {
            block_size: 512,
            control_blocks: 8,
            data_blocks: 1000,
        }
        .encode();
        buf[13] = b'X';
        assert!(matches!(
            DiskDescriptor::decode(&buf),
            Err(BulletError::Corrupt(_))
        ));
    }

    #[test]
    fn descriptor_rejects_zero_geometry() {
        let buf = DiskDescriptor {
            block_size: 0,
            control_blocks: 8,
            data_blocks: 10,
        }
        .encode();
        assert!(DiskDescriptor::decode(&buf).is_err());
    }

    #[test]
    fn inode_roundtrip() {
        let i = Inode {
            random: 0x0000_a1b2_c3d4_e5f6,
            index: 7,
            start_block: 1234,
            size_bytes: 98765,
        };
        assert_eq!(Inode::decode(&i.encode()), i);
    }

    #[test]
    fn inode_random_masked_to_48_bits() {
        let i = Inode {
            random: 0xffff_a1b2_c3d4_e5f6,
            ..Inode::default()
        };
        // The encode/decode cycle keeps only 48 bits.
        assert_eq!(Inode::decode(&i.encode()).random, 0x0000_a1b2_c3d4_e5f6);
    }

    #[test]
    fn zero_inode_is_free() {
        assert!(Inode::default().is_free());
        assert!(Inode::decode(&[0u8; INODE_SIZE]).is_free());
        let live = Inode {
            random: 1,
            ..Inode::default()
        };
        assert!(!live.is_free());
    }

    #[test]
    fn block_count_rounds_up_and_floors_at_one() {
        let mk = |size| Inode {
            size_bytes: size,
            ..Inode::default()
        };
        assert_eq!(mk(0).blocks(512), 1);
        assert_eq!(mk(1).blocks(512), 1);
        assert_eq!(mk(512).blocks(512), 1);
        assert_eq!(mk(513).blocks(512), 2);
        assert_eq!(mk(u32::MAX).blocks(512), (u32::MAX as u64).div_ceil(512));
    }
}
