//! The RAM file cache: rnodes, LRU aging, and memory compaction.
//!
//! "A separate table in RAM maintains the administration of the cached
//! files … called rnodes.  An rnode contains: 1) the inode table index of
//! the corresponding file; 2) a pointer to the file in RAM cache; 3) an
//! age field to implement an LRU cache strategy." (§3)
//!
//! Files are cached *contiguously*: the cache arena is a single simulated
//! address space managed by the same first-fit extent allocator as the
//! disk, so cache memory suffers real external fragmentation and supports
//! the paper's remedy ("compacting part or all of the RAM cache from time
//! to time").
//!
//! # Replacement policies
//!
//! The paper's server keeps plain LRU; the alternatives exist for the
//! ablations that justify (or indict) that choice under scale:
//!
//! * [`EvictionPolicy::SegmentedLru`] — scan-resistant segmented LRU.
//!   New files enter a *probation* segment; a second reference promotes
//!   them to a *protected* segment capped at [`PROTECTED_NUM`]/
//!   [`PROTECTED_DEN`] of the cache bytes (overflow demotes the
//!   protected LRU back to probation).  Victims come from probation
//!   first, so a one-pass sequential scan can only churn the probation
//!   fraction of the cache — the working set in protected survives.
//! * [`EvictionPolicy::TwoQ`] — the 2Q algorithm (Johnson & Shasha):
//!   first references enter a FIFO *A1in* queue (hits there do **not**
//!   refresh recency); only a re-reference *after* eviction from A1in —
//!   detected through a bounded ghost list of recently evicted inode
//!   indices — admits a file to the LRU *Am* main queue.  While A1in
//!   holds more than [`A1IN_NUM`]/[`A1IN_DEN`] of the cache bytes it
//!   supplies the victims, so scans flush only A1in.
//!
//! # Victim selection is O(log n)
//!
//! Eviction used to scan every rnode for the minimum age — fine at 8
//! threaded clients, ruinous for the 10k-client event-engine ablations
//! where every miss evicts.  Victims now come from per-segment lazy
//! binary heaps keyed by an age snapshot: hits keep refreshing the
//! atomic age field without touching the heap (they hold only a read
//! lock in the server), and eviction pops entries, discards the stale
//! ones (freed slot, superseded snapshot, refreshed age, flipped
//! segment) and re-pushes the current truth until the top is exact.
//! Each hit costs at most one deferred re-push, so eviction is amortized
//! O(log slots) and chooses *exactly* the victim the full scan would
//! have chosen (ages are unique, so the minimum is unambiguous).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use bytes::Bytes;

use amoeba_sim::{DetRng, Stats, Tracer};

use crate::counters;
use crate::freelist::ExtentAllocator;
use crate::BulletError;

/// Which cached file is sacrificed when room is needed.
///
/// The paper's server uses LRU ("an age field to implement an LRU cache
/// strategy"); the alternatives exist for the eviction ablations (ABL9 at
/// thread scale, ABL16 at event-engine scale) that justify that choice.
/// Policy variants are plain data — the victim RNG seed lives in the
/// cache constructor ([`FileCache::with_policy_seeded`]), not the enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Least recently used (the paper's policy).
    #[default]
    Lru,
    /// First in, first out: insertion order, ignoring later accesses.
    Fifo,
    /// A uniformly random victim (deterministic via the constructor seed).
    Random,
    /// Scan-resistant segmented LRU: probation + protected segments.
    SegmentedLru,
    /// The 2Q algorithm: FIFO A1in + ghost A1out + LRU Am.
    TwoQ,
}

impl EvictionPolicy {
    /// Stable lowercase label for tables and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Fifo => "fifo",
            EvictionPolicy::Random => "random",
            EvictionPolicy::SegmentedLru => "slru",
            EvictionPolicy::TwoQ => "2q",
        }
    }
}

/// Protected-segment byte cap, as a fraction of cache capacity
/// (`PROTECTED_NUM / PROTECTED_DEN`): SegmentedLru lets the protected
/// segment grow to ¾ of the cache, leaving ¼ as the probation churn zone
/// a scan is confined to.
pub const PROTECTED_NUM: u64 = 3;
/// See [`PROTECTED_NUM`].
pub const PROTECTED_DEN: u64 = 4;

/// A1in byte threshold as a fraction of cache capacity
/// (`A1IN_NUM / A1IN_DEN`): while first-reference bytes exceed ¼ of the
/// cache, TwoQ evicts from A1in (the classic Kin ≈ 25 %).
pub const A1IN_NUM: u64 = 1;
/// See [`A1IN_NUM`].
pub const A1IN_DEN: u64 = 4;

/// Segment tag values stored in [`Rnode::seg`].
const SEG_PROBATION: u8 = 0; // SegmentedLru probation / TwoQ A1in
const SEG_PROTECTED: u8 = 1; // SegmentedLru protected / TwoQ Am

/// One cache entry.
#[derive(Debug)]
struct Rnode {
    /// The inode-table index of the cached file.
    inode_index: u32,
    /// Byte offset of the file in the cache arena (the "pointer").
    offset: u64,
    /// The cached contents (length is the file size).
    data: Bytes,
    /// LRU age: larger is more recent.  Atomic so that concurrent
    /// cache-hit lookups can refresh it through a shared reference —
    /// the server serves hits under a read lock.
    age: AtomicU64,
    /// Segment tag ([`SEG_PROBATION`]/[`SEG_PROTECTED`]); atomic because
    /// SegmentedLru promotes on a shared-reference hit.
    seg: AtomicU8,
    /// The age snapshot of this slot's *live* heap entry.  Only read and
    /// written under `&mut self` (insert/evict), so a plain field: heap
    /// entries whose snapshot no longer matches are stale duplicates and
    /// are discarded on pop.
    heap_stamp: u64,
}

impl Rnode {
    /// Arena bytes this entry occupies (zero-length files hold one byte).
    fn arena_len(&self) -> u64 {
        (self.data.len() as u64).max(1)
    }
}

/// Outcome of a successful [`FileCache::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The rnode slot the file landed in (for the inode's index field the
    /// server stores `slot + 1`, keeping 0 as "not cached").
    pub slot: u16,
    /// Inode indices of files evicted to make room; the server must clear
    /// their inode index fields.
    pub evicted: Vec<u32>,
    /// Bytes moved by an internal memory compaction (0 if none was
    /// needed); the server charges memcpy time for them.
    pub compaction_bytes: u64,
}

/// The Bullet server's RAM file cache.
#[derive(Debug)]
pub struct FileCache {
    capacity: u64,
    arena: ExtentAllocator,
    rnodes: Vec<Option<Rnode>>,
    free_slots: Vec<u16>,
    by_inode: HashMap<u32, u16>,
    age_counter: AtomicU64,
    policy: EvictionPolicy,
    rng: DetRng,
    /// Lazy victim heaps: min-(age snapshot, slot).  `heap[0]` orders the
    /// probation/A1in segment, `heap[1]` the protected/Am segment; the
    /// single-segment policies (LRU/FIFO) use `heap[0]` for everything.
    heaps: [BinaryHeap<Reverse<(u64, u16)>>; 2],
    /// Bytes currently tagged [`SEG_PROTECTED`].  Atomic because
    /// SegmentedLru hit-promotions add to it under a shared reference.
    protected_bytes: AtomicU64,
    /// TwoQ ghost list (A1out): inode indices recently evicted from A1in,
    /// FIFO-bounded to half the slot count.  A re-reference found here is
    /// the 2Q admission signal for the Am segment.
    ghost: VecDeque<u32>,
    ghost_set: HashSet<u32>,
    stats: Stats,
    tracer: Tracer,
}

impl FileCache {
    /// Maximum number of rnode slots (the inode's index field is 2 bytes,
    /// with 0 reserved for "not cached").
    pub const MAX_SLOTS: usize = u16::MAX as usize - 1;

    /// Creates a cache of `capacity` bytes with at most `slots` rnodes.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is 0 or exceeds [`FileCache::MAX_SLOTS`].
    pub fn new(capacity: u64, slots: usize) -> FileCache {
        FileCache::with_policy(capacity, slots, EvictionPolicy::Lru)
    }

    /// Creates a cache with an explicit eviction policy and the default
    /// victim-RNG seed (0) — the old constructor behavior.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is 0 or exceeds [`FileCache::MAX_SLOTS`].
    pub fn with_policy(capacity: u64, slots: usize, policy: EvictionPolicy) -> FileCache {
        FileCache::with_policy_seeded(capacity, slots, policy, 0)
    }

    /// Creates a cache with an explicit eviction policy and victim-RNG
    /// seed (only [`EvictionPolicy::Random`] consumes the seed).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is 0 or exceeds [`FileCache::MAX_SLOTS`].
    pub fn with_policy_seeded(
        capacity: u64,
        slots: usize,
        policy: EvictionPolicy,
        seed: u64,
    ) -> FileCache {
        assert!(
            slots > 0 && slots <= Self::MAX_SLOTS,
            "bad rnode slot count"
        );
        FileCache {
            capacity,
            arena: ExtentAllocator::new(0, capacity),
            rnodes: (0..slots).map(|_| None).collect(),
            free_slots: (0..slots as u16).rev().collect(),
            by_inode: HashMap::new(),
            age_counter: AtomicU64::new(0),
            policy,
            rng: DetRng::new(seed),
            heaps: [BinaryHeap::new(), BinaryHeap::new()],
            protected_bytes: AtomicU64::new(0),
            ghost: VecDeque::new(),
            ghost_set: HashSet::new(),
            stats: Stats::new(),
            tracer: Tracer::off(),
        }
    }

    /// Installs the span tracer recording `cache.lookup` / `cache.insert`
    /// events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Cache statistics: `cache_hits`, `cache_misses`, `cache_evictions`,
    /// `cache_compactions`, `cache_inserts`, plus the policy-specific
    /// `cache_scan_promotions`, `cache_probation_evictions`,
    /// `cache_protected_demotions`, `cache_ghost_hits`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.capacity - self.arena.free_units()
    }

    /// Bytes currently in the protected (SegmentedLru) / Am (TwoQ)
    /// segment; 0 under the single-segment policies.
    pub fn protected_bytes(&self) -> u64 {
        self.protected_bytes.load(Ordering::Relaxed)
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.by_inode.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.by_inode.is_empty()
    }

    /// Entries on the TwoQ A1out ghost list (0 for other policies).
    pub fn ghost_len(&self) -> usize {
        self.ghost.len()
    }

    /// Maximum ghost-list entries (TwoQ A1out): half the slot count.
    fn ghost_cap(&self) -> usize {
        (self.rnodes.len() / 2).max(1)
    }

    /// Looks up a file, refreshing its age.  Counts a hit or miss.
    ///
    /// Takes `&self`: age refresh, segment promotion, and the hit counter
    /// all go through atomics, so concurrent cache-hit reads need no
    /// exclusive lock — the heart of the server's concurrent read path.
    pub fn get(&self, inode_index: u32) -> Option<Bytes> {
        let outcome = self.lookup(inode_index);
        self.tracer.instant(
            "cache.lookup",
            &[
                ("inode", inode_index.into()),
                ("hit", outcome.is_some().into()),
            ],
        );
        match outcome {
            Some(data) => {
                self.stats.incr(counters::CACHE_HITS);
                Some(data)
            }
            None => {
                self.stats.incr(counters::CACHE_MISSES);
                None
            }
        }
    }

    /// Re-probe after a counted miss: counts a hit if another request
    /// filled the cache meanwhile, but never double-counts the miss.  The
    /// server's miss path uses this after taking the per-inode in-flight
    /// guard.
    pub fn recheck(&self, inode_index: u32) -> Option<Bytes> {
        let data = self.lookup(inode_index)?;
        self.stats.incr(counters::CACHE_HITS);
        Some(data)
    }

    fn lookup(&self, inode_index: u32) -> Option<Bytes> {
        let &slot = self.by_inode.get(&inode_index)?;
        let r = self.rnodes[slot as usize]
            .as_ref()
            .expect("by_inode points at a live rnode");
        match self.policy {
            EvictionPolicy::Lru => {
                r.age.store(self.next_age(), Ordering::Relaxed);
            }
            EvictionPolicy::SegmentedLru => {
                // Any re-reference refreshes recency; the first one also
                // promotes probation → protected (the scan filter: a file
                // touched once and never again stays in probation).
                r.age.store(self.next_age(), Ordering::Relaxed);
                if r.seg.swap(SEG_PROTECTED, Ordering::Relaxed) == SEG_PROBATION {
                    self.protected_bytes
                        .fetch_add(r.arena_len(), Ordering::Relaxed);
                    self.stats.incr(counters::CACHE_SCAN_PROMOTIONS);
                }
            }
            EvictionPolicy::TwoQ => {
                // Hits in A1in deliberately do NOT refresh the age: A1in
                // is a FIFO, so correlated references within a scan gain
                // a file nothing.  Only Am entries earn recency.
                if r.seg.load(Ordering::Relaxed) == SEG_PROTECTED {
                    r.age.store(self.next_age(), Ordering::Relaxed);
                }
            }
            EvictionPolicy::Fifo | EvictionPolicy::Random => {}
        }
        Some(r.data.clone())
    }

    fn next_age(&self) -> u64 {
        self.age_counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up without touching age or counters (for inspection).
    pub fn peek(&self, inode_index: u32) -> Option<Bytes> {
        self.by_inode.get(&inode_index).map(|&slot| {
            self.rnodes[slot as usize]
                .as_ref()
                .expect("live")
                .data
                .clone()
        })
    }

    /// Inserts a file, evicting policy-chosen victims (and compacting the
    /// arena if eviction alone cannot produce a contiguous hole).
    /// Zero-length files occupy one byte of arena so that every cached
    /// file has a distinct extent.
    ///
    /// # Errors
    ///
    /// [`BulletError::TooLarge`] if the file exceeds the whole cache — the
    /// architectural limit of §2 ("processors can only operate on files
    /// that fit in their physical memory").
    pub fn insert(&mut self, inode_index: u32, data: Bytes) -> Result<InsertOutcome, BulletError> {
        let need = (data.len() as u64).max(1);
        if need > self.capacity {
            return Err(BulletError::TooLarge {
                size: data.len() as u64,
                cache_capacity: self.capacity,
            });
        }
        // TwoQ admission: a re-reference caught by the ghost list goes
        // straight to Am; everything else starts in A1in/probation.
        // Checked before the replace-remove below, which purges ghosts.
        let mut seg = SEG_PROBATION;
        if self.policy == EvictionPolicy::TwoQ && self.ghost_set.remove(&inode_index) {
            self.ghost.retain(|&i| i != inode_index);
            seg = SEG_PROTECTED;
            self.stats.incr(counters::CACHE_GHOST_HITS);
            self.stats.incr(counters::CACHE_SCAN_PROMOTIONS);
        }

        // Re-inserting replaces the old copy.
        self.remove(inode_index);

        let mut evicted = Vec::new();
        let mut compaction_bytes = 0;

        // Evict until the allocation can succeed; if the free bytes
        // suffice but no hole is contiguous enough, compact.
        let offset = loop {
            // A slot must exist too.
            if self.free_slots.is_empty() {
                evicted.push(
                    self.evict_victim()
                        .expect("no slots free implies entries exist"),
                );
                continue;
            }
            if let Some(off) = self.arena.alloc(need) {
                break off;
            }
            if self.arena.free_units() >= need {
                compaction_bytes += self.compact();
                self.stats.incr(counters::CACHE_COMPACTIONS);
                continue;
            }
            evicted.push(
                self.evict_victim()
                    .expect("free < need implies entries exist"),
            );
        };

        let slot = self.free_slots.pop().expect("slot reserved above");
        let age = self.next_age();
        self.rnodes[slot as usize] = Some(Rnode {
            inode_index,
            offset,
            data,
            age: AtomicU64::new(age),
            seg: AtomicU8::new(seg),
            heap_stamp: age,
        });
        if seg == SEG_PROTECTED {
            self.protected_bytes.fetch_add(need, Ordering::Relaxed);
        }
        self.heaps[self.heap_of(seg)].push(Reverse((age, slot)));
        self.by_inode.insert(inode_index, slot);
        self.stats.incr(counters::CACHE_INSERTS);
        self.tracer.instant(
            "cache.insert",
            &[
                ("inode", inode_index.into()),
                (
                    "bytes",
                    self.rnodes[slot as usize]
                        .as_ref()
                        .expect("live")
                        .data
                        .len()
                        .into(),
                ),
                ("evicted", evicted.len().into()),
                ("compaction_bytes", compaction_bytes.into()),
            ],
        );
        Ok(InsertOutcome {
            slot,
            evicted,
            compaction_bytes,
        })
    }

    /// Removes a file from the cache (file deletion, §3).  Returns the
    /// freed slot if the file was cached.  Stale heap entries for the
    /// slot are discarded lazily at the next eviction.
    pub fn remove(&mut self, inode_index: u32) -> Option<u16> {
        // A deleted file must not get a ghost-boosted readmission if the
        // inode index is later reused for a different file — purged even
        // when the file itself is no longer cached (only its ghost is).
        if self.ghost_set.remove(&inode_index) {
            self.ghost.retain(|&i| i != inode_index);
        }
        let slot = self.by_inode.remove(&inode_index)?;
        let r = self.rnodes[slot as usize].take().expect("live rnode");
        if r.seg.load(Ordering::Relaxed) == SEG_PROTECTED {
            self.protected_bytes
                .fetch_sub(r.arena_len(), Ordering::Relaxed);
        }
        self.arena
            .free(r.offset, r.arena_len())
            .expect("rnode extent is valid");
        self.free_slots.push(slot);
        Some(slot)
    }

    /// Drops everything (server crash: RAM contents are lost).
    pub fn clear(&mut self) {
        let slots = self.rnodes.len();
        self.arena = ExtentAllocator::new(0, self.capacity);
        self.rnodes = (0..slots).map(|_| None).collect();
        self.free_slots = (0..slots as u16).rev().collect();
        self.by_inode.clear();
        self.heaps = [BinaryHeap::new(), BinaryHeap::new()];
        self.protected_bytes.store(0, Ordering::Relaxed);
        self.ghost.clear();
        self.ghost_set.clear();
    }

    /// Compacts the arena, packing all entries leftward.  Returns the
    /// number of bytes moved.
    pub fn compact(&mut self) -> u64 {
        let mut live: Vec<u16> = self.by_inode.values().copied().collect();
        live.sort_unstable_by_key(|&s| self.rnodes[s as usize].as_ref().expect("live").offset);
        let mut cursor = 0u64;
        let mut moved = 0u64;
        for slot in live {
            let r = self.rnodes[slot as usize].as_mut().expect("live");
            let len = (r.data.len() as u64).max(1);
            if r.offset != cursor {
                moved += len;
                r.offset = cursor;
            }
            cursor += len;
        }
        self.arena.rebuild_after_compaction(cursor);
        moved
    }

    /// The arena fragmentation snapshot.
    pub fn frag_report(&self) -> crate::FragReport {
        self.arena.report()
    }

    /// Which lazy heap a segment's entries live in: the single-segment
    /// policies funnel everything through heap 0.
    fn heap_of(&self, seg: u8) -> usize {
        match self.policy {
            EvictionPolicy::SegmentedLru | EvictionPolicy::TwoQ => seg as usize,
            _ => 0,
        }
    }

    /// Pops the exact minimum-age live entry of `heap_idx`, lazily
    /// discarding stale entries (freed slot, superseded snapshot) and
    /// re-pushing refreshed or segment-flipped ones.  Returns the slot,
    /// or `None` when the segment is empty.
    fn pop_exact_min(&mut self, heap_idx: usize) -> Option<u16> {
        while let Some(Reverse((stamp, slot))) = self.heaps[heap_idx].pop() {
            let Some(r) = self.rnodes[slot as usize].as_ref() else {
                continue; // slot freed since this entry was pushed
            };
            if r.heap_stamp != stamp {
                continue; // superseded: a newer entry carries the truth
            }
            let current = r.age.load(Ordering::Relaxed);
            let seg_now = self.heap_of(r.seg.load(Ordering::Relaxed));
            if current != stamp || seg_now != heap_idx {
                // Refreshed by hits and/or promoted to another segment
                // since the push: re-push the current truth and retry.
                let r = self.rnodes[slot as usize].as_mut().expect("checked live");
                r.heap_stamp = current;
                self.heaps[seg_now].push(Reverse((current, slot)));
                continue;
            }
            return Some(slot);
        }
        None
    }

    /// Migrates lookup-promoted strays out of the probation heap.
    ///
    /// SegmentedLru promotes under `&self`, so a promoted entry's heap
    /// entry lingers in the probation heap until some pop validates it.
    /// When the protected heap must be consulted directly (demotion) it
    /// can be empty while promoted entries are stranded on the other
    /// side; draining the probation heap through the validation loop
    /// pushes every stray home.  O(n log n), but only runs when the
    /// protected heap underflows — rare by construction.
    fn flush_probation_strays(&mut self) {
        let mut keep = Vec::new();
        while let Some(slot) = self.pop_exact_min(SEG_PROBATION as usize) {
            keep.push(slot);
        }
        for slot in keep {
            let r = self.rnodes[slot as usize].as_mut().expect("live");
            let age = r.age.load(Ordering::Relaxed);
            r.heap_stamp = age;
            self.heaps[SEG_PROBATION as usize].push(Reverse((age, slot)));
        }
    }

    /// SegmentedLru rebalance: while the protected segment exceeds its
    /// byte cap, demote its LRU entry back to probation as that
    /// segment's most-recent entry (a fresh age), the classic SLRU move.
    fn rebalance_protected(&mut self) {
        let cap = self.capacity * PROTECTED_NUM / PROTECTED_DEN;
        while self.protected_bytes.load(Ordering::Relaxed) > cap {
            let slot = match self.pop_exact_min(SEG_PROTECTED as usize) {
                Some(slot) => slot,
                None => {
                    self.flush_probation_strays();
                    match self.pop_exact_min(SEG_PROTECTED as usize) {
                        Some(slot) => slot,
                        None => break,
                    }
                }
            };
            let fresh = self.next_age();
            let r = self.rnodes[slot as usize].as_mut().expect("live");
            r.seg.store(SEG_PROBATION, Ordering::Relaxed);
            r.age.store(fresh, Ordering::Relaxed);
            r.heap_stamp = fresh;
            let len = r.arena_len();
            self.heaps[SEG_PROBATION as usize].push(Reverse((fresh, slot)));
            self.protected_bytes.fetch_sub(len, Ordering::Relaxed);
            self.stats.incr(counters::CACHE_PROTECTED_DEMOTIONS);
        }
    }

    fn evict_victim(&mut self) -> Option<u32> {
        let mut ghost_victim = false;
        let (victim, from_probation) = match self.policy {
            // "The least recently accessed file is … found by checking the
            // age fields in the rnodes." (§3).  FIFO reuses the same field
            // because get() never refreshes it under that policy.
            EvictionPolicy::Lru | EvictionPolicy::Fifo => {
                let slot = self.pop_exact_min(0)?;
                let inode = self.rnodes[slot as usize]
                    .as_ref()
                    .expect("validated live")
                    .inode_index;
                (inode, false)
            }
            EvictionPolicy::Random => {
                let live: Vec<u32> = self
                    .rnodes
                    .iter()
                    .flatten()
                    .map(|r| r.inode_index)
                    .collect();
                if live.is_empty() {
                    return None;
                }
                (live[self.rng.next_below(live.len() as u64) as usize], false)
            }
            EvictionPolicy::SegmentedLru => {
                self.rebalance_protected();
                // Probation first; only an all-protected cache sacrifices
                // a protected entry.
                match self.pop_exact_min(SEG_PROBATION as usize) {
                    Some(slot) => (
                        self.rnodes[slot as usize]
                            .as_ref()
                            .expect("validated live")
                            .inode_index,
                        true,
                    ),
                    None => {
                        let slot = self.pop_exact_min(SEG_PROTECTED as usize)?;
                        (
                            self.rnodes[slot as usize]
                                .as_ref()
                                .expect("validated live")
                                .inode_index,
                            false,
                        )
                    }
                }
            }
            EvictionPolicy::TwoQ => {
                let threshold = self.capacity * A1IN_NUM / A1IN_DEN;
                let a1in_bytes = self
                    .used_bytes()
                    .saturating_sub(self.protected_bytes.load(Ordering::Relaxed));
                if a1in_bytes > threshold {
                    // A1in over its share: evict its FIFO head and
                    // remember it in the ghost list — re-referencing it
                    // soon is the admission signal for Am.  (The push
                    // happens after `remove`, which purges ghosts as a
                    // delete would.)
                    match self.pop_exact_min(SEG_PROBATION as usize) {
                        Some(slot) => {
                            let inode = self.rnodes[slot as usize]
                                .as_ref()
                                .expect("validated live")
                                .inode_index;
                            ghost_victim = true;
                            (inode, true)
                        }
                        None => {
                            let slot = self.pop_exact_min(SEG_PROTECTED as usize)?;
                            (
                                self.rnodes[slot as usize]
                                    .as_ref()
                                    .expect("validated live")
                                    .inode_index,
                                false,
                            )
                        }
                    }
                } else {
                    // Am supplies the victim (no ghost entry: Am evictees
                    // already proved themselves once; 2Q readmits them
                    // through A1in like anything else).
                    match self.pop_exact_min(SEG_PROTECTED as usize) {
                        Some(slot) => (
                            self.rnodes[slot as usize]
                                .as_ref()
                                .expect("validated live")
                                .inode_index,
                            false,
                        ),
                        None => {
                            let slot = self.pop_exact_min(SEG_PROBATION as usize)?;
                            (
                                self.rnodes[slot as usize]
                                    .as_ref()
                                    .expect("validated live")
                                    .inode_index,
                                true,
                            )
                        }
                    }
                }
            }
        };
        self.remove(victim);
        if ghost_victim {
            self.ghost.push_back(victim);
            self.ghost_set.insert(victim);
            while self.ghost.len() > self.ghost_cap() {
                if let Some(old) = self.ghost.pop_front() {
                    self.ghost_set.remove(&old);
                }
            }
        }
        self.stats.incr(counters::CACHE_EVICTIONS);
        if from_probation {
            self.stats.incr(counters::CACHE_PROBATION_EVICTIONS);
        }
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn insert_get_remove() {
        let mut c = FileCache::new(1000, 16);
        let out = c.insert(5, bytes(100, 1)).unwrap();
        assert!(out.evicted.is_empty());
        assert_eq!(c.get(5).unwrap(), bytes(100, 1));
        assert_eq!(c.stats().get("cache_hits"), 1);
        assert_eq!(c.remove(5), Some(out.slot));
        assert!(c.get(5).is_none());
        assert_eq!(c.stats().get("cache_misses"), 1);
        assert_eq!(c.remove(5), None);
    }

    #[test]
    fn lru_evicts_oldest_untouched() {
        let mut c = FileCache::new(300, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        // Touch 1 so 2 becomes the LRU.
        c.get(1);
        let out = c.insert(4, bytes(100, 4)).unwrap();
        assert_eq!(out.evicted, vec![2]);
        assert!(c.peek(2).is_none());
        assert!(c.peek(1).is_some());
        assert_eq!(c.stats().get("cache_evictions"), 1);
    }

    #[test]
    fn eviction_cascades_until_fit() {
        let mut c = FileCache::new(300, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        let out = c.insert(4, bytes(250, 4)).unwrap();
        assert_eq!(out.evicted, vec![1, 2, 3]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn too_large_rejected() {
        let mut c = FileCache::new(100, 4);
        assert!(matches!(
            c.insert(1, bytes(101, 0)),
            Err(BulletError::TooLarge { size: 101, .. })
        ));
        // Exactly capacity fits.
        assert!(c.insert(1, bytes(100, 0)).is_ok());
    }

    #[test]
    fn fragmentation_triggers_compaction_not_eviction() {
        let mut c = FileCache::new(300, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        // Free the two outer extents: 200 bytes free but shattered.
        c.remove(1);
        c.remove(3);
        let out = c.insert(4, bytes(150, 4)).unwrap();
        assert!(out.evicted.is_empty(), "150 bytes fit after compaction");
        assert!(out.compaction_bytes > 0);
        assert_eq!(c.stats().get("cache_compactions"), 1);
        assert_eq!(c.peek(2).unwrap(), bytes(100, 2));
    }

    #[test]
    fn reinsert_replaces() {
        let mut c = FileCache::new(1000, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(1, bytes(50, 9)).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).unwrap(), bytes(50, 9));
        assert_eq!(c.used_bytes(), 50);
    }

    #[test]
    fn slot_exhaustion_evicts() {
        let mut c = FileCache::new(10_000, 2);
        c.insert(1, bytes(10, 1)).unwrap();
        c.insert(2, bytes(10, 2)).unwrap();
        let out = c.insert(3, bytes(10, 3)).unwrap();
        assert_eq!(out.evicted, vec![1]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_length_files_cacheable() {
        let mut c = FileCache::new(100, 4);
        let out = c.insert(1, Bytes::new()).unwrap();
        assert_eq!(c.get(1).unwrap(), Bytes::new());
        assert_eq!(c.used_bytes(), 1); // occupies one arena byte
        assert_eq!(c.remove(1), Some(out.slot));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = FileCache::new(1000, 8);
        c.insert(1, bytes(10, 1)).unwrap();
        c.insert(2, bytes(10, 2)).unwrap();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert!(c.peek(1).is_none());
        // Usable again after clear.
        c.insert(3, bytes(10, 3)).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_ignores_later_touches() {
        let mut c = FileCache::with_policy(300, 16, EvictionPolicy::Fifo);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        // Touch 1 — under FIFO this must NOT save it.
        c.get(1);
        let out = c.insert(4, bytes(100, 4)).unwrap();
        assert_eq!(out.evicted, vec![1], "FIFO evicts the oldest insert");
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = FileCache::with_policy_seeded(300, 16, EvictionPolicy::Random, seed);
            for i in 1..=3 {
                c.insert(i, bytes(100, i as u8)).unwrap();
            }
            c.insert(4, bytes(100, 4)).unwrap().evicted
        };
        assert_eq!(run(7), run(7));
        // Victims are among the live entries.
        assert!(run(7).iter().all(|&v| (1..=3).contains(&v)));
    }

    #[test]
    fn default_seed_constructor_matches_seed_zero() {
        let run = |c: &mut FileCache| {
            for i in 1..=3 {
                c.insert(i, bytes(100, i as u8)).unwrap();
            }
            c.insert(4, bytes(100, 4)).unwrap().evicted
        };
        let mut a = FileCache::with_policy(300, 16, EvictionPolicy::Random);
        let mut b = FileCache::with_policy_seeded(300, 16, EvictionPolicy::Random, 0);
        assert_eq!(run(&mut a), run(&mut b));
    }

    #[test]
    fn explicit_compact_packs_arena() {
        let mut c = FileCache::new(300, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.remove(1);
        let moved = c.compact();
        assert_eq!(moved, 100);
        let r = c.frag_report();
        assert_eq!(r.hole_count, 1);
        assert_eq!(r.largest_hole, 200);
        // Data is intact after the move.
        assert_eq!(c.peek(2).unwrap(), bytes(100, 2));
    }

    #[test]
    fn lazy_heap_matches_full_scan_under_churn() {
        // The heap-backed victim choice must equal the old full scan
        // (minimum current age) through a long deterministic mix of
        // inserts, touches, removes, and evictions.
        let mut c = FileCache::with_policy(1000, 8, EvictionPolicy::Lru);
        let mut rng = DetRng::new(42);
        let mut next_inode = 0u32;
        for _ in 0..2_000 {
            match rng.next_below(10) {
                0..=4 => {
                    next_inode += 1;
                    let expected = min_age_scan(&c);
                    let out = c.insert(next_inode, bytes(150, 1)).unwrap();
                    if let Some(first) = out.evicted.first() {
                        assert_eq!(*first, expected.unwrap(), "victim diverged from scan");
                    }
                }
                5..=7 => {
                    if next_inode > 0 {
                        let probe = 1 + (rng.next_below(next_inode as u64) as u32);
                        c.get(probe);
                    }
                }
                _ => {
                    if next_inode > 0 {
                        let probe = 1 + (rng.next_below(next_inode as u64) as u32);
                        c.remove(probe);
                    }
                }
            }
        }
        fn min_age_scan(c: &FileCache) -> Option<u32> {
            // Only meaningful when the next insert must evict (cache at
            // capacity); otherwise the returned value is unused.
            c.rnodes
                .iter()
                .flatten()
                .min_by_key(|r| r.age.load(Ordering::Relaxed))
                .map(|r| r.inode_index)
        }
    }

    #[test]
    fn slru_scan_leaves_protected_untouched() {
        // Build a hot set, promote it, then stream a scan 3x the cache
        // through: every hot file must survive in protected.
        let mut c = FileCache::with_policy(1000, 32, EvictionPolicy::SegmentedLru);
        for i in 1..=5 {
            c.insert(i, bytes(100, i as u8)).unwrap();
            c.get(i); // promote to protected
        }
        assert_eq!(c.stats().get("cache_scan_promotions"), 5);
        for i in 100..130 {
            c.insert(i, bytes(100, 9)).unwrap(); // the scan: touched once
        }
        for i in 1..=5 {
            assert!(c.peek(i).is_some(), "hot file {i} was scanned out");
        }
        assert!(c.stats().get("cache_probation_evictions") > 0);
    }

    #[test]
    fn slru_demotes_protected_overflow() {
        // Promote more bytes than the protected cap (¾ of 1000 = 750):
        // the next eviction must demote protected LRUs instead of
        // wiping probation newcomers ahead of the overflow.
        let mut c = FileCache::with_policy(1000, 32, EvictionPolicy::SegmentedLru);
        for i in 1..=9 {
            c.insert(i, bytes(100, i as u8)).unwrap();
            c.get(i); // 900 protected bytes > 750 cap
        }
        assert_eq!(c.protected_bytes(), 900);
        c.insert(50, bytes(200, 7)).unwrap(); // forces eviction + rebalance
        assert!(c.stats().get("cache_protected_demotions") > 0);
        assert!(c.protected_bytes() <= 750);
    }

    #[test]
    fn slru_falls_back_to_protected_when_probation_empty() {
        let mut c = FileCache::with_policy(300, 16, EvictionPolicy::SegmentedLru);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.get(1);
        c.get(2); // both protected (200 ≤ 225 cap), probation empty
        let out = c.insert(3, bytes(250, 3)).unwrap();
        assert!(!out.evicted.is_empty(), "protected entries were evictable");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn twoq_a1in_hits_do_not_refresh() {
        // Under 2Q a repeated hit inside A1in must not save the entry
        // from FIFO eviction (that is the scan resistance).
        let mut c = FileCache::with_policy(400, 16, EvictionPolicy::TwoQ);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        c.get(1); // A1in hit: no recency earned
        let out = c.insert(4, bytes(200, 4)).unwrap();
        assert_eq!(out.evicted[0], 1, "A1in is FIFO: 1 goes first");
    }

    #[test]
    fn twoq_ghost_readmission_promotes_to_am() {
        let mut c = FileCache::with_policy(400, 16, EvictionPolicy::TwoQ);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        c.insert(4, bytes(200, 4)).unwrap(); // evicts 1 (and 2) to ghost
        assert!(c.peek(1).is_none());
        let ghosted = c.stats().get("cache_ghost_hits");
        assert_eq!(ghosted, 0);
        c.insert(1, bytes(100, 1)).unwrap(); // ghost hit → Am
        assert_eq!(c.stats().get("cache_ghost_hits"), 1);
        assert!(c.protected_bytes() >= 100, "readmitted entry sits in Am");
        // Am entries survive a subsequent A1in-directed scan.
        for i in 100..104 {
            c.insert(i, bytes(90, 9)).unwrap();
        }
        assert!(c.peek(1).is_some(), "Am entry scanned out");
    }

    #[test]
    fn twoq_delete_purges_ghost() {
        let mut c = FileCache::with_policy(300, 16, EvictionPolicy::TwoQ);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        c.insert(4, bytes(250, 4)).unwrap(); // 1..=3 evicted, ghosted
                                             // "Delete" 1 while it is only a ghost: a later re-create of the
                                             // same inode index must NOT be treated as a re-reference.
        c.remove(1);
        c.insert(1, bytes(50, 8)).unwrap();
        assert_eq!(
            c.stats().get("cache_ghost_hits"),
            0,
            "purged ghost must not hit"
        );
        // An un-purged ghost still hits (inode 2 was never deleted).
        c.insert(2, bytes(50, 9)).unwrap();
        assert_eq!(c.stats().get("cache_ghost_hits"), 1);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(EvictionPolicy::Lru.label(), "lru");
        assert_eq!(EvictionPolicy::Fifo.label(), "fifo");
        assert_eq!(EvictionPolicy::Random.label(), "random");
        assert_eq!(EvictionPolicy::SegmentedLru.label(), "slru");
        assert_eq!(EvictionPolicy::TwoQ.label(), "2q");
    }

    #[test]
    fn byte_accounting_survives_policy_churn() {
        // Arena accounting (used + free = capacity, protected ≤ used)
        // must hold through heavy mixed traffic under both new policies.
        for policy in [EvictionPolicy::SegmentedLru, EvictionPolicy::TwoQ] {
            let mut c = FileCache::with_policy(2_000, 16, policy);
            let mut rng = DetRng::new(7);
            for i in 0..3_000u32 {
                let size = 50 + rng.next_below(200) as usize;
                c.insert(i % 64, bytes(size, i as u8)).unwrap();
                if rng.next_below(3) == 0 {
                    c.get(rng.next_below(64) as u32);
                }
                if rng.next_below(5) == 0 {
                    c.remove(rng.next_below(64) as u32);
                }
                let live: u64 = c
                    .rnodes
                    .iter()
                    .flatten()
                    .map(|r| (r.data.len() as u64).max(1))
                    .sum();
                assert_eq!(c.used_bytes(), live, "arena vs rnode bytes");
                assert!(c.protected_bytes() <= live, "protected ≤ live bytes");
            }
        }
    }
}
