//! The RAM file cache: rnodes, LRU aging, and memory compaction.
//!
//! "A separate table in RAM maintains the administration of the cached
//! files … called rnodes.  An rnode contains: 1) the inode table index of
//! the corresponding file; 2) a pointer to the file in RAM cache; 3) an
//! age field to implement an LRU cache strategy." (§3)
//!
//! Files are cached *contiguously*: the cache arena is a single simulated
//! address space managed by the same first-fit extent allocator as the
//! disk, so cache memory suffers real external fragmentation and supports
//! the paper's remedy ("compacting part or all of the RAM cache from time
//! to time").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

use amoeba_sim::{DetRng, Stats, Tracer};

use crate::counters;
use crate::freelist::ExtentAllocator;
use crate::BulletError;

/// Which cached file is sacrificed when room is needed.
///
/// The paper's server uses LRU ("an age field to implement an LRU cache
/// strategy"); the alternatives exist for the `ablation_eviction`
/// benchmark that justifies that choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Least recently used (the paper's policy).
    #[default]
    Lru,
    /// First in, first out: insertion order, ignoring later accesses.
    Fifo,
    /// A uniformly random victim (deterministic via the given seed).
    Random(u64),
}

/// One cache entry.
#[derive(Debug)]
struct Rnode {
    /// The inode-table index of the cached file.
    inode_index: u32,
    /// Byte offset of the file in the cache arena (the "pointer").
    offset: u64,
    /// The cached contents (length is the file size).
    data: Bytes,
    /// LRU age: larger is more recent.  Atomic so that concurrent
    /// cache-hit lookups can refresh it through a shared reference —
    /// the server serves hits under a read lock.
    age: AtomicU64,
}

/// Outcome of a successful [`FileCache::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The rnode slot the file landed in (for the inode's index field the
    /// server stores `slot + 1`, keeping 0 as "not cached").
    pub slot: u16,
    /// Inode indices of files evicted to make room; the server must clear
    /// their inode index fields.
    pub evicted: Vec<u32>,
    /// Bytes moved by an internal memory compaction (0 if none was
    /// needed); the server charges memcpy time for them.
    pub compaction_bytes: u64,
}

/// The Bullet server's RAM file cache.
#[derive(Debug)]
pub struct FileCache {
    capacity: u64,
    arena: ExtentAllocator,
    rnodes: Vec<Option<Rnode>>,
    free_slots: Vec<u16>,
    by_inode: HashMap<u32, u16>,
    age_counter: AtomicU64,
    policy: EvictionPolicy,
    rng: DetRng,
    stats: Stats,
    tracer: Tracer,
}

impl FileCache {
    /// Maximum number of rnode slots (the inode's index field is 2 bytes,
    /// with 0 reserved for "not cached").
    pub const MAX_SLOTS: usize = u16::MAX as usize - 1;

    /// Creates a cache of `capacity` bytes with at most `slots` rnodes.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is 0 or exceeds [`FileCache::MAX_SLOTS`].
    pub fn new(capacity: u64, slots: usize) -> FileCache {
        FileCache::with_policy(capacity, slots, EvictionPolicy::Lru)
    }

    /// Creates a cache with an explicit eviction policy.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is 0 or exceeds [`FileCache::MAX_SLOTS`].
    pub fn with_policy(capacity: u64, slots: usize, policy: EvictionPolicy) -> FileCache {
        assert!(
            slots > 0 && slots <= Self::MAX_SLOTS,
            "bad rnode slot count"
        );
        let seed = match policy {
            EvictionPolicy::Random(seed) => seed,
            _ => 0,
        };
        FileCache {
            capacity,
            arena: ExtentAllocator::new(0, capacity),
            rnodes: (0..slots).map(|_| None).collect(),
            free_slots: (0..slots as u16).rev().collect(),
            by_inode: HashMap::new(),
            age_counter: AtomicU64::new(0),
            policy,
            rng: DetRng::new(seed),
            stats: Stats::new(),
            tracer: Tracer::off(),
        }
    }

    /// Installs the span tracer recording `cache.lookup` / `cache.insert`
    /// events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Cache statistics: `cache_hits`, `cache_misses`, `cache_evictions`,
    /// `cache_compactions`, `cache_inserts`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.capacity - self.arena.free_units()
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.by_inode.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.by_inode.is_empty()
    }

    /// Looks up a file, refreshing its age.  Counts a hit or miss.
    ///
    /// Takes `&self`: age refresh and the hit counter go through atomics,
    /// so concurrent cache-hit reads need no exclusive lock — the heart
    /// of the server's concurrent read path.
    pub fn get(&self, inode_index: u32) -> Option<Bytes> {
        let outcome = self.lookup(inode_index);
        self.tracer.instant(
            "cache.lookup",
            &[
                ("inode", inode_index.into()),
                ("hit", outcome.is_some().into()),
            ],
        );
        match outcome {
            Some(data) => {
                self.stats.incr(counters::CACHE_HITS);
                Some(data)
            }
            None => {
                self.stats.incr(counters::CACHE_MISSES);
                None
            }
        }
    }

    /// Re-probe after a counted miss: counts a hit if another request
    /// filled the cache meanwhile, but never double-counts the miss.  The
    /// server's miss path uses this after taking the per-inode in-flight
    /// guard.
    pub fn recheck(&self, inode_index: u32) -> Option<Bytes> {
        let data = self.lookup(inode_index)?;
        self.stats.incr(counters::CACHE_HITS);
        Some(data)
    }

    fn lookup(&self, inode_index: u32) -> Option<Bytes> {
        let &slot = self.by_inode.get(&inode_index)?;
        let r = self.rnodes[slot as usize]
            .as_ref()
            .expect("by_inode points at a live rnode");
        if self.policy == EvictionPolicy::Lru {
            let age = self.age_counter.fetch_add(1, Ordering::Relaxed) + 1;
            r.age.store(age, Ordering::Relaxed);
        }
        Some(r.data.clone())
    }

    /// Looks up without touching age or counters (for inspection).
    pub fn peek(&self, inode_index: u32) -> Option<Bytes> {
        self.by_inode.get(&inode_index).map(|&slot| {
            self.rnodes[slot as usize]
                .as_ref()
                .expect("live")
                .data
                .clone()
        })
    }

    /// Inserts a file, evicting least-recently-used entries (and compacting
    /// the arena if eviction alone cannot produce a contiguous hole).
    /// Zero-length files occupy one byte of arena so that every cached file
    /// has a distinct extent.
    ///
    /// # Errors
    ///
    /// [`BulletError::TooLarge`] if the file exceeds the whole cache — the
    /// architectural limit of §2 ("processors can only operate on files
    /// that fit in their physical memory").
    pub fn insert(&mut self, inode_index: u32, data: Bytes) -> Result<InsertOutcome, BulletError> {
        let need = (data.len() as u64).max(1);
        if need > self.capacity {
            return Err(BulletError::TooLarge {
                size: data.len() as u64,
                cache_capacity: self.capacity,
            });
        }
        // Re-inserting replaces the old copy.
        self.remove(inode_index);

        let mut evicted = Vec::new();
        let mut compaction_bytes = 0;

        // Evict by LRU until the allocation can succeed; if the free bytes
        // suffice but no hole is contiguous enough, compact.
        let offset = loop {
            // A slot must exist too.
            if self.free_slots.is_empty() {
                evicted.push(
                    self.evict_victim()
                        .expect("no slots free implies entries exist"),
                );
                continue;
            }
            if let Some(off) = self.arena.alloc(need) {
                break off;
            }
            if self.arena.free_units() >= need {
                compaction_bytes += self.compact();
                self.stats.incr(counters::CACHE_COMPACTIONS);
                continue;
            }
            evicted.push(
                self.evict_victim()
                    .expect("free < need implies entries exist"),
            );
        };

        let slot = self.free_slots.pop().expect("slot reserved above");
        let age = self.age_counter.fetch_add(1, Ordering::Relaxed) + 1;
        self.rnodes[slot as usize] = Some(Rnode {
            inode_index,
            offset,
            data,
            age: AtomicU64::new(age),
        });
        self.by_inode.insert(inode_index, slot);
        self.stats.incr(counters::CACHE_INSERTS);
        self.tracer.instant(
            "cache.insert",
            &[
                ("inode", inode_index.into()),
                (
                    "bytes",
                    self.rnodes[slot as usize]
                        .as_ref()
                        .expect("live")
                        .data
                        .len()
                        .into(),
                ),
                ("evicted", evicted.len().into()),
                ("compaction_bytes", compaction_bytes.into()),
            ],
        );
        Ok(InsertOutcome {
            slot,
            evicted,
            compaction_bytes,
        })
    }

    /// Removes a file from the cache (file deletion, §3).  Returns the
    /// freed slot if the file was cached.
    pub fn remove(&mut self, inode_index: u32) -> Option<u16> {
        let slot = self.by_inode.remove(&inode_index)?;
        let r = self.rnodes[slot as usize].take().expect("live rnode");
        self.arena
            .free(r.offset, (r.data.len() as u64).max(1))
            .expect("rnode extent is valid");
        self.free_slots.push(slot);
        Some(slot)
    }

    /// Drops everything (server crash: RAM contents are lost).
    pub fn clear(&mut self) {
        let slots = self.rnodes.len();
        self.arena = ExtentAllocator::new(0, self.capacity);
        self.rnodes = (0..slots).map(|_| None).collect();
        self.free_slots = (0..slots as u16).rev().collect();
        self.by_inode.clear();
    }

    /// Compacts the arena, packing all entries leftward.  Returns the
    /// number of bytes moved.
    pub fn compact(&mut self) -> u64 {
        let mut live: Vec<u16> = self.by_inode.values().copied().collect();
        live.sort_unstable_by_key(|&s| self.rnodes[s as usize].as_ref().expect("live").offset);
        let mut cursor = 0u64;
        let mut moved = 0u64;
        for slot in live {
            let r = self.rnodes[slot as usize].as_mut().expect("live");
            let len = (r.data.len() as u64).max(1);
            if r.offset != cursor {
                moved += len;
                r.offset = cursor;
            }
            cursor += len;
        }
        self.arena.rebuild_after_compaction(cursor);
        moved
    }

    /// The arena fragmentation snapshot.
    pub fn frag_report(&self) -> crate::FragReport {
        self.arena.report()
    }

    fn evict_victim(&mut self) -> Option<u32> {
        let victim = match self.policy {
            // "The least recently accessed file is … found by checking the
            // age fields in the rnodes." (§3).  FIFO reuses the same field
            // because get() never refreshes it under that policy.
            EvictionPolicy::Lru | EvictionPolicy::Fifo => {
                self.rnodes
                    .iter()
                    .flatten()
                    .min_by_key(|r| r.age.load(Ordering::Relaxed))?
                    .inode_index
            }
            EvictionPolicy::Random(_) => {
                let live: Vec<u32> = self
                    .rnodes
                    .iter()
                    .flatten()
                    .map(|r| r.inode_index)
                    .collect();
                if live.is_empty() {
                    return None;
                }
                live[self.rng.next_below(live.len() as u64) as usize]
            }
        };
        self.remove(victim);
        self.stats.incr(counters::CACHE_EVICTIONS);
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn insert_get_remove() {
        let mut c = FileCache::new(1000, 16);
        let out = c.insert(5, bytes(100, 1)).unwrap();
        assert!(out.evicted.is_empty());
        assert_eq!(c.get(5).unwrap(), bytes(100, 1));
        assert_eq!(c.stats().get("cache_hits"), 1);
        assert_eq!(c.remove(5), Some(out.slot));
        assert!(c.get(5).is_none());
        assert_eq!(c.stats().get("cache_misses"), 1);
        assert_eq!(c.remove(5), None);
    }

    #[test]
    fn lru_evicts_oldest_untouched() {
        let mut c = FileCache::new(300, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        // Touch 1 so 2 becomes the LRU.
        c.get(1);
        let out = c.insert(4, bytes(100, 4)).unwrap();
        assert_eq!(out.evicted, vec![2]);
        assert!(c.peek(2).is_none());
        assert!(c.peek(1).is_some());
        assert_eq!(c.stats().get("cache_evictions"), 1);
    }

    #[test]
    fn eviction_cascades_until_fit() {
        let mut c = FileCache::new(300, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        let out = c.insert(4, bytes(250, 4)).unwrap();
        assert_eq!(out.evicted, vec![1, 2, 3]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn too_large_rejected() {
        let mut c = FileCache::new(100, 4);
        assert!(matches!(
            c.insert(1, bytes(101, 0)),
            Err(BulletError::TooLarge { size: 101, .. })
        ));
        // Exactly capacity fits.
        assert!(c.insert(1, bytes(100, 0)).is_ok());
    }

    #[test]
    fn fragmentation_triggers_compaction_not_eviction() {
        let mut c = FileCache::new(300, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        // Free the two outer extents: 200 bytes free but shattered.
        c.remove(1);
        c.remove(3);
        let out = c.insert(4, bytes(150, 4)).unwrap();
        assert!(out.evicted.is_empty(), "150 bytes fit after compaction");
        assert!(out.compaction_bytes > 0);
        assert_eq!(c.stats().get("cache_compactions"), 1);
        assert_eq!(c.peek(2).unwrap(), bytes(100, 2));
    }

    #[test]
    fn reinsert_replaces() {
        let mut c = FileCache::new(1000, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(1, bytes(50, 9)).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).unwrap(), bytes(50, 9));
        assert_eq!(c.used_bytes(), 50);
    }

    #[test]
    fn slot_exhaustion_evicts() {
        let mut c = FileCache::new(10_000, 2);
        c.insert(1, bytes(10, 1)).unwrap();
        c.insert(2, bytes(10, 2)).unwrap();
        let out = c.insert(3, bytes(10, 3)).unwrap();
        assert_eq!(out.evicted, vec![1]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_length_files_cacheable() {
        let mut c = FileCache::new(100, 4);
        let out = c.insert(1, Bytes::new()).unwrap();
        assert_eq!(c.get(1).unwrap(), Bytes::new());
        assert_eq!(c.used_bytes(), 1); // occupies one arena byte
        assert_eq!(c.remove(1), Some(out.slot));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = FileCache::new(1000, 8);
        c.insert(1, bytes(10, 1)).unwrap();
        c.insert(2, bytes(10, 2)).unwrap();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert!(c.peek(1).is_none());
        // Usable again after clear.
        c.insert(3, bytes(10, 3)).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_ignores_later_touches() {
        let mut c = FileCache::with_policy(300, 16, EvictionPolicy::Fifo);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.insert(3, bytes(100, 3)).unwrap();
        // Touch 1 — under FIFO this must NOT save it.
        c.get(1);
        let out = c.insert(4, bytes(100, 4)).unwrap();
        assert_eq!(out.evicted, vec![1], "FIFO evicts the oldest insert");
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = FileCache::with_policy(300, 16, EvictionPolicy::Random(seed));
            for i in 1..=3 {
                c.insert(i, bytes(100, i as u8)).unwrap();
            }
            c.insert(4, bytes(100, 4)).unwrap().evicted
        };
        assert_eq!(run(7), run(7));
        // Victims are among the live entries.
        assert!(run(7).iter().all(|&v| (1..=3).contains(&v)));
    }

    #[test]
    fn explicit_compact_packs_arena() {
        let mut c = FileCache::new(300, 16);
        c.insert(1, bytes(100, 1)).unwrap();
        c.insert(2, bytes(100, 2)).unwrap();
        c.remove(1);
        let moved = c.compact();
        assert_eq!(moved, 100);
        let r = c.frag_report();
        assert_eq!(r.hole_count, 1);
        assert_eq!(r.largest_hole, 200);
        // Data is intact after the move.
        assert_eq!(c.peek(2).unwrap(), bytes(100, 2));
    }
}
