//! Ranked background-job scheduling for idle-time maintenance.
//!
//! The server's "3 a.m." activities — draining the group-commit window,
//! packing the data area, recalling archived files, demoting cold ones —
//! all share one discipline: they run only when the server is idle
//! (see [`BulletServer::compact_tick`](crate::BulletServer::compact_tick)'s
//! request-counter gate), they hold the exclusive maintenance guard, and
//! each tick performs *one bounded increment* of work so a waking
//! foreground request never stalls behind a long pass.
//!
//! This module factors that discipline out of the server: a
//! [`MaintenanceJob`] exposes an urgency score and a bounded increment
//! with full rollback on error; [`run_ranked`] consults the jobs in fixed
//! rank order and runs the first one that has work.  A job whose urgency
//! was stale (the increment found nothing to do after all) falls through
//! to the next rank within the same tick, so a tick is never wasted on
//! bookkeeping races.
//!
//! The module also hosts [`size_tiered_pick`], the size-tiered candidate
//! selection the demotion job uses: demote from the densest size class
//! first, the compaction idiom of size-tiered storage engines.

use amoeba_sim::Stats;

use crate::BulletError;

/// Outcome of one bounded [`MaintenanceJob::increment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobTick {
    /// The job found nothing to do (its urgency was stale); the scheduler
    /// falls through to the next rank.
    Idle,
    /// One increment of work was performed; `remaining` estimates how
    /// many increments the job still wants (it only shrinks while the
    /// server stays idle).
    Progressed {
        /// The job's estimate of its remaining increments.
        remaining: u64,
    },
}

/// One pluggable idle-time maintenance job.
///
/// Contract: [`increment`](Self::increment) performs at most one bounded
/// unit of work (one file moved, one extent packed) and must leave every
/// structure fully consistent on error — a failed increment rolls back
/// whole, exactly like a failed foreground operation.
/// [`urgency`](Self::urgency) must be cheap: it is consulted every
/// tick, for every job, and must not perform I/O or block on contended
/// locks.
pub trait MaintenanceJob {
    /// Short stable name, for diagnostics and tests.
    fn name(&self) -> &'static str;
    /// The counter bumped when the scheduler skips this job because its
    /// urgency is zero.
    fn skip_counter(&self) -> &'static str;
    /// How much work the job believes it has; `0` means "skip me".
    /// An advisory score — the increment re-checks under its own locks.
    fn urgency(&self) -> u64;
    /// Performs one bounded increment of work.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure after rolling back; the
    /// scheduler surfaces it to the idle loop unchanged.
    fn increment(&self) -> Result<JobTick, BulletError>;
}

/// One ranked scheduling pass: consults `jobs` in slice order (rank 0
/// first), skips zero-urgency jobs (bumping their skip counter in
/// `stats`), and runs the first increment that makes progress.  A stale
/// urgency — the increment reports [`JobTick::Idle`] — falls through to
/// the next rank, so the pass returns [`JobTick::Idle`] only when *no*
/// job had work.
///
/// # Errors
///
/// The first failing increment's error, unchanged.
pub fn run_ranked(jobs: &[&dyn MaintenanceJob], stats: &Stats) -> Result<JobTick, BulletError> {
    for job in jobs {
        if job.urgency() == 0 {
            stats.incr(job.skip_counter());
            continue;
        }
        match job.increment()? {
            JobTick::Idle => continue,
            progressed => return Ok(progressed),
        }
    }
    Ok(JobTick::Idle)
}

/// Size-tiered candidate selection over `(id, size)` pairs: sort by size,
/// grow a bucket while the next size stays within 1.5× the bucket's
/// running average, and pick from the most-populated bucket — the
/// size-tiered compaction idiom, turned into a demotion policy (the
/// densest size class yields the most reclaimed space per unit of
/// archive-stream interference).  Fully deterministic: equal-population
/// buckets resolve to the smaller-sized one, and within the winning
/// bucket the lowest id wins.
pub fn size_tiered_pick(candidates: &[(u32, u64)]) -> Option<u32> {
    if candidates.is_empty() {
        return None;
    }
    let mut sorted: Vec<(u64, u32)> = candidates.iter().map(|&(id, size)| (size, id)).collect();
    sorted.sort_unstable();
    let mut best_len = 0usize;
    let mut best_pick = 0u32;
    let mut start = 0usize;
    let mut sum = 0u64;
    for k in 0..=sorted.len() {
        // Close the current bucket at the end of the list, or when the
        // next size escapes 1.5× the running average (integer form:
        // 2·size > 3·avg).
        let close = k == sorted.len() || {
            let n = (k - start) as u64;
            n > 0 && 2 * sorted[k].0 > 3 * (sum / n).max(1)
        };
        if close && k > start {
            let len = k - start;
            if len > best_len {
                best_len = len;
                best_pick = sorted[start..k]
                    .iter()
                    .map(|&(_, id)| id)
                    .min()
                    .expect("bucket is non-empty");
            }
            start = k;
            sum = 0;
        }
        if k < sorted.len() {
            sum += sorted[k].0;
        }
    }
    Some(best_pick)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct FakeJob {
        name: &'static str,
        skip: &'static str,
        urgency: AtomicU64,
        outcome: JobTick,
        runs: AtomicU64,
    }

    impl FakeJob {
        fn new(name: &'static str, skip: &'static str, urgency: u64, outcome: JobTick) -> FakeJob {
            FakeJob {
                name,
                skip,
                urgency: AtomicU64::new(urgency),
                outcome,
                runs: AtomicU64::new(0),
            }
        }
    }

    impl MaintenanceJob for FakeJob {
        fn name(&self) -> &'static str {
            self.name
        }
        fn skip_counter(&self) -> &'static str {
            self.skip
        }
        fn urgency(&self) -> u64 {
            self.urgency.load(Ordering::Relaxed)
        }
        fn increment(&self) -> Result<JobTick, BulletError> {
            self.runs.fetch_add(1, Ordering::Relaxed);
            Ok(self.outcome)
        }
    }

    #[test]
    fn first_urgent_job_wins_the_tick() {
        let a = FakeJob::new("a", "skipa", 0, JobTick::Progressed { remaining: 9 });
        let b = FakeJob::new("b", "skipb", 3, JobTick::Progressed { remaining: 2 });
        let c = FakeJob::new("c", "skipc", 5, JobTick::Progressed { remaining: 7 });
        let stats = Stats::new();
        let out = run_ranked(&[&a, &b, &c], &stats).unwrap();
        assert_eq!(out, JobTick::Progressed { remaining: 2 });
        assert_eq!(a.runs.load(Ordering::Relaxed), 0, "skipped, not run");
        assert_eq!(b.runs.load(Ordering::Relaxed), 1);
        assert_eq!(
            c.runs.load(Ordering::Relaxed),
            0,
            "lower rank never reached"
        );
        assert_eq!(stats.get("skipa"), 1);
        assert_eq!(stats.get("skipc"), 0, "unreached jobs are not 'skipped'");
    }

    #[test]
    fn stale_urgency_falls_through_to_the_next_rank() {
        let a = FakeJob::new("a", "skipa", 1, JobTick::Idle);
        let b = FakeJob::new("b", "skipb", 1, JobTick::Progressed { remaining: 0 });
        let stats = Stats::new();
        let out = run_ranked(&[&a, &b], &stats).unwrap();
        assert_eq!(out, JobTick::Progressed { remaining: 0 });
        assert_eq!(a.runs.load(Ordering::Relaxed), 1);
        assert_eq!(b.runs.load(Ordering::Relaxed), 1);
        assert_eq!(a.name(), "a");
    }

    #[test]
    fn all_idle_jobs_yield_an_idle_tick() {
        let a = FakeJob::new("a", "skipa", 0, JobTick::Idle);
        let b = FakeJob::new("b", "skipb", 0, JobTick::Idle);
        let stats = Stats::new();
        assert_eq!(run_ranked(&[&a, &b], &stats).unwrap(), JobTick::Idle);
        assert_eq!(stats.get("skipa"), 1);
        assert_eq!(stats.get("skipb"), 1);
    }

    #[test]
    fn size_tiered_pick_prefers_the_densest_bucket() {
        // Three small files of similar size, two large ones: the small
        // bucket wins, and the lowest id within it is chosen.
        let candidates = [(7, 100), (3, 110), (9, 96), (1, 5_000), (2, 5_100)];
        assert_eq!(size_tiered_pick(&candidates), Some(3));
        // Flip the densities: the large bucket wins.
        let candidates = [(7, 100), (1, 5_000), (2, 5_100), (4, 4_900)];
        assert_eq!(size_tiered_pick(&candidates), Some(1));
    }

    #[test]
    fn size_tiered_pick_edge_cases() {
        assert_eq!(size_tiered_pick(&[]), None);
        assert_eq!(size_tiered_pick(&[(5, 0)]), Some(5));
        // Equal-population buckets resolve to the smaller-sized one.
        let candidates = [(8, 10), (6, 11), (2, 900), (4, 910)];
        assert_eq!(size_tiered_pick(&candidates), Some(6));
    }
}
