//! The contiguous-extent allocator for the data area.
//!
//! "By scanning the inodes it can figure out which parts of disk are free.
//! It uses this information to build a free list in RAM. … For this we use
//! a first fit strategy." (§3)
//!
//! The same allocator manages the RAM cache arena (with byte-sized units),
//! so external fragmentation — the cost the paper consciously accepts — is
//! real in both places, and compaction ("every morning at say 3 am") is
//! implemented as a move plan over the live extents.

use std::collections::BTreeMap;

use crate::BulletError;

/// A single relocation step of a compaction plan: copy `len` units from
/// `from` to `to` (`to < from` always, so applying the moves in order is
/// safe even for overlapping source/target ranges when done unit-wise
/// front-to-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Source start unit.
    pub from: u64,
    /// Destination start unit.
    pub to: u64,
    /// Length in units.
    pub len: u64,
}

/// Fragmentation snapshot of an allocator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FragReport {
    /// Units managed in total.
    pub total: u64,
    /// Units currently free.
    pub free: u64,
    /// Size of the largest free hole.
    pub largest_hole: u64,
    /// Number of distinct holes.
    pub hole_count: u64,
    /// External fragmentation: `1 - largest_hole / free` (0 when free
    /// space is one hole; → 1 as free space shatters).
    pub external_fragmentation: f64,
}

/// A first-fit extent allocator over the half-open unit range
/// `[range_start, range_end)`.
///
/// Units are disk blocks for the data area and bytes for the RAM cache.
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    range_start: u64,
    range_end: u64,
    /// Holes keyed by start unit → length.
    holes: BTreeMap<u64, u64>,
}

impl ExtentAllocator {
    /// An allocator whose whole range is one free hole.
    ///
    /// # Panics
    ///
    /// Panics if `range_end < range_start`.
    pub fn new(range_start: u64, range_end: u64) -> ExtentAllocator {
        assert!(range_end >= range_start, "inverted range");
        let mut holes = BTreeMap::new();
        if range_end > range_start {
            holes.insert(range_start, range_end - range_start);
        }
        ExtentAllocator {
            range_start,
            range_end,
            holes,
        }
    }

    /// Rebuilds an allocator from the extents already in use (the start-up
    /// scan of the inode table).
    ///
    /// # Errors
    ///
    /// [`BulletError::Corrupt`] if extents overlap or leave the range —
    /// the paper's start-up consistency check ("to make sure that files do
    /// not overlap").
    pub fn from_used(
        range_start: u64,
        range_end: u64,
        used: &[(u64, u64)],
    ) -> Result<ExtentAllocator, BulletError> {
        let mut sorted: Vec<(u64, u64)> = used.iter().copied().filter(|&(_, l)| l > 0).collect();
        sorted.sort_unstable();
        let mut alloc = ExtentAllocator {
            range_start,
            range_end,
            holes: BTreeMap::new(),
        };
        let mut cursor = range_start;
        for &(start, len) in &sorted {
            let end = start.checked_add(len).ok_or_else(|| {
                BulletError::Corrupt(format!("extent at {start} overflows the address space"))
            })?;
            if start < cursor {
                return Err(BulletError::Corrupt(format!(
                    "extent at {start} overlaps the previous extent or the control area"
                )));
            }
            if end > range_end {
                return Err(BulletError::Corrupt(format!(
                    "extent [{start}, {end}) leaves the data area (end {range_end})"
                )));
            }
            if start > cursor {
                alloc.holes.insert(cursor, start - cursor);
            }
            cursor = end;
        }
        if cursor < range_end {
            alloc.holes.insert(cursor, range_end - cursor);
        }
        Ok(alloc)
    }

    /// Allocates `len` contiguous units, first-fit.  Returns the start
    /// unit, or `None` if no hole is large enough.
    pub fn alloc(&mut self, len: u64) -> Option<u64> {
        if len == 0 {
            return None;
        }
        let (&start, &hole_len) = self.holes.iter().find(|&(_, &l)| l >= len)?;
        self.holes.remove(&start);
        if hole_len > len {
            self.holes.insert(start + len, hole_len - len);
        }
        Some(start)
    }

    /// Frees the extent `[start, start + len)`, coalescing with adjacent
    /// holes.
    ///
    /// # Errors
    ///
    /// [`BulletError::Corrupt`] on double frees, overlaps, or frees
    /// outside the managed range (these indicate server bugs or disk
    /// corruption and must not be silently absorbed).
    pub fn free(&mut self, start: u64, len: u64) -> Result<(), BulletError> {
        if len == 0 {
            return Ok(());
        }
        let end = start
            .checked_add(len)
            .ok_or_else(|| BulletError::Corrupt("freed extent overflows".into()))?;
        if start < self.range_start || end > self.range_end {
            return Err(BulletError::Corrupt(format!(
                "freed extent [{start}, {end}) outside managed range"
            )));
        }
        // Check against the following hole.
        if let Some((&nstart, _)) = self.holes.range(start..).next() {
            if nstart < end {
                return Err(BulletError::Corrupt(format!(
                    "freed extent [{start}, {end}) overlaps hole at {nstart}"
                )));
            }
        }
        // Check against the preceding hole.
        if let Some((&pstart, &plen)) = self.holes.range(..start).next_back() {
            if pstart + plen > start {
                return Err(BulletError::Corrupt(format!(
                    "freed extent [{start}, {end}) overlaps hole at {pstart}"
                )));
            }
        }
        // Insert and coalesce.
        let mut new_start = start;
        let mut new_len = len;
        if let Some((&pstart, &plen)) = self.holes.range(..start).next_back() {
            if pstart + plen == start {
                self.holes.remove(&pstart);
                new_start = pstart;
                new_len += plen;
            }
        }
        if let Some(&nlen) = self.holes.get(&end) {
            self.holes.remove(&end);
            new_len += nlen;
        }
        self.holes.insert(new_start, new_len);
        Ok(())
    }

    /// Units currently free.
    pub fn free_units(&self) -> u64 {
        self.holes.values().sum()
    }

    /// The managed range.
    pub fn range(&self) -> (u64, u64) {
        (self.range_start, self.range_end)
    }

    /// Fragmentation snapshot.
    pub fn report(&self) -> FragReport {
        let free = self.free_units();
        let largest = self.holes.values().copied().max().unwrap_or(0);
        FragReport {
            total: self.range_end - self.range_start,
            free,
            largest_hole: largest,
            hole_count: self.holes.len() as u64,
            external_fragmentation: if free == 0 {
                0.0
            } else {
                1.0 - largest as f64 / free as f64
            },
        }
    }

    /// Computes the moves that pack the given live extents leftward from
    /// the start of the range (the "3 a.m." compaction).  `used` is
    /// `(start, len)` pairs; the result pairs each with its destination.
    /// Extents already in place produce no move.  The allocator itself is
    /// *not* modified — apply the moves to storage, update the inodes, then
    /// call [`rebuild_after_compaction`](Self::rebuild_after_compaction).
    pub fn plan_compaction(&self, used: &[(u64, u64)]) -> Vec<Move> {
        let mut sorted: Vec<(u64, u64)> = used.iter().copied().filter(|&(_, l)| l > 0).collect();
        sorted.sort_unstable();
        let mut cursor = self.range_start;
        let mut moves = Vec::new();
        for (start, len) in sorted {
            if start != cursor {
                moves.push(Move {
                    from: start,
                    to: cursor,
                    len,
                });
            }
            cursor += len;
        }
        moves
    }

    /// Resets the allocator to the packed layout produced by applying a
    /// compaction plan over extents totalling `used_units`.
    pub fn rebuild_after_compaction(&mut self, used_units: u64) {
        self.holes.clear();
        let free_start = self.range_start + used_units;
        if free_start < self.range_end {
            self.holes.insert(free_start, self.range_end - free_start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_first_fit_order() {
        let mut a = ExtentAllocator::new(10, 110);
        assert_eq!(a.alloc(10), Some(10));
        assert_eq!(a.alloc(20), Some(20));
        a.free(10, 10).unwrap();
        // First fit: the freshly freed leading hole is chosen again.
        assert_eq!(a.alloc(5), Some(10));
        // A request too big for the leading hole skips to the tail hole.
        assert_eq!(a.alloc(50), Some(40));
    }

    #[test]
    fn alloc_zero_and_too_big() {
        let mut a = ExtentAllocator::new(0, 10);
        assert_eq!(a.alloc(0), None);
        assert_eq!(a.alloc(11), None);
        assert_eq!(a.alloc(10), Some(0));
        assert_eq!(a.alloc(1), None);
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut a = ExtentAllocator::new(0, 100);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        let z = a.alloc(10).unwrap();
        assert_eq!((x, y, z), (0, 10, 20));
        a.free(x, 10).unwrap();
        a.free(z, 10).unwrap();
        // [0,10) plus [20,100) (z coalesced with the tail hole).
        assert_eq!(a.report().hole_count, 2);
        a.free(y, 10).unwrap();
        let r = a.report();
        assert_eq!(r.hole_count, 1, "all holes must merge: {r:?}");
        assert_eq!(r.free, 100);
        assert_eq!(r.largest_hole, 100);
        assert_eq!(r.external_fragmentation, 0.0);
    }

    #[test]
    fn double_free_detected() {
        let mut a = ExtentAllocator::new(0, 100);
        let x = a.alloc(10).unwrap();
        a.free(x, 10).unwrap();
        assert!(a.free(x, 10).is_err());
        assert!(a.free(95, 10).is_err()); // leaves the range
        assert!(a.free(x, 0).is_ok()); // zero-length free is a no-op
    }

    #[test]
    fn from_used_builds_holes_between_files() {
        let a = ExtentAllocator::from_used(10, 100, &[(20, 5), (40, 10)]).unwrap();
        let r = a.report();
        assert_eq!(r.free, 90 - 15);
        assert_eq!(r.hole_count, 3); // [10,20) [25,40) [50,100)
    }

    #[test]
    fn from_used_rejects_overlap_and_escape() {
        assert!(ExtentAllocator::from_used(0, 100, &[(10, 10), (15, 10)]).is_err());
        assert!(ExtentAllocator::from_used(10, 100, &[(5, 10)]).is_err());
        assert!(ExtentAllocator::from_used(0, 100, &[(95, 10)]).is_err());
        assert!(ExtentAllocator::from_used(0, 100, &[(u64::MAX, 2)]).is_err());
    }

    #[test]
    fn fragmentation_report_tracks_shattering() {
        let mut a = ExtentAllocator::new(0, 100);
        let mut extents = Vec::new();
        for _ in 0..10 {
            extents.push(a.alloc(10).unwrap());
        }
        // Free every other extent: five 10-unit holes.
        for &e in extents.iter().step_by(2) {
            a.free(e, 10).unwrap();
        }
        let r = a.report();
        assert_eq!(r.free, 50);
        assert_eq!(r.largest_hole, 10);
        assert_eq!(r.hole_count, 5);
        assert!(r.external_fragmentation > 0.7);
        // A 20-unit file no longer fits even though 50 units are free —
        // exactly the failure compaction repairs.
        assert_eq!(a.alloc(20), None);
    }

    #[test]
    fn compaction_plan_packs_left() {
        let mut a = ExtentAllocator::new(0, 100);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        let z = a.alloc(10).unwrap();
        a.free(x, 10).unwrap();
        a.free(z, 10).unwrap();
        // Only y (at 10) is live; plan moves it to 0.
        let plan = a.plan_compaction(&[(y, 10)]);
        assert_eq!(
            plan,
            vec![Move {
                from: 10,
                to: 0,
                len: 10
            }]
        );
        a.rebuild_after_compaction(10);
        let r = a.report();
        assert_eq!(r.hole_count, 1);
        assert_eq!(r.largest_hole, 90);
        assert_eq!(a.alloc(90), Some(10));
    }

    #[test]
    fn compaction_plan_keeps_inplace_extents() {
        let a = ExtentAllocator::from_used(0, 100, &[(0, 10), (50, 10)]).unwrap();
        let plan = a.plan_compaction(&[(0, 10), (50, 10)]);
        assert_eq!(
            plan,
            vec![Move {
                from: 50,
                to: 10,
                len: 10
            }]
        );
    }

    #[test]
    fn compaction_moves_never_overlap_destinations() {
        let a = ExtentAllocator::from_used(0, 1000, &[(100, 50), (300, 50), (600, 100)]).unwrap();
        let plan = a.plan_compaction(&[(100, 50), (300, 50), (600, 100)]);
        // Destinations are monotone and moves go leftward.
        let mut cursor = 0;
        for m in &plan {
            assert!(m.to >= cursor);
            assert!(m.to < m.from);
            cursor = m.to + m.len;
        }
    }

    #[test]
    fn empty_range_allocator() {
        let mut a = ExtentAllocator::new(5, 5);
        assert_eq!(a.alloc(1), None);
        assert_eq!(a.free_units(), 0);
        assert_eq!(a.report().external_fragmentation, 0.0);
    }
}
