//! The contiguous-extent allocator for the data area.
//!
//! "By scanning the inodes it can figure out which parts of disk are free.
//! It uses this information to build a free list in RAM. … For this we use
//! a first fit strategy." (§3)
//!
//! The same allocator manages the RAM cache arena (with byte-sized units),
//! so external fragmentation — the cost the paper consciously accepts — is
//! real in both places, and compaction ("every morning at say 3 am") is
//! implemented as a move plan over the live extents.

use std::collections::BTreeMap;

use crate::BulletError;

/// A single relocation step of a compaction plan: copy `len` units from
/// `from` to `to` (`to < from` always, so applying the moves in order is
/// safe even for overlapping source/target ranges when done unit-wise
/// front-to-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Source start unit.
    pub from: u64,
    /// Destination start unit.
    pub to: u64,
    /// Length in units.
    pub len: u64,
}

/// Fragmentation snapshot of an allocator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FragReport {
    /// Units managed in total.
    pub total: u64,
    /// Units currently free.
    pub free: u64,
    /// Size of the largest free hole.
    pub largest_hole: u64,
    /// Number of distinct holes.
    pub hole_count: u64,
    /// External fragmentation: `1 - largest_hole / free` (0 when free
    /// space is one hole; → 1 as free space shatters).
    pub external_fragmentation: f64,
}

/// Where a new extent should land relative to the disk arm — the
/// placement policy of [`ExtentAllocator::alloc_placed`].
///
/// The paper's server allocates strictly first-fit; PR 5's scheduler makes
/// the arm position visible, so the allocator can cooperate with it: an
/// extent placed near the head costs a short seek to write and keeps files
/// created together physically together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// The paper's strategy: the lowest-addressed hole that fits.
    #[default]
    FirstFit,
    /// The hole nearest the hint (an arm-position proxy): minimizes the
    /// seek to reach the new extent, clustering consecutive creates.
    NearHint,
    /// Zoned first-fit: first-fit within the hint's zone, spiralling
    /// outward (`z`, `z+1`, `z-1`, `z+2`, …) so each zone fills before
    /// traffic spills to its neighbours.
    Zoned {
        /// Number of equal zones the range is divided into.
        zones: u32,
    },
}

/// A first-fit extent allocator over the half-open unit range
/// `[range_start, range_end)`.
///
/// Units are disk blocks for the data area and bytes for the RAM cache.
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    range_start: u64,
    range_end: u64,
    /// Holes keyed by start unit → length.
    holes: BTreeMap<u64, u64>,
    /// Cached sum of hole lengths, so [`free_units`](Self::free_units) is
    /// O(1) — the cache insert loop polls it once per eviction.
    free: u64,
    /// Upper bound on the largest hole length.  Never below the true
    /// maximum, so `len > max_hole_ub` proves no hole fits and a failing
    /// first-fit probe costs O(1) instead of a full scan.  Tightened to
    /// the exact maximum whenever a probe does scan everything and fail.
    max_hole_ub: u64,
}

impl ExtentAllocator {
    /// An allocator whose whole range is one free hole.
    ///
    /// # Panics
    ///
    /// Panics if `range_end < range_start`.
    pub fn new(range_start: u64, range_end: u64) -> ExtentAllocator {
        assert!(range_end >= range_start, "inverted range");
        let mut holes = BTreeMap::new();
        if range_end > range_start {
            holes.insert(range_start, range_end - range_start);
        }
        ExtentAllocator {
            range_start,
            range_end,
            holes,
            free: range_end - range_start,
            max_hole_ub: range_end - range_start,
        }
    }

    /// Rebuilds an allocator from the extents already in use (the start-up
    /// scan of the inode table).
    ///
    /// # Errors
    ///
    /// [`BulletError::Corrupt`] if extents overlap or leave the range —
    /// the paper's start-up consistency check ("to make sure that files do
    /// not overlap").
    pub fn from_used(
        range_start: u64,
        range_end: u64,
        used: &[(u64, u64)],
    ) -> Result<ExtentAllocator, BulletError> {
        let mut sorted: Vec<(u64, u64)> = used.iter().copied().filter(|&(_, l)| l > 0).collect();
        sorted.sort_unstable();
        let mut alloc = ExtentAllocator {
            range_start,
            range_end,
            holes: BTreeMap::new(),
            free: 0,
            max_hole_ub: 0,
        };
        let mut cursor = range_start;
        for &(start, len) in &sorted {
            let end = start.checked_add(len).ok_or_else(|| {
                BulletError::Corrupt(format!("extent at {start} overflows the address space"))
            })?;
            if start < cursor {
                return Err(BulletError::Corrupt(format!(
                    "extent at {start} overlaps the previous extent or the control area"
                )));
            }
            if end > range_end {
                return Err(BulletError::Corrupt(format!(
                    "extent [{start}, {end}) leaves the data area (end {range_end})"
                )));
            }
            if start > cursor {
                alloc.holes.insert(cursor, start - cursor);
            }
            cursor = end;
        }
        if cursor < range_end {
            alloc.holes.insert(cursor, range_end - cursor);
        }
        alloc.free = alloc.holes.values().sum();
        alloc.max_hole_ub = alloc.holes.values().copied().max().unwrap_or(0);
        Ok(alloc)
    }

    /// Allocates `len` contiguous units, first-fit.  Returns the start
    /// unit, or `None` if no hole is large enough.
    pub fn alloc(&mut self, len: u64) -> Option<u64> {
        if len == 0 || len > self.max_hole_ub {
            // `max_hole_ub` never underestimates, so this rejection is
            // exactly what the full scan would conclude.
            return None;
        }
        let mut seen_max = 0u64;
        let found = self.holes.iter().find(|&(_, &l)| {
            seen_max = seen_max.max(l);
            l >= len
        });
        let Some((&start, &hole_len)) = found else {
            // The scan visited every hole: the bound is now exact, and
            // further probes this large fail in O(1) until a free or a
            // compaction grows a hole.
            self.max_hole_ub = seen_max;
            return None;
        };
        self.holes.remove(&start);
        self.free -= len;
        if hole_len > len {
            self.holes.insert(start + len, hole_len - len);
        }
        Some(start)
    }

    /// Allocates `len` contiguous units under a [`Placement`] policy.
    /// `hint` is the unit the disk arm is presumed to sit near (callers
    /// pass the end of the previous allocation).  Returns the start unit,
    /// or `None` if no hole is large enough.
    ///
    /// [`Placement::FirstFit`] is byte-identical to [`alloc`](Self::alloc),
    /// so the default policy changes nothing.
    pub fn alloc_placed(&mut self, len: u64, policy: Placement, hint: u64) -> Option<u64> {
        if len == 0 || len > self.max_hole_ub {
            return None;
        }
        match policy {
            Placement::FirstFit => self.alloc(len),
            Placement::NearHint => {
                // Distance from the hint to the nearest point of each
                // fitting hole; 0 when the hint is inside the hole.
                let (&start, &hole_len) = self
                    .holes
                    .iter()
                    .filter(|&(_, &l)| l >= len)
                    .min_by_key(|&(&s, &l)| {
                        let end = s + l;
                        let dist = if hint < s {
                            s - hint
                        } else if hint >= end {
                            hint - end + 1
                        } else {
                            0
                        };
                        (dist, s)
                    })?;
                // Start at the hint when the remainder of the hole still
                // fits there — the arm writes with no positioning at all.
                let at = if hint >= start && hint + len <= start + hole_len {
                    hint
                } else {
                    start
                };
                self.carve(start, hole_len, at, len);
                Some(at)
            }
            Placement::Zoned { zones } => {
                let zones = u64::from(zones.max(1));
                let total = self.range_end - self.range_start;
                if total == 0 {
                    return None;
                }
                let zone_len = total.div_ceil(zones);
                let zone_of =
                    |u: u64| (u.saturating_sub(self.range_start) / zone_len).min(zones - 1);
                let z0 = zone_of(hint.clamp(self.range_start, self.range_end.saturating_sub(1)));
                // Spiral z0, z0+1, z0-1, z0+2, … (2·zones steps so every
                // zone is reached even when z0 sits at an edge).
                let order = (0..2 * zones).map(|i| {
                    let step = i.div_ceil(2);
                    if i % 2 == 1 {
                        z0.checked_add(step).filter(|&z| z < zones)
                    } else {
                        z0.checked_sub(step)
                    }
                });
                for z in order.flatten() {
                    let zstart = self.range_start + z * zone_len;
                    let zend = (zstart + zone_len).min(self.range_end);
                    // First fit among holes overlapping the zone: the
                    // extent must *start* inside the zone and fit in the
                    // remainder of its hole (it may spill past the zone
                    // end rather than split).
                    let from = self
                        .holes
                        .range(..zstart)
                        .next_back()
                        .map(|(&s, _)| s)
                        .unwrap_or(zstart);
                    let found =
                        self.holes
                            .range(from..zend)
                            .map(|(&s, &l)| (s, l))
                            .find(|&(s, l)| {
                                let at = s.max(zstart);
                                at < zend && at + len <= s + l
                            });
                    if let Some((start, hole_len)) = found {
                        let at = start.max(zstart);
                        self.carve(start, hole_len, at, len);
                        return Some(at);
                    }
                }
                // No zone-local hole: fall back to plain first-fit so a
                // placement policy never turns a satisfiable request into
                // NoSpace.
                self.alloc(len)
            }
        }
    }

    /// Allocates one extent per entry of `lens` in a single pass — the
    /// group-commit batch path, which holds the allocator lock exactly
    /// once for the whole batch instead of once per file.
    ///
    /// The batch is first placed as **one contiguous run** of
    /// `lens.iter().sum()` units under `policy` (so the files land
    /// physically adjacent and the arm writes them with one positioning),
    /// then carved into per-file extents front to back.  When no hole can
    /// take the whole run, each extent is placed individually under the
    /// same policy — a batch never fails where the per-file path would
    /// have succeeded.
    ///
    /// Returns the start unit of each extent, in `lens` order, or `None`
    /// if any extent cannot be placed; on `None` the allocator state is
    /// unchanged (partial placements are rolled back).
    pub fn alloc_batch(&mut self, lens: &[u64], policy: Placement, hint: u64) -> Option<Vec<u64>> {
        if lens.is_empty() || lens.contains(&0) {
            return None;
        }
        let total: u64 = lens.iter().copied().try_fold(0u64, u64::checked_add)?;
        // Fast path: the whole batch as one contiguous run.
        if let Some(run) = self.alloc_placed(total, policy, hint) {
            let mut starts = Vec::with_capacity(lens.len());
            let mut cursor = run;
            for &len in lens {
                starts.push(cursor);
                cursor += len;
            }
            return Some(starts);
        }
        // Fragmented fallback: place each extent individually, chaining
        // the hint so consecutive extents still cluster when they can.
        let mut starts: Vec<u64> = Vec::with_capacity(lens.len());
        let mut h = hint;
        for &len in lens {
            match self.alloc_placed(len, policy, h) {
                Some(s) => {
                    h = s + len;
                    starts.push(s);
                }
                None => {
                    // Roll back what the batch already took.
                    for (j, &s) in starts.iter().enumerate() {
                        self.free(s, lens[j])
                            .expect("rollback frees what alloc took");
                    }
                    return None;
                }
            }
        }
        Some(starts)
    }

    /// Removes `[at, at + len)` from the hole `[start, start + hole_len)`,
    /// reinserting the remainders on either side.
    fn carve(&mut self, start: u64, hole_len: u64, at: u64, len: u64) {
        debug_assert!(at >= start && at + len <= start + hole_len);
        self.free -= len;
        self.holes.remove(&start);
        if at > start {
            self.holes.insert(start, at - start);
        }
        let tail = (start + hole_len) - (at + len);
        if tail > 0 {
            self.holes.insert(at + len, tail);
        }
    }

    /// Claims the specific extent `[start, start + len)`, which must lie
    /// entirely inside one free hole.  Incremental compaction uses this to
    /// take the exact destination of a planned move.
    ///
    /// # Errors
    ///
    /// [`BulletError::Corrupt`] if any part of the extent is not free.
    pub fn reserve(&mut self, start: u64, len: u64) -> Result<(), BulletError> {
        if len == 0 {
            return Ok(());
        }
        let end = start
            .checked_add(len)
            .ok_or_else(|| BulletError::Corrupt("reserved extent overflows".into()))?;
        let hole = self
            .holes
            .range(..=start)
            .next_back()
            .map(|(&s, &l)| (s, l));
        match hole {
            Some((hstart, hlen)) if start >= hstart && end <= hstart + hlen => {
                self.carve(hstart, hlen, start, len);
                Ok(())
            }
            _ => Err(BulletError::Corrupt(format!(
                "reserved extent [{start}, {end}) is not free"
            ))),
        }
    }

    /// Frees the extent `[start, start + len)`, coalescing with adjacent
    /// holes.
    ///
    /// # Errors
    ///
    /// [`BulletError::Corrupt`] on double frees, overlaps, or frees
    /// outside the managed range (these indicate server bugs or disk
    /// corruption and must not be silently absorbed).
    pub fn free(&mut self, start: u64, len: u64) -> Result<(), BulletError> {
        if len == 0 {
            return Ok(());
        }
        let end = start
            .checked_add(len)
            .ok_or_else(|| BulletError::Corrupt("freed extent overflows".into()))?;
        if start < self.range_start || end > self.range_end {
            return Err(BulletError::Corrupt(format!(
                "freed extent [{start}, {end}) outside managed range"
            )));
        }
        // Check against the following hole.
        if let Some((&nstart, _)) = self.holes.range(start..).next() {
            if nstart < end {
                return Err(BulletError::Corrupt(format!(
                    "freed extent [{start}, {end}) overlaps hole at {nstart}"
                )));
            }
        }
        // Check against the preceding hole.
        if let Some((&pstart, &plen)) = self.holes.range(..start).next_back() {
            if pstart + plen > start {
                return Err(BulletError::Corrupt(format!(
                    "freed extent [{start}, {end}) overlaps hole at {pstart}"
                )));
            }
        }
        // Insert and coalesce.
        let mut new_start = start;
        let mut new_len = len;
        if let Some((&pstart, &plen)) = self.holes.range(..start).next_back() {
            if pstart + plen == start {
                self.holes.remove(&pstart);
                new_start = pstart;
                new_len += plen;
            }
        }
        if let Some(&nlen) = self.holes.get(&end) {
            self.holes.remove(&end);
            new_len += nlen;
        }
        self.holes.insert(new_start, new_len);
        self.free += len;
        self.max_hole_ub = self.max_hole_ub.max(new_len);
        Ok(())
    }

    /// Units currently free.
    pub fn free_units(&self) -> u64 {
        self.free
    }

    /// The managed range.
    pub fn range(&self) -> (u64, u64) {
        (self.range_start, self.range_end)
    }

    /// Fragmentation snapshot.
    pub fn report(&self) -> FragReport {
        let free = self.free_units();
        let largest = self.holes.values().copied().max().unwrap_or(0);
        FragReport {
            total: self.range_end - self.range_start,
            free,
            largest_hole: largest,
            hole_count: self.holes.len() as u64,
            external_fragmentation: if free == 0 {
                0.0
            } else {
                1.0 - largest as f64 / free as f64
            },
        }
    }

    /// Fragmentation snapshot of each of `zones` equal slices of the
    /// range (the last zone absorbs the remainder).  Holes spanning a
    /// zone boundary are clipped to each side, so per-zone `free` sums to
    /// the allocator's total free count.
    pub fn zone_reports(&self, zones: u32) -> Vec<FragReport> {
        let zones = u64::from(zones.max(1));
        let total = self.range_end - self.range_start;
        if total == 0 {
            return vec![self.report(); zones as usize];
        }
        let zone_len = total.div_ceil(zones);
        (0..zones)
            .map(|z| {
                let zstart = self.range_start + z * zone_len;
                let zend = (zstart + zone_len).min(self.range_end);
                let mut free = 0u64;
                let mut largest = 0u64;
                let mut count = 0u64;
                // Holes starting before the zone can still reach into it.
                let from = self
                    .holes
                    .range(..zstart)
                    .next_back()
                    .map(|(&s, _)| s)
                    .unwrap_or(zstart);
                for (&s, &l) in self.holes.range(from..zend) {
                    let clipped = (s + l).min(zend).saturating_sub(s.max(zstart));
                    if clipped > 0 {
                        free += clipped;
                        largest = largest.max(clipped);
                        count += 1;
                    }
                }
                FragReport {
                    total: zend.saturating_sub(zstart),
                    free,
                    largest_hole: largest,
                    hole_count: count,
                    external_fragmentation: if free == 0 {
                        0.0
                    } else {
                        1.0 - largest as f64 / free as f64
                    },
                }
            })
            .collect()
    }

    /// Computes the moves that pack the given live extents leftward from
    /// the start of the range (the "3 a.m." compaction).  `used` is
    /// `(start, len)` pairs; the result pairs each with its destination.
    /// Extents already in place produce no move.  The allocator itself is
    /// *not* modified — apply the moves to storage, update the inodes, then
    /// call [`rebuild_after_compaction`](Self::rebuild_after_compaction).
    pub fn plan_compaction(&self, used: &[(u64, u64)]) -> Vec<Move> {
        let mut sorted: Vec<(u64, u64)> = used.iter().copied().filter(|&(_, l)| l > 0).collect();
        sorted.sort_unstable();
        let mut cursor = self.range_start;
        let mut moves = Vec::new();
        for (start, len) in sorted {
            if start != cursor {
                moves.push(Move {
                    from: start,
                    to: cursor,
                    len,
                });
            }
            cursor += len;
        }
        moves
    }

    /// Resets the allocator to the packed layout produced by applying a
    /// compaction plan over extents totalling `used_units`.
    pub fn rebuild_after_compaction(&mut self, used_units: u64) {
        self.holes.clear();
        let free_start = self.range_start + used_units;
        self.free = self.range_end.saturating_sub(free_start);
        self.max_hole_ub = self.free;
        if free_start < self.range_end {
            self.holes.insert(free_start, self.range_end - free_start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_first_fit_order() {
        let mut a = ExtentAllocator::new(10, 110);
        assert_eq!(a.alloc(10), Some(10));
        assert_eq!(a.alloc(20), Some(20));
        a.free(10, 10).unwrap();
        // First fit: the freshly freed leading hole is chosen again.
        assert_eq!(a.alloc(5), Some(10));
        // A request too big for the leading hole skips to the tail hole.
        assert_eq!(a.alloc(50), Some(40));
    }

    #[test]
    fn alloc_zero_and_too_big() {
        let mut a = ExtentAllocator::new(0, 10);
        assert_eq!(a.alloc(0), None);
        assert_eq!(a.alloc(11), None);
        assert_eq!(a.alloc(10), Some(0));
        assert_eq!(a.alloc(1), None);
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut a = ExtentAllocator::new(0, 100);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        let z = a.alloc(10).unwrap();
        assert_eq!((x, y, z), (0, 10, 20));
        a.free(x, 10).unwrap();
        a.free(z, 10).unwrap();
        // [0,10) plus [20,100) (z coalesced with the tail hole).
        assert_eq!(a.report().hole_count, 2);
        a.free(y, 10).unwrap();
        let r = a.report();
        assert_eq!(r.hole_count, 1, "all holes must merge: {r:?}");
        assert_eq!(r.free, 100);
        assert_eq!(r.largest_hole, 100);
        assert_eq!(r.external_fragmentation, 0.0);
    }

    #[test]
    fn double_free_detected() {
        let mut a = ExtentAllocator::new(0, 100);
        let x = a.alloc(10).unwrap();
        a.free(x, 10).unwrap();
        assert!(a.free(x, 10).is_err());
        assert!(a.free(95, 10).is_err()); // leaves the range
        assert!(a.free(x, 0).is_ok()); // zero-length free is a no-op
    }

    #[test]
    fn from_used_builds_holes_between_files() {
        let a = ExtentAllocator::from_used(10, 100, &[(20, 5), (40, 10)]).unwrap();
        let r = a.report();
        assert_eq!(r.free, 90 - 15);
        assert_eq!(r.hole_count, 3); // [10,20) [25,40) [50,100)
    }

    #[test]
    fn from_used_rejects_overlap_and_escape() {
        assert!(ExtentAllocator::from_used(0, 100, &[(10, 10), (15, 10)]).is_err());
        assert!(ExtentAllocator::from_used(10, 100, &[(5, 10)]).is_err());
        assert!(ExtentAllocator::from_used(0, 100, &[(95, 10)]).is_err());
        assert!(ExtentAllocator::from_used(0, 100, &[(u64::MAX, 2)]).is_err());
    }

    #[test]
    fn fragmentation_report_tracks_shattering() {
        let mut a = ExtentAllocator::new(0, 100);
        let mut extents = Vec::new();
        for _ in 0..10 {
            extents.push(a.alloc(10).unwrap());
        }
        // Free every other extent: five 10-unit holes.
        for &e in extents.iter().step_by(2) {
            a.free(e, 10).unwrap();
        }
        let r = a.report();
        assert_eq!(r.free, 50);
        assert_eq!(r.largest_hole, 10);
        assert_eq!(r.hole_count, 5);
        assert!(r.external_fragmentation > 0.7);
        // A 20-unit file no longer fits even though 50 units are free —
        // exactly the failure compaction repairs.
        assert_eq!(a.alloc(20), None);
    }

    #[test]
    fn compaction_plan_packs_left() {
        let mut a = ExtentAllocator::new(0, 100);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        let z = a.alloc(10).unwrap();
        a.free(x, 10).unwrap();
        a.free(z, 10).unwrap();
        // Only y (at 10) is live; plan moves it to 0.
        let plan = a.plan_compaction(&[(y, 10)]);
        assert_eq!(
            plan,
            vec![Move {
                from: 10,
                to: 0,
                len: 10
            }]
        );
        a.rebuild_after_compaction(10);
        let r = a.report();
        assert_eq!(r.hole_count, 1);
        assert_eq!(r.largest_hole, 90);
        assert_eq!(a.alloc(90), Some(10));
    }

    #[test]
    fn compaction_plan_keeps_inplace_extents() {
        let a = ExtentAllocator::from_used(0, 100, &[(0, 10), (50, 10)]).unwrap();
        let plan = a.plan_compaction(&[(0, 10), (50, 10)]);
        assert_eq!(
            plan,
            vec![Move {
                from: 50,
                to: 10,
                len: 10
            }]
        );
    }

    #[test]
    fn compaction_moves_never_overlap_destinations() {
        let a = ExtentAllocator::from_used(0, 1000, &[(100, 50), (300, 50), (600, 100)]).unwrap();
        let plan = a.plan_compaction(&[(100, 50), (300, 50), (600, 100)]);
        // Destinations are monotone and moves go leftward.
        let mut cursor = 0;
        for m in &plan {
            assert!(m.to >= cursor);
            assert!(m.to < m.from);
            cursor = m.to + m.len;
        }
    }

    #[test]
    fn empty_range_allocator() {
        let mut a = ExtentAllocator::new(5, 5);
        assert_eq!(a.alloc(1), None);
        assert_eq!(a.free_units(), 0);
        assert_eq!(a.report().external_fragmentation, 0.0);
    }

    #[test]
    fn first_fit_placement_matches_plain_alloc() {
        let used = [(20u64, 5u64), (40, 10), (80, 3)];
        let mut plain = ExtentAllocator::from_used(10, 100, &used).unwrap();
        let mut placed = ExtentAllocator::from_used(10, 100, &used).unwrap();
        for len in [3, 7, 1, 12, 2] {
            assert_eq!(
                placed.alloc_placed(len, Placement::FirstFit, 55),
                plain.alloc(len)
            );
        }
    }

    #[test]
    fn near_hint_picks_the_closest_hole() {
        // Holes: [10,20) [25,40) [50,100).
        let mut a = ExtentAllocator::from_used(10, 100, &[(20, 5), (40, 10)]).unwrap();
        // First-fit would take 10; the hint at 60 sits inside [50,100).
        assert_eq!(a.alloc_placed(5, Placement::NearHint, 60), Some(60));
        // The hint inside a hole whose remainder no longer fits there:
        // falls back to the hole start.  [50,100) is now split at 60; the
        // hint 97 leaves only [97,100) in its sub-hole, too small for 10.
        assert_eq!(a.alloc_placed(10, Placement::NearHint, 97), Some(65));
        // A hint below every hole picks the nearest one above it.
        assert_eq!(a.alloc_placed(5, Placement::NearHint, 0), Some(10));
    }

    #[test]
    fn near_hint_clusters_consecutive_creates() {
        let mut a = ExtentAllocator::new(0, 1000);
        // Fragment the front so first-fit would scatter.
        for i in 0..10 {
            a.reserve(i * 20, 10).unwrap();
        }
        let mut hint = 500;
        let mut placed = Vec::new();
        for _ in 0..5 {
            let s = a.alloc_placed(10, Placement::NearHint, hint).unwrap();
            hint = s + 10;
            placed.push(s);
        }
        // Every allocation continues exactly where the last one ended.
        assert_eq!(placed, vec![500, 510, 520, 530, 540]);
    }

    #[test]
    fn zoned_placement_fills_the_hint_zone_first() {
        let mut a = ExtentAllocator::new(0, 100);
        let zoned = Placement::Zoned { zones: 4 };
        // Hint in zone 2 ([50,75)): allocations land there until full.
        assert_eq!(a.alloc_placed(10, zoned, 60), Some(50));
        assert_eq!(a.alloc_placed(10, zoned, 60), Some(60));
        assert_eq!(a.alloc_placed(5, zoned, 60), Some(70));
        // Zone 2 exhausted: spill to zone 3 first (z+1 before z-1).
        assert_eq!(a.alloc_placed(10, zoned, 60), Some(75));
        // A request larger than any zone-local hole falls back first-fit.
        assert_eq!(a.alloc_placed(30, zoned, 60), Some(0));
    }

    #[test]
    fn zoned_placement_never_manufactures_no_space() {
        // At every step, zoned placement fails only when first-fit on the
        // same hole state would fail too (the fallback guarantees it).
        let mut a = ExtentAllocator::from_used(0, 100, &[(20, 5), (60, 5)]).unwrap();
        loop {
            let fits = a.clone().alloc(7).is_some();
            let got = a.alloc_placed(7, Placement::Zoned { zones: 5 }, 90);
            assert_eq!(got.is_some(), fits);
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn reserve_takes_a_specific_extent() {
        let mut a = ExtentAllocator::new(0, 100);
        a.reserve(40, 10).unwrap();
        // The hole split around the reservation.
        assert_eq!(a.report().hole_count, 2);
        assert_eq!(a.free_units(), 90);
        // Reserving any part of it again fails.
        assert!(a.reserve(45, 2).is_err());
        assert!(a.reserve(35, 10).is_err());
        // Freeing restores one hole.
        a.free(40, 10).unwrap();
        assert_eq!(a.report().hole_count, 1);
        // Reserve at the very edges of a hole works.
        a.reserve(0, 5).unwrap();
        a.reserve(95, 5).unwrap();
        assert_eq!(a.free_units(), 90);
    }

    #[test]
    fn zone_reports_partition_free_space() {
        // Holes: [10,20) [25,40) [50,100) over range [10,100).
        let a = ExtentAllocator::from_used(10, 100, &[(20, 5), (40, 10)]).unwrap();
        let zones = a.zone_reports(3); // slices of 30: [10,40) [40,70) [70,100)
        assert_eq!(zones.len(), 3);
        assert_eq!(zones.iter().map(|z| z.total).sum::<u64>(), 90);
        assert_eq!(zones.iter().map(|z| z.free).sum::<u64>(), a.free_units());
        // Zone 0 holds [10,20) and [25,40): two holes, 25 free.
        assert_eq!((zones[0].free, zones[0].hole_count), (25, 2));
        // The [50,100) hole is clipped across zones 1 and 2.
        assert_eq!((zones[1].free, zones[1].hole_count), (20, 1));
        assert_eq!((zones[2].free, zones[2].hole_count), (30, 1));
        assert_eq!(zones[2].external_fragmentation, 0.0);
    }

    #[test]
    fn alloc_batch_is_contiguous_when_a_run_fits() {
        let mut a = ExtentAllocator::new(0, 1000);
        let starts = a.alloc_batch(&[10, 20, 5], Placement::FirstFit, 0).unwrap();
        // One run carved front to back: each extent abuts the previous.
        assert_eq!(starts, vec![0, 10, 30]);
        assert_eq!(a.free_units(), 1000 - 35);
    }

    #[test]
    fn alloc_batch_falls_back_per_extent_when_fragmented() {
        // Three 10-unit holes, no 30-unit run.
        let mut a = ExtentAllocator::from_used(0, 100, &[(10, 20), (40, 30), (80, 20)]).unwrap();
        assert_eq!(a.clone().alloc(30), None, "no contiguous run by design");
        let starts = a
            .alloc_batch(&[10, 10, 10], Placement::FirstFit, 0)
            .unwrap();
        assert_eq!(starts, vec![0, 30, 70]);
        assert_eq!(a.free_units(), 0);
    }

    #[test]
    fn alloc_batch_rolls_back_on_failure() {
        let mut a = ExtentAllocator::from_used(0, 100, &[(10, 20), (40, 60)]).unwrap();
        let before = a.free_units();
        // 10 + 10 fits in pieces (holes of 10 at 0 and 30), 11 does not.
        assert_eq!(a.alloc_batch(&[10, 10, 11], Placement::FirstFit, 0), None);
        assert_eq!(a.free_units(), before, "failed batch must roll back");
        assert!(a.alloc_batch(&[10, 10], Placement::FirstFit, 0).is_some());
    }

    #[test]
    fn alloc_batch_rejects_degenerate_input() {
        let mut a = ExtentAllocator::new(0, 100);
        assert_eq!(a.alloc_batch(&[], Placement::FirstFit, 0), None);
        assert_eq!(a.alloc_batch(&[5, 0, 5], Placement::FirstFit, 0), None);
        assert_eq!(a.free_units(), 100);
    }

    /// Applies a compaction plan front-to-back, unit-wise, to a model
    /// "disk" — exactly how the server applies it to real blocks.
    fn apply_moves_unitwise(disk: &mut [u8], plan: &[Move]) {
        for m in plan {
            for i in 0..m.len {
                disk[(m.to + i) as usize] = disk[(m.from + i) as usize];
            }
        }
    }

    #[test]
    fn failed_probe_recovers_after_coalescing_free() {
        // Exercise the fail-fast bound: a failing probe tightens it, a
        // coalescing free must loosen it again or the next alloc would be
        // wrongly rejected in O(1).
        let mut a = ExtentAllocator::new(0, 100);
        let x = a.alloc(40).unwrap();
        let y = a.alloc(40).unwrap();
        assert_eq!(a.alloc(30), None); // scan fails, bound becomes 20
        assert_eq!(a.alloc(25), None); // O(1) rejection via the bound
        a.free(y, 40).unwrap(); // coalesces with the tail: hole of 60
        assert_eq!(a.alloc(55), Some(40));
        a.free(x, 40).unwrap();
        assert_eq!(a.alloc(40), Some(0));
    }

    proptest::proptest! {
        /// The cached free counter and max-hole bound stay honest against
        /// a from-scratch scan across arbitrary alloc/free/reserve walks,
        /// and `alloc` succeeds exactly when a fitting hole exists (the
        /// fail-fast bound never manufactures NoSpace).
        #[test]
        fn cached_accounting_matches_scan(
            ops in proptest::collection::vec((0u8..4, 1u64..40, 0u64..200), 1..120),
        ) {
            let mut a = ExtentAllocator::new(0, 200);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (kind, len, at) in ops {
                match kind {
                    0 => {
                        let fits = a.holes.values().any(|&l| l >= len);
                        match a.alloc(len) {
                            Some(s) => {
                                proptest::prop_assert!(fits, "alloc succeeded with no fitting hole");
                                live.push((s, len));
                            }
                            None => proptest::prop_assert!(!fits, "alloc refused a fitting hole"),
                        }
                    }
                    1 => {
                        if !live.is_empty() {
                            let (s, l) = live.swap_remove(at as usize % live.len());
                            a.free(s, l).unwrap();
                        }
                    }
                    2 => {
                        if a.reserve(at, len).is_ok() {
                            live.push((at, len));
                        }
                    }
                    _ => {
                        let plan = a.plan_compaction(&live);
                        let mut cursor = a.range().0;
                        for e in live.iter_mut() {
                            // Apply the plan's packed layout to the model.
                            e.0 = cursor;
                            cursor += e.1;
                        }
                        drop(plan);
                        let used: u64 = live.iter().map(|&(_, l)| l).sum();
                        a.rebuild_after_compaction(used);
                    }
                }
                let scan_free: u64 = a.holes.values().sum();
                let scan_max = a.holes.values().copied().max().unwrap_or(0);
                proptest::prop_assert_eq!(a.free_units(), scan_free, "free counter drifted");
                proptest::prop_assert!(
                    a.max_hole_ub >= scan_max,
                    "max-hole bound {} below true max {}", a.max_hole_ub, scan_max
                );
                proptest::prop_assert_eq!(a.report().free, scan_free);
            }
        }

        /// The doc-comment claim on [`Move`], held to mechanically:
        /// front-to-back unit-wise application over overlapping source and
        /// target ranges preserves every live extent's bytes.
        #[test]
        fn compaction_plan_preserves_live_bytes(
            lens in proptest::collection::vec(1u64..9, 1..12),
            gaps in proptest::collection::vec(0u64..7, 1..12),
        ) {
            // Lay extents left to right with arbitrary gaps.
            let mut used = Vec::new();
            let mut cursor = 0u64;
            for (i, &len) in lens.iter().enumerate() {
                cursor += gaps[i % gaps.len()];
                used.push((cursor, len));
                cursor += len;
            }
            let total = cursor + 8;
            let a = ExtentAllocator::from_used(0, total, &used).unwrap();

            // Fill each live extent with bytes unique to (extent, offset).
            let mut disk = vec![0xEEu8; total as usize];
            for (i, &(start, len)) in used.iter().enumerate() {
                for off in 0..len {
                    disk[(start + off) as usize] = (i as u8) << 4 | (off as u8);
                }
            }

            let plan = a.plan_compaction(&used);
            // The invariant the unit-wise order rests on: every move goes
            // strictly leftward, destinations monotone non-overlapping.
            let mut cursor = 0u64;
            for m in &plan {
                proptest::prop_assert!(m.to < m.from);
                proptest::prop_assert!(m.to >= cursor);
                cursor = m.to + m.len;
            }
            apply_moves_unitwise(&mut disk, &plan);

            // Every extent's bytes survive at its packed destination.
            let mut dest = 0u64;
            for (i, &(_, len)) in used.iter().enumerate() {
                for off in 0..len {
                    proptest::prop_assert_eq!(
                        disk[(dest + off) as usize],
                        (i as u8) << 4 | (off as u8),
                        "extent {} unit {} corrupted", i, off
                    );
                }
                dest += len;
            }
        }

        /// Batch allocation: extents never overlap each other or the
        /// pre-existing used extents, and free-unit accounting is exact.
        #[test]
        fn alloc_batch_no_overlap_and_exact_accounting(
            lens in proptest::collection::vec(1u64..16, 1..10),
            used_lens in proptest::collection::vec(1u64..8, 0..6),
            gaps in proptest::collection::vec(1u64..12, 1..7),
            policy_pick in 0u8..3,
            hint in 0u64..600,
        ) {
            // Pre-populate the range with used extents to fragment it.
            let mut used = Vec::new();
            let mut cursor = 0u64;
            for (i, &len) in used_lens.iter().enumerate() {
                cursor += gaps[i % gaps.len()];
                used.push((cursor, len));
                cursor += len;
            }
            let total_range = 600u64;
            let mut a = ExtentAllocator::from_used(0, total_range, &used).unwrap();
            let policy = match policy_pick {
                0 => Placement::FirstFit,
                1 => Placement::NearHint,
                _ => Placement::Zoned { zones: 4 },
            };
            let free_before = a.free_units();
            let want: u64 = lens.iter().sum();
            match a.alloc_batch(&lens, policy, hint) {
                Some(starts) => {
                    proptest::prop_assert_eq!(starts.len(), lens.len());
                    // Exact accounting: exactly `want` units left the pool.
                    proptest::prop_assert_eq!(a.free_units(), free_before - want);
                    // No overlap among batch extents or with prior users.
                    let mut all: Vec<(u64, u64)> = used.clone();
                    all.extend(starts.iter().zip(&lens).map(|(&s, &l)| (s, l)));
                    all.sort_unstable();
                    for w in all.windows(2) {
                        proptest::prop_assert!(
                            w[0].0 + w[0].1 <= w[1].0,
                            "extents overlap: {:?}", w
                        );
                    }
                    // Every extent stays in range.
                    for (&s, &l) in starts.iter().zip(&lens) {
                        proptest::prop_assert!(s + l <= total_range);
                    }
                    // Freeing the batch restores the pool exactly.
                    for (&s, &l) in starts.iter().zip(&lens) {
                        a.free(s, l).unwrap();
                    }
                    proptest::prop_assert_eq!(a.free_units(), free_before);
                }
                None => {
                    // Failure leaves the allocator untouched…
                    proptest::prop_assert_eq!(a.free_units(), free_before);
                    // …and the contiguous run must genuinely not fit.
                    proptest::prop_assert!(a.report().largest_hole < want);
                    // For first-fit the fallback sequence is exactly the
                    // per-extent path, so failure means that fails too.
                    if matches!(policy, Placement::FirstFit) {
                        let mut probe = a.clone();
                        let all_fit = lens.iter().all(|&len| probe.alloc(len).is_some());
                        proptest::prop_assert!(
                            !all_fit,
                            "batch failed but per-extent first-fit fits"
                        );
                    }
                }
            }
        }

        /// When no contiguous run fits but the pieces do, the batch still
        /// succeeds — the per-extent fallback engages.
        #[test]
        fn alloc_batch_survives_fragmentation(
            n in 2usize..8,
        ) {
            // n holes of exactly 10 units, separated by 1-unit used gaps:
            // no run of 20+ exists, but n tens fit.
            let mut used = Vec::new();
            for i in 0..n as u64 {
                used.push((10 + i * 11, 1));
            }
            let end = 10 + n as u64 * 11;
            let mut a = ExtentAllocator::from_used(0, end, &used).unwrap();
            let lens = vec![10u64; n];
            proptest::prop_assert!(a.clone().alloc(20).is_none());
            let starts = a.alloc_batch(&lens, Placement::FirstFit, 0);
            proptest::prop_assert!(starts.is_some(), "fallback must engage");
            // n + 1 holes of 10 existed; the batch consumed n of them.
            proptest::prop_assert_eq!(a.free_units(), 10);
        }
    }
}
