//! Sharding the Bullet service over N independent server instances.
//!
//! The paper scales the Bullet server by making one machine fast; this
//! module scales it *out*.  Ports are location-independent (§2.1), so N
//! instances can share one service port and one capability-protection
//! key: any instance can verify any capability minted for the service,
//! provided it holds the object's inode.  What partitions the service is
//! object-number ownership — [`amoeba_cap::shard_of`] maps every object
//! number to its home shard, and each instance's inode free list is
//! striped ([`crate::table::InodeTable::set_stripe`]) so it only ever
//! mints object numbers that hash back to itself.
//!
//! Pieces:
//!
//! * [`ShardSlot`] — a server's `(index, count)` position in the set,
//!   carried in [`crate::BulletConfig::shard`];
//! * [`BulletShards`] — the assembled set: validated construction, the
//!   rebalance protocol (export → adopt → retire, reusing the recovery
//!   machinery's dictated-slot [`crate::server::BulletServer::adopt_object`]
//!   install path), and whole-set accounting used by the ABL18 ablation
//!   to prove that a rebalance preserves every live byte.
//!
//! Request routing lives one layer up, in `amoeba_rpc::ShardRouter` —
//! this module is the storage side of the split.

use std::sync::Arc;

use crate::counters;
use crate::server::{BulletConfig, BulletServer};
use crate::BulletError;

/// A server's position in a shard set: stripe `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlot {
    /// This server's stripe index, `< count`.
    pub index: u32,
    /// Total number of shards in the set.
    pub count: u32,
}

impl ShardSlot {
    /// The single-server layout: stripe 0 of 1.  Leaves the inode free
    /// list untouched, so an unsharded server is bit-for-bit the
    /// pre-sharding behaviour.
    pub fn solo() -> ShardSlot {
        ShardSlot { index: 0, count: 1 }
    }

    /// Slot `index` of a `count`-wide set.
    ///
    /// # Panics
    ///
    /// If `count > 1` and `index >= count` — a slot outside the set
    /// could never be routed to.
    pub fn new(index: u32, count: u32) -> ShardSlot {
        assert!(
            count <= 1 || index < count,
            "shard slot {index} outside a set of {count}"
        );
        ShardSlot { index, count }
    }

    /// Whether object number `obj` hashes home to this slot.
    pub fn owns(&self, obj: u32) -> bool {
        amoeba_cap::shard_of(obj, self.count) == self.index
    }
}

impl Default for ShardSlot {
    fn default() -> ShardSlot {
        ShardSlot::solo()
    }
}

/// A validated set of N Bullet server instances sharing one service
/// port, each owning its own stripe of the object-number space (plus its
/// own disks, cache, scheduler, log, and telemetry).
pub struct BulletShards {
    shards: Vec<Arc<BulletServer>>,
}

impl BulletShards {
    /// Assembles a shard set from already-running instances.
    ///
    /// # Errors
    ///
    /// [`BulletError::Corrupt`] if the set is empty, the instances
    /// disagree on the service port, or instance `i` is not configured
    /// as slot `(i, n)`.
    pub fn new(shards: Vec<Arc<BulletServer>>) -> Result<BulletShards, BulletError> {
        if shards.is_empty() {
            return Err(BulletError::Corrupt("empty shard set".into()));
        }
        let n = shards.len() as u32;
        let port = shards[0].port();
        for (i, s) in shards.iter().enumerate() {
            if s.port() != port {
                return Err(BulletError::Corrupt(format!(
                    "shard {i} answers a different port — one service, one port"
                )));
            }
            let want = ShardSlot::new(i as u32, n);
            if s.shard_slot() != want {
                return Err(BulletError::Corrupt(format!(
                    "shard {i} configured as slot ({}, {}), expected ({}, {})",
                    s.shard_slot().index,
                    s.shard_slot().count,
                    want.index,
                    want.count
                )));
            }
        }
        Ok(BulletShards { shards })
    }

    /// Formats `count` fresh instances from `base`, each on its own
    /// `replicas`-way mirrored RAM disks, sharing `base`'s port, clock,
    /// and protection key, with the shard slot set per instance.
    ///
    /// # Errors
    ///
    /// As [`BulletServer::format`](crate::server::BulletServer::format).
    pub fn format(
        base: &BulletConfig,
        count: u32,
        replicas: usize,
    ) -> Result<BulletShards, BulletError> {
        let mut shards = Vec::with_capacity(count as usize);
        for i in 0..count.max(1) {
            let mut cfg = base.clone();
            cfg.shard = ShardSlot::new(i, count.max(1));
            shards.push(Arc::new(BulletServer::format(cfg, replicas)?));
        }
        BulletShards::new(shards)
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`.
    ///
    /// # Panics
    ///
    /// If `i` is out of range.
    pub fn shard(&self, i: usize) -> &Arc<BulletServer> {
        &self.shards[i]
    }

    /// Iterates over the shards in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<BulletServer>> {
        self.shards.iter()
    }

    /// Moves one object from shard `from` to shard `to`: export the
    /// payload and check random, install them at the *same* object
    /// number on the destination (so every capability minted before the
    /// move keeps verifying), then retire the source copy.  Durable on
    /// every destination replica before the source copy is touched — a
    /// crash between adopt and retire leaves a harmless extra copy, never
    /// a lost byte.  Bumps [`counters::SHARD_REBALANCE_EXTENTS`] on the
    /// destination.
    ///
    /// The caller must re-point routing (the router's override map) at
    /// `to` afterwards; this type only moves the bytes.
    ///
    /// # Errors
    ///
    /// [`BulletError::NotFound`] if `idx` is not live on `from`;
    /// [`BulletError::Corrupt`] if it is already live on `to` or the
    /// shard indices are out of range; disk errors from any leg.
    pub fn rebalance(&self, from: usize, to: usize, idx: u32) -> Result<(), BulletError> {
        if from >= self.shards.len() || to >= self.shards.len() {
            return Err(BulletError::Corrupt(format!(
                "rebalance {from} -> {to} outside a set of {}",
                self.shards.len()
            )));
        }
        if from == to {
            return Ok(());
        }
        let src = &self.shards[from];
        let dst = &self.shards[to];
        let (random, data) = src.export_object(idx)?;
        dst.adopt_object(idx, random, data)?;
        src.retire_object(idx)?;
        dst.stats().incr(counters::SHARD_REBALANCE_EXTENTS);
        Ok(())
    }

    /// Live object numbers on shard `i`, derived from its administrative
    /// capability enumeration.
    pub fn live_indices(&self, i: usize) -> Vec<u32> {
        self.shards[i]
            .list_live_caps()
            .into_iter()
            .map(|c| c.object.value())
            .collect()
    }

    /// Total live files across the set.
    pub fn total_live_files(&self) -> usize {
        self.shards.iter().map(|s| s.live_files()).sum()
    }

    /// Total live bytes across the set.
    ///
    /// # Errors
    ///
    /// Disk errors reading a cold extent.
    pub fn total_live_bytes(&self) -> Result<u64, BulletError> {
        let mut total = 0u64;
        for i in 0..self.shards.len() {
            for idx in self.live_indices(i) {
                let (_, data) = self.shards[i].export_object(idx)?;
                total += data.len() as u64;
            }
        }
        Ok(total)
    }

    /// A placement-independent digest of every live byte in the set: the
    /// XOR of one FNV-1a digest per object over `index ‖ length ‖ bytes`.
    /// XOR makes the fold order- and placement-independent, so the digest
    /// is unchanged by *which shard* holds an object — exactly the
    /// property a rebalance must preserve and the ABL18 invariant checks.
    ///
    /// # Errors
    ///
    /// Disk errors reading a cold extent.
    pub fn live_digest(&self) -> Result<u64, BulletError> {
        let mut acc = 0u64;
        for i in 0..self.shards.len() {
            for idx in self.live_indices(i) {
                let (_, data) = self.shards[i].export_object(idx)?;
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                let mut eat = |b: u8| {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                };
                idx.to_le_bytes().into_iter().for_each(&mut eat);
                (data.len() as u64)
                    .to_le_bytes()
                    .into_iter()
                    .for_each(&mut eat);
                data.iter().copied().for_each(&mut eat);
                acc ^= h;
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn set(count: u32) -> BulletShards {
        BulletShards::format(&BulletConfig::small_test(), count, 2).unwrap()
    }

    #[test]
    fn solo_slot_changes_nothing() {
        let server = BulletServer::format(BulletConfig::small_test(), 2).unwrap();
        assert_eq!(server.shard_slot(), ShardSlot::solo());
        let cap = server.create(Bytes::from_static(b"unsharded"), 1).unwrap();
        assert_eq!(server.read(&cap).unwrap(), Bytes::from_static(b"unsharded"));
    }

    #[test]
    fn striped_shards_mint_only_their_own_object_numbers() {
        let shards = set(4);
        for i in 0..4usize {
            for n in 0..8u32 {
                let cap = shards
                    .shard(i)
                    .create(Bytes::from(format!("s{i}f{n}")), 1)
                    .unwrap();
                assert_eq!(
                    amoeba_cap::shard_of(cap.object.value(), 4),
                    i as u32,
                    "shard {i} minted object {} which hashes elsewhere",
                    cap.object
                );
            }
        }
        assert_eq!(shards.total_live_files(), 32);
    }

    #[test]
    fn rebalance_preserves_the_capability_and_the_bytes() {
        let shards = set(2);
        let payload = Bytes::from(vec![0xabu8; 3000]);
        let cap = shards.shard(0).create(payload.clone(), 1).unwrap();
        let idx = cap.object.value();
        let before = shards.live_digest().unwrap();

        shards.rebalance(0, 1, idx).unwrap();

        // The pre-move capability verifies on the destination…
        assert_eq!(shards.shard(1).read(&cap).unwrap(), payload);
        // …the source no longer knows the object…
        assert!(matches!(
            shards.shard(0).read(&cap),
            Err(BulletError::NotFound)
        ));
        // …and no live byte moved anywhere but between shards.
        assert_eq!(shards.live_digest().unwrap(), before);
        assert_eq!(
            shards
                .shard(1)
                .stats()
                .get(counters::SHARD_REBALANCE_EXTENTS),
            1
        );
    }

    #[test]
    fn retired_slot_is_never_reminted_by_the_source() {
        let shards = set(2);
        let cap = shards
            .shard(0)
            .create(Bytes::from_static(b"mv"), 1)
            .unwrap();
        let idx = cap.object.value();
        shards.rebalance(0, 1, idx).unwrap();
        // Exhaust the source's creates: none may reuse the migrated
        // object number, which would collide with the destination copy.
        for n in 0..40u32 {
            let c = shards
                .shard(0)
                .create(Bytes::from(format!("post-move {n}")), 1)
                .unwrap();
            assert_ne!(c.object.value(), idx, "source re-minted a migrated slot");
        }
    }

    #[test]
    fn rebalance_round_trip_restores_the_source_copy() {
        let shards = set(2);
        let payload = Bytes::from_static(b"there and back again");
        let cap = shards.shard(0).create(payload.clone(), 1).unwrap();
        let idx = cap.object.value();
        shards.rebalance(0, 1, idx).unwrap();
        shards.rebalance(1, 0, idx).unwrap();
        assert_eq!(shards.shard(0).read(&cap).unwrap(), payload);
        assert!(shards.shard(1).read(&cap).is_err());
    }

    #[test]
    fn mismatched_slots_are_rejected() {
        let mut cfg = BulletConfig::small_test();
        cfg.shard = ShardSlot::new(1, 4); // claims slot 1 but sits at 0
        let s = Arc::new(BulletServer::format(cfg, 1).unwrap());
        assert!(BulletShards::new(vec![s]).is_err());
        assert!(BulletShards::new(Vec::new()).is_err());
    }
}
