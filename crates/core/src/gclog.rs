//! Group-commit log records: format, checksums, and the replay scan.
//!
//! A batch of concurrent CREATEs is committed as **one** sequential log
//! record in the log window at the tail of the data area (bookkeeping in
//! [`amoeba_disk::LogWindow`]).  A record is:
//!
//! ```text
//! block 0 (header block):
//!   0..4    magic  "BLG1"
//!   4..12   seq             u64  — strictly increasing along the chain
//!   12..16  payload_blocks  u32  — blocks following the header
//!   16..20  file_count      u32  — entries in this record
//!   20..24  crc             u32  — CRC-32 of the whole record, crc field
//!                                  zeroed (checksum-delimited, like the
//!                                  ABL13 torn-inode scan)
//!   24..    file_count × 16-byte entries:
//!             0..4   inode index   u32
//!             4..12  random        u64  (the capability's 48-bit check)
//!             12..16 size_bytes    u32
//! blocks 1..=payload_blocks:
//!   each file's payload, block-aligned, in entry order; a file of
//!   `size_bytes` occupies the same number of blocks its inode will claim
//!   (`ceil(size/bs)`, minimum 1), so the file table can point straight
//!   into the log region and reads work unchanged.
//! ```
//!
//! An **empty** record (`file_count == 0`, `payload_blocks == 0`) is a
//! *seal*: it advances the chain so that no earlier record will be
//! replayed — appended before deleting a file that the newest record
//! created (see `amoeba_disk::log` for why).
//!
//! Replay walks the chain from the window start, accepting records while
//! the magic and CRC check out, the record fits the window, and the
//! sequence number strictly increases (a post-reset chain overwrites the
//! window head, so stale old records past the new tail carry *lower*
//! sequence numbers and the walk stops).  Only the **last** record's
//! entries are candidates for reinstallation — the commit protocol keeps
//! the log mutex held until a record's inode blocks are durable, so every
//! earlier record's files are already in the on-disk table.

use crate::layout::Inode;

/// Magic bytes opening every log record header.
pub const LOG_MAGIC: [u8; 4] = *b"BLG1";

/// Fixed header bytes before the entry array.
pub const HEADER_BYTES: usize = 24;

/// Bytes per file entry in the header block.
pub const ENTRY_BYTES: usize = 16;

const OFF_SEQ: usize = 4;
const OFF_PAYLOAD_BLOCKS: usize = 12;
const OFF_FILE_COUNT: usize = 16;
const OFF_CRC: usize = 20;

/// One file of a committed batch, as named by the record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Inode table slot the file was published under.
    pub index: u32,
    /// The capability's random check field (48 significant bits).
    pub random: u64,
    /// File length in bytes.
    pub size_bytes: u32,
}

/// A record accepted by [`scan_chain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Absolute block of the header.
    pub at: u64,
    /// The record's sequence number.
    pub seq: u64,
    /// Files committed by this record (empty for a seal).
    pub entries: Vec<LogEntry>,
}

/// Result of walking the record chain in a log window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainScan {
    /// Every valid record, in chain order.
    pub records: Vec<LogRecord>,
    /// First block past the last valid record — where appends resume.
    pub head: u64,
    /// Sequence number of the last valid record (0 for an empty chain).
    pub last_seq: u64,
}

/// CRC-32 (IEEE, reflected polynomial `0xEDB88320`) — bit-serial, no
/// table, no dependency; the log writes are block-sized so this is not a
/// hot path.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// How many file entries fit in one header block.
pub fn max_entries(block_size: usize) -> usize {
    block_size.saturating_sub(HEADER_BYTES) / ENTRY_BYTES
}

/// Blocks a file's payload occupies inside a record — identical to the
/// blocks its inode claims, so a table entry can point into the log.
pub fn payload_blocks_for(block_size: u64, size_bytes: u32) -> u64 {
    Inode {
        random: 1,
        index: 0,
        start_block: 0,
        size_bytes,
    }
    .blocks(block_size as u32)
}

/// Total blocks (header included) a record for files of these sizes
/// occupies on disk.
pub fn record_blocks(block_size: u64, sizes: &[u32]) -> u64 {
    1 + sizes
        .iter()
        .map(|&s| payload_blocks_for(block_size, s))
        .sum::<u64>()
}

/// Assembles a complete, checksummed record image.
///
/// `entries[i]` describes `payloads[i]`; payloads are padded to block
/// boundaries.  An empty batch produces a one-block seal record.
///
/// # Panics
///
/// Panics if the entry and payload counts differ, a payload is longer
/// than its entry's `size_bytes` claims in blocks, or more entries are
/// given than [`max_entries`] allows — all caller bugs.
pub fn encode_record(
    block_size: usize,
    seq: u64,
    entries: &[LogEntry],
    payloads: &[&[u8]],
) -> Vec<u8> {
    assert_eq!(entries.len(), payloads.len(), "entry/payload mismatch");
    assert!(
        entries.len() <= max_entries(block_size),
        "batch exceeds header capacity"
    );
    let bs = block_size as u64;
    let payload_blocks: u64 = entries
        .iter()
        .map(|e| payload_blocks_for(bs, e.size_bytes))
        .sum();
    let total = (1 + payload_blocks) as usize * block_size;
    let mut buf = vec![0u8; total];

    buf[..4].copy_from_slice(&LOG_MAGIC);
    buf[OFF_SEQ..OFF_SEQ + 8].copy_from_slice(&seq.to_be_bytes());
    buf[OFF_PAYLOAD_BLOCKS..OFF_PAYLOAD_BLOCKS + 4]
        .copy_from_slice(&(payload_blocks as u32).to_be_bytes());
    buf[OFF_FILE_COUNT..OFF_FILE_COUNT + 4].copy_from_slice(&(entries.len() as u32).to_be_bytes());

    let mut off = HEADER_BYTES;
    for e in entries {
        buf[off..off + 4].copy_from_slice(&e.index.to_be_bytes());
        buf[off + 4..off + 12].copy_from_slice(&e.random.to_be_bytes());
        buf[off + 12..off + 16].copy_from_slice(&e.size_bytes.to_be_bytes());
        off += ENTRY_BYTES;
    }

    let mut cursor = block_size;
    for (e, p) in entries.iter().zip(payloads) {
        let span = payload_blocks_for(bs, e.size_bytes) as usize * block_size;
        assert!(p.len() <= span, "payload longer than its block span");
        buf[cursor..cursor + p.len()].copy_from_slice(p);
        cursor += span;
    }

    let crc = crc32(&buf);
    buf[OFF_CRC..OFF_CRC + 4].copy_from_slice(&crc.to_be_bytes());
    buf
}

/// A parsed (but not yet checksum-verified) record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// The record's sequence number.
    pub seq: u64,
    /// Blocks following the header block.
    pub payload_blocks: u32,
    /// File entries in the header block.
    pub file_count: u32,
    /// Stored CRC-32 of the whole record (crc field zeroed).
    pub crc: u32,
}

/// Parses a header block; `None` if the magic is absent or the entry
/// count cannot fit the block.
pub fn decode_header(block_size: usize, block: &[u8]) -> Option<RecordHeader> {
    if block.len() < HEADER_BYTES || block[..4] != LOG_MAGIC {
        return None;
    }
    let seq = u64::from_be_bytes(block[OFF_SEQ..OFF_SEQ + 8].try_into().ok()?);
    let payload_blocks = u32::from_be_bytes(
        block[OFF_PAYLOAD_BLOCKS..OFF_PAYLOAD_BLOCKS + 4]
            .try_into()
            .ok()?,
    );
    let file_count = u32::from_be_bytes(block[OFF_FILE_COUNT..OFF_FILE_COUNT + 4].try_into().ok()?);
    let crc = u32::from_be_bytes(block[OFF_CRC..OFF_CRC + 4].try_into().ok()?);
    if file_count as usize > max_entries(block_size) {
        return None;
    }
    Some(RecordHeader {
        seq,
        payload_blocks,
        file_count,
        crc,
    })
}

/// Extracts the entry array from a record image whose header was already
/// accepted.
pub fn decode_entries(image: &[u8], file_count: u32) -> Vec<LogEntry> {
    let mut entries = Vec::with_capacity(file_count as usize);
    let mut off = HEADER_BYTES;
    for _ in 0..file_count {
        entries.push(LogEntry {
            index: u32::from_be_bytes(image[off..off + 4].try_into().unwrap()),
            random: u64::from_be_bytes(image[off + 4..off + 12].try_into().unwrap()),
            size_bytes: u32::from_be_bytes(image[off + 12..off + 16].try_into().unwrap()),
        });
        off += ENTRY_BYTES;
    }
    entries
}

/// Verifies a full record image against its stored checksum.
pub fn verify_record(image: &[u8]) -> bool {
    if image.len() < HEADER_BYTES {
        return false;
    }
    let stored = u32::from_be_bytes(image[OFF_CRC..OFF_CRC + 4].try_into().unwrap());
    let mut scratch = image.to_vec();
    scratch[OFF_CRC..OFF_CRC + 4].fill(0);
    crc32(&scratch) == stored
}

/// Block offset (relative to the record's header block) where each
/// entry's payload starts.
pub fn entry_payload_offsets(block_size: u64, entries: &[LogEntry]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(entries.len());
    let mut cursor = 1u64;
    for e in entries {
        offsets.push(cursor);
        cursor += payload_blocks_for(block_size, e.size_bytes);
    }
    offsets
}

/// Walks the record chain of the window `[start, end)`.
///
/// `read_block(abs_block, buf)` fills `buf` (one block) and returns
/// `false` on device error — which, like any malformed record, simply
/// ends the chain.  A torn tail (bad magic, short window, non-monotone
/// sequence, or checksum mismatch) is dropped whole: a committed batch is
/// never half-applied.
pub fn scan_chain(
    block_size: usize,
    start: u64,
    end: u64,
    read_block: &mut dyn FnMut(u64, &mut [u8]) -> bool,
) -> ChainScan {
    let mut records = Vec::new();
    let mut at = start;
    let mut last_seq = 0u64;
    let mut block = vec![0u8; block_size];
    loop {
        if at >= end {
            break;
        }
        if !read_block(at, &mut block) {
            break;
        }
        let Some(hdr) = decode_header(block_size, &block) else {
            break;
        };
        if hdr.seq <= last_seq {
            break;
        }
        let span = 1 + u64::from(hdr.payload_blocks);
        if at + span > end {
            break;
        }
        let mut image = vec![0u8; span as usize * block_size];
        image[..block_size].copy_from_slice(&block);
        let mut ok = true;
        for i in 1..span {
            let dst = i as usize * block_size;
            if !read_block(at + i, &mut image[dst..dst + block_size]) {
                ok = false;
                break;
            }
        }
        if !ok || !verify_record(&image) {
            break;
        }
        records.push(LogRecord {
            at,
            seq: hdr.seq,
            entries: decode_entries(&image, hdr.file_count),
        });
        last_seq = hdr.seq;
        at += span;
    }
    ChainScan {
        records,
        head: at,
        last_seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: usize = 512;

    fn reader(region: &[u8]) -> impl FnMut(u64, &mut [u8]) -> bool + '_ {
        move |blk, buf: &mut [u8]| {
            let off = blk as usize * BS;
            if off + BS > region.len() {
                return false;
            }
            buf.copy_from_slice(&region[off..off + BS]);
            true
        }
    }

    fn sample_entries() -> Vec<LogEntry> {
        vec![
            LogEntry {
                index: 3,
                random: 0xABCD_EF01_2345,
                size_bytes: 700,
            },
            LogEntry {
                index: 9,
                random: 0x1111_2222_3333,
                size_bytes: 10,
            },
        ]
    }

    #[test]
    fn record_round_trips() {
        let entries = sample_entries();
        let a = vec![7u8; 700];
        let b = vec![9u8; 10];
        let img = encode_record(BS, 5, &entries, &[&a, &b]);
        // 1 header + 2 blocks (700 B) + 1 block (10 B).
        assert_eq!(img.len(), 4 * BS);
        assert!(verify_record(&img));
        let hdr = decode_header(BS, &img[..BS]).unwrap();
        assert_eq!(hdr.seq, 5);
        assert_eq!(hdr.payload_blocks, 3);
        assert_eq!(hdr.file_count, 2);
        assert_eq!(decode_entries(&img, 2), entries);
        assert_eq!(entry_payload_offsets(BS as u64, &entries), vec![1, 3]);
        // Payloads land block-aligned in entry order.
        assert_eq!(&img[BS..BS + 700], &a[..]);
        assert_eq!(&img[3 * BS..3 * BS + 10], &b[..]);
    }

    #[test]
    fn a_flipped_byte_fails_verification() {
        let entries = sample_entries();
        let a = vec![7u8; 700];
        let b = vec![9u8; 10];
        let mut img = encode_record(BS, 5, &entries, &[&a, &b]);
        img[2 * BS + 100] ^= 0x40; // corrupt mid-payload
        assert!(!verify_record(&img));
    }

    #[test]
    fn seal_record_is_one_empty_block() {
        let img = encode_record(BS, 9, &[], &[]);
        assert_eq!(img.len(), BS);
        assert!(verify_record(&img));
        let hdr = decode_header(BS, &img).unwrap();
        assert_eq!((hdr.file_count, hdr.payload_blocks), (0, 0));
    }

    #[test]
    fn capacity_matches_the_layout() {
        assert_eq!(max_entries(512), (512 - 24) / 16); // 30
        assert_eq!(max_entries(1024), (1024 - 24) / 16); // 62
    }

    #[test]
    fn chain_scan_accepts_valid_prefix_and_drops_torn_tail() {
        let e1 = vec![LogEntry {
            index: 1,
            random: 42,
            size_bytes: 512,
        }];
        let p1 = vec![1u8; 512];
        let e2 = vec![LogEntry {
            index: 2,
            random: 43,
            size_bytes: 100,
        }];
        let p2 = vec![2u8; 100];
        let r1 = encode_record(BS, 1, &e1, &[&p1]);
        let r2 = encode_record(BS, 2, &e2, &[&p2]);
        let mut r3 = encode_record(
            BS,
            3,
            &[LogEntry {
                index: 4,
                random: 44,
                size_bytes: 50,
            }],
            &[&[5u8; 50]],
        );
        r3[BS + 7] ^= 0xFF; // torn: payload corrupted after the header landed

        let mut region = Vec::new();
        region.extend_from_slice(&r1);
        region.extend_from_slice(&r2);
        region.extend_from_slice(&r3);
        region.resize(16 * BS, 0);

        let scan = scan_chain(BS, 0, 16, &mut reader(&region));
        assert_eq!(scan.records.len(), 2, "torn third record dropped whole");
        assert_eq!(scan.last_seq, 2);
        // Head resumes right after the last *valid* record.
        assert_eq!(scan.head, (r1.len() + r2.len()) as u64 / BS as u64);
        assert_eq!(scan.records[1].entries, e2);
    }

    #[test]
    fn chain_scan_stops_at_stale_lower_seq_records() {
        // Simulate a reset: a fresh seq-10 record overwrote the window
        // head, but a stale seq-3 record survives right behind it.
        let fresh = encode_record(
            BS,
            10,
            &[LogEntry {
                index: 7,
                random: 1,
                size_bytes: 10,
            }],
            &[&[3u8; 10]],
        );
        let stale = encode_record(
            BS,
            3,
            &[LogEntry {
                index: 8,
                random: 2,
                size_bytes: 10,
            }],
            &[&[4u8; 10]],
        );
        let mut region = Vec::new();
        region.extend_from_slice(&fresh);
        region.extend_from_slice(&stale);
        region.resize(8 * BS, 0);

        let scan = scan_chain(BS, 0, 8, &mut reader(&region));
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.last_seq, 10);
        assert_eq!(scan.head, 2);
    }

    #[test]
    fn chain_scan_rejects_records_overflowing_the_window() {
        // A header claiming more payload than the window holds is torn.
        let good = encode_record(
            BS,
            1,
            &[LogEntry {
                index: 1,
                random: 5,
                size_bytes: 10,
            }],
            &[&[1u8; 10]],
        );
        let mut huge = encode_record(BS, 2, &[], &[]);
        huge[OFF_PAYLOAD_BLOCKS..OFF_PAYLOAD_BLOCKS + 4].copy_from_slice(&100u32.to_be_bytes());
        let crc_fix = {
            let mut s = huge.clone();
            s[OFF_CRC..OFF_CRC + 4].fill(0);
            crc32(&s)
        };
        huge[OFF_CRC..OFF_CRC + 4].copy_from_slice(&crc_fix.to_be_bytes());

        let mut region = Vec::new();
        region.extend_from_slice(&good);
        region.extend_from_slice(&huge);
        region.resize(4 * BS, 0);

        let scan = scan_chain(BS, 0, 4, &mut reader(&region));
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.head, 2, "oversized record ends the chain");
    }

    #[test]
    fn empty_window_scans_empty() {
        let region = vec![0u8; 4 * BS];
        let scan = scan_chain(BS, 0, 4, &mut reader(&region));
        assert!(scan.records.is_empty());
        assert_eq!((scan.head, scan.last_seq), (0, 0));
    }
}
