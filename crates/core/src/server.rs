//! The Bullet server proper: operations, durability, recovery, compaction.
//!
//! # Concurrency model
//!
//! The server state is split into independently locked components so that
//! overlapping requests from many client threads make progress together
//! (see `DESIGN.md`, "Concurrency model"):
//!
//! * `table: RwLock<InodeTable>` — inode lookups (capability verification,
//!   reads) take the shared guard; only create/delete/cache-index updates
//!   take the exclusive one.
//! * `alloc: Mutex<AllocState>` — the disk extent free list and the inode
//!   random-number generator, held only for the few-microsecond reserve /
//!   free operations, never across I/O.
//! * `cache: RwLock<FileCache>` — cache-hit reads run under the *read*
//!   guard: [`FileCache::get`] refreshes LRU ages and hit counters through
//!   atomics, so the hot path takes no exclusive lock at all.
//! * `ages: Mutex<HashMap<..>>` — the touch/age garbage-collection state.
//! * `inflight` — a per-inode busy table.  All disk I/O for a file
//!   (create write-through, miss loads, delete/expiry inode zeroing,
//!   compaction moves) happens under that file's in-flight guard *only*,
//!   keeping create/delete/read/compaction of the same file serialized
//!   while different files overlap freely.
//! * `maintenance: RwLock<()>` — compaction takes the exclusive guard;
//!   create/delete/expiry take the shared one; reads never touch it.
//!
//! * `log: Option<Mutex<LogState>>` — the group-commit log window (when
//!   [`BulletConfig::log_blocks`] > 0).  Held across the *entire* commit
//!   of a batch — record append, table publish, inode write-through — so
//!   that a record's inodes are durable before the next record appends;
//!   that invariant is what lets crash replay reinstall only the last
//!   record of the chain.
//!
//! Lock order (outer to inner): `maintenance` → `log` → `inflight` →
//! `table` → `alloc` → `cache` → `ages`, with `inode_io` taken only
//! around inode block write-through (acquiring `table.read` inside).  A
//! path may skip levels but never acquires a lock while holding one
//! further in.  Every acquisition is counted in
//! [`BulletServer::lock_stats`], with `lock_contended_*` counters for
//! acquisitions that had to wait (the log mutex is exempt: group commits
//! are serialized by design, so its contention is the batching working).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use amoeba_cap::{AmoebaScheme, Capability, CheckScheme, MacScheme, ObjNum, Port, Rights};
use amoeba_disk::{BlockDevice, LogWindow, MirroredDisk, RamDisk, SimDisk, WormDisk};
use amoeba_rpc::StreamWire;
use amoeba_sim::{
    AttrValue, CpuProfile, DetRng, DiskProfile, Nanos, Pipeline, SimClock, SpanGuard, Stats,
    Telemetry, TelemetryConfig, TraceConfig, Tracer,
};

use crate::accounting::ClientAccounting;
use crate::cache::{EvictionPolicy, FileCache};
use crate::counters;
use crate::freelist::ExtentAllocator;
use crate::gclog;
use crate::groupcommit::{BatchCaps, GroupCommitter};
use crate::layout::{DiskDescriptor, Inode};
use crate::maintenance::{self, JobTick, MaintenanceJob};
use crate::table::{InodeTable, RepairPolicy};
use crate::BulletError;

/// Configuration of a Bullet server instance.
#[derive(Debug, Clone)]
pub struct BulletConfig {
    /// The service port the server answers on.
    pub port: Port,
    /// Minimum number of inode slots to format.
    pub min_inodes: u32,
    /// RAM cache capacity in bytes ("all of the server's remaining memory
    /// will be used for file caching").
    pub cache_capacity: u64,
    /// Number of rnode slots.
    pub rnode_slots: usize,
    /// Disk sector size (used by the convenience constructors that build
    /// their own disks).
    pub block_size: u32,
    /// Blocks per disk (convenience constructors).
    pub disk_blocks: u64,
    /// The shared simulated clock work is charged to.
    pub clock: SimClock,
    /// CPU cost model for request service and memory copies.
    pub cpu: CpuProfile,
    /// Seed of the capability-protection key (stable across restarts, as
    /// the real server's key lives on its disk).
    pub scheme_seed: u64,
    /// Which check-field protection scheme to run (see `amoeba_cap::check`).
    pub scheme: SchemeKind,
    /// Seed of the inode random-number generator.
    pub rng_seed: u64,
    /// What to do with inodes that fail the start-up consistency scan.
    pub repair: RepairPolicy,
    /// Initial age for the touch/age garbage-collection protocol: a file
    /// survives this many [`BulletServer::age_all`] rounds without a
    /// [`BulletServer::touch`] before expiring.
    pub max_age: u32,
    /// Cache eviction policy (LRU, as in the paper, by default).
    pub eviction: EvictionPolicy,
    /// Victim-selection RNG seed for [`EvictionPolicy::Random`] (the
    /// other policies ignore it).
    pub eviction_seed: u64,
    /// Streaming transfer segment size in bytes.  Effective segments are
    /// clamped to a whole number of disk blocks (minimum one block).
    pub segment_size: u32,
    /// Overlap disk and wire time segment by segment on multi-segment
    /// transfers (cold reads towards the wire, creates from it).  When
    /// off, transfers are staged whole — disk then wire — as the seed
    /// implementation did.
    pub pipeline: bool,
    /// On a *cold* partial read ([`BulletServer::read_section`]), how many
    /// extra segments to load beyond those the request needs.
    /// `u32::MAX` (the default) loads — and caches — the whole file, the
    /// original whole-file semantics; a smaller value bounds the load to
    /// the requested segments plus this much forward readahead, serving
    /// the section without populating the whole-file cache.
    pub readahead_segments: u32,
    /// Where new extents land in the data area (see
    /// [`Placement`](crate::Placement)).  First-fit, the default, is the
    /// paper's strategy; the other policies cooperate with the
    /// seek-aware disk scheduler by clustering new extents near the arm.
    pub placement: crate::Placement,
    /// Span tracing (see [`amoeba_sim::trace`]).  [`TraceConfig::off`],
    /// the default, is free: the data path never touches the clock or
    /// allocates on its behalf.  [`TraceConfig::enabled`] records a span
    /// tree of every operation — timestamps come from the simulated
    /// clock, so the recorded times are the charged times, exactly.
    pub trace: TraceConfig,
    /// Blocks reserved at the tail of the data area as the group-commit
    /// log region.  `0` (the default) disables the log entirely: every
    /// create takes the direct per-file path, byte-identical to earlier
    /// releases.  When enabled, concurrent small creates are batched into
    /// single sequential, checksummed, fully mirrored log appends, and
    /// idle-time maintenance later migrates each file to its contiguous
    /// `Placement`-chosen home.
    pub log_blocks: u64,
    /// Maximum files per group-commit record (additionally clamped to
    /// what one record header block can name).
    pub log_batch_files: usize,
    /// Maximum total payload bytes per group-commit record; also the
    /// largest single create eligible for the log path — bigger files go
    /// direct, where the pipelined path already amortizes their cost.
    pub log_batch_bytes: u64,
    /// Simulated linger window charged once per group-commit flush: the
    /// time the flush leader waits for straggler creates to join the
    /// batch before issuing the append.
    pub log_linger: Nanos,
    /// Time-series telemetry (see [`amoeba_sim::timeseries`]).
    /// [`TelemetryConfig::off`], the default, is free — the data path
    /// never reads the clock or allocates for it, so the timeline is
    /// bit-identical to a build without telemetry.  Enabled, the server
    /// samples layer gauges (cache occupancy, allocator fragmentation,
    /// log residency, group-commit batch occupancy, per-disk queue depth
    /// and arm position) into fixed-capacity ring buffers once per
    /// period, readable live through the `MONITOR` RPC.
    pub telemetry: TelemetryConfig,
    /// Per-client resource accounting keyed by the at-most-once
    /// transaction tag (see [`crate::accounting`]).  Off by default;
    /// enabled, the RPC dispatcher charges each request's bytes, I/Os,
    /// cache hits and retries to its client id.
    pub accounting: ClientAccounting,
    /// This server's slot in a shard set (see [`crate::shard`]).
    /// [`crate::shard::ShardSlot::solo`], the default, is the
    /// single-server layout and
    /// changes nothing.  A real slot `(index, count)` stripes the inode
    /// free list so this instance only ever mints object numbers that
    /// [`amoeba_cap::shard_of`] routes back to it.
    pub shard: crate::shard::ShardSlot,
    /// Blocks on the WORM archive tier.  `0` (the default) disables
    /// tiering entirely — no archive device exists and the maintenance
    /// scheduler's demotion/recall jobs report zero urgency, leaving
    /// behaviour byte-identical to earlier releases.  When enabled,
    /// idle-time maintenance demotes cold files' extents onto a
    /// write-once archive device and recalls them to the fast tier after
    /// their first post-demotion read.
    pub archive_blocks: u64,
    /// Fast-tier occupancy percentage above which the demotion job
    /// engages (the tier high-water mark).  Below it cold files stay on
    /// the fast tier — there is nothing to reclaim.
    pub tier_high_water_pct: u32,
    /// Aging rounds ([`BulletServer::age_all`]) a file must survive
    /// untouched before the demotion job may consider it cold.
    pub tier_cold_age: u32,
    /// The idleness gate's request-arrival threshold: a maintenance tick
    /// preempts when more than this many foreground requests arrived
    /// since the previous tick.  `0` (the default, and the historical
    /// behaviour) preempts on any arrival at all.
    pub maint_idle_request_delta: u64,
    /// Bounded job increments one maintenance tick may perform once its
    /// idleness gate passes.  `1` (the default, and the historical
    /// behaviour) moves at most one extent per tick.
    pub maint_moves_per_tick: u32,
}

impl BulletConfig {
    /// A small configuration for unit tests and examples: 512-byte
    /// blocks, a 2 MB disk, a 1 MB cache.
    pub fn small_test() -> BulletConfig {
        BulletConfig {
            port: Port::from_u64(0xb1e7),
            min_inodes: 256,
            cache_capacity: 1 << 20,
            rnode_slots: 256,
            block_size: 512,
            disk_blocks: 4096,
            clock: SimClock::new(),
            cpu: CpuProfile::mc68020(),
            scheme_seed: 0x5eed,
            scheme: SchemeKind::Mac,
            rng_seed: 0x1a2b,
            repair: RepairPolicy::Fail,
            max_age: 8,
            eviction: EvictionPolicy::Lru,
            eviction_seed: 0,
            segment_size: 64 * 1024,
            pipeline: true,
            readahead_segments: u32::MAX,
            placement: crate::Placement::FirstFit,
            trace: TraceConfig::off(),
            log_blocks: 0,
            log_batch_files: 32,
            log_batch_bytes: 256 * 1024,
            log_linger: Nanos::from_us(250),
            telemetry: TelemetryConfig::off(),
            accounting: ClientAccounting::off(),
            shard: crate::shard::ShardSlot::solo(),
            archive_blocks: 0,
            tier_high_water_pct: 75,
            tier_cold_age: 1,
            maint_idle_request_delta: 0,
            maint_moves_per_tick: 1,
        }
    }
}

/// The capability protection scheme a server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchemeKind {
    /// The scheme the paper sketches: a server-secret MAC over
    /// (object, rights, random).  Restriction needs a server round-trip.
    #[default]
    Mac,
    /// The published Amoeba sparse-capabilities scheme: the owner
    /// capability carries the raw random number, and anyone can restrict
    /// it *client-side* through the public one-way function.
    Amoeba,
}

impl SchemeKind {
    fn build(self, seed: u64) -> Box<dyn CheckScheme> {
        match self {
            SchemeKind::Mac => Box::new(MacScheme::from_seed(seed)),
            SchemeKind::Amoeba => Box::new(AmoebaScheme::new()),
        }
    }
}

/// Disk-space allocation state: the extent free list plus the inode
/// random-number generator, both consumed by every create.  One small
/// mutex; never held across I/O.
struct AllocState {
    extents: ExtentAllocator,
    rng: DetRng,
    /// End of the most recent allocation — the arm-position proxy the
    /// placement policies aim near (the data head usually parks where the
    /// last extent write finished).
    place_hint: u64,
}

/// The group-commit log's mutable state: the append-window bookkeeping
/// plus the preallocated contiguous home of every log-resident file.
///
/// Homes are reserved at commit time — one
/// [`ExtentAllocator::alloc_batch`] call per batch, so the whole batch
/// takes the allocator lock once and (when a contiguous run exists) its
/// files will land adjacent after migration.  The map is RAM-only: after
/// a crash the migration job re-allocates homes on demand, and the
/// allocator rebuild never sees the forgotten reservations, so no free
/// space leaks across recovery.
struct LogState {
    window: LogWindow,
    homes: HashMap<u32, (u64, u64)>,
}

/// The WORM archive tier's device stack: a write-once wrapper (no exempt
/// region — the inode table stays on the fast tier) over a simulated
/// drive on the shared clock, so archive I/O charges real simulated time
/// at its own device's speed.
pub type ArchiveDevice = WormDisk<SimDisk<RamDisk>>;

/// The archive tier: the write-once device plus the recall queue —
/// archived files whose first post-demotion read scheduled a promotion
/// back to the fast tier.  The queue mutex is a leaf: it is never held
/// across another lock acquisition.
struct ArchiveState {
    dev: Arc<ArchiveDevice>,
    recall_q: Mutex<BTreeSet<u32>>,
}

/// The per-inode in-flight table: at most one request at a time may be in
/// its disk phase for any given inode.  Waiters block on a condition
/// variable; guards release and wake on drop (also on panic).
struct InflightTable {
    busy: std::sync::Mutex<std::collections::HashSet<u32>>,
    cv: std::sync::Condvar,
}

impl InflightTable {
    fn new() -> InflightTable {
        InflightTable {
            busy: std::sync::Mutex::new(std::collections::HashSet::new()),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Blocks until `idx` is free, then marks it busy.  Returns the guard
    /// and whether the caller had to wait (for the contention counters).
    fn acquire(&self, idx: u32) -> (InflightGuard<'_>, bool) {
        let mut busy = self
            .busy
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut waited = false;
        while busy.contains(&idx) {
            waited = true;
            busy = self
                .cv
                .wait(busy)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        busy.insert(idx);
        (InflightGuard { table: self, idx }, waited)
    }
}

struct InflightGuard<'a> {
    table: &'a InflightTable,
    idx: u32,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.table
            .busy
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&self.idx);
        self.table.cv.notify_all();
    }
}

/// Outcome of one [`BulletServer::compact_tick`] increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactTick {
    /// The data area is fully packed; nothing to do.
    Idle,
    /// One extent was moved; `remaining` more moves were planned (the
    /// next tick recomputes the plan, so this is an estimate that only
    /// shrinks while the server stays idle).
    Moved {
        /// Moves left in the plan this tick was taken from.
        remaining: u64,
    },
    /// Foreground traffic arrived since the last tick (or holds the
    /// maintenance lock); the tick yielded without touching the disk.
    Preempted,
}

/// One row of [`BulletServer::describe_layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutEntry {
    /// Inode index (= object number).
    pub inode: u32,
    /// First block of the file's contiguous extent.
    pub start_block: u32,
    /// Extent length in blocks.
    pub blocks: u64,
    /// File size in bytes.
    pub size_bytes: u32,
    /// True if the file currently sits in the RAM cache.
    pub cached: bool,
}

/// The Bullet file server.
///
/// Thread-safe and concurrent: operations take `&self`, and independent
/// requests overlap.  Cache-hit reads run entirely under shared locks;
/// disk I/O happens under a per-inode in-flight guard only, so slow
/// mirrored writes for one file never stall reads of another.  See the
/// module documentation for the lock hierarchy.
pub struct BulletServer {
    cfg: BulletConfig,
    scheme: Box<dyn CheckScheme>,
    storage: MirroredDisk,
    /// Copy of the immutable on-disk geometry, readable without a lock.
    desc: DiskDescriptor,
    table: RwLock<InodeTable>,
    alloc: Mutex<AllocState>,
    cache: RwLock<FileCache>,
    /// Touch/age garbage-collection ages, keyed by inode index.
    /// RAM-only: a restart resets every live file to `max_age` (generous,
    /// as the original server was).
    ages: Mutex<HashMap<u32, u32>>,
    inflight: InflightTable,
    /// The group-commit log window (`None` when `cfg.log_blocks == 0`).
    /// See the module docs for its place in the lock order.
    log: Option<Mutex<LogState>>,
    /// The create-batching coordinator feeding the log.
    gc: GroupCommitter,
    /// The WORM archive tier (`None` when `cfg.archive_blocks == 0`).
    archive: Option<ArchiveState>,
    /// Serializes inode-block write-through so that the order block
    /// images are snapshotted equals the order they reach the disks: two
    /// files sharing a control block can never clobber each other's inode
    /// on disk with a stale image.
    inode_io: Mutex<()>,
    maintenance: RwLock<()>,
    /// Foreground requests observed, ever (bumped by `charge_request`).
    /// The idle-time compactor compares it against `compact_mark` to
    /// detect arrivals since its previous tick.
    requests_seen: std::sync::atomic::AtomicU64,
    /// `requests_seen` as of the last [`BulletServer::compact_tick`].
    compact_mark: std::sync::atomic::AtomicU64,
    stats: Stats,
    locks: Stats,
    /// Clone of `cfg.trace`'s tracer, hoisted out for the hot paths.
    tracer: Tracer,
    /// Clone of `cfg.telemetry`'s handle, hoisted like the tracer.
    telemetry: Telemetry,
    /// Clone of `cfg.accounting`, hoisted like the tracer.
    accounting: ClientAccounting,
}

impl std::fmt::Debug for BulletServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BulletServer")
            .field("port", &self.cfg.port)
            .field("files", &self.table.read().live_count())
            .finish()
    }
}

impl BulletServer {
    /// Formats `storage` as an empty Bullet disk and starts a server on
    /// it.
    ///
    /// # Errors
    ///
    /// Disk errors, or [`BulletError::Corrupt`] for impossible geometry.
    pub fn format_on(
        cfg: BulletConfig,
        storage: MirroredDisk,
    ) -> Result<BulletServer, BulletError> {
        let table = InodeTable::format(&storage, cfg.min_inodes)?;
        let desc = *table.descriptor();
        let log_start = Self::check_log_geometry(&cfg, &desc)?;
        let log = match log_start {
            Some(ls) => {
                // Break any stale record chain a reused device might hold:
                // the chain can only start at the window's first block.
                storage.write_sync_k(
                    ls,
                    &vec![0u8; desc.block_size as usize],
                    storage.replica_count(),
                )?;
                Some(LogState {
                    window: LogWindow::new(ls, desc.data_end()),
                    homes: HashMap::new(),
                })
            }
            None => None,
        };
        let alloc = ExtentAllocator::new(
            desc.data_start(),
            log_start.unwrap_or_else(|| desc.data_end()),
        );
        Self::check_archive_geometry(&cfg, &desc)?;
        let archive = Self::build_archive(&cfg, desc.block_size);
        Ok(BulletServer::assemble(
            cfg,
            storage,
            table,
            alloc,
            HashMap::new(),
            log,
            archive,
        ))
    }

    /// Validates `cfg.archive_blocks` against the formatted geometry: an
    /// archived file's inode encodes its archive block as
    /// `data_end + block`, which must fit the 32-bit start field.
    fn check_archive_geometry(
        cfg: &BulletConfig,
        desc: &DiskDescriptor,
    ) -> Result<(), BulletError> {
        if cfg.archive_blocks > 0 && desc.data_end() + cfg.archive_blocks > u32::MAX as u64 {
            return Err(BulletError::Corrupt(format!(
                "archive of {} blocks overflows the inode start field",
                cfg.archive_blocks
            )));
        }
        Ok(())
    }

    /// Builds a fresh archive tier when the configuration enables one.
    /// The whole device is write-once (exempt prefix 0 — inodes stay on
    /// the fast tier), segmented at the streaming segment size so
    /// fully-burned segments can be sealed.
    fn build_archive(cfg: &BulletConfig, block_size: u32) -> Option<ArchiveState> {
        (cfg.archive_blocks > 0).then(|| ArchiveState {
            dev: Arc::new(WormDisk::with_segments(
                SimDisk::new(
                    RamDisk::new(block_size, cfg.archive_blocks),
                    cfg.clock.clone(),
                    DiskProfile::scsi_1989(),
                ),
                0,
                (cfg.segment_size as u64 / block_size as u64).max(1),
            )),
            recall_q: Mutex::new(BTreeSet::new()),
        })
    }

    /// Validates `cfg.log_blocks` against the formatted geometry and
    /// returns the log window's first block (`None` when disabled).
    fn check_log_geometry(
        cfg: &BulletConfig,
        desc: &DiskDescriptor,
    ) -> Result<Option<u64>, BulletError> {
        if cfg.log_blocks == 0 {
            return Ok(None);
        }
        let data = desc.data_end() - desc.data_start();
        if cfg.log_blocks >= data {
            return Err(BulletError::Corrupt(format!(
                "log region of {} blocks leaves no data area (data blocks: {data})",
                cfg.log_blocks
            )));
        }
        Ok(Some(desc.data_end() - cfg.log_blocks))
    }

    fn assemble(
        cfg: BulletConfig,
        storage: MirroredDisk,
        mut table: InodeTable,
        extents: ExtentAllocator,
        ages: HashMap<u32, u32>,
        log: Option<LogState>,
        archive: Option<ArchiveState>,
    ) -> BulletServer {
        // Stripe the free list before the table is published: a sharded
        // instance only ever mints object numbers that hash back to it,
        // so the stripe must be in force before the first create.
        table.set_stripe(cfg.shard.index, cfg.shard.count);
        // One tracer, shared by every layer: the cache's lookup instants,
        // the mirror's replica spans, and the server's op spans all join
        // the same tree.
        let tracer = cfg.trace.tracer().clone();
        let telemetry = cfg.telemetry.telemetry().clone();
        let accounting = cfg.accounting.clone();
        let mut cache = FileCache::with_policy_seeded(
            cfg.cache_capacity,
            cfg.rnode_slots,
            cfg.eviction,
            cfg.eviction_seed,
        );
        cache.set_tracer(tracer.clone());
        storage.set_tracer(tracer.clone());
        BulletServer {
            scheme: cfg.scheme.build(cfg.scheme_seed),
            desc: *table.descriptor(),
            table: RwLock::new(table),
            alloc: Mutex::new(AllocState {
                place_hint: extents.range().0,
                extents,
                rng: DetRng::new(cfg.rng_seed),
            }),
            cache: RwLock::new(cache),
            ages: Mutex::new(ages),
            inflight: InflightTable::new(),
            log: log.map(Mutex::new),
            gc: GroupCommitter::new(),
            archive,
            inode_io: Mutex::new(()),
            maintenance: RwLock::new(()),
            requests_seen: std::sync::atomic::AtomicU64::new(0),
            compact_mark: std::sync::atomic::AtomicU64::new(0),
            cfg,
            storage,
            stats: Stats::new(),
            locks: Stats::new(),
            tracer,
            telemetry,
            accounting,
        }
    }

    /// Convenience: formats a fresh server on `replicas` plain RAM disks
    /// sized from the configuration.
    ///
    /// # Errors
    ///
    /// As for [`format_on`](Self::format_on).
    pub fn format(cfg: BulletConfig, replicas: usize) -> Result<BulletServer, BulletError> {
        let disks: Vec<Arc<dyn BlockDevice>> = (0..replicas.max(1))
            .map(|_| {
                Arc::new(RamDisk::new(cfg.block_size, cfg.disk_blocks)) as Arc<dyn BlockDevice>
            })
            .collect();
        let storage = MirroredDisk::new(disks)?;
        BulletServer::format_on(cfg, storage)
    }

    /// Starts a server on an already-formatted `storage`: reads the
    /// complete inode table into RAM, scans it for consistency ("to make
    /// sure that files do not overlap"), and rebuilds the free lists —
    /// the paper's start-up sequence, also used for crash recovery.
    ///
    /// # Errors
    ///
    /// Disk errors; [`BulletError::Corrupt`] under [`RepairPolicy::Fail`]
    /// if any inode is out of bounds or files overlap.
    ///
    /// With `cfg.archive_blocks > 0` a *fresh* (empty) archive device is
    /// built: archived inodes stay valid and the append cursor is
    /// restored past their extents, but their bytes are gone — WORM media
    /// survives a crash physically, so a real restart re-adopts the
    /// platter via [`recover_with_archive`](Self::recover_with_archive).
    pub fn recover(cfg: BulletConfig, storage: MirroredDisk) -> Result<BulletServer, BulletError> {
        Self::recover_inner(cfg, storage, None)
    }

    /// [`recover`](Self::recover), re-adopting a surviving WORM archive
    /// device (grabbed via [`archive_device`](Self::archive_device)
    /// before the crash): archived files keep their bytes, and the
    /// append cursor can only move forward.
    ///
    /// # Errors
    ///
    /// As [`recover`](Self::recover); additionally
    /// [`BulletError::Corrupt`] if the device's geometry does not match
    /// `cfg.archive_blocks`.
    pub fn recover_with_archive(
        cfg: BulletConfig,
        storage: MirroredDisk,
        archive: Arc<ArchiveDevice>,
    ) -> Result<BulletServer, BulletError> {
        if cfg.archive_blocks == 0 || archive.num_blocks() != cfg.archive_blocks {
            return Err(BulletError::Corrupt(format!(
                "archive device has {} blocks, configuration says {}",
                archive.num_blocks(),
                cfg.archive_blocks
            )));
        }
        Self::recover_inner(cfg, storage, Some(archive))
    }

    fn recover_inner(
        cfg: BulletConfig,
        storage: MirroredDisk,
        archive_dev: Option<Arc<ArchiveDevice>>,
    ) -> Result<BulletServer, BulletError> {
        let report = InodeTable::load_with_archive(&storage, cfg.repair, cfg.archive_blocks)?;
        let mut table = report.table;
        let desc = *table.descriptor();
        let log_start = Self::check_log_geometry(&cfg, &desc)?;
        let alloc_end = log_start.unwrap_or_else(|| desc.data_end());

        // Log replay, before the allocator rebuild: walk the checksummed
        // record chain (a torn tail fails its checksum and is dropped
        // whole, like ABL13's torn inodes).  Only the last valid record
        // can name files whose inode write-through had not landed at the
        // crash — the commit protocol holds the log mutex until a
        // record's inodes are durable, so every earlier record's files
        // are already in the loaded table.  Reinstall exactly the last
        // record's entries whose slot is still free; an occupied slot
        // means the inode landed (or was since migrated / reused) and
        // must not be clobbered.
        let mut log = None;
        if let Some(ls) = log_start {
            let bs = desc.block_size as usize;
            let scan = gclog::scan_chain(bs, ls, desc.data_end(), &mut |b, buf| {
                storage.read_blocks(b, buf).is_ok()
            });
            let mut unsealed: Vec<u32> = Vec::new();
            if let Some(last) = scan.records.last() {
                unsealed = last.entries.iter().map(|e| e.index).collect();
                let offs = gclog::entry_payload_offsets(bs as u64, &last.entries);
                let mut touched = BTreeSet::new();
                for (e, off) in last.entries.iter().zip(offs) {
                    let inode = Inode {
                        random: e.random,
                        index: 0,
                        start_block: (last.at + off) as u32,
                        size_bytes: e.size_bytes,
                    };
                    if table.install(e.index, inode).is_ok() {
                        touched.insert(table.block_of(e.index));
                    }
                }
                // Complete the interrupted write-through so the replayed
                // batch is durable in the table again.
                for b in touched {
                    storage.write_sync_k(b, &table.block_image(b), storage.replica_count())?;
                }
            }
            // Archived extents also start past `ls` (they encode as
            // `data_end + block`); only starts inside the window proper
            // are log-resident.
            let (resident, resident_bytes) =
                table.live().fold((0u64, 0u64), |(n, by), (_, ino)| {
                    let start = ino.start_block as u64;
                    if start >= ls && start < desc.data_end() {
                        (n + 1, by + ino.size_bytes as u64)
                    } else {
                        (n, by)
                    }
                });
            let mut window = LogWindow::new(ls, desc.data_end());
            window.restore(scan.head, scan.last_seq, resident, resident_bytes, unsealed);
            // Homes are re-allocated on demand by the migration job; the
            // pre-crash reservations evaporate with the allocator rebuild.
            log = Some(LogState {
                window,
                homes: HashMap::new(),
            });
        }

        // Overlap check: rebuild the allocator from the data-area extents
        // (log-resident extents live in the bump-allocated window and are
        // not the allocator's to manage); under ZeroBad, drop any inode
        // that overlaps an earlier-accepted one or escapes the area.
        let data_used: Vec<(u64, u64)> = table
            .used_extents()
            .into_iter()
            .filter(|&(s, _)| s < alloc_end)
            .collect();
        let alloc = match ExtentAllocator::from_used(desc.data_start(), alloc_end, &data_used) {
            Ok(a) => a,
            Err(e) => match cfg.repair {
                RepairPolicy::Fail => return Err(e),
                RepairPolicy::ZeroBad => {
                    let mut live: Vec<(u64, u64, u32)> = table
                        .live()
                        .filter(|(_, inode)| (inode.start_block as u64) < alloc_end)
                        .map(|(i, inode)| {
                            (inode.start_block as u64, inode.blocks(desc.block_size), i)
                        })
                        .collect();
                    live.sort_unstable();
                    let mut accepted = Vec::new();
                    let mut cursor = desc.data_start();
                    for (start, len, idx) in live {
                        if start < cursor || start + len > alloc_end {
                            table.clear(idx)?; // overlapping or escaping: zero it
                        } else {
                            accepted.push((start, len));
                            cursor = start + len;
                        }
                    }
                    ExtentAllocator::from_used(desc.data_start(), alloc_end, &accepted)?
                }
            },
        };

        Self::check_archive_geometry(&cfg, &desc)?;
        let archive = match archive_dev {
            Some(dev) => Some(ArchiveState {
                dev,
                recall_q: Mutex::new(BTreeSet::new()),
            }),
            None => Self::build_archive(&cfg, desc.block_size),
        };
        if let Some(arch) = &archive {
            // The append cursor must clear every archived extent the
            // table still references — even on a fresh device, so future
            // demotions never burn over a slot recovery believes is
            // taken.  `restore_append_pos` never rewinds, so a surviving
            // device keeps its own (equal or later) cursor.
            let past_used = table
                .live()
                .filter(|(_, ino)| (ino.start_block as u64) >= desc.data_end())
                .map(|(_, ino)| {
                    ino.start_block as u64 - desc.data_end() + ino.blocks(desc.block_size)
                })
                .max()
                .unwrap_or(0);
            arch.dev.restore_append_pos(past_used);
        }

        let ages = table.live().map(|(i, _)| (i, cfg.max_age)).collect();
        let server = BulletServer::assemble(cfg, storage, table, alloc, ages, log, archive);
        server
            .stats
            .add(counters::RECOVERY_REPAIRED_INODES, report.repaired as u64);
        server
            .stats
            .add(counters::RECOVERY_LIVE_FILES, server.live_files() as u64);
        Ok(server)
    }

    /// Crashes the server: volatile state (RAM cache, queued background
    /// disk writes) is lost; the disks survive.  Returns the storage so a
    /// new server can [`recover`](Self::recover) on it.
    pub fn crash(self) -> MirroredDisk {
        self.storage.crash_volatile();
        self.storage
    }

    /// Shuts the server down cleanly (flushes all background writes) and
    /// returns the storage.
    ///
    /// # Errors
    ///
    /// Disk errors during the final flush.
    pub fn shutdown(self) -> Result<MirroredDisk, BulletError> {
        self.storage.sync()?;
        Ok(self.storage)
    }

    // ------------------------------------------------------------------
    // The Bullet interface (§2.2).
    // ------------------------------------------------------------------

    /// `BULLET.CREATE(SERVER, DATA, SIZE, P-FACTOR) → CAPABILITY`.
    ///
    /// Stores `data` as a new immutable file.  With `p_factor = 0` the
    /// call returns as soon as the file is in the RAM cache (fast, but a
    /// crash shortly afterwards loses the file); with `p_factor = N` the
    /// file and its inode are on `N` disks before the call returns.  The
    /// remaining replicas are completed in the background either way
    /// (write-through mirroring).
    ///
    /// # Errors
    ///
    /// [`BulletError::BadPFactor`] if `p_factor` exceeds the disk count;
    /// [`BulletError::TooLarge`] if the file exceeds the RAM cache;
    /// [`BulletError::NoSpace`] / [`BulletError::NoInodes`] when full;
    /// disk errors (after which no partial state remains).
    pub fn create(&self, data: Bytes, p_factor: u32) -> Result<Capability, BulletError> {
        self.create_streamed(data, p_factor, None)
    }

    /// [`create`](Self::create) with access to the RPC wire: on a
    /// multi-segment file the reception of each segment from the wire, its
    /// copy into the cache arena, and the disk write of the *previous*
    /// segment all overlap in a three-lane pipeline, instead of arriving
    /// whole, copying whole, then writing whole.
    ///
    /// # Errors
    ///
    /// As [`create`](Self::create).
    pub fn create_streamed(
        &self,
        data: Bytes,
        p_factor: u32,
        wire: Option<&StreamWire>,
    ) -> Result<Capability, BulletError> {
        let mut op = self.tracer.span("bullet.create");
        op.attr("op", "create");
        op.attr("bytes", data.len());
        op.attr("p_factor", p_factor);
        self.charge_request();
        if p_factor as usize > self.storage.replica_count() {
            return Err(BulletError::BadPFactor {
                requested: p_factor,
                disks: self.storage.replica_count() as u32,
            });
        }
        let size: u32 = data.len().try_into().map_err(|_| BulletError::TooLarge {
            size: data.len() as u64,
            cache_capacity: self.cfg.cache_capacity,
        })?;
        // Charged here, on the request thread: the group-commit leader
        // below may write *other* clients' payloads, which must not be
        // billed to whoever happened to lead the flush.
        self.accounting.charge_current(|u| {
            u.bytes_written += size as u64;
            u.disk_ios += p_factor.max(1) as u64;
        });
        // Group-commit routing: small non-wire creates join the shared
        // batch and commit as one sequential log append.  Files above the
        // byte cap — and wire-fed creates, whose segment pipeline already
        // overlaps their cost — take the direct per-file path.  Grouped
        // creates are always fully synchronous on every replica (the
        // record *is* the durability point), which satisfies any valid
        // `p_factor`.
        if self.log.is_some() && wire.is_none() && data.len() as u64 <= self.cfg.log_batch_bytes {
            op.attr("grouped", true);
            return self
                .gc
                .submit(data, self.batch_caps(), |batch| self.gc_commit(batch));
        }
        self.create_direct(&mut op, data, size, p_factor, wire)
    }

    /// The direct (non-batched) create path: per-file extent allocation
    /// and a per-file mirrored write — the seed behaviour, still used for
    /// large files, wire-fed streams, and whenever the log is disabled or
    /// full.
    fn create_direct(
        &self,
        op: &mut SpanGuard,
        data: Bytes,
        size: u32,
        p_factor: u32,
        wire: Option<&StreamWire>,
    ) -> Result<Capability, BulletError> {
        let pipelined = self.cfg.pipeline && data.len() as u64 > self.segment_bytes();
        op.attr("pipelined", pipelined);
        if !pipelined {
            // Receiving the file into cache memory costs one copy.  (The
            // pipelined path charges the same copy segment by segment,
            // overlapped with the disk writes.)
            self.charge_memcpy(data.len() as u64);
            self.stats
                .add(counters::PAYLOAD_BYTES_COPIED, data.len() as u64);
        }

        let block_size = self.desc.block_size;
        let blocks = (size as u64).div_ceil(block_size as u64).max(1);

        // Creates may overlap each other, but not a running compaction.
        let _m = self.maint_read();

        // Reserve the extent and draw the check random under the
        // allocation lock alone.
        let (start, random) = {
            let mut al = self.alloc_lock();
            let hint = al.place_hint;
            let start = al
                .extents
                .alloc_placed(blocks, self.cfg.placement, hint)
                .ok_or(BulletError::NoSpace)?;
            al.place_hint = start + blocks;
            let random = loop {
                let r = amoeba_cap::mask48(al.rng.next_u64());
                if r != 0 {
                    break r;
                }
            };
            (start, random)
        };
        let inode = Inode {
            random,
            index: 0,
            start_block: start as u32,
            size_bytes: size,
        };

        // Publish the inode in the RAM table.
        let idx = {
            let mut table = self.table_write();
            match table.alloc(inode) {
                Ok(idx) => idx,
                Err(e) => {
                    drop(table);
                    self.alloc_lock()
                        .extents
                        .free(start, blocks)
                        .expect("just allocated");
                    return Err(e);
                }
            }
        };

        // The disk phase runs under this file's in-flight guard only:
        // other requests keep flowing while the mirrored writes complete.
        let _busy = self.inflight_lock(idx);

        // Into the RAM cache (evictions clear the victims' index fields).
        // The clone is a reference-count bump on the shared payload
        // buffer, not a copy: the cache and the caller hold the same
        // bytes (asserted by `cache_insert_shares_the_payload_buffer`).
        {
            let mut table = self.table_write();
            let mut cache = self.cache_write();
            if let Err(e) = self.cache_insert(&mut table, &mut cache, idx, data.clone()) {
                let _ = table.clear(idx);
                drop(cache);
                drop(table);
                self.alloc_lock()
                    .extents
                    .free(start, blocks)
                    .expect("just allocated");
                return Err(e);
            }
        }
        self.ages_lock().insert(idx, self.cfg.max_age);

        // Write-through: file data, then the inode's whole block.
        let k = p_factor as usize;
        let write = if pipelined {
            self.stats.incr(counters::PIPELINED_CREATES);
            self.write_data_pipelined(start, blocks, &data, k, wire)
        } else {
            self.write_data_blocks(start, blocks, &data, k)
        }
        .and_then(|()| self.write_inode_block(idx, k));
        if let Err(e) = write {
            // Roll back so no half-created file remains.
            {
                let mut table = self.table_write();
                let mut cache = self.cache_write();
                cache.remove(idx);
                let _ = table.clear(idx);
            }
            self.ages_lock().remove(&idx);
            let _ = self.alloc_lock().extents.free(start, blocks);
            return Err(e);
        }

        self.stats.incr(counters::CREATES);
        self.stats.add(counters::BYTES_CREATED, size as u64);
        Ok(self.scheme.mint(
            self.cfg.port,
            ObjNum::new(idx).expect("inode index fits 24 bits"),
            Rights::ALL,
            random,
        ))
    }

    /// Deterministic batched create: stores `files` through the
    /// group-commit log in argument order, forming batches by *position*
    /// (up to the configured file/byte caps) rather than by arrival
    /// timing.  Returns one capability per file, in input order.
    ///
    /// This is the benchmark and ablation entry point: unlike concurrent
    /// [`create`](Self::create) calls racing into the shared committer —
    /// whose batch composition depends on thread scheduling — the batches
    /// formed here are a pure function of the input, so two identical
    /// runs charge identical simulated time and write identical records.
    ///
    /// With the log disabled this degrades to sequential creates; files
    /// above [`BulletConfig::log_batch_bytes`] take the direct path.
    /// Grouped files are durable on every replica when the call returns.
    ///
    /// # Errors
    ///
    /// As [`create`](Self::create).  On the first error the call aborts;
    /// files from batches already committed remain live (sweep them via
    /// [`list_live_caps`](Self::list_live_caps) if needed).
    pub fn create_batch(
        &self,
        files: Vec<Bytes>,
        p_factor: u32,
    ) -> Result<Vec<Capability>, BulletError> {
        if p_factor as usize > self.storage.replica_count() {
            return Err(BulletError::BadPFactor {
                requested: p_factor,
                disks: self.storage.replica_count() as u32,
            });
        }
        if self.log.is_none() {
            return files
                .into_iter()
                .map(|d| self.create(d, p_factor))
                .collect();
        }
        let caps = self.batch_caps();
        let mut out = Vec::with_capacity(files.len());
        let mut pending: Vec<Bytes> = Vec::new();
        let mut pending_bytes = 0u64;
        for data in files {
            let size: u32 = data.len().try_into().map_err(|_| BulletError::TooLarge {
                size: data.len() as u64,
                cache_capacity: self.cfg.cache_capacity,
            })?;
            self.charge_request();
            if data.len() as u64 > self.cfg.log_batch_bytes {
                // Oversized: flush what's queued (order!), then go direct.
                self.flush_chunk(&mut pending, &mut pending_bytes, &mut out)?;
                let mut op = self.tracer.span("bullet.create");
                op.attr("op", "create");
                op.attr("bytes", data.len());
                out.push(self.create_direct(&mut op, data, size, p_factor, None)?);
                continue;
            }
            if pending.len() == caps.max_files || pending_bytes + data.len() as u64 > caps.max_bytes
            {
                self.flush_chunk(&mut pending, &mut pending_bytes, &mut out)?;
            }
            pending_bytes += data.len() as u64;
            pending.push(data);
        }
        self.flush_chunk(&mut pending, &mut pending_bytes, &mut out)?;
        Ok(out)
    }

    /// Commits `pending` (if any) as one group-commit batch, appending
    /// the minted capabilities to `out`.
    fn flush_chunk(
        &self,
        pending: &mut Vec<Bytes>,
        pending_bytes: &mut u64,
        out: &mut Vec<Capability>,
    ) -> Result<(), BulletError> {
        if pending.is_empty() {
            return Ok(());
        }
        *pending_bytes = 0;
        let mut op = self.tracer.span("bullet.create_batch");
        op.attr("op", "create_batch");
        op.attr("files", pending.len());
        for r in self.gc_commit(std::mem::take(pending)) {
            out.push(r?);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The group-commit log (create batching).
    // ------------------------------------------------------------------

    /// The log window's block range `[start, end)`, when enabled.
    fn log_range(&self) -> Option<(u64, u64)> {
        (self.cfg.log_blocks > 0).then(|| {
            (
                self.desc.data_end() - self.cfg.log_blocks,
                self.desc.data_end(),
            )
        })
    }

    /// Per-batch caps handed to the committer: the configured file cap
    /// clamped to what one record header block can name, the configured
    /// byte cap, and a short *host-time* linger for the threaded path
    /// (the simulated linger is [`BulletConfig::log_linger`], charged per
    /// flush by [`gc_commit`](Self::gc_commit)).
    fn batch_caps(&self) -> BatchCaps {
        BatchCaps {
            max_files: self
                .cfg
                .log_batch_files
                .min(gclog::max_entries(self.desc.block_size as usize))
                .max(1),
            max_bytes: self.cfg.log_batch_bytes,
            linger: std::time::Duration::from_micros(300),
        }
    }

    /// Commits one batch as a single sequential, checksummed, fully
    /// mirrored log append — the create path's tentpole.  One record
    /// (header block + block-aligned payloads) replaces per-file data
    /// writes, and the batch's inode write-through collapses to one write
    /// per *distinct* control block; the whole batch takes the allocator
    /// lock once ([`ExtentAllocator::alloc_batch`] reserves every file's
    /// future contiguous home up front).
    ///
    /// The log mutex is held across the entire commit (see the module
    /// docs): the record append is the durability point, and the inodes
    /// are on disk before the next record can append, which is what lets
    /// crash replay reinstall only the chain's last record.  Returns one
    /// result per file, in order; on any failure the batch rolls back
    /// whole — no half-committed batch is ever visible or recoverable.
    fn gc_commit(&self, batch: Vec<Bytes>) -> Vec<Result<Capability, BulletError>> {
        let n = batch.len();
        debug_assert!(n > 0, "committer never flushes an empty batch");
        let bs = self.desc.block_size;
        let k = self.storage.replica_count();
        let sizes: Vec<u32> = batch.iter().map(|d| d.len() as u32).collect();
        let lens: Vec<u64> = sizes
            .iter()
            .map(|&s| gclog::payload_blocks_for(bs as u64, s))
            .collect();
        let rec_blocks = 1 + lens.iter().sum::<u64>();
        let total_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();

        let maint = self.maint_read();
        let mut st = self.log_lock();

        // Reserve the record, keeping one spare block behind it so a seal
        // record can always append while this batch is the newest (see
        // `log_seal_locked`).
        let reserved = if st.window.remaining() > rec_blocks {
            st.window.reserve(rec_blocks)
        } else {
            None
        };
        let Some((at, seq)) = reserved else {
            // Window full (migration has fallen behind) or the batch is
            // bigger than the window: fall back to the direct per-file
            // path.  Drop the guards first — create_direct retakes them.
            drop(st);
            drop(maint);
            return batch
                .into_iter()
                .map(|d| {
                    let size = d.len() as u32;
                    let mut op = self.tracer.span("bullet.create");
                    op.attr("op", "create");
                    op.attr("bytes", d.len());
                    op.attr("log_fallback", true);
                    self.create_direct(&mut op, d, size, k as u32, None)
                })
                .collect();
        };

        // One allocator acquisition for the whole batch: the contiguous
        // homes the files will migrate to, plus their check randoms.
        let alloc_res = {
            let mut al = self.alloc_lock();
            let hint = al.place_hint;
            match al.extents.alloc_batch(&lens, self.cfg.placement, hint) {
                Some(homes) => {
                    al.place_hint = homes[n - 1] + lens[n - 1];
                    let randoms: Vec<u64> = (0..n)
                        .map(|_| loop {
                            let r = amoeba_cap::mask48(al.rng.next_u64());
                            if r != 0 {
                                break r;
                            }
                        })
                        .collect();
                    Some((homes, randoms))
                }
                None => None,
            }
        };
        let Some((homes, randoms)) = alloc_res else {
            st.window.unreserve(at, seq);
            return vec![Err(BulletError::NoSpace); n];
        };
        let free_homes = |server: &BulletServer| {
            let mut al = server.alloc_lock();
            for (&s, &l) in homes.iter().zip(&lens) {
                let _ = al.extents.free(s, l);
            }
        };

        // Publish the inodes in the RAM table.  Their extents point into
        // the log window; idle-time migration repoints them at `homes`.
        let mut idxs: Vec<u32> = Vec::with_capacity(n);
        {
            let mut table = self.table_write();
            let mut off = at + 1;
            for i in 0..n {
                let inode = Inode {
                    random: randoms[i],
                    index: 0,
                    start_block: off as u32,
                    size_bytes: sizes[i],
                };
                match table.alloc(inode) {
                    Ok(idx) => {
                        idxs.push(idx);
                        off += lens[i];
                    }
                    Err(e) => {
                        for &p in &idxs {
                            let _ = table.clear(p);
                        }
                        drop(table);
                        free_homes(self);
                        st.window.unreserve(at, seq);
                        return vec![Err(e); n];
                    }
                }
            }
        }

        // Assemble and append the record — the commit point.  One
        // sequential mirrored write: one seek, amortized over the batch.
        let entries: Vec<gclog::LogEntry> = (0..n)
            .map(|i| gclog::LogEntry {
                index: idxs[i],
                random: randoms[i],
                size_bytes: sizes[i],
            })
            .collect();
        let payloads: Vec<&[u8]> = batch.iter().map(|d| &d[..]).collect();
        let image = gclog::encode_record(bs as usize, seq, &entries, &payloads);
        {
            // The linger window the batch accumulated over, plus the
            // assembly copy into the record image.
            let mut s = self.tracer.span("gc.flush");
            s.attr("files", n);
            s.attr("bytes", total_bytes);
            self.cfg.clock.advance(self.cfg.log_linger);
            self.cfg.clock.advance(self.cfg.cpu.memcpy(total_bytes));
        }
        self.stats.add(counters::PAYLOAD_BYTES_COPIED, total_bytes);
        if let Err(e) = self.storage.write_sync_k(at, &image, k) {
            {
                let mut table = self.table_write();
                for &idx in &idxs {
                    let _ = table.clear(idx);
                }
            }
            free_homes(self);
            st.window.unreserve(at, seq);
            return vec![Err(BulletError::from(e)); n];
        }
        self.stats.incr(counters::LOG_APPENDS);
        self.stats.incr(counters::GROUP_COMMIT_FLUSHES);
        self.stats.add(counters::LOG_BATCH_FILES, n as u64);
        self.stats.add(counters::LOG_RESIDENT_BYTES, total_bytes);

        // Into the RAM cache and the age table.  A cache refusal is not
        // fatal here: the file is already durable in the log — it merely
        // starts cold.
        {
            let mut table = self.table_write();
            let mut cache = self.cache_write();
            for (i, &idx) in idxs.iter().enumerate() {
                let _ = self.cache_insert(&mut table, &mut cache, idx, batch[i].clone());
            }
        }
        {
            let mut ages = self.ages_lock();
            for &idx in &idxs {
                ages.insert(idx, self.cfg.max_age);
            }
        }

        // Inode write-through, deduplicated: the batch's inodes cluster in
        // few control blocks — write each *distinct* block once.  (This is
        // what keeps the whole batch at ~2 physical I/Os.)
        let inode_write = {
            let _io = self.inode_io_lock();
            let images: Vec<(u64, Vec<u8>)> = {
                let table = self.table_read();
                let blocks: BTreeSet<u64> = idxs.iter().map(|&i| table.block_of(i)).collect();
                blocks
                    .into_iter()
                    .map(|b| (b, table.block_image(b)))
                    .collect()
            };
            images
                .into_iter()
                .try_for_each(|(b, img)| self.storage.write_sync_k(b, &img, k).map(|_| ()))
        };
        if let Err(e) = inode_write {
            // The record is durable but the inodes never were: roll the
            // RAM state back, then seal the chain (best effort, in place)
            // so a later crash cannot resurrect the rolled-back batch.
            {
                let mut table = self.table_write();
                let mut cache = self.cache_write();
                for &idx in &idxs {
                    cache.remove(idx);
                    let _ = table.clear(idx);
                }
            }
            {
                let mut ages = self.ages_lock();
                for &idx in &idxs {
                    ages.remove(&idx);
                }
            }
            free_homes(self);
            st.window.unreserve(at, seq);
            if let Some((sat, sseq)) = st.window.reserve(1) {
                let seal = gclog::encode_record(bs as usize, sseq, &[], &[]);
                let _ = self.storage.write_sync_k(sat, &seal, k);
                st.window.unreserve(sat, sseq);
            }
            return vec![Err(BulletError::from(e)); n];
        }

        // Committed: bookkeeping and capabilities.
        st.window.note_batch(&idxs, total_bytes);
        for i in 0..n {
            st.homes.insert(idxs[i], (homes[i], lens[i]));
        }
        self.stats.add(counters::CREATES, n as u64);
        self.stats.add(counters::BYTES_CREATED, total_bytes);
        (0..n)
            .map(|i| {
                Ok(self.scheme.mint(
                    self.cfg.port,
                    ObjNum::new(idxs[i]).expect("inode index fits 24 bits"),
                    Rights::ALL,
                    randoms[i],
                ))
            })
            .collect()
    }

    /// Appends an empty *seal* record (caller holds the log guard),
    /// advancing the chain so crash replay will not reinstall any earlier
    /// record.  Called before destroying a file of the newest batch —
    /// once its inode is zeroed on disk, replay would otherwise see a
    /// free slot named by a valid record and resurrect the file.
    fn log_seal_locked(&self, st: &mut LogState) -> Result<(), BulletError> {
        let Some((at, seq)) = st.window.reserve(1) else {
            // Unreachable by the spare-block invariant: every commit
            // leaves one free block behind its record while it is newest.
            debug_assert!(false, "no room for a seal record");
            st.window.seal();
            return Ok(());
        };
        let seal = gclog::encode_record(self.desc.block_size as usize, seq, &[], &[]);
        if let Err(e) = self
            .storage
            .write_sync_k(at, &seal, self.storage.replica_count())
        {
            // Abort the caller before it destroys anything.
            st.window.unreserve(at, seq);
            return Err(e.into());
        }
        st.window.seal();
        self.stats.incr(counters::LOG_APPENDS);
        Ok(())
    }

    /// Moves the lowest-addressed log-resident file to its contiguous
    /// data-area home — preallocated at commit, or allocated now if the
    /// reservation was lost to a crash (homes are RAM-only).  The caller
    /// holds the maintenance guard and the log guard.  Returns the moved
    /// inode index, or `None` when the window holds no live files.
    ///
    /// The move preserves the contiguous-layout invariant the read path
    /// depends on: the copy is extent-at-once, on every replica, with the
    /// inode rewritten on disk before the function returns.  The index
    /// stays in the window's unsealed set — its slot remains live, so
    /// replay skips it, and a later delete still seals the chain.
    fn migrate_one_log_file(&self, st: &mut LogState) -> Result<Option<u32>, BulletError> {
        let Some((ls, _)) = self.log_range() else {
            return Ok(None);
        };
        let data_end = self.desc.data_end();
        let picked = {
            let table = self.table_read();
            table
                .live()
                .filter(|&(_, inode)| {
                    let start = inode.start_block as u64;
                    // Archived extents also start past `ls` (they encode
                    // as `data_end + block`) but are not log-resident.
                    start >= ls && start < data_end
                })
                .min_by_key(|&(_, inode)| inode.start_block)
                .map(|(i, inode)| (i, *inode))
        };
        let Some((idx, inode)) = picked else {
            return Ok(None);
        };
        let _busy = self.inflight_lock(idx);
        let blocks = inode.blocks(self.desc.block_size);
        let home = match st.homes.remove(&idx) {
            Some(h) => h,
            None => {
                let mut al = self.alloc_lock();
                let hint = al.place_hint;
                let Some(s) = al.extents.alloc_placed(blocks, self.cfg.placement, hint) else {
                    return Err(BulletError::NoSpace);
                };
                al.place_hint = s + blocks;
                (s, blocks)
            }
        };
        debug_assert_eq!(home.1, blocks, "home reservation matches the extent");
        let staged = (|| {
            let mut buf = vec![0u8; (blocks * self.desc.block_size as u64) as usize];
            self.storage
                .read_blocks(inode.start_block as u64, &mut buf)?;
            self.storage
                .write_sync_k(home.0, &buf, self.storage.replica_count())?;
            self.table_write().get_mut(idx)?.start_block = home.0 as u32;
            if let Err(e) = self.write_inode_block(idx, self.storage.replica_count()) {
                self.table_write().get_mut(idx)?.start_block = inode.start_block;
                return Err(e);
            }
            Ok(())
        })();
        if let Err(e) = staged {
            // Keep the reservation for the retry.
            st.homes.insert(idx, home);
            return Err(e);
        }
        if st.window.file_gone(inode.size_bytes as u64) {
            st.window.reset();
        }
        self.stats.incr(counters::LOG_MIGRATIONS);
        Ok(Some(idx))
    }

    /// `BULLET.SIZE(CAPABILITY) → SIZE`.
    ///
    /// # Errors
    ///
    /// Capability or lookup failures.
    pub fn size(&self, cap: &Capability) -> Result<u32, BulletError> {
        let mut op = self.tracer.span("bullet.size");
        op.attr("op", "size");
        self.charge_request();
        let table = self.table_read();
        let inode = self.verify(&table, cap, Rights::READ)?;
        Ok(inode.size_bytes)
    }

    /// `BULLET.READ(CAPABILITY, &DATA)`: returns the whole file.
    ///
    /// A cached file is served straight from the contiguous RAM copy; a
    /// miss loads the whole contiguous extent from disk in one I/O, after
    /// making room by LRU eviction.
    ///
    /// # Errors
    ///
    /// Capability failures, [`BulletError::TooLarge`] for a file bigger
    /// than the cache, or disk errors.
    pub fn read(&self, cap: &Capability) -> Result<Bytes, BulletError> {
        self.read_streamed(cap, None)
    }

    /// [`read`](Self::read) with access to the RPC wire: a cold
    /// multi-segment read streams each segment towards the client while
    /// the next segment is still coming off the disk, instead of staging
    /// the whole file in RAM before the first byte travels.  Warm reads
    /// never stream — the cached copy goes out as one zero-copy reply.
    ///
    /// # Errors
    ///
    /// As [`read`](Self::read).
    pub fn read_streamed(
        &self,
        cap: &Capability,
        wire: Option<&StreamWire>,
    ) -> Result<Bytes, BulletError> {
        let mut op = self.tracer.span("bullet.read");
        op.attr("op", "read");
        self.charge_request();
        let idx = cap.object.value();
        // Fast path: verification and the cache hit take shared locks
        // only, so concurrent cache-hot reads never serialize.
        {
            let table = self.table_read();
            self.verify(&table, cap, Rights::READ)?;
        }
        if let Some(data) = self.cache_read().get(idx) {
            self.stats.incr(counters::READS);
            op.attr("bytes", data.len());
            self.accounting.charge_current(|u| {
                u.cache_hits += 1;
                u.bytes_read += data.len() as u64;
            });
            return Ok(data);
        }
        let data = self.load_cold(cap, idx, Rights::READ, wire, 0, u64::MAX)?;
        self.stats.incr(counters::READS);
        op.attr("bytes", data.len());
        self.accounting.charge_current(|u| {
            u.cache_misses += 1;
            u.disk_ios += 1;
            u.bytes_read += data.len() as u64;
        });
        Ok(data)
    }

    /// Partial read (§5 extension, for "processors with small memories").
    ///
    /// # Errors
    ///
    /// [`BulletError::BadRange`] if `[offset, offset + len)` leaves the
    /// file; otherwise as [`read`](Self::read).
    pub fn read_section(
        &self,
        cap: &Capability,
        offset: u32,
        len: u32,
    ) -> Result<Bytes, BulletError> {
        self.read_section_streamed(cap, offset, len, None)
    }

    /// [`read_section`](Self::read_section) with access to the RPC wire —
    /// cold multi-segment loads pipeline disk against wire exactly as
    /// [`read_streamed`](Self::read_streamed), except only the requested
    /// byte range travels.  With a bounded
    /// [`readahead_segments`](BulletConfig::readahead_segments) a cold
    /// section load fetches just the covering segments plus the readahead
    /// window rather than the whole file.
    ///
    /// # Errors
    ///
    /// As [`read_section`](Self::read_section).
    pub fn read_section_streamed(
        &self,
        cap: &Capability,
        offset: u32,
        len: u32,
        wire: Option<&StreamWire>,
    ) -> Result<Bytes, BulletError> {
        let mut op = self.tracer.span("bullet.read_section");
        op.attr("op", "read_section");
        op.attr("bytes", len);
        self.charge_request();
        let inode = {
            let table = self.table_read();
            *self.verify(&table, cap, Rights::READ)?
        };
        let end = offset.checked_add(len).ok_or(BulletError::BadRange)?;
        if end > inode.size_bytes {
            return Err(BulletError::BadRange);
        }
        let idx = cap.object.value();
        // Bind the hit before matching: the temporary guard of the cache
        // read lock must not live into the miss arm, whose load path takes
        // the cache write lock.
        let hit = self.cache_read().get(idx);
        let was_hit = hit.is_some();
        let data = match hit {
            Some(d) => d.slice(offset as usize..end as usize),
            None => self.load_section_cold(cap, idx, offset, end, wire)?,
        };
        self.stats.incr(counters::SECTION_READS);
        self.accounting.charge_current(|u| {
            if was_hit {
                u.cache_hits += 1;
            } else {
                u.cache_misses += 1;
                u.disk_ios += 1;
            }
            u.bytes_read += data.len() as u64;
        });
        Ok(data)
    }

    /// `BULLET.DELETE(CAPABILITY)`.
    ///
    /// Zeroes the inode, writes its block through to every disk, frees the
    /// extent and the cache copy.
    ///
    /// # Errors
    ///
    /// Capability failures or disk errors.
    pub fn delete(&self, cap: &Capability) -> Result<(), BulletError> {
        let mut op = self.tracer.span("bullet.delete");
        op.attr("op", "delete");
        self.charge_request();
        let idx = cap.object.value();
        let _m = self.maint_read();
        // The log guard sits outside the in-flight guard in the lock
        // order; holding it keeps the seal decision below consistent with
        // concurrent commits and migrations.
        let mut logst = self.log.as_ref().map(|l| l.lock());
        // The in-flight guard serializes against a create, miss load, or
        // compaction move of the same file still in its disk phase.
        let _busy = self.inflight_lock(idx);
        let (start, blocks, size) = {
            let table = self.table_read();
            let inode = *self.verify(&table, cap, Rights::DESTROY)?;
            (
                inode.start_block as u64,
                inode.blocks(self.desc.block_size),
                inode.size_bytes as u64,
            )
        };
        // Classify the extent *before* the log test: archived extents
        // encode as `data_end + block` and would otherwise read as
        // log-resident.
        let archive_resident = self.archive.is_some() && start >= self.desc.data_end();
        let log_resident = !archive_resident && self.log_range().is_some_and(|(ls, _)| start >= ls);
        // Deleting a file of the *newest* log record must seal the chain
        // first: once the inode is zeroed on disk, a crash replay would
        // otherwise see a free slot named by a valid record and
        // resurrect the file.
        if let Some(st) = logst.as_mut() {
            if st.window.is_unsealed(idx) {
                self.log_seal_locked(st)?;
            }
        }
        self.table_write().clear_keep_slot(idx)?;
        self.cache_write().remove(idx);
        self.ages_lock().remove(&idx);
        // Deletion is always written through to all disks.  The inode
        // slot and the extent return to the free lists only afterwards,
        // so neither can be reallocated while the zeroed inode is still
        // in flight (on error they return anyway: the RAM table no
        // longer references them, and recovery rebuilds from disk).
        let write = self.write_inode_block(idx, self.storage.replica_count());
        self.table_write().release_slot(idx);
        if archive_resident {
            // WORM space is never reclaimed — the burned blocks keep the
            // dead version forever; just forget any pending recall.
            let arch = self
                .archive
                .as_ref()
                .expect("archive-resident implies tiering");
            arch.recall_q.lock().remove(&idx);
        } else if log_resident {
            // A log-resident file owns no allocator extent — it owns its
            // preallocated migration home; free that instead, and let an
            // emptied window rewind for reuse.
            let st = logst.as_mut().expect("log-resident implies log enabled");
            if let Some((hs, hl)) = st.homes.remove(&idx) {
                self.alloc_lock().extents.free(hs, hl)?;
            }
            if st.window.file_gone(size) {
                st.window.reset();
            }
        } else {
            self.alloc_lock().extents.free(start, blocks)?;
        }
        write?;
        self.stats.incr(counters::DELETES);
        Ok(())
    }

    /// Reads a live object out for migration to another shard: its check
    /// random (so the destination can honour every already-minted
    /// capability) and its full payload.  Serves from cache when warm,
    /// from the extent otherwise.  This is the first leg of
    /// [`crate::shard::BulletShards::rebalance`].
    ///
    /// # Errors
    ///
    /// [`BulletError::NotFound`] if `idx` is not live; disk errors.
    pub fn export_object(&self, idx: u32) -> Result<(u64, Bytes), BulletError> {
        let mut op = self.tracer.span("bullet.export_object");
        op.attr("op", "export_object");
        let _m = self.maint_read();
        // The in-flight guard keeps the inode snapshot stable across the
        // extent read: delete and compaction both need this guard.
        let _busy = self.inflight_lock(idx);
        let inode = {
            let table = self.table_read();
            *table.get(idx)?
        };
        if let Some(data) = self.cache_read().get(idx) {
            op.attr("bytes", data.len());
            return Ok((inode.random, data));
        }
        let block_size = self.desc.block_size;
        let blocks = inode.blocks(block_size);
        let mut buf = vec![0u8; (blocks * block_size as u64) as usize];
        let start = inode.start_block as u64;
        match self.archive.as_ref() {
            Some(arch) if start >= self.desc.data_end() => {
                arch.dev
                    .read_blocks(start - self.desc.data_end(), &mut buf)?;
            }
            _ => self.storage.read_blocks(start, &mut buf)?,
        }
        buf.truncate(inode.size_bytes as usize);
        op.attr("bytes", buf.len());
        Ok((inode.random, Bytes::from(buf)))
    }

    /// Installs a migrated object at the *dictated* slot `idx` with the
    /// *dictated* check `random` — the destination leg of a shard
    /// rebalance.  Unlike [`create`](Self::create), which picks a fresh
    /// slot and random, adoption must reproduce both exactly so that
    /// every capability minted before the move keeps verifying.  The slot
    /// may lie outside this server's own stripe; that is the point.
    /// Adopted data is written through to every replica.
    ///
    /// # Errors
    ///
    /// [`BulletError::Corrupt`] if slot `idx` is live here;
    /// [`BulletError::NoSpace`] / disk errors as for create.  On error
    /// the adoption is fully rolled back.
    pub fn adopt_object(&self, idx: u32, random: u64, data: Bytes) -> Result<(), BulletError> {
        let mut op = self.tracer.span("bullet.adopt_object");
        op.attr("op", "adopt_object");
        op.attr("bytes", data.len());
        let size: u32 = data.len().try_into().map_err(|_| BulletError::TooLarge {
            size: data.len() as u64,
            cache_capacity: self.cfg.cache_capacity,
        })?;
        let block_size = self.desc.block_size;
        let blocks = (size as u64).div_ceil(block_size as u64).max(1);
        let _m = self.maint_read();
        let start = {
            let mut al = self.alloc_lock();
            let hint = al.place_hint;
            let start = al
                .extents
                .alloc_placed(blocks, self.cfg.placement, hint)
                .ok_or(BulletError::NoSpace)?;
            al.place_hint = start + blocks;
            start
        };
        let inode = Inode {
            random,
            index: 0,
            start_block: start as u32,
            size_bytes: size,
        };
        {
            let mut table = self.table_write();
            if let Err(e) = table.install(idx, inode) {
                drop(table);
                self.alloc_lock()
                    .extents
                    .free(start, blocks)
                    .expect("just allocated");
                return Err(e);
            }
        }
        let _busy = self.inflight_lock(idx);
        {
            let mut table = self.table_write();
            let mut cache = self.cache_write();
            if let Err(e) = self.cache_insert(&mut table, &mut cache, idx, data.clone()) {
                let _ = table.clear(idx);
                drop(cache);
                drop(table);
                self.alloc_lock()
                    .extents
                    .free(start, blocks)
                    .expect("just allocated");
                return Err(e);
            }
        }
        self.ages_lock().insert(idx, self.cfg.max_age);
        let k = self.storage.replica_count();
        let write = self
            .write_data_blocks(start, blocks, &data, k)
            .and_then(|()| self.write_inode_block(idx, k));
        if let Err(e) = write {
            {
                let mut table = self.table_write();
                let mut cache = self.cache_write();
                cache.remove(idx);
                let _ = table.clear(idx);
            }
            self.ages_lock().remove(&idx);
            let _ = self.alloc_lock().extents.free(start, blocks);
            return Err(e);
        }
        Ok(())
    }

    /// Removes a migrated-away object from this shard — the final leg of
    /// a rebalance, after the destination's
    /// [`adopt_object`](Self::adopt_object) is durable.  The full delete
    /// protocol runs (seal-if-unsealed, zero, write-through, free the
    /// extent) *except* that the slot is never returned to the free list:
    /// the object number now lives on another shard, and re-minting it
    /// here would collide with the router's override for it.
    ///
    /// # Errors
    ///
    /// [`BulletError::NotFound`] if `idx` is not live; disk errors.
    pub fn retire_object(&self, idx: u32) -> Result<(), BulletError> {
        let mut op = self.tracer.span("bullet.retire_object");
        op.attr("op", "retire_object");
        let _m = self.maint_read();
        let mut logst = self.log.as_ref().map(|l| l.lock());
        let _busy = self.inflight_lock(idx);
        let (start, blocks, size) = {
            let table = self.table_read();
            let inode = *table.get(idx)?;
            (
                inode.start_block as u64,
                inode.blocks(self.desc.block_size),
                inode.size_bytes as u64,
            )
        };
        let archive_resident = self.archive.is_some() && start >= self.desc.data_end();
        let log_resident = !archive_resident && self.log_range().is_some_and(|(ls, _)| start >= ls);
        if let Some(st) = logst.as_mut() {
            if st.window.is_unsealed(idx) {
                self.log_seal_locked(st)?;
            }
        }
        self.table_write().clear_keep_slot(idx)?;
        self.cache_write().remove(idx);
        self.ages_lock().remove(&idx);
        let write = self.write_inode_block(idx, self.storage.replica_count());
        // Deliberately no release_slot: the slot is tombstoned on this
        // shard for the life of the process.
        if archive_resident {
            let arch = self
                .archive
                .as_ref()
                .expect("archive-resident implies tiering");
            arch.recall_q.lock().remove(&idx);
        } else if log_resident {
            let st = logst.as_mut().expect("log-resident implies log enabled");
            if let Some((hs, hl)) = st.homes.remove(&idx) {
                self.alloc_lock().extents.free(hs, hl)?;
            }
            if st.window.file_gone(size) {
                st.window.reset();
            }
        } else {
            self.alloc_lock().extents.free(start, blocks)?;
        }
        write?;
        Ok(())
    }

    /// §5 extension: derives a **new** immutable file from an existing one
    /// with `data` overlaid at `offset` (growing the file if needed),
    /// entirely server-side — "for a small modification it is not
    /// necessary any longer to transfer the whole file".
    ///
    /// # Errors
    ///
    /// As [`read`](Self::read) plus the create-path errors.
    pub fn modify(
        &self,
        cap: &Capability,
        offset: u32,
        data: &[u8],
        p_factor: u32,
    ) -> Result<Capability, BulletError> {
        let mut op = self.tracer.span("bullet.modify");
        op.attr("op", "modify");
        op.attr("bytes", data.len());
        let base = {
            {
                let table = self.table_read();
                self.verify(&table, cap, Rights::READ | Rights::MODIFY)?;
            }
            let idx = cap.object.value();
            match self.cache_read().get(idx) {
                Some(d) => d,
                None => {
                    self.load_cold(cap, idx, Rights::READ | Rights::MODIFY, None, 0, u64::MAX)?
                }
            }
        };
        let new_len = base.len().max(offset as usize + data.len());
        let mut buf = vec![0u8; new_len];
        buf[..base.len()].copy_from_slice(&base);
        buf[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        // The extra server-side copy is charged inside create() as the
        // usual reception copy; charge the read-side copy here.
        self.charge_memcpy(base.len() as u64);
        self.stats
            .add(counters::PAYLOAD_BYTES_COPIED, base.len() as u64);
        self.stats.incr(counters::MODIFIES);
        self.create(Bytes::from(buf), p_factor)
    }

    /// §5 extension: appends by deriving a new file (sugar over
    /// [`modify`](Self::modify) at the old end).
    ///
    /// # Errors
    ///
    /// As [`modify`](Self::modify).
    pub fn append(
        &self,
        cap: &Capability,
        data: &[u8],
        p_factor: u32,
    ) -> Result<Capability, BulletError> {
        let size = {
            let table = self.table_read();
            self.verify(&table, cap, Rights::READ | Rights::MODIFY)?
                .size_bytes
        };
        self.modify(cap, size, data, p_factor)
    }

    // ------------------------------------------------------------------
    // Administration.
    // ------------------------------------------------------------------

    /// Completes all background replica writes and syncs the disks.
    ///
    /// # Errors
    ///
    /// Disk errors.
    pub fn sync(&self) -> Result<(), BulletError> {
        self.storage.sync()?;
        Ok(())
    }

    /// The "3 a.m." disk compaction: slides every file leftward so the
    /// free space becomes one hole.  Files move via RAM (read whole
    /// extent, write to the new location on every disk, update the
    /// inode).  Returns the number of files moved.
    ///
    /// # Errors
    ///
    /// Disk errors mid-plan leave already-moved files fully consistent
    /// (each move updates the inode on disk before the next move starts).
    pub fn compact_disk(&self) -> Result<u64, BulletError> {
        // Exclusive maintenance guard: creates, deletes, and expiry wait;
        // reads keep flowing (each move serializes against readers of the
        // moving file via its in-flight guard).
        let _m = self.maint_write();
        // Migrate every log-resident file home first: the sliding plan
        // below only understands allocator-range extents, and a drained
        // window keeps the "free space becomes one hole" postcondition.
        if let Some(logmx) = &self.log {
            let mut st = logmx.lock();
            while self.migrate_one_log_file(&mut st)?.is_some() {}
        }
        let block_size = self.desc.block_size;
        // Map start block -> inode index for plan application.
        let (mut by_start, used, plan) = {
            let table = self.table_read();
            let by_start: HashMap<u64, u32> = table
                .live()
                .map(|(i, inode)| (inode.start_block as u64, i))
                .collect();
            let mut used = table.used_extents();
            // Exclude log-window *and* archived extents: the plan only
            // understands allocator-range extents.
            let alloc_end = self.log_range().map_or(self.desc.data_end(), |(ls, _)| ls);
            used.retain(|&(s, _)| s < alloc_end);
            let plan = self.alloc_lock().extents.plan_compaction(&used);
            (by_start, used, plan)
        };
        let mut moved = 0;
        for m in &plan {
            let idx = *by_start
                .get(&m.from)
                .expect("plan extents come from the table");
            let _busy = self.inflight_lock(idx);
            let mut buf = vec![0u8; (m.len * block_size as u64) as usize];
            self.storage.read_blocks(m.from, &mut buf)?;
            self.storage
                .write_sync_k(m.to, &buf, self.storage.replica_count())?;
            self.table_write().get_mut(idx)?.start_block = m.to as u32;
            self.write_inode_block(idx, self.storage.replica_count())?;
            by_start.remove(&m.from);
            by_start.insert(m.to, idx);
            moved += 1;
        }
        let total_used: u64 = used.iter().map(|&(_, l)| l).sum();
        self.alloc_lock()
            .extents
            .rebuild_after_compaction(total_used);
        self.stats.add(counters::DISK_COMPACTION_MOVES, moved);
        Ok(moved)
    }

    /// One increment of idle-time maintenance, and only when the server
    /// has been idle since the previous tick.
    ///
    /// The paper runs compaction "every morning at say 3 am" as one long
    /// exclusive pass; here it is a ranked background scheduler (see
    /// [`crate::maintenance`]) that yields to foreground traffic.  Each
    /// tick:
    ///
    /// 1. If more than [`BulletConfig::maint_idle_request_delta`]
    ///    requests arrived since the last tick, or foreground work
    ///    currently holds the maintenance lock, the tick *preempts* —
    ///    it does nothing, counts a preemption, and re-arms.
    /// 2. Otherwise the jobs are consulted in rank order — group-commit
    ///    log migration, data-area packing, archive recall, cold-file
    ///    demotion — and the first with work performs one bounded
    ///    increment ([`BulletConfig::maint_moves_per_tick`] increments
    ///    per tick; every move lands on every replica with the inode
    ///    updated on disk before the tick returns, the same consistency
    ///    as [`compact_disk`](Self::compact_disk)).
    ///
    /// With tiering off (`archive_blocks == 0`) the recall and demotion
    /// jobs report zero urgency and the tick behaves exactly as earlier
    /// releases: migrate one log file, else pack one extent, else idle.
    ///
    /// Drive it from an idle loop until it returns [`CompactTick::Idle`].
    ///
    /// # Errors
    ///
    /// Disk errors; an interrupted tick leaves every file consistent.
    pub fn compact_tick(&self) -> Result<CompactTick, BulletError> {
        use std::sync::atomic::Ordering;
        // Idleness gate: foreground arrivals beyond the configured
        // threshold since the previous tick preempt this one.  (The swap
        // also re-arms the gate, so the next tick runs if the server has
        // gone quiet.)
        let seen = self.requests_seen.load(Ordering::Relaxed);
        let mark = self.compact_mark.swap(seen, Ordering::Relaxed);
        if seen.saturating_sub(mark) > self.cfg.maint_idle_request_delta {
            self.stats.incr(counters::COMPACTION_PREEMPTIONS);
            return Ok(CompactTick::Preempted);
        }
        // Never wait for the maintenance lock: a create/delete in
        // progress means the server is not idle.
        let Some(_m) = self.maintenance.try_write() else {
            self.locks.incr(counters::LOCK_MAINTENANCE_WRITE);
            self.locks.incr(counters::LOCK_CONTENDED_MAINTENANCE_WRITE);
            self.stats.incr(counters::COMPACTION_PREEMPTIONS);
            return Ok(CompactTick::Preempted);
        };
        self.locks.incr(counters::LOCK_MAINTENANCE_WRITE);
        self.stats.incr(counters::MAINTENANCE_TICKS);

        // The ranked job table, highest rank first: draining the
        // group-commit window keeps it available for future batches;
        // packing restores the one-hole invariant; recall serves files
        // the read path already asked for; demotion is pure space
        // reclamation and goes last.
        let migration = LogMigrationJob(self);
        let packing = PackingJob(self);
        let recall = RecallJob(self);
        let demotion = DemotionJob(self);
        let jobs: [&dyn MaintenanceJob; 4] = [&migration, &packing, &recall, &demotion];
        let mut outcome = CompactTick::Idle;
        for _ in 0..self.cfg.maint_moves_per_tick.max(1) {
            match maintenance::run_ranked(&jobs, &self.stats)? {
                JobTick::Idle => break,
                JobTick::Progressed { remaining } => outcome = CompactTick::Moved { remaining },
            }
        }
        Ok(outcome)
    }

    /// One increment of data-area packing — the historical
    /// `compact_tick` body, now the [`PackingJob`] increment: recompute
    /// the sliding plan, apply its first move.  Returns the remaining
    /// move count, or `None` when the area is fully packed.
    fn pack_one(&self) -> Result<Option<u64>, BulletError> {
        let block_size = self.desc.block_size;
        let (idx, m, remaining) = {
            let table = self.table_read();
            let mut used = table.used_extents();
            // Log-window extents are bump-allocated and archived extents
            // live on another device entirely: neither is the
            // allocator's to plan over.
            let alloc_end = self.log_range().map_or(self.desc.data_end(), |(ls, _)| ls);
            used.retain(|&(s, _)| s < alloc_end);
            let plan = self.alloc_lock().extents.plan_compaction(&used);
            let Some(&m) = plan.first() else {
                return Ok(None);
            };
            let idx = table
                .live()
                .find(|&(_, inode)| inode.start_block as u64 == m.from)
                .map(|(i, _)| i)
                .expect("plan extents come from the table");
            (idx, m, plan.len() as u64 - 1)
        };

        let _busy = self.inflight_lock(idx);
        // The region [m.to, m.from) ahead of the plan's first move is all
        // free (every live extent before it is already packed): claim it
        // so the allocator never hands it out mid-move, copy, then
        // release the vacated tail [m.to + len, m.from + len).
        let shift = m.from - m.to;
        self.alloc_lock().extents.reserve(m.to, shift)?;
        // A failure between the reservation and the commit must release
        // the claimed destination — otherwise the region stays
        // unallocatable until recovery.  On an inode-write failure the
        // table entry is rolled back first, so the extent still lives at
        // `m.from` in memory and on disk and the destination really is
        // free again.
        let staged = (|| {
            let mut buf = vec![0u8; (m.len * block_size as u64) as usize];
            self.storage.read_blocks(m.from, &mut buf)?;
            self.storage
                .write_sync_k(m.to, &buf, self.storage.replica_count())?;
            self.table_write().get_mut(idx)?.start_block = m.to as u32;
            if let Err(e) = self.write_inode_block(idx, self.storage.replica_count()) {
                self.table_write().get_mut(idx)?.start_block = m.from as u32;
                return Err(e);
            }
            Ok(())
        })();
        if let Err(e) = staged {
            self.alloc_lock().extents.free(m.to, shift)?;
            return Err(e);
        }
        self.alloc_lock().extents.free(m.to + m.len, shift)?;
        self.stats.incr(counters::DISK_COMPACTION_MOVES);
        Ok(Some(remaining))
    }

    // ------------------------------------------------------------------
    // The storage tiers: RAM → mirrored disk → WORM archive.
    // ------------------------------------------------------------------

    /// Demotes one cold file's extent to the WORM archive tier — the
    /// [`DemotionJob`] increment.  Candidates are live, uncached,
    /// allocator-range (neither log-resident nor already archived) files
    /// that survived [`BulletConfig::tier_cold_age`] aging rounds
    /// untouched; among them the size-tiered bucketing of
    /// [`maintenance::size_tiered_pick`] chooses.  The extent streams to
    /// the archive through the low-priority disk lane, the inode flips
    /// to the archive encoding (`data_end + archive_block`), and the
    /// fast-tier extent returns to the allocator.  Returns the demoted
    /// index, or `None` when nothing qualifies.
    fn demote_one(&self) -> Result<Option<u32>, BulletError> {
        let Some(arch) = &self.archive else {
            return Ok(None);
        };
        let data_end = self.desc.data_end();
        let alloc_end = self.log_range().map_or(data_end, |(ls, _)| ls);
        let block_size = self.desc.block_size;
        let candidates: Vec<(u32, u64)> = {
            let table = self.table_read();
            let ages = self.ages_lock();
            table
                .live()
                .filter(|&(idx, ino)| {
                    ino.index == 0
                        && (ino.start_block as u64) < alloc_end
                        && ages.get(&idx).is_some_and(|&a| {
                            self.cfg.max_age.saturating_sub(a) >= self.cfg.tier_cold_age
                        })
                })
                .map(|(idx, ino)| (idx, ino.blocks(block_size)))
                .collect()
        };
        let Some(idx) = maintenance::size_tiered_pick(&candidates) else {
            return Ok(None);
        };
        let _busy = self.inflight_lock(idx);
        // Re-check under the guard: a read may have re-warmed the file
        // into the cache, or a delete may have claimed the slot.
        let inode = {
            let table = self.table_read();
            match table.get(idx) {
                Ok(i) => *i,
                Err(_) => return Ok(None),
            }
        };
        if inode.index != 0 || (inode.start_block as u64) >= alloc_end {
            return Ok(None);
        }
        let blocks = inode.blocks(block_size);
        // The reservation is permanent — a burner can never unburn — so
        // a full archive simply ends demotion, and a failure mid-stream
        // wastes the run (nothing else changed: full rollback).
        let Ok(dst) = arch.dev.append_reserve(blocks) else {
            return Ok(None);
        };
        self.copy_extent_to_archive(inode.start_block as u64, blocks, dst, &arch.dev)?;
        self.table_write().get_mut(idx)?.start_block = (data_end + dst) as u32;
        if let Err(e) = self.write_inode_block(idx, self.storage.replica_count()) {
            self.table_write().get_mut(idx)?.start_block = inode.start_block;
            return Err(e);
        }
        // Committed: the fast-tier extent returns to the allocator, and
        // fully-burned archive segments seal behind the cursor.
        self.alloc_lock()
            .extents
            .free(inode.start_block as u64, blocks)?;
        arch.dev.seal_full_segments();
        self.stats.incr(counters::TIER_DEMOTIONS);
        self.stats
            .add(counters::TIER_ARCHIVE_BYTES, inode.size_bytes as u64);
        Ok(Some(idx))
    }

    /// Streams a fast-tier extent to the archive device segment by
    /// segment through the two-lane pipeline: lane 0 reads segment `k`
    /// off the fast tier — on the disk scheduler's *low-priority* lane,
    /// so a foreground request waking mid-stream is never stuck behind
    /// archive traffic — while lane 1 burns segment `k-1` onto the
    /// archive.
    fn copy_extent_to_archive(
        &self,
        src: u64,
        blocks: u64,
        dst: u64,
        dev: &ArchiveDevice,
    ) -> Result<(), BulletError> {
        let block_size = self.desc.block_size as u64;
        let seg = self.segment_bytes();
        let total = blocks * block_size;
        let mut pipe =
            Pipeline::with_trace(self.tracer.clone(), &["archive_read", "archive_write"]);
        let mut off = 0u64;
        while off < total {
            let end = (off + seg).min(total);
            let mut buf = vec![0u8; (end - off) as usize];
            pipe.begin_segment();
            let read = pipe.stage(0, || {
                self.storage
                    .read_blocks_low(src + off / block_size, &mut buf)
            });
            if let Err(e) = read {
                // Drop settles the charges accrued so far.
                drop(pipe);
                return Err(e.into());
            }
            let write = pipe.stage(1, || dev.write_blocks(dst + off / block_size, &buf));
            if let Err(e) = write {
                drop(pipe);
                return Err(e.into());
            }
            off = end;
        }
        Ok(())
    }

    /// Recalls one archived file back to the fast tier — the
    /// [`RecallJob`] increment, completing the promotion an archived
    /// read scheduled.  The copy runs under the file's in-flight guard
    /// with full rollback (the fast-tier extent is freed and the index
    /// requeued on error); the burned archive blocks are never reclaimed
    /// — WORM media keeps the old version forever.  Returns the recalled
    /// index, or `None` when the queue is empty (or the fast tier is too
    /// full — the index is requeued and the demotion job gets its turn).
    fn recall_one(&self) -> Result<Option<u32>, BulletError> {
        let Some(arch) = &self.archive else {
            return Ok(None);
        };
        let data_end = self.desc.data_end();
        loop {
            let picked = arch.recall_q.lock().iter().next().copied();
            let Some(idx) = picked else {
                return Ok(None);
            };
            arch.recall_q.lock().remove(&idx);
            let _busy = self.inflight_lock(idx);
            let inode = {
                let table = self.table_read();
                match table.get(idx) {
                    Ok(i) => *i,
                    Err(_) => continue, // deleted while queued
                }
            };
            let start = inode.start_block as u64;
            if start < data_end {
                continue; // already recalled, or the slot was reused
            }
            let blocks = inode.blocks(self.desc.block_size);
            let home = {
                let mut al = self.alloc_lock();
                let hint = al.place_hint;
                match al.extents.alloc_placed(blocks, self.cfg.placement, hint) {
                    Some(s) => {
                        al.place_hint = s + blocks;
                        s
                    }
                    None => {
                        // Fast tier full: requeue and yield to the
                        // demotion job (next rank), which makes room.
                        arch.recall_q.lock().insert(idx);
                        return Ok(None);
                    }
                }
            };
            let staged = (|| {
                let mut buf = vec![0u8; (blocks * self.desc.block_size as u64) as usize];
                arch.dev.read_blocks(start - data_end, &mut buf)?;
                self.storage
                    .write_sync_k(home, &buf, self.storage.replica_count())?;
                self.table_write().get_mut(idx)?.start_block = home as u32;
                if let Err(e) = self.write_inode_block(idx, self.storage.replica_count()) {
                    self.table_write().get_mut(idx)?.start_block = inode.start_block;
                    return Err(e);
                }
                Ok(())
            })();
            if let Err(e) = staged {
                self.alloc_lock().extents.free(home, blocks)?;
                arch.recall_q.lock().insert(idx);
                return Err(e);
            }
            self.stats.incr(counters::TIER_PROMOTIONS);
            return Ok(Some(idx));
        }
    }

    /// The WORM archive device (`None` when tiering is off) — grab it
    /// before [`crash`](Self::crash) to re-adopt the surviving platter
    /// via [`recover_with_archive`](Self::recover_with_archive).
    pub fn archive_device(&self) -> Option<Arc<ArchiveDevice>> {
        self.archive.as_ref().map(|a| Arc::clone(&a.dev))
    }

    /// Archived files whose promotion back to the fast tier is still
    /// pending (scheduled by their first post-demotion read).
    pub fn tier_recall_backlog(&self) -> usize {
        self.archive.as_ref().map_or(0, |a| a.recall_q.lock().len())
    }

    /// Compacts the RAM cache arena; returns bytes moved.
    pub fn compact_memory(&self) -> u64 {
        let moved = self.cache_write().compact();
        self.charge_memcpy(moved);
        self.stats.add(counters::PAYLOAD_BYTES_COPIED, moved);
        moved
    }

    /// Fragmentation snapshot of the disk data area.
    pub fn disk_frag_report(&self) -> crate::FragReport {
        self.alloc_lock().extents.report()
    }

    /// Per-zone fragmentation snapshots of the disk data area (`zones`
    /// equal slices), for placement-policy trend tracking.
    pub fn disk_zone_frag(&self, zones: u32) -> Vec<crate::FragReport> {
        self.alloc_lock().extents.zone_reports(zones)
    }

    /// Fragmentation snapshot of the RAM cache arena.
    pub fn cache_frag_report(&self) -> crate::FragReport {
        self.cache_read().frag_report()
    }

    /// Server operation counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Cache counters (`cache_hits`, `cache_misses`, …), snapshotted.
    pub fn cache_stats(&self) -> Vec<(&'static str, u64)> {
        self.cache_read().stats().snapshot()
    }

    /// Lock acquisition counters (`lock_*`) with `lock_contended_*`
    /// companions counting acquisitions that had to wait, snapshotted.
    pub fn lock_stats(&self) -> Vec<(&'static str, u64)> {
        self.locks.snapshot()
    }

    /// The telemetry handle (disabled unless
    /// [`BulletConfig::telemetry`] enabled it) — for flight-recorder
    /// exports and tests.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The per-client accounting table (disabled unless
    /// [`BulletConfig::accounting`] enabled it).
    pub fn accounting(&self) -> &ClientAccounting {
        &self.accounting
    }

    /// The live-monitoring snapshot behind the `MONITOR` RPC: one
    /// versioned JSON object carrying every counter, the tail of each
    /// telemetry ring, the SLO watchdog's event log, and the top
    /// per-client resource consumers.
    ///
    /// The top-level `"monitor_schema"` key versions the wire format;
    /// consumers must check it before parsing further (see DESIGN.md
    /// §14.3).
    pub fn monitor_snapshot(&self) -> String {
        const TAIL: usize = 8;
        const TOP_K: usize = 10;
        let mut out = String::with_capacity(4096);
        out.push_str("{\"monitor_schema\":1");
        out.push_str(&format!(",\"now_ns\":{}", self.cfg.clock.now().as_ns()));
        out.push_str(&format!(
            ",\"telemetry_enabled\":{}",
            self.telemetry.enabled()
        ));
        // Counters: server ops, then the cache's own stats, then locks —
        // disjoint name sets, merged into one flat object.
        out.push_str(",\"counters\":{");
        let mut first = true;
        for (name, value) in self
            .stats
            .snapshot()
            .into_iter()
            .chain(self.cache_stats())
            .chain(self.lock_stats())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push('}');
        // Gauge/delta series: ring metadata plus the last few samples.
        out.push_str(",\"series\":[");
        for (i, (name, instance, kind, len, dropped)) in
            self.telemetry.series_index().into_iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let samples = self.telemetry.series(name, instance);
            let tail = &samples[samples.len().saturating_sub(TAIL)..];
            out.push_str(&format!(
                "{{\"series\":\"{name}\",\"instance\":{instance},\"kind\":\"{}\",\
                 \"points\":{len},\"dropped\":{dropped},\"tail\":[",
                kind.label()
            ));
            for (j, s) in tail.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"t_ns\":{},\"v\":{}}}", s.at.as_ns(), s.value));
            }
            out.push_str("]}");
        }
        out.push(']');
        // The SLO watchdog's degradation/recovery event log.
        out.push_str(",\"slo_events\":[");
        for (i, e) in self.telemetry.slo_events().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_ns\":{},\"kind\":\"{}\",\"slo\":\"{}\",\"series\":\"{}\",\
                 \"instance\":{},\"value\":{},\"ceiling\":{}}}",
                e.at.as_ns(),
                e.kind.label(),
                e.slo,
                e.series,
                e.instance,
                e.value,
                e.ceiling
            ));
        }
        out.push(']');
        // Per-client accounting: population size plus the top offenders
        // by the cost metric (deterministic order; see `ClientUsage`).
        out.push_str(&format!(
            ",\"clients\":{{\"count\":{},\"top\":[",
            self.accounting.len()
        ));
        for (i, (client, u)) in self.accounting.top_k(TOP_K).into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"client\":{client},\"requests\":{},\"bytes_read\":{},\
                 \"bytes_written\":{},\"disk_ios\":{},\"cache_hits\":{},\
                 \"cache_misses\":{},\"retries\":{},\"cost\":{}}}",
                u.requests,
                u.bytes_read,
                u.bytes_written,
                u.disk_ios,
                u.cache_hits,
                u.cache_misses,
                u.retries,
                u.cost()
            ));
        }
        out.push_str("]}}");
        out
    }

    /// The mirrored storage (for failover tests and admin tooling).
    pub fn storage(&self) -> &MirroredDisk {
        &self.storage
    }

    /// The service port.
    pub fn port(&self) -> Port {
        self.cfg.port
    }

    /// This server's slot in its shard set ([`crate::shard::ShardSlot::solo`]
    /// when unsharded).
    pub fn shard_slot(&self) -> crate::shard::ShardSlot {
        self.cfg.shard
    }

    /// Number of live files.
    pub fn live_files(&self) -> usize {
        self.table_read().live_count()
    }

    /// Drops the whole RAM cache (admin/benchmark hook, modelling a flush
    /// or reboot without touching the disks).
    pub fn clear_cache(&self) {
        let mut table = self.table_write();
        let mut cache = self.cache_write();
        cache.clear();
        let live: Vec<u32> = table.live().map(|(i, _)| i).collect();
        for idx in live {
            if let Ok(inode) = table.get_mut(idx) {
                inode.index = 0;
            }
        }
    }

    /// A snapshot of the on-disk layout (Fig. 1 of the paper): the disk
    /// descriptor plus every live file's `(inode, start_block, size,
    /// cached)` row, sorted by start block.
    pub fn describe_layout(&self) -> (crate::DiskDescriptor, Vec<LayoutEntry>) {
        let table = self.table_read();
        let mut rows: Vec<LayoutEntry> = table
            .live()
            .map(|(idx, inode)| LayoutEntry {
                inode: idx,
                start_block: inode.start_block,
                blocks: inode.blocks(self.desc.block_size),
                size_bytes: inode.size_bytes,
                cached: inode.index != 0,
            })
            .collect();
        rows.sort_unstable_by_key(|e| e.start_block);
        (self.desc, rows)
    }

    /// Resets a file's garbage-collection age — the Amoeba touch/age
    /// protocol: owners of long-lived objects (above all the directory
    /// service, for every file it can still reach) periodically touch
    /// them; everything else eventually expires.
    ///
    /// # Errors
    ///
    /// Capability failures.
    pub fn touch(&self, cap: &Capability) -> Result<(), BulletError> {
        {
            let table = self.table_read();
            self.verify(&table, cap, Rights::NONE)?;
        }
        let idx = cap.object.value();
        self.ages_lock().insert(idx, self.cfg.max_age);
        Ok(())
    }

    /// One aging round: every live file's age drops by one, and files
    /// whose age reaches zero are deleted (inode zeroed on every disk,
    /// extent and cache freed).  Returns the number of files expired.
    ///
    /// The original Amoeba servers ran this periodically; untouched
    /// objects — lost capabilities, debris from crashed clients — age out
    /// without any global mark-and-sweep.
    ///
    /// # Errors
    ///
    /// Disk errors while zeroing expired inodes.
    pub fn age_all(&self) -> Result<u64, BulletError> {
        let _m = self.maint_read();
        let expired: Vec<u32> = {
            let mut ages = self.ages_lock();
            let mut expired = Vec::new();
            for (&idx, age) in ages.iter_mut() {
                *age = age.saturating_sub(1);
                if *age == 0 {
                    expired.push(idx);
                }
            }
            for idx in &expired {
                ages.remove(idx);
            }
            expired
        };
        let mut count = 0;
        for &idx in &expired {
            // Same destruction protocol as `delete`, including the
            // seal-before-zeroing rule for files of the newest log batch.
            let mut logst = self.log.as_ref().map(|l| l.lock());
            let _busy = self.inflight_lock(idx);
            let (start, blocks, size) = {
                let table = self.table_read();
                match table.get(idx) {
                    Ok(inode) => (
                        inode.start_block as u64,
                        inode.blocks(self.desc.block_size),
                        inode.size_bytes as u64,
                    ),
                    // Deleted by a concurrent request after expiry was
                    // decided: nothing left to reclaim.
                    Err(_) => continue,
                }
            };
            let archive_resident = self.archive.is_some() && start >= self.desc.data_end();
            let log_resident =
                !archive_resident && self.log_range().is_some_and(|(ls, _)| start >= ls);
            if let Some(st) = logst.as_mut() {
                if st.window.is_unsealed(idx) {
                    self.log_seal_locked(st)?;
                }
            }
            self.table_write().clear_keep_slot(idx)?;
            self.cache_write().remove(idx);
            let write = self.write_inode_block(idx, self.storage.replica_count());
            self.table_write().release_slot(idx);
            if archive_resident {
                let arch = self
                    .archive
                    .as_ref()
                    .expect("archive-resident implies tiering");
                arch.recall_q.lock().remove(&idx);
            } else if log_resident {
                let st = logst.as_mut().expect("log-resident implies log enabled");
                if let Some((hs, hl)) = st.homes.remove(&idx) {
                    self.alloc_lock().extents.free(hs, hl)?;
                }
                if st.window.file_gone(size) {
                    st.window.reset();
                }
            } else {
                self.alloc_lock().extents.free(start, blocks)?;
            }
            write?;
            count += 1;
        }
        self.stats.add(counters::AGED_OUT, count);
        Ok(count)
    }

    /// Administrative enumeration: owner capabilities for every live file.
    ///
    /// This is the hook the directory service's garbage collector uses to
    /// sweep unreachable files; it is not part of the client protocol.
    pub fn list_live_caps(&self) -> Vec<Capability> {
        self.table_read()
            .live()
            .map(|(idx, inode)| {
                self.scheme.mint(
                    self.cfg.port,
                    ObjNum::new(idx).expect("inode index fits 24 bits"),
                    Rights::ALL,
                    inode.random,
                )
            })
            .collect()
    }

    /// Restricts a capability server-side (the MAC scheme cannot do it
    /// client-side): returns a capability for the same file with
    /// `cap.rights ∩ mask`.
    ///
    /// # Errors
    ///
    /// Capability failures.
    pub fn restrict(&self, cap: &Capability, mask: Rights) -> Result<Capability, BulletError> {
        let table = self.table_read();
        let inode = self.verify(&table, cap, Rights::NONE)?;
        Ok(self.scheme.mint(
            self.cfg.port,
            cap.object,
            cap.rights.intersection(mask),
            inode.random,
        ))
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn verify<'a>(
        &self,
        table: &'a InodeTable,
        cap: &Capability,
        needed: Rights,
    ) -> Result<&'a Inode, BulletError> {
        if cap.port != self.cfg.port {
            return Err(BulletError::CapBad);
        }
        let inode = table.get(cap.object.value())?;
        self.scheme.check_rights(cap, inode.random, needed)?;
        Ok(inode)
    }

    /// The effective streaming segment: the configured size clamped to a
    /// whole number of disk blocks, minimum one block.
    fn segment_bytes(&self) -> u64 {
        let bs = self.desc.block_size as u64;
        (self.cfg.segment_size as u64 / bs).max(1) * bs
    }

    /// The whole-file cache-miss path: loads the file's extent from disk
    /// into the cache under the per-inode in-flight guard, holding no
    /// table or cache lock during the I/O itself.
    ///
    /// With a wire and a multi-segment file, the load pipelines: segment
    /// `k` comes off the disk while segment `k-1` is on the wire (only the
    /// part inside the byte window `[win_start, win_end)` of the file
    /// travels — the whole file for `BULLET.READ`, the requested range for
    /// a section read).  Segments land directly in the contiguous cache
    /// buffer, so streaming adds no copies.
    fn load_cold(
        &self,
        cap: &Capability,
        idx: u32,
        needed: Rights,
        wire: Option<&StreamWire>,
        win_start: u64,
        win_end: u64,
    ) -> Result<Bytes, BulletError> {
        let _busy = self.inflight_lock(idx);
        // Another request may have loaded the file while we waited for
        // the guard; a late hit here does not re-count the miss.
        if let Some(data) = self.cache_read().recheck(idx) {
            return Ok(data);
        }
        // Re-verify: the file may have been deleted, or moved by
        // compaction, before the guard was ours.  The snapshot is stable
        // for the whole I/O because delete/compaction need this guard.
        let inode = {
            let table = self.table_read();
            *self.verify(&table, cap, needed)?
        };
        let block_size = self.desc.block_size;
        let blocks = inode.blocks(block_size);
        let mut buf = vec![0u8; (blocks * block_size as u64) as usize];
        let size = inode.size_bytes as u64;
        if let Some(arch) = &self.archive {
            let start = inode.start_block as u64;
            if start >= self.desc.data_end() {
                // Archive tier: serve the read *from the archive device*
                // — no foreground stall waiting for a copy-back — and
                // schedule the promotion; the recall job moves the file
                // to the fast tier on a later idle tick.
                arch.dev
                    .read_blocks(start - self.desc.data_end(), &mut buf)?;
                buf.truncate(inode.size_bytes as usize);
                let data = Bytes::from(buf);
                {
                    let mut table = self.table_write();
                    let mut cache = self.cache_write();
                    self.cache_insert(&mut table, &mut cache, idx, data.clone())?;
                }
                arch.recall_q.lock().insert(idx);
                return Ok(data);
            }
        }
        self.read_extent(
            inode.start_block as u64,
            0,
            &mut buf,
            wire,
            win_start,
            win_end.min(size),
            size,
        )?;
        buf.truncate(inode.size_bytes as usize);
        let data = Bytes::from(buf);
        let mut table = self.table_write();
        let mut cache = self.cache_write();
        // A reference-count bump, not a copy: cache and reply share the
        // buffer the disk read into.
        self.cache_insert(&mut table, &mut cache, idx, data.clone())?;
        Ok(data)
    }

    /// The cache-miss path of a section read.  With unbounded readahead
    /// (the default) this is the whole-file load; with a bounded window it
    /// loads only the segments covering `[offset, end)` plus the readahead,
    /// serving the section without populating the whole-file cache.
    fn load_section_cold(
        &self,
        cap: &Capability,
        idx: u32,
        offset: u32,
        end: u32,
        wire: Option<&StreamWire>,
    ) -> Result<Bytes, BulletError> {
        if self.cfg.readahead_segments == u32::MAX {
            let data = self.load_cold(cap, idx, Rights::READ, wire, offset as u64, end as u64)?;
            return Ok(data.slice(offset as usize..end as usize));
        }
        let _busy = self.inflight_lock(idx);
        if let Some(data) = self.cache_read().recheck(idx) {
            return Ok(data.slice(offset as usize..end as usize));
        }
        let inode = {
            let table = self.table_read();
            *self.verify(&table, cap, Rights::READ)?
        };
        if self.archive.is_some() && (inode.start_block as u64) >= self.desc.data_end() {
            // Archived: partial loads would fight the recall job over
            // the same extent — take the whole-file archive path (which
            // also schedules the promotion).
            drop(_busy);
            let data = self.load_cold(cap, idx, Rights::READ, wire, offset as u64, end as u64)?;
            return Ok(data.slice(offset as usize..end as usize));
        }
        let block_size = self.desc.block_size as u64;
        let total = inode.blocks(self.desc.block_size) * block_size;
        let size = inode.size_bytes as u64;
        let seg = self.segment_bytes();
        let first_seg = offset as u64 / seg;
        let last_needed_seg = (end as u64).max(1).div_ceil(seg) - 1;
        let file_segs = total.div_ceil(seg).max(1);
        let last_seg =
            (last_needed_seg.saturating_add(self.cfg.readahead_segments as u64)).min(file_segs - 1);
        if first_seg == 0 && last_seg == file_segs - 1 {
            // The window covers the whole file: take the caching path.
            drop(_busy);
            let data = self.load_cold(cap, idx, Rights::READ, wire, offset as u64, end as u64)?;
            return Ok(data.slice(offset as usize..end as usize));
        }
        let load_start = first_seg * seg;
        let load_end = ((last_seg + 1) * seg).min(total);
        let mut buf = vec![0u8; (load_end - load_start) as usize];
        self.stats.incr(counters::PARTIAL_SECTION_LOADS);
        self.stats.add(
            counters::READAHEAD_BYTES,
            load_end.min(size).saturating_sub(end as u64),
        );
        self.read_extent(
            inode.start_block as u64,
            load_start,
            &mut buf,
            wire,
            offset as u64,
            end as u64,
            size,
        )?;
        // Partial files cannot enter the whole-file cache; the section is
        // a zero-copy slice of the load buffer.
        let rel = (offset as u64 - load_start) as usize;
        Ok(Bytes::from(buf).slice(rel..rel + (end - offset) as usize))
    }

    /// Reads the extent bytes `[load_off, load_off + buf.len())` of the
    /// file at `start_block` into `buf`.  Without a wire (or with the
    /// pipeline off, or a single segment) this is one contiguous disk
    /// read, exactly the seed behaviour.  With a wire it runs the
    /// two-lane pipeline: lane 0 reads segment `k` off the disk while
    /// lane 1 streams the part of segment `k-1` inside the file-byte
    /// window `[win_start, win_end)` to the client.
    #[allow(clippy::too_many_arguments)]
    fn read_extent(
        &self,
        start_block: u64,
        load_off: u64,
        buf: &mut [u8],
        wire: Option<&StreamWire>,
        win_start: u64,
        win_end: u64,
        size: u64,
    ) -> Result<(), BulletError> {
        // The mirror fails over silently; surface it as a server counter
        // so campaigns can prove degraded reads kept succeeding.
        let failovers_before = self.storage.stats().get("mirror_failovers");
        let result =
            self.read_extent_inner(start_block, load_off, buf, wire, win_start, win_end, size);
        let failed_over = self.storage.stats().get("mirror_failovers") - failovers_before;
        if failed_over > 0 {
            self.stats.add(counters::FAILOVER_READS, failed_over);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn read_extent_inner(
        &self,
        start_block: u64,
        load_off: u64,
        buf: &mut [u8],
        wire: Option<&StreamWire>,
        win_start: u64,
        win_end: u64,
        size: u64,
    ) -> Result<(), BulletError> {
        let block_size = self.desc.block_size as u64;
        let seg = self.segment_bytes();
        let first_block = start_block + load_off / block_size;
        let (Some(wire), true) = (wire, self.cfg.pipeline && buf.len() as u64 > seg) else {
            self.storage.read_blocks(first_block, buf)?;
            return Ok(());
        };
        self.stats.incr(counters::PIPELINED_READS);
        let mut pipe = Pipeline::with_trace(self.tracer.clone(), &["disk_read", "wire_send"]);
        let mut off = 0u64;
        let total = buf.len() as u64;
        while off < total {
            let end = (off + seg).min(total);
            pipe.begin_segment();
            let read = pipe.stage(0, || {
                self.storage.read_blocks(
                    first_block + off / block_size,
                    &mut buf[off as usize..end as usize],
                )
            });
            if let Err(e) = read {
                // Drop settles the charges accrued so far: the time the
                // pipeline spent before the failure is still spent.
                drop(pipe);
                return Err(e.into());
            }
            // Only the window part of the segment travels; the last sent
            // chunk is capped at the file size (the tail padding of the
            // final block never leaves the server).
            let sent_start = (load_off + off).max(win_start);
            let sent_end = (load_off + end).min(win_end).min(size);
            if sent_end > sent_start {
                self.stats.incr(counters::STREAM_SEGMENTS);
                pipe.stage(1, || wire.stage_reply_segment(sent_end - sent_start));
            }
            off = end;
        }
        Ok(())
    }

    /// The pipelined counterpart of
    /// [`write_data_blocks`](Self::write_data_blocks): for each segment,
    /// lane 0 receives the bytes from the wire, lane 1 copies them into
    /// the cache arena, and lane 2 writes the *previous* segment's blocks
    /// to the `k` synchronous replicas — so the disks are busy while the
    /// next segment is still arriving.
    fn write_data_pipelined(
        &self,
        start: u64,
        blocks: u64,
        data: &[u8],
        k: usize,
        wire: Option<&StreamWire>,
    ) -> Result<(), BulletError> {
        let block_size = self.desc.block_size as u64;
        let seg = self.segment_bytes();
        let total = blocks * block_size;
        let mut pipe =
            Pipeline::with_trace(self.tracer.clone(), &["wire_recv", "memcpy", "disk_write"]);
        let mut off = 0u64;
        while off < total {
            let end = (off + seg).min(total);
            let chunk_len = (end.min(data.len() as u64)).saturating_sub(off);
            pipe.begin_segment();
            self.stats.incr(counters::STREAM_SEGMENTS);
            if let Some(w) = wire {
                pipe.stage(0, || w.recv_request_segment(chunk_len));
            }
            pipe.stage(1, || {
                self.cfg.clock.advance(self.cfg.cpu.memcpy(chunk_len));
            });
            self.stats.add(counters::PAYLOAD_BYTES_COPIED, chunk_len);
            let write = pipe.stage(2, || {
                let chunk = &data[off as usize..(off + chunk_len) as usize];
                let first = start + off / block_size;
                if chunk_len == end - off {
                    self.storage.write_sync_k(first, chunk, k)
                } else {
                    // Final partial segment: pad to the block boundary.
                    let mut padded = vec![0u8; (end - off) as usize];
                    padded[..chunk.len()].copy_from_slice(chunk);
                    self.storage.write_sync_k(first, &padded, k)
                }
            });
            if let Err(e) = write {
                drop(pipe);
                return Err(e.into());
            }
            off = end;
        }
        Ok(())
    }

    /// Inserts into the cache, maintaining the inode index fields of the
    /// inserted file and of any evicted victims, and charging compaction
    /// copies.  Caller supplies both write guards (table before cache, per
    /// the lock order).
    fn cache_insert(
        &self,
        table: &mut InodeTable,
        cache: &mut FileCache,
        idx: u32,
        data: Bytes,
    ) -> Result<(), BulletError> {
        let outcome = cache.insert(idx, data)?;
        if outcome.compaction_bytes > 0 {
            self.charge_memcpy(outcome.compaction_bytes);
        }
        for victim in &outcome.evicted {
            if let Ok(inode) = table.get_mut(*victim) {
                inode.index = 0;
            }
        }
        table.get_mut(idx)?.index = outcome.slot + 1;
        Ok(())
    }

    /// Writes a file's data extent to `k` replicas, padding the final
    /// block only when needed — block-aligned files go straight from the
    /// shared [`Bytes`] handle with no copy.
    fn write_data_blocks(
        &self,
        start: u64,
        blocks: u64,
        data: &[u8],
        k: usize,
    ) -> Result<(), BulletError> {
        let total = (blocks * self.desc.block_size as u64) as usize;
        if data.len() == total {
            self.storage.write_sync_k(start, data, k)?;
        } else {
            let mut padded = vec![0u8; total];
            padded[..data.len()].copy_from_slice(data);
            self.storage.write_sync_k(start, &padded, k)?;
        }
        Ok(())
    }

    /// Write-through of the control block holding inode `idx` to `k`
    /// replicas.  Serialized on `inode_io` so that the image snapshot
    /// order equals the disk write order for files sharing a block.
    fn write_inode_block(&self, idx: u32, k: usize) -> Result<(), BulletError> {
        let _io = self.inode_io_lock();
        let (block, image) = {
            let table = self.table_read();
            let block = table.block_of(idx);
            (block, table.block_image(block))
        };
        self.storage.write_sync_k(block, &image, k)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Traced clock charges.
    // ------------------------------------------------------------------

    /// Charges the fixed request-service CPU cost under a `cpu.request`
    /// leaf span, so a per-op span tree accounts for every charged
    /// nanosecond.
    fn charge_request(&self) {
        self.requests_seen
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if self.telemetry.tick(self.cfg.clock.now()) {
            self.sample_gauges();
        }
        self.accounting.charge_current(|u| u.requests += 1);
        let _s = self.tracer.span("cpu.request");
        self.cfg.clock.advance(self.cfg.cpu.request());
    }

    /// Samples the layer gauges into the telemetry rings (at most once
    /// per telemetry period; see [`Telemetry::tick`]).
    ///
    /// Uses *try*-locks, taken one at a time and released before the
    /// next: a gauge whose lock is busy (or already held by this thread
    /// via a caller) is simply skipped this period, so sampling can
    /// never deadlock or stall the request that happened to cross the
    /// period boundary.
    fn sample_gauges(&self) {
        let now = self.cfg.clock.now();
        if let Some(cache) = self.cache.try_read() {
            let (used, protected, ghost) = (
                cache.used_bytes(),
                cache.protected_bytes(),
                cache.ghost_len() as u64,
            );
            // Hit/miss deltas per period (the rings lock is a leaf, so
            // sampling under the cache read guard is in lock order).
            self.telemetry.sample_counters(
                now,
                cache.stats(),
                &[
                    counters::CACHE_HITS,
                    counters::CACHE_MISSES,
                    counters::CACHE_EVICTIONS,
                ],
            );
            drop(cache);
            self.telemetry
                .gauge(counters::GAUGE_CACHE_USED_BYTES, 0, now, used);
            self.telemetry
                .gauge(counters::GAUGE_CACHE_PROTECTED_BYTES, 0, now, protected);
            self.telemetry
                .gauge(counters::GAUGE_CACHE_GHOST_LEN, 0, now, ghost);
        }
        if let Some(alloc) = self.alloc.try_lock() {
            let report = alloc.extents.report();
            drop(alloc);
            self.telemetry
                .gauge(counters::GAUGE_ALLOC_FREE_BLOCKS, 0, now, report.free);
            self.telemetry
                .gauge(counters::GAUGE_ALLOC_MAX_HOLE, 0, now, report.largest_hole);
        }
        if let Some(log) = &self.log {
            if let Some(st) = log.try_lock() {
                let resident = st.window.resident();
                drop(st);
                self.telemetry
                    .gauge(counters::GAUGE_LOG_RESIDENT_FILES, 0, now, resident);
            }
            self.telemetry.gauge(
                counters::GAUGE_GC_BATCH_OCCUPANCY,
                0,
                now,
                self.gc.pending_len() as u64,
            );
        }
        if let Some(arch) = &self.archive {
            self.telemetry.gauge(
                counters::GAUGE_TIER_ARCHIVE_BLOCKS,
                0,
                now,
                arch.dev.burned_blocks(),
            );
            if let Some(q) = arch.recall_q.try_lock() {
                self.telemetry
                    .gauge(counters::GAUGE_TIER_RECALL_QUEUE, 0, now, q.len() as u64);
            }
        }
        // Counter-delta series: op mix and cache behaviour per period.
        self.telemetry.sample_counters(
            now,
            &self.stats,
            &[
                counters::READS,
                counters::SECTION_READS,
                counters::CREATES,
                counters::DELETES,
                counters::MODIFIES,
                counters::BYTES_CREATED,
                counters::LOG_APPENDS,
                counters::GROUP_COMMIT_FLUSHES,
            ],
        );
    }

    /// Charges a `bytes`-long memory copy under a `cpu.memcpy` leaf span.
    fn charge_memcpy(&self, bytes: u64) {
        let mut s = self.tracer.span("cpu.memcpy");
        s.attr("bytes", bytes);
        self.cfg.clock.advance(self.cfg.cpu.memcpy(bytes));
    }

    // Counted lock acquisitions: every helper bumps `lock_<name>`, and
    // `lock_contended_<name>` when the uncontended fast path failed.
    // With tracing on, each acquisition additionally records a zero-width
    // `lock.<shard>` instant carrying the contended flag — zero-width
    // because lock waits block real threads but never advance the
    // simulated clock.

    fn counted_lock<G>(
        &self,
        total: &'static str,
        contended: &'static str,
        shard: &'static str,
        try_acquire: impl FnOnce() -> Option<G>,
        acquire: impl FnOnce() -> G,
    ) -> G {
        self.locks.incr(total);
        let (guard, waited) = match try_acquire() {
            Some(g) => (g, false),
            None => {
                self.locks.incr(contended);
                (acquire(), true)
            }
        };
        self.tracer
            .instant(shard, &[("contended", AttrValue::Bool(waited))]);
        guard
    }

    fn table_read(&self) -> RwLockReadGuard<'_, InodeTable> {
        self.counted_lock(
            counters::LOCK_TABLE_READ,
            counters::LOCK_CONTENDED_TABLE_READ,
            "lock.table_read",
            || self.table.try_read(),
            || self.table.read(),
        )
    }

    fn table_write(&self) -> RwLockWriteGuard<'_, InodeTable> {
        self.counted_lock(
            counters::LOCK_TABLE_WRITE,
            counters::LOCK_CONTENDED_TABLE_WRITE,
            "lock.table_write",
            || self.table.try_write(),
            || self.table.write(),
        )
    }

    fn cache_read(&self) -> RwLockReadGuard<'_, FileCache> {
        self.counted_lock(
            counters::LOCK_CACHE_READ,
            counters::LOCK_CONTENDED_CACHE_READ,
            "lock.cache_read",
            || self.cache.try_read(),
            || self.cache.read(),
        )
    }

    fn cache_write(&self) -> RwLockWriteGuard<'_, FileCache> {
        self.counted_lock(
            counters::LOCK_CACHE_WRITE,
            counters::LOCK_CONTENDED_CACHE_WRITE,
            "lock.cache_write",
            || self.cache.try_write(),
            || self.cache.write(),
        )
    }

    fn alloc_lock(&self) -> MutexGuard<'_, AllocState> {
        self.counted_lock(
            counters::LOCK_ALLOC,
            counters::LOCK_CONTENDED_ALLOC,
            "lock.alloc",
            || self.alloc.try_lock(),
            || self.alloc.lock(),
        )
    }

    fn ages_lock(&self) -> MutexGuard<'_, HashMap<u32, u32>> {
        self.counted_lock(
            counters::LOCK_AGES,
            counters::LOCK_CONTENDED_AGES,
            "lock.ages",
            || self.ages.try_lock(),
            || self.ages.lock(),
        )
    }

    fn inode_io_lock(&self) -> MutexGuard<'_, ()> {
        self.counted_lock(
            counters::LOCK_INODE_IO,
            counters::LOCK_CONTENDED_INODE_IO,
            "lock.inode_io",
            || self.inode_io.try_lock(),
            || self.inode_io.lock(),
        )
    }

    /// The group-commit log guard.  Uncounted by design: commits are
    /// serialized on this mutex on purpose — its "contention" is the
    /// batching doing its job, not a scalability signal.
    fn log_lock(&self) -> MutexGuard<'_, LogState> {
        self.log
            .as_ref()
            .expect("log_lock requires cfg.log_blocks > 0")
            .lock()
    }

    fn maint_read(&self) -> RwLockReadGuard<'_, ()> {
        self.counted_lock(
            counters::LOCK_MAINTENANCE_READ,
            counters::LOCK_CONTENDED_MAINTENANCE_READ,
            "lock.maintenance_read",
            || self.maintenance.try_read(),
            || self.maintenance.read(),
        )
    }

    fn maint_write(&self) -> RwLockWriteGuard<'_, ()> {
        self.counted_lock(
            counters::LOCK_MAINTENANCE_WRITE,
            counters::LOCK_CONTENDED_MAINTENANCE_WRITE,
            "lock.maintenance_write",
            || self.maintenance.try_write(),
            || self.maintenance.write(),
        )
    }

    fn inflight_lock(&self, idx: u32) -> InflightGuard<'_> {
        self.locks.incr(counters::LOCK_INFLIGHT);
        let (guard, waited) = self.inflight.acquire(idx);
        if waited {
            self.locks.incr(counters::LOCK_CONTENDED_INFLIGHT);
        }
        self.tracer
            .instant("lock.inflight", &[("contended", AttrValue::Bool(waited))]);
        guard
    }
}

// ----------------------------------------------------------------------
// The ranked maintenance jobs (see `crate::maintenance`).  Urgency checks
// use raw *uncounted* try-locks by design: they are advisory peeks taken
// every tick, and must not perturb the counted lock telemetry of the real
// work paths (nor deadlock — a busy lock just means "guess").
// ----------------------------------------------------------------------

/// Rank 0: migrate one group-commit log file to its contiguous home.
/// Draining the window keeps it available for future batches.
struct LogMigrationJob<'a>(&'a BulletServer);

impl MaintenanceJob for LogMigrationJob<'_> {
    fn name(&self) -> &'static str {
        "log_migration"
    }
    fn skip_counter(&self) -> &'static str {
        counters::MAINT_SKIPS_LOG_MIGRATION
    }
    fn urgency(&self) -> u64 {
        self.0
            .log
            .as_ref()
            .map_or(0, |l| l.lock().window.resident())
    }
    fn increment(&self) -> Result<JobTick, BulletError> {
        let Some(logmx) = &self.0.log else {
            return Ok(JobTick::Idle);
        };
        let mut st = logmx.lock();
        if st.window.resident() > 0 && self.0.migrate_one_log_file(&mut st)?.is_some() {
            return Ok(JobTick::Progressed {
                remaining: st.window.resident(),
            });
        }
        Ok(JobTick::Idle)
    }
}

/// Rank 1: pack the data area by one extent move.
struct PackingJob<'a>(&'a BulletServer);

impl MaintenanceJob for PackingJob<'_> {
    fn name(&self) -> &'static str {
        "packing"
    }
    fn skip_counter(&self) -> &'static str {
        counters::MAINT_SKIPS_PACKING
    }
    fn urgency(&self) -> u64 {
        // Advisory: any live file may leave a hole worth packing; the
        // increment computes the real plan and reports Idle when the
        // area is already packed.
        self.0.table.try_read().map_or(1, |t| t.live_count() as u64)
    }
    fn increment(&self) -> Result<JobTick, BulletError> {
        Ok(match self.0.pack_one()? {
            Some(remaining) => JobTick::Progressed { remaining },
            None => JobTick::Idle,
        })
    }
}

/// Rank 2: recall one archived file the read path asked for.  Ranked
/// above demotion: a pending recall is a client actually waiting on
/// archive latency, demotion is only space reclamation.
struct RecallJob<'a>(&'a BulletServer);

impl MaintenanceJob for RecallJob<'_> {
    fn name(&self) -> &'static str {
        "recall"
    }
    fn skip_counter(&self) -> &'static str {
        counters::MAINT_SKIPS_RECALL
    }
    fn urgency(&self) -> u64 {
        self.0
            .archive
            .as_ref()
            .map_or(0, |a| a.recall_q.lock().len() as u64)
    }
    fn increment(&self) -> Result<JobTick, BulletError> {
        Ok(match self.0.recall_one()? {
            Some(_) => JobTick::Progressed {
                remaining: self.urgency(),
            },
            None => JobTick::Idle,
        })
    }
}

/// Rank 3: demote one cold file to the archive tier, but only while the
/// fast tier sits above its high-water mark.
struct DemotionJob<'a>(&'a BulletServer);

impl MaintenanceJob for DemotionJob<'_> {
    fn name(&self) -> &'static str {
        "demotion"
    }
    fn skip_counter(&self) -> &'static str {
        counters::MAINT_SKIPS_DEMOTION
    }
    fn urgency(&self) -> u64 {
        let s = self.0;
        if s.archive.is_none() {
            return 0;
        }
        // Occupancy against the high-water mark.  A contended allocator
        // means "assume urgent" — the increment re-checks everything
        // under its own locks.
        let Some(al) = s.alloc.try_lock() else {
            return 1;
        };
        let report = al.extents.report();
        drop(al);
        let used = report.total - report.free;
        u64::from(used * 100 > report.total.max(1) * s.cfg.tier_high_water_pct as u64)
    }
    fn increment(&self) -> Result<JobTick, BulletError> {
        Ok(match self.0.demote_one()? {
            Some(_) => JobTick::Progressed { remaining: 0 },
            None => JobTick::Idle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> BulletServer {
        BulletServer::format(BulletConfig::small_test(), 2).unwrap()
    }

    fn payload(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn create_read_size_delete_cycle() {
        let s = server();
        let cap = s.create(payload(1000, 7), 2).unwrap();
        assert_eq!(s.size(&cap).unwrap(), 1000);
        assert_eq!(s.read(&cap).unwrap(), payload(1000, 7));
        s.delete(&cap).unwrap();
        assert_eq!(s.read(&cap).unwrap_err(), BulletError::NotFound);
        assert_eq!(s.size(&cap).unwrap_err(), BulletError::NotFound);
        assert_eq!(s.delete(&cap).unwrap_err(), BulletError::NotFound);
    }

    #[test]
    fn files_are_immutable_distinct_objects() {
        let s = server();
        let a = s.create(payload(10, 1), 1).unwrap();
        let b = s.create(payload(10, 2), 1).unwrap();
        assert_ne!(a.object, b.object);
        assert_eq!(s.read(&a).unwrap(), payload(10, 1));
        assert_eq!(s.read(&b).unwrap(), payload(10, 2));
    }

    #[test]
    fn zero_byte_file_works() {
        let s = server();
        let cap = s.create(Bytes::new(), 1).unwrap();
        assert_eq!(s.size(&cap).unwrap(), 0);
        assert_eq!(s.read(&cap).unwrap(), Bytes::new());
        s.delete(&cap).unwrap();
    }

    #[test]
    fn forged_capability_rejected() {
        let s = server();
        let cap = s.create(payload(10, 1), 1).unwrap();
        let mut forged = cap;
        forged.check ^= 1;
        assert_eq!(s.read(&forged).unwrap_err(), BulletError::CapBad);
        let mut wrong_port = cap;
        wrong_port.port = Port::from_u64(123);
        assert_eq!(s.read(&wrong_port).unwrap_err(), BulletError::CapBad);
    }

    #[test]
    fn restricted_capability_enforces_rights() {
        let s = server();
        let owner = s.create(payload(10, 1), 1).unwrap();
        let reader = s.restrict(&owner, Rights::READ).unwrap();
        assert_eq!(s.read(&reader).unwrap(), payload(10, 1));
        assert_eq!(s.delete(&reader).unwrap_err(), BulletError::Denied);
        // Claiming more rights than minted fails verification.
        let mut amplified = reader;
        amplified.rights = Rights::ALL;
        assert_eq!(s.delete(&amplified).unwrap_err(), BulletError::CapBad);
    }

    #[test]
    fn read_section_and_ranges() {
        let s = server();
        let data: Bytes = Bytes::from((0u8..200).collect::<Vec<u8>>());
        let cap = s.create(data.clone(), 1).unwrap();
        assert_eq!(s.read_section(&cap, 10, 20).unwrap(), data.slice(10..30));
        assert_eq!(s.read_section(&cap, 0, 200).unwrap(), data);
        assert_eq!(s.read_section(&cap, 0, 0).unwrap(), Bytes::new());
        assert_eq!(
            s.read_section(&cap, 150, 51).unwrap_err(),
            BulletError::BadRange
        );
        assert_eq!(
            s.read_section(&cap, u32::MAX, 2).unwrap_err(),
            BulletError::BadRange
        );
    }

    #[test]
    fn modify_creates_new_version_leaving_original() {
        let s = server();
        let v1 = s.create(Bytes::from_static(b"hello world"), 1).unwrap();
        let v2 = s.modify(&v1, 6, b"earth", 1).unwrap();
        assert_eq!(s.read(&v1).unwrap(), Bytes::from_static(b"hello world"));
        assert_eq!(s.read(&v2).unwrap(), Bytes::from_static(b"hello earth"));
        // Growing modification.
        let v3 = s.modify(&v1, 6, b"wide world", 1).unwrap();
        assert_eq!(
            s.read(&v3).unwrap(),
            Bytes::from_static(b"hello wide world")
        );
    }

    #[test]
    fn append_extends_into_new_version() {
        let s = server();
        let v1 = s.create(Bytes::from_static(b"log:"), 1).unwrap();
        let v2 = s.append(&v1, b" entry1", 1).unwrap();
        assert_eq!(s.read(&v2).unwrap(), Bytes::from_static(b"log: entry1"));
        assert_eq!(s.read(&v1).unwrap(), Bytes::from_static(b"log:"));
    }

    #[test]
    fn p_factor_validated_against_disk_count() {
        let s = server();
        assert!(matches!(
            s.create(payload(10, 0), 3).unwrap_err(),
            BulletError::BadPFactor {
                requested: 3,
                disks: 2
            }
        ));
        for p in 0..=2 {
            s.create(payload(10, 0), p).unwrap();
        }
    }

    #[test]
    fn pfactor_zero_is_volatile_until_sync() {
        let s = server();
        let cap = s.create(payload(100, 9), 0).unwrap();
        assert!(s.storage().pending_background() > 0);
        // Still readable from cache.
        assert_eq!(s.read(&cap).unwrap(), payload(100, 9));
        s.sync().unwrap();
        assert_eq!(s.storage().pending_background(), 0);
    }

    #[test]
    fn crash_with_pfactor_zero_loses_file_with_one_keeps_it() {
        let cfg = BulletConfig::small_test();
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        let durable = s.create(payload(100, 1), 1).unwrap();
        let volatile = s.create(payload(100, 2), 0).unwrap();

        let storage = s.crash();
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        assert_eq!(s2.read(&durable).unwrap(), payload(100, 1));
        // The p=0 file's inode never reached disk: the capability is dead.
        assert!(matches!(
            s2.read(&volatile).unwrap_err(),
            BulletError::NotFound | BulletError::CapBad
        ));
    }

    #[test]
    fn clean_shutdown_preserves_pfactor_zero_files() {
        let cfg = BulletConfig::small_test();
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        let cap = s.create(payload(100, 2), 0).unwrap();
        let storage = s.shutdown().unwrap();
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        assert_eq!(s2.read(&cap).unwrap(), payload(100, 2));
    }

    #[test]
    fn capabilities_survive_restart() {
        let cfg = BulletConfig::small_test();
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        let cap = s.create(payload(5000, 3), 2).unwrap();
        let storage = s.shutdown().unwrap();
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        assert_eq!(s2.read(&cap).unwrap(), payload(5000, 3));
        assert_eq!(s2.live_files(), 1);
    }

    #[test]
    fn cache_hit_after_cold_read() {
        let cfg = BulletConfig::small_test();
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        let cap = s.create(payload(1000, 4), 2).unwrap();
        let storage = s.shutdown().unwrap();
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        s2.read(&cap).unwrap(); // cold: disk
        s2.read(&cap).unwrap(); // warm: cache
        let stats: std::collections::HashMap<_, _> = s2.cache_stats().into_iter().collect();
        assert_eq!(stats["cache_misses"], 1);
        assert_eq!(stats["cache_hits"], 1);
    }

    #[test]
    fn no_space_and_rollback() {
        let mut cfg = BulletConfig::small_test();
        cfg.disk_blocks = 64; // tiny disk: 8 control blocks leave ~56 data blocks
        cfg.cache_capacity = 1 << 20;
        let s = BulletServer::format(cfg, 2).unwrap();
        let big = payload(40 * 512, 1);
        let cap = s.create(big, 1).unwrap();
        // A second big file cannot fit.
        assert_eq!(
            s.create(payload(40 * 512, 2), 1).unwrap_err(),
            BulletError::NoSpace
        );
        // The failure left no debris: deleting the first frees everything.
        let files_before = s.live_files();
        assert_eq!(files_before, 1);
        s.delete(&cap).unwrap();
        s.create(payload(40 * 512, 2), 1).unwrap();
    }

    #[test]
    fn too_large_for_cache_rejected() {
        let mut cfg = BulletConfig::small_test();
        cfg.cache_capacity = 4096;
        cfg.rnode_slots = 8;
        let s = BulletServer::format(cfg, 2).unwrap();
        assert!(matches!(
            s.create(payload(8192, 0), 1).unwrap_err(),
            BulletError::TooLarge { .. }
        ));
    }

    #[test]
    fn disk_failover_is_transparent_to_clients() {
        use amoeba_disk::FaultyDisk;
        let cfg = BulletConfig::small_test();
        let a = Arc::new(FaultyDisk::new(RamDisk::new(
            cfg.block_size,
            cfg.disk_blocks,
        )));
        let b = Arc::new(FaultyDisk::new(RamDisk::new(
            cfg.block_size,
            cfg.disk_blocks,
        )));
        let storage = MirroredDisk::new(vec![a.clone(), b.clone()]).unwrap();
        let s = BulletServer::format_on(cfg.clone(), storage).unwrap();

        let cap = s.create(payload(2000, 5), 2).unwrap();
        a.fail_now();
        // Reads (cold) and creates keep working on the surviving disk.
        let cap2 = s.create(payload(100, 6), 1).unwrap();
        assert_eq!(s.read(&cap2).unwrap(), payload(100, 6));
        // Evict the cache by restarting, to force a disk read.
        let storage = s.shutdown().unwrap();
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        assert_eq!(s2.read(&cap).unwrap(), payload(2000, 5));
    }

    #[test]
    fn compaction_closes_holes_and_preserves_files() {
        let mut cfg = BulletConfig::small_test();
        cfg.disk_blocks = 256;
        let s = BulletServer::format(cfg, 2).unwrap();
        let caps: Vec<Capability> = (0..10)
            .map(|i| s.create(payload(5 * 512, i as u8), 1).unwrap())
            .collect();
        // Delete every other file → shattered free space.
        for cap in caps.iter().step_by(2) {
            s.delete(cap).unwrap();
        }
        let before = s.disk_frag_report();
        assert!(before.external_fragmentation > 0.0);
        let moved = s.compact_disk().unwrap();
        assert!(moved > 0);
        let after = s.disk_frag_report();
        assert_eq!(after.hole_count, 1);
        assert_eq!(after.free, before.free);
        // Survivors read back intact (bypassing the cache via restart).
        let storage = s.shutdown().unwrap();
        let s2 = BulletServer::recover(BulletConfig::small_test(), storage).unwrap();
        for (i, cap) in caps.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(s2.read(cap).unwrap(), payload(5 * 512, i as u8));
            }
        }
    }

    #[test]
    fn compact_tick_moves_incrementally_and_yields_to_traffic() {
        let mut cfg = BulletConfig::small_test();
        cfg.disk_blocks = 256;
        let s = BulletServer::format(cfg, 2).unwrap();
        let caps: Vec<Capability> = (0..10)
            .map(|i| s.create(payload(5 * 512, i as u8), 1).unwrap())
            .collect();
        for cap in caps.iter().step_by(2) {
            s.delete(cap).unwrap();
        }
        assert!(s.disk_frag_report().external_fragmentation > 0.0);

        // The setup traffic preempts the first tick; the second runs.
        assert_eq!(s.compact_tick().unwrap(), CompactTick::Preempted);
        assert!(matches!(
            s.compact_tick().unwrap(),
            CompactTick::Moved { .. }
        ));
        // A foreground read between ticks preempts the next one again.
        assert_eq!(s.read(&caps[1]).unwrap(), payload(5 * 512, 1));
        assert_eq!(s.compact_tick().unwrap(), CompactTick::Preempted);
        assert_eq!(s.stats().get(counters::COMPACTION_PREEMPTIONS), 2);

        // Left alone, ticks drain the plan one move at a time to Idle.
        let mut moves = 1;
        loop {
            match s.compact_tick().unwrap() {
                CompactTick::Moved { remaining } => {
                    moves += 1;
                    if remaining == 0 {
                        assert_eq!(s.compact_tick().unwrap(), CompactTick::Idle);
                        break;
                    }
                }
                CompactTick::Idle => break,
                CompactTick::Preempted => panic!("no traffic, no preemption"),
            }
        }
        assert!(moves > 1, "incremental compaction took {moves} moves");
        assert_eq!(s.stats().get(counters::DISK_COMPACTION_MOVES), moves);
        let after = s.disk_frag_report();
        assert_eq!(after.hole_count, 1);
        assert_eq!(after.external_fragmentation, 0.0);

        // Survivors read back intact after the incremental moves
        // (restart to bypass the cache).
        let storage = s.shutdown().unwrap();
        let mut cfg2 = BulletConfig::small_test();
        cfg2.disk_blocks = 256;
        let s2 = BulletServer::recover(cfg2, storage).unwrap();
        for (i, cap) in caps.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(s2.read(cap).unwrap(), payload(5 * 512, i as u8));
            }
        }
    }

    #[test]
    fn failed_compact_tick_releases_the_reserved_destination() {
        use amoeba_disk::FaultyDisk;
        // Fail the disk at every op offset inside the move in turn, so
        // each fallible step (data read, replica write, inode write)
        // errors at least once.  A failed tick must release its
        // destination reservation: otherwise free space shrinks by the
        // reserved region and the next tick's reserve() reports the
        // destination as not free (Corrupt) instead of retrying the
        // move and surfacing the disk error again.
        for fail_at in 0..8u64 {
            let mut cfg = BulletConfig::small_test();
            cfg.disk_blocks = 256;
            let a = Arc::new(FaultyDisk::new(RamDisk::new(
                cfg.block_size,
                cfg.disk_blocks,
            )));
            let storage = MirroredDisk::new(vec![a.clone()]).unwrap();
            let s = BulletServer::format_on(cfg, storage).unwrap();
            let caps: Vec<Capability> = (0..6)
                .map(|i| s.create(payload(5 * 512, i as u8), 1).unwrap())
                .collect();
            for cap in caps.iter().step_by(2) {
                s.delete(cap).unwrap();
            }
            let free_before = s.disk_frag_report().free;
            assert_eq!(s.compact_tick().unwrap(), CompactTick::Preempted);

            // Depending on the offset the first tick may complete its
            // move before the countdown strikes; whichever tick fails,
            // it must fail with the disk error, never Corrupt, and
            // leave the free total intact.
            a.fail_after(fail_at);
            let mut saw_disk_error = false;
            for tick in 0..3 {
                match s.compact_tick() {
                    Ok(_) => {}
                    Err(BulletError::Disk(_)) => saw_disk_error = true,
                    Err(e) => panic!("tick {tick} at op {fail_at}: unexpected {e:?}"),
                }
                assert_eq!(
                    s.disk_frag_report().free,
                    free_before,
                    "tick {tick} at op {fail_at} lost free space"
                );
            }
            assert!(saw_disk_error, "countdown {fail_at} never struck");
        }
    }

    #[test]
    fn near_hint_placement_keeps_creates_contiguous() {
        let mut cfg = BulletConfig::small_test();
        cfg.placement = crate::Placement::NearHint;
        let s = BulletServer::format(cfg, 1).unwrap();
        // Fragment the front of the data area, then create a run of
        // files: NearHint continues from the last extent's end instead of
        // first-fitting back into the front holes.
        let front: Vec<Capability> = (0..6)
            .map(|i| s.create(payload(512, i as u8), 1).unwrap())
            .collect();
        for cap in front.iter().step_by(2) {
            s.delete(cap).unwrap();
        }
        let run: Vec<Capability> = (0..4)
            .map(|i| s.create(payload(2 * 512, 0x40 + i as u8), 1).unwrap())
            .collect();
        let (_, layout) = s.describe_layout();
        let mut starts: Vec<u64> = run
            .iter()
            .map(|cap| {
                layout
                    .iter()
                    .find(|e| e.inode == cap.object.value())
                    .unwrap()
                    .start_block as u64
            })
            .collect();
        starts.sort_unstable();
        for pair in starts.windows(2) {
            assert_eq!(pair[1], pair[0] + 2, "run not contiguous: {starts:?}");
        }
        for (i, cap) in run.iter().enumerate() {
            assert_eq!(s.read(cap).unwrap(), payload(2 * 512, 0x40 + i as u8));
        }
    }

    #[test]
    fn zone_frag_reports_cover_the_data_area() {
        let s = server();
        let zones = s.disk_zone_frag(4);
        assert_eq!(zones.len(), 4);
        let whole = s.disk_frag_report();
        assert_eq!(zones.iter().map(|z| z.total).sum::<u64>(), whole.total);
        assert_eq!(zones.iter().map(|z| z.free).sum::<u64>(), whole.free);
    }

    #[test]
    fn recovery_detects_overlap_corruption() {
        let cfg = BulletConfig::small_test();
        let s = BulletServer::format(cfg.clone(), 1).unwrap();
        let a = s.create(payload(512, 1), 1).unwrap();
        let _b = s.create(payload(512, 2), 1).unwrap();
        let storage = s.shutdown().unwrap();

        // Corrupt: rewrite inode b to overlap inode a's extent.
        let report = InodeTable::load(&storage, RepairPolicy::Fail).unwrap();
        let mut table = report.table;
        let a_start = table.get(a.object.value()).unwrap().start_block;
        let b_idx = table
            .live()
            .map(|(i, _)| i)
            .find(|&i| i != a.object.value())
            .unwrap();
        table.get_mut(b_idx).unwrap().start_block = a_start;
        let block = table.block_of(b_idx);
        let image = table.block_image(block);
        storage.write_blocks(block, &image).unwrap();

        assert!(matches!(
            BulletServer::recover(cfg.clone(), storage),
            Err(BulletError::Corrupt(_))
        ));
    }

    #[test]
    fn recovery_repairs_overlap_with_zerobad() {
        let mut cfg = BulletConfig::small_test();
        let s = BulletServer::format(cfg.clone(), 1).unwrap();
        let a = s.create(payload(512, 1), 1).unwrap();
        let b = s.create(payload(512, 2), 1).unwrap();
        let storage = s.shutdown().unwrap();

        let report = InodeTable::load(&storage, RepairPolicy::Fail).unwrap();
        let mut table = report.table;
        let a_start = table.get(a.object.value()).unwrap().start_block;
        table.get_mut(b.object.value()).unwrap().start_block = a_start;
        let block = table.block_of(b.object.value());
        let image = table.block_image(block);
        storage.write_blocks(block, &image).unwrap();

        cfg.repair = RepairPolicy::ZeroBad;
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        // One of the overlapping pair survives; the server is operational.
        assert_eq!(s2.live_files(), 1);
        s2.create(payload(100, 3), 1).unwrap();
    }

    #[test]
    fn clear_cache_forces_disk_reads() {
        let s = server();
        let cap = s.create(payload(3000, 8), 2).unwrap();
        s.clear_cache();
        assert_eq!(s.read(&cap).unwrap(), payload(3000, 8));
        let stats: std::collections::HashMap<_, _> = s.cache_stats().into_iter().collect();
        assert_eq!(stats["cache_misses"], 1);
    }

    #[test]
    fn layout_dump_matches_files() {
        let s = server();
        let a = s.create(payload(600, 1), 1).unwrap();
        let b = s.create(payload(100, 2), 1).unwrap();
        let (desc, rows) = s.describe_layout();
        assert_eq!(desc.block_size, 512);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].inode, a.object.value());
        assert_eq!(rows[0].blocks, 2);
        assert_eq!(rows[1].inode, b.object.value());
        assert!(rows.iter().all(|r| r.cached));
        assert_eq!(rows[0].start_block as u64 + 2, rows[1].start_block as u64);
        s.clear_cache();
        let (_, rows) = s.describe_layout();
        assert!(rows.iter().all(|r| !r.cached));
    }

    #[test]
    fn untouched_files_age_out() {
        let mut cfg = BulletConfig::small_test();
        cfg.max_age = 3;
        let s = BulletServer::format(cfg, 2).unwrap();
        let kept = s.create(payload(100, 1), 1).unwrap();
        let doomed = s.create(payload(100, 2), 1).unwrap();
        for round in 0..3 {
            s.touch(&kept).unwrap();
            let expired = s.age_all().unwrap();
            assert_eq!(expired, u64::from(round == 2), "round {round}");
        }
        assert_eq!(s.read(&kept).unwrap(), payload(100, 1));
        assert_eq!(s.read(&doomed).unwrap_err(), BulletError::NotFound);
        assert_eq!(s.stats().get("aged_out"), 1);
        // Expiry is durable: the inode was zeroed on disk.
        let storage = s.shutdown().unwrap();
        let s2 = BulletServer::recover(BulletConfig::small_test(), storage).unwrap();
        assert!(s2.read(&doomed).is_err());
        assert!(s2.read(&kept).is_ok());
    }

    #[test]
    fn touch_requires_a_genuine_capability() {
        let s = server();
        let cap = s.create(payload(10, 1), 1).unwrap();
        let mut forged = cap;
        forged.check ^= 2;
        assert_eq!(s.touch(&forged).unwrap_err(), BulletError::CapBad);
        s.touch(&cap).unwrap();
    }

    #[test]
    fn recovery_resets_ages_generously() {
        let mut cfg = BulletConfig::small_test();
        cfg.max_age = 2;
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        let cap = s.create(payload(10, 1), 1).unwrap();
        s.age_all().unwrap(); // age 1 remaining
        let storage = s.shutdown().unwrap();
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        // After recovery the file has a fresh max_age again.
        s2.age_all().unwrap();
        assert!(s2.read(&cap).is_ok(), "one round must not expire it");
        s2.age_all().unwrap();
        assert!(s2.read(&cap).is_err(), "two rounds without touch expire it");
    }

    #[test]
    fn amoeba_scheme_allows_client_side_restriction() {
        use amoeba_cap::AmoebaScheme;
        let mut cfg = BulletConfig::small_test();
        cfg.scheme = SchemeKind::Amoeba;
        let s = BulletServer::format(cfg, 2).unwrap();
        let owner = s.create(payload(50, 3), 1).unwrap();
        // The client restricts WITHOUT talking to the server — the whole
        // point of the sparse-capabilities scheme.
        let reader = AmoebaScheme::new().restrict(&owner, Rights::READ).unwrap();
        assert_eq!(s.read(&reader).unwrap(), payload(50, 3));
        assert_eq!(s.delete(&reader).unwrap_err(), BulletError::Denied);
        // Amplification still fails.
        let mut amplified = reader;
        amplified.rights = Rights::ALL;
        assert_eq!(s.delete(&amplified).unwrap_err(), BulletError::CapBad);
        s.delete(&owner).unwrap();
    }

    #[test]
    fn operations_charge_simulated_time() {
        let cfg = BulletConfig::small_test();
        let clock = cfg.clock.clone();
        let s = BulletServer::format(cfg, 2).unwrap();
        clock.reset();
        let cap = s.create(payload(10_000, 1), 2).unwrap();
        // Plain RAM disks charge nothing, so this is CPU only: the fixed
        // request cost plus one 10 KB reception copy (≈ 2.75 ms).
        let create_time = clock.now();
        assert!(
            create_time.as_ms_f64() > 2.0,
            "create charged {create_time}"
        );
        let before = clock.now();
        s.read(&cap).unwrap(); // cache hit: cheap
        let read_time = clock.now() - before;
        assert!(read_time < create_time);
    }

    /// With tracing on, the leaves of an operation's span tree account
    /// for every simulated nanosecond the operation charged: the union of
    /// leaf intervals equals the root's duration, for both the mirrored
    /// create and the cold read.
    #[test]
    fn traced_op_leaves_cover_the_whole_duration() {
        use amoeba_sim::trace::leaf_coverage;

        let mut cfg = BulletConfig::small_test();
        cfg.trace = TraceConfig::enabled(cfg.clock.clone());
        let tracer = cfg.trace.tracer().clone();
        let s = BulletServer::format(cfg, 2).unwrap();

        let cap = s.create(payload(300 * 1024, 7), 2).unwrap();
        s.clear_cache();
        tracer.clear();
        s.read(&cap).unwrap();

        let spans = tracer.snapshot();
        let root = spans
            .iter()
            .find(|sp| sp.name == "bullet.read")
            .expect("the read records an op span");
        assert!(root.duration().as_ns() > 0);
        assert_eq!(
            leaf_coverage(&spans, root.id),
            root.duration(),
            "every charged nanosecond of the cold read sits in a leaf span"
        );

        tracer.clear();
        let cap2 = s.create(payload(200 * 1024, 9), 2).unwrap();
        let spans = tracer.snapshot();
        let root = spans
            .iter()
            .find(|sp| sp.name == "bullet.create")
            .expect("the create records an op span");
        assert_eq!(leaf_coverage(&spans, root.id), root.duration());
        s.delete(&cap2).unwrap();
    }

    /// Tracing must be free when disabled: a server with
    /// [`TraceConfig::off`] charges exactly the same simulated time as an
    /// identically-configured server with tracing enabled.
    #[test]
    fn disabled_tracing_charges_identical_time() {
        let elapsed = |trace: TraceConfig| {
            let mut cfg = BulletConfig::small_test();
            cfg.trace = trace;
            let clock = cfg.clock.clone();
            let s = BulletServer::format(cfg, 2).unwrap();
            let cap = s.create(payload(300 * 1024, 3), 2).unwrap();
            s.clear_cache();
            s.read(&cap).unwrap();
            s.read(&cap).unwrap();
            s.delete(&cap).unwrap();
            clock.now()
        };
        let clock = SimClock::new();
        assert_eq!(
            elapsed(TraceConfig::off()),
            elapsed(TraceConfig::enabled(clock)),
            "span recording must never advance the simulated clock"
        );
    }

    // ------------------------------------------------------------------
    // The group-commit log.
    // ------------------------------------------------------------------

    fn log_cfg() -> BulletConfig {
        let mut cfg = BulletConfig::small_test();
        cfg.log_blocks = 512; // of the 4096-block disk
        cfg
    }

    fn log_server() -> BulletServer {
        BulletServer::format(log_cfg(), 2).unwrap()
    }

    #[test]
    fn grouped_create_read_delete_cycle() {
        let s = log_server();
        let cap = s.create(payload(1000, 7), 2).unwrap();
        assert_eq!(s.size(&cap).unwrap(), 1000);
        assert_eq!(s.read(&cap).unwrap(), payload(1000, 7));
        assert_eq!(s.stats().get(counters::LOG_APPENDS), 1);
        assert_eq!(s.stats().get(counters::GROUP_COMMIT_FLUSHES), 1);
        s.delete(&cap).unwrap();
        assert_eq!(s.read(&cap).unwrap_err(), BulletError::NotFound);
    }

    #[test]
    fn create_batch_commits_one_append_per_chunk() {
        let s = log_server();
        let files: Vec<Bytes> = (0..10).map(|i| payload(1000, i as u8)).collect();
        let caps = s.create_batch(files, 2).unwrap();
        assert_eq!(caps.len(), 10);
        // The whole batch fits one record: one append, one flush.
        assert_eq!(s.stats().get(counters::LOG_APPENDS), 1);
        assert_eq!(s.stats().get(counters::GROUP_COMMIT_FLUSHES), 1);
        assert_eq!(s.stats().get(counters::LOG_BATCH_FILES), 10);
        assert_eq!(s.stats().get(counters::CREATES), 10);
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(s.read(cap).unwrap(), payload(1000, i as u8));
        }
        assert_eq!(s.live_files(), 10);
    }

    #[test]
    fn create_batch_respects_the_file_cap() {
        let mut cfg = log_cfg();
        cfg.log_batch_files = 4;
        let s = BulletServer::format(cfg, 2).unwrap();
        let files: Vec<Bytes> = (0..10).map(|i| payload(600, i as u8)).collect();
        let caps = s.create_batch(files, 2).unwrap();
        assert_eq!(caps.len(), 10);
        // 4 + 4 + 2.
        assert_eq!(s.stats().get(counters::GROUP_COMMIT_FLUSHES), 3);
        assert_eq!(s.stats().get(counters::LOG_APPENDS), 3);
    }

    #[test]
    fn oversized_files_in_a_batch_go_direct() {
        let mut cfg = log_cfg();
        cfg.log_batch_bytes = 2048;
        let s = BulletServer::format(cfg, 2).unwrap();
        let files = vec![payload(1000, 1), payload(8000, 2), payload(1000, 3)];
        let caps = s.create_batch(files, 2).unwrap();
        for (cap, (n, fill)) in caps.iter().zip([(1000, 1u8), (8000, 2), (1000, 3)]) {
            assert_eq!(s.read(cap).unwrap(), payload(n, fill));
        }
        // The big file bypassed the log; the small ones were grouped
        // (order forced the leading chunk to flush before the direct
        // create, so two flushes of one file each).
        assert_eq!(s.stats().get(counters::LOG_BATCH_FILES), 2);
    }

    #[test]
    fn log_files_migrate_home_during_idle_time() {
        let s = log_server();
        let files: Vec<Bytes> = (0..5).map(|i| payload(900, i as u8)).collect();
        let caps = s.create_batch(files, 2).unwrap();
        let (log_start, _) = s.log_range().unwrap();
        let (_, rows) = s.describe_layout();
        assert!(
            rows.iter().all(|r| r.start_block as u64 >= log_start),
            "freshly grouped files are log-resident"
        );
        // Drive the idle loop: the first tick is preempted (the creates
        // count as arrivals), then one migration per tick.
        let mut moved = 0;
        for _ in 0..32 {
            match s.compact_tick().unwrap() {
                CompactTick::Idle => break,
                CompactTick::Moved { .. } => moved += 1,
                CompactTick::Preempted => {}
            }
        }
        assert_eq!(moved, 5, "one migration per file");
        assert_eq!(s.stats().get(counters::LOG_MIGRATIONS), 5);
        let (_, rows) = s.describe_layout();
        assert!(
            rows.iter().all(|r| (r.start_block as u64) < log_start),
            "migrated files live in the data area"
        );
        // Contiguous-read invariant: contents unchanged, cold reads too.
        s.clear_cache();
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(s.read(cap).unwrap(), payload(900, i as u8));
        }
        // The drained window rewinds and keeps serving batches.
        s.create_batch((0..3).map(|i| payload(700, 40 + i as u8)).collect(), 2)
            .unwrap();
        assert_eq!(s.live_files(), 8);
    }

    #[test]
    fn compact_disk_drains_the_log_and_packs() {
        let s = log_server();
        let caps = s
            .create_batch((0..6).map(|i| payload(800, i as u8)).collect(), 2)
            .unwrap();
        s.delete(&caps[1]).unwrap();
        s.delete(&caps[3]).unwrap();
        s.compact_disk().unwrap();
        let (log_start, _) = s.log_range().unwrap();
        let (_, rows) = s.describe_layout();
        assert!(rows.iter().all(|r| (r.start_block as u64) < log_start));
        let report = s.disk_frag_report();
        assert_eq!(report.hole_count, 1, "free space is one hole");
        s.clear_cache();
        for (i, cap) in caps.iter().enumerate() {
            if i != 1 && i != 3 {
                assert_eq!(s.read(cap).unwrap(), payload(800, i as u8));
            }
        }
    }

    #[test]
    fn grouped_files_survive_a_crash() {
        let cfg = log_cfg();
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        let caps = s
            .create_batch((0..8).map(|i| payload(1200, i as u8)).collect(), 2)
            .unwrap();
        // crash(), not shutdown(): grouped commits are fully synchronous,
        // so losing queued background writes must lose nothing.
        let storage = s.crash();
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        assert_eq!(s2.live_files(), 8);
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(s2.read(cap).unwrap(), payload(1200, i as u8));
        }
    }

    #[test]
    fn replay_reinstalls_the_last_record_when_the_inode_write_was_lost() {
        let cfg = log_cfg();
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        let caps = s
            .create_batch((0..3).map(|i| payload(1000, i as u8)).collect(), 2)
            .unwrap();
        let storage = s.shutdown().unwrap();

        // Simulate a crash after the record append but before the inode
        // write-through: zero the batch's inodes on disk.
        let report = InodeTable::load(&storage, RepairPolicy::Fail).unwrap();
        let mut table = report.table;
        let mut blocks = std::collections::BTreeSet::new();
        for cap in &caps {
            table.clear(cap.object.value()).unwrap();
            blocks.insert(table.block_of(cap.object.value()));
        }
        for b in blocks {
            storage.write_blocks(b, &table.block_image(b)).unwrap();
        }

        // Replay walks the chain and reinstalls the batch — same slots,
        // same randoms, so the pre-crash capabilities still verify.
        let s2 = BulletServer::recover(cfg.clone(), storage).unwrap();
        assert_eq!(s2.live_files(), 3);
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(s2.read(cap).unwrap(), payload(1000, i as u8));
        }
        // Replay is idempotent: a second recovery changes nothing.
        let storage = s2.shutdown().unwrap();
        let s3 = BulletServer::recover(cfg, storage).unwrap();
        assert_eq!(s3.live_files(), 3);
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(s3.read(cap).unwrap(), payload(1000, i as u8));
        }
    }

    #[test]
    fn torn_log_tail_is_dropped_whole_and_leaks_nothing() {
        let cfg = log_cfg();
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        let committed = s
            .create_batch((0..2).map(|i| payload(1000, i as u8)).collect(), 2)
            .unwrap();
        let torn = s
            .create_batch((0..2).map(|i| payload(1000, 10 + i as u8)).collect(), 2)
            .unwrap();
        let storage = s.shutdown().unwrap();

        // Find the two records, tear the second (a crash mid-append: its
        // checksum cannot verify), and zero its inodes as a torn
        // write-through would have left them.
        let desc = *InodeTable::load(&storage, RepairPolicy::Fail)
            .unwrap()
            .table
            .descriptor();
        let bs = desc.block_size as usize;
        let log_start = desc.data_end() - cfg.log_blocks;
        let scan = gclog::scan_chain(bs, log_start, desc.data_end(), &mut |b, buf| {
            storage.read_blocks(b, buf).is_ok()
        });
        assert_eq!(scan.records.len(), 2);
        let second = scan.records[1].at;
        let mut header = vec![0u8; bs];
        storage.read_blocks(second, &mut header).unwrap();
        header[gclog::HEADER_BYTES - 1] ^= 0xff; // corrupt the CRC
        storage.write_blocks(second, &header).unwrap();
        let report = InodeTable::load(&storage, RepairPolicy::Fail).unwrap();
        let mut table = report.table;
        let mut blocks = std::collections::BTreeSet::new();
        for cap in &torn {
            table.clear(cap.object.value()).unwrap();
            blocks.insert(table.block_of(cap.object.value()));
        }
        for b in blocks {
            storage.write_blocks(b, &table.block_image(b)).unwrap();
        }

        // Replay keeps every committed batch and drops exactly the torn
        // tail — never half of it.
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        assert_eq!(s2.live_files(), 2);
        for (i, cap) in committed.iter().enumerate() {
            assert_eq!(s2.read(cap).unwrap(), payload(1000, i as u8));
        }
        for cap in &torn {
            assert!(matches!(
                s2.read(cap).unwrap_err(),
                BulletError::NotFound | BulletError::CapBad
            ));
        }
        // No allocator leak: deleting the survivors leaves the data area
        // one whole free hole.
        for cap in &committed {
            s2.delete(cap).unwrap();
        }
        let report = s2.disk_frag_report();
        assert_eq!(report.hole_count, 1);
        assert_eq!(report.free, report.total);
    }

    #[test]
    fn deleting_a_file_of_the_newest_batch_seals_the_chain() {
        let cfg = log_cfg();
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        let caps = s
            .create_batch(vec![payload(1000, 1), payload(1000, 2)], 2)
            .unwrap();
        let appends = s.stats().get(counters::LOG_APPENDS);
        s.delete(&caps[1]).unwrap();
        assert_eq!(
            s.stats().get(counters::LOG_APPENDS),
            appends + 1,
            "deleting an unsealed file appends a seal record"
        );
        // After a crash, replay must not resurrect the deleted file from
        // the (still checksum-valid) old record.
        let storage = s.crash();
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        assert_eq!(s2.live_files(), 1);
        assert_eq!(s2.read(&caps[0]).unwrap(), payload(1000, 1));
        assert!(matches!(
            s2.read(&caps[1]).unwrap_err(),
            BulletError::NotFound | BulletError::CapBad
        ));
    }

    #[test]
    fn full_log_window_falls_back_to_the_direct_path() {
        let mut cfg = log_cfg();
        cfg.log_blocks = 4; // room for at most a header + 2 payload blocks
        let s = BulletServer::format(cfg, 2).unwrap();
        let files: Vec<Bytes> = (0..4).map(|i| payload(3 * 512, i as u8)).collect();
        let caps = s.create_batch(files, 2).unwrap();
        assert_eq!(s.stats().get(counters::LOG_APPENDS), 0, "nothing fits");
        assert_eq!(s.stats().get(counters::CREATES), 4);
        for (i, cap) in caps.iter().enumerate() {
            assert_eq!(s.read(cap).unwrap(), payload(3 * 512, i as u8));
        }
    }

    #[test]
    fn grouped_commits_are_deterministic() {
        let run = || {
            let cfg = log_cfg();
            let clock = cfg.clock.clone();
            let s = BulletServer::format(cfg, 2).unwrap();
            let caps = s
                .create_batch((0..12).map(|i| payload(700 + i, i as u8)).collect(), 2)
                .unwrap();
            (caps, clock.now())
        };
        let (caps_a, t_a) = run();
        let (caps_b, t_b) = run();
        assert_eq!(caps_a, caps_b, "batch composition is a pure function");
        assert_eq!(t_a, t_b, "charged simulated time is reproducible");
    }

    #[test]
    fn grouped_files_age_out_cleanly() {
        let mut cfg = log_cfg();
        cfg.max_age = 1;
        let s = BulletServer::format(cfg.clone(), 2).unwrap();
        s.create_batch(vec![payload(1000, 1), payload(1000, 2)], 2)
            .unwrap();
        assert_eq!(s.age_all().unwrap(), 2);
        assert_eq!(s.live_files(), 0);
        // Expiry sealed the chain: a crash resurrects nothing.
        let storage = s.crash();
        let s2 = BulletServer::recover(cfg, storage).unwrap();
        assert_eq!(s2.live_files(), 0);
        // And the space came back.
        let report = s2.disk_frag_report();
        assert_eq!(report.free, report.total);
    }

    // ------------------------------------------------------------------
    // Tiered storage: demotion to the WORM archive, recall, and the
    // configurable idleness gate.

    fn tiered_cfg() -> BulletConfig {
        let mut cfg = BulletConfig::small_test();
        cfg.archive_blocks = 8192;
        cfg.tier_high_water_pct = 0; // any occupancy sits "above water"
        cfg.tier_cold_age = 1;
        cfg
    }

    /// Ticks maintenance until the scheduler reports idle; returns how
    /// many ticks made progress.
    fn drain_maintenance(s: &BulletServer) -> u64 {
        let mut progressed = 0;
        loop {
            match s.compact_tick().unwrap() {
                CompactTick::Moved { .. } => progressed += 1,
                CompactTick::Idle => return progressed,
                CompactTick::Preempted => {}
            }
        }
    }

    #[test]
    fn cold_files_demote_to_the_archive_and_recall_on_read() {
        let s = BulletServer::format(tiered_cfg(), 2).unwrap();
        let cap = s.create(payload(3 * 512 + 17, 9), 2).unwrap();
        s.clear_cache(); // cold = uncached…
        s.age_all().unwrap(); // …and one aging round untouched
        assert!(drain_maintenance(&s) >= 1);
        assert_eq!(s.stats().get(counters::TIER_DEMOTIONS), 1);
        let (desc, rows) = s.describe_layout();
        assert!(
            rows[0].start_block as u64 >= desc.data_end(),
            "file lives on the archive tier"
        );
        let arch = s.archive_device().unwrap();
        assert_eq!(arch.burned_blocks(), 4);
        // The fast-tier extent came back whole.
        let report = s.disk_frag_report();
        assert_eq!(report.free, report.total);

        // First read after demotion is served from the archive — no
        // foreground stall — and merely *schedules* the promotion.
        assert_eq!(s.read(&cap).unwrap(), payload(3 * 512 + 17, 9));
        assert_eq!(s.tier_recall_backlog(), 1);
        assert_eq!(s.stats().get(counters::TIER_PROMOTIONS), 0);

        // Idle ticks complete the recall.
        drain_maintenance(&s);
        assert_eq!(s.stats().get(counters::TIER_PROMOTIONS), 1);
        assert_eq!(s.tier_recall_backlog(), 0);
        let (desc, rows) = s.describe_layout();
        assert!(
            (rows[0].start_block as u64) < desc.data_end(),
            "file is home again"
        );
        s.clear_cache();
        assert_eq!(s.read(&cap).unwrap(), payload(3 * 512 + 17, 9));
        // WORM media: the archived copy's blocks stay burned forever.
        assert_eq!(arch.burned_blocks(), 4);
    }

    #[test]
    fn archived_files_survive_a_crash_via_the_surviving_platter() {
        let s = BulletServer::format(tiered_cfg(), 2).unwrap();
        let cap = s.create(payload(2000, 5), 2).unwrap();
        s.clear_cache();
        s.age_all().unwrap();
        drain_maintenance(&s);
        assert_eq!(s.stats().get(counters::TIER_DEMOTIONS), 1);
        let arch = s.archive_device().unwrap();
        let storage = s.crash();
        let s2 = BulletServer::recover_with_archive(tiered_cfg(), storage, arch).unwrap();
        assert_eq!(s2.read(&cap).unwrap(), payload(2000, 5));
        let arch2 = s2.archive_device().unwrap();
        assert_eq!(
            arch2.append_pos(),
            4,
            "adopted cursor sits past the survivor"
        );
    }

    #[test]
    fn plain_recover_restores_the_append_cursor_past_archived_extents() {
        let s = BulletServer::format(tiered_cfg(), 2).unwrap();
        s.create(payload(2000, 5), 2).unwrap();
        s.clear_cache();
        s.age_all().unwrap();
        drain_maintenance(&s);
        let storage = s.crash();
        // A *fresh* platter: the archived inode stays valid and the
        // cursor is restored past its extent, so later demotions can
        // never land on top of it.
        let s2 = BulletServer::recover(tiered_cfg(), storage).unwrap();
        assert_eq!(s2.live_files(), 1);
        assert_eq!(s2.archive_device().unwrap().append_pos(), 4);
    }

    #[test]
    fn deleting_an_archived_file_frees_no_fast_tier_space_twice() {
        let s = BulletServer::format(tiered_cfg(), 2).unwrap();
        let cap = s.create(payload(1500, 3), 2).unwrap();
        s.clear_cache();
        s.age_all().unwrap();
        drain_maintenance(&s);
        assert_eq!(s.stats().get(counters::TIER_DEMOTIONS), 1);
        let before = s.disk_frag_report();
        assert_eq!(
            before.free, before.total,
            "demotion already freed the home extent"
        );
        s.delete(&cap).unwrap();
        assert_eq!(s.live_files(), 0);
        let after = s.disk_frag_report();
        assert_eq!(after.free, after.total);
        // The WORM blocks stay burned: the cursor never rewinds.
        assert_eq!(s.archive_device().unwrap().append_pos(), 3);
    }

    #[test]
    fn idle_gate_request_delta_tolerates_light_traffic() {
        let mut cfg = BulletConfig::small_test();
        cfg.disk_blocks = 256;
        cfg.maint_idle_request_delta = 2;
        let s = BulletServer::format(cfg, 2).unwrap();
        let caps: Vec<Capability> = (0..6)
            .map(|i| s.create(payload(5 * 512, i as u8), 1).unwrap())
            .collect();
        for cap in caps.iter().step_by(2) {
            s.delete(cap).unwrap();
        }
        // First tick re-arms the mark after the setup burst.
        assert_eq!(s.compact_tick().unwrap(), CompactTick::Preempted);
        // Two requests between ticks stay within the tolerated delta.
        s.read(&caps[1]).unwrap();
        s.read(&caps[3]).unwrap();
        assert!(matches!(
            s.compact_tick().unwrap(),
            CompactTick::Moved { .. }
        ));
        // Three requests exceed it: the tick yields.
        s.read(&caps[1]).unwrap();
        s.read(&caps[3]).unwrap();
        s.read(&caps[5]).unwrap();
        assert_eq!(s.compact_tick().unwrap(), CompactTick::Preempted);
    }

    #[test]
    fn moves_per_tick_batches_maintenance_increments() {
        let mut cfg = BulletConfig::small_test();
        cfg.disk_blocks = 256;
        cfg.maint_moves_per_tick = 16;
        let s = BulletServer::format(cfg, 2).unwrap();
        let caps: Vec<Capability> = (0..10)
            .map(|i| s.create(payload(5 * 512, i as u8), 1).unwrap())
            .collect();
        for cap in caps.iter().step_by(2) {
            s.delete(cap).unwrap();
        }
        assert!(s.disk_frag_report().external_fragmentation > 0.0);
        assert_eq!(s.compact_tick().unwrap(), CompactTick::Preempted);
        // One idle tick performs up to 16 increments: the whole plan.
        assert!(matches!(
            s.compact_tick().unwrap(),
            CompactTick::Moved { .. }
        ));
        assert!(s.stats().get(counters::DISK_COMPACTION_MOVES) > 1);
        assert_eq!(s.disk_frag_report().external_fragmentation, 0.0);
    }
}
