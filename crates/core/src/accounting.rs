//! Per-client resource accounting keyed by the RPC transaction tag.
//!
//! The at-most-once layer (PR 4) stamps every request with a
//! `(client, seq)` transaction id.  This module charges each request's
//! resource use — bytes moved, physical I/Os, cache hits/misses, retries
//! — to the *client* half of that tag, so an operator can ask the live
//! server "who is hammering me?" through the `MONITOR` RPC.
//!
//! Like [`amoeba_sim::Telemetry`], accounting follows the zero-cost-
//! when-disabled contract: the handle is an `Option<Arc<..>>`, and a
//! disabled handle never allocates, locks, or touches shared state, so a
//! server built without accounting is bit-identical to one that predates
//! this module.
//!
//! The *scope* mechanism keeps the charge sites honest without threading
//! a client id through every internal call: the RPC dispatcher opens a
//! thread-local [`ClientScope`] for the duration of a request, and the
//! server's data paths charge "whoever is current" via
//! [`ClientAccounting::charge_current`].  Internal work (maintenance,
//! recovery, direct in-process calls) runs with no scope open and is
//! charged to nobody.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

thread_local! {
    /// The client id the current thread is working for, if any.
    static CURRENT_CLIENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Resource totals charged to one client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientUsage {
    /// Requests dispatched for this client (all op classes).
    pub requests: u64,
    /// Payload bytes returned by reads and section reads.
    pub bytes_read: u64,
    /// Payload bytes accepted by creates/modifies.
    pub bytes_written: u64,
    /// Physical disk I/Os this client's requests triggered (cold loads,
    /// create write-throughs counted once per replica set).
    pub disk_ios: u64,
    /// Whole-file cache lookups that hit.
    pub cache_hits: u64,
    /// Whole-file cache lookups that missed.
    pub cache_misses: u64,
    /// Duplicate transactions absorbed by the at-most-once dedup window
    /// (a high count means the client's RPC layer is retrying hard).
    pub retries: u64,
}

impl ClientUsage {
    /// A single scalar for ranking offenders: total bytes moved plus a
    /// fixed charge per request and a heavy charge per physical I/O
    /// (disk time is the scarce resource in the Bullet design).
    pub fn cost(&self) -> u64 {
        self.bytes_read + self.bytes_written + self.requests * 512 + self.disk_ios * 65_536
    }
}

/// RAII guard marking the current thread as working for one client.
///
/// Dropped (typically at the end of RPC dispatch) it restores the
/// previous scope, so nested dispatch — a server calling itself — still
/// charges the outermost client.
pub struct ClientScope {
    prev: Option<u64>,
}

impl ClientScope {
    /// Enters a client scope on this thread.
    pub fn enter(client: u64) -> ClientScope {
        let prev = CURRENT_CLIENT.with(|c| c.replace(Some(client)));
        ClientScope { prev }
    }

    /// The client id the current thread is charging to, if any.
    pub fn current() -> Option<u64> {
        CURRENT_CLIENT.with(Cell::get)
    }
}

impl Drop for ClientScope {
    fn drop(&mut self) {
        CURRENT_CLIENT.with(|c| c.set(self.prev));
    }
}

/// A shared per-client usage table (cheap to clone, `off()` by default).
#[derive(Debug, Clone, Default)]
pub struct ClientAccounting {
    inner: Option<Arc<Mutex<HashMap<u64, ClientUsage>>>>,
}

impl ClientAccounting {
    /// A disabled handle: every charge is a no-op.
    pub fn off() -> ClientAccounting {
        ClientAccounting { inner: None }
    }

    /// An enabled, empty table.
    pub fn on() -> ClientAccounting {
        ClientAccounting {
            inner: Some(Arc::new(Mutex::new(HashMap::new()))),
        }
    }

    /// True if charges are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Applies `f` to the usage row of an explicit client.
    pub fn charge(&self, client: u64, f: impl FnOnce(&mut ClientUsage)) {
        if let Some(inner) = &self.inner {
            f(inner.lock().entry(client).or_default());
        }
    }

    /// Applies `f` to the usage row of the thread's current
    /// [`ClientScope`] client; a no-op outside any scope (internal work
    /// is charged to nobody).
    pub fn charge_current(&self, f: impl FnOnce(&mut ClientUsage)) {
        if self.inner.is_some() {
            if let Some(client) = ClientScope::current() {
                self.charge(client, f);
            }
        }
    }

    /// The usage row for one client, if any charges landed.
    pub fn usage(&self, client: u64) -> Option<ClientUsage> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.lock().get(&client).copied())
    }

    /// Number of distinct clients with charges.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| inner.lock().len())
    }

    /// True if no charges have been recorded (or accounting is off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` clients with the highest [`ClientUsage::cost`], ties
    /// broken by client id (deterministic for byte-compared reports).
    pub fn top_k(&self, k: usize) -> Vec<(u64, ClientUsage)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut rows: Vec<(u64, ClientUsage)> =
            inner.lock().iter().map(|(c, u)| (*c, *u)).collect();
        rows.sort_by(|a, b| b.1.cost().cmp(&a.1.cost()).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }

    /// All rows, ordered by client id (for full MONITOR dumps).
    pub fn all(&self) -> Vec<(u64, ClientUsage)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut rows: Vec<(u64, ClientUsage)> =
            inner.lock().iter().map(|(c, u)| (*c, *u)).collect();
        rows.sort_by_key(|(c, _)| *c);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_charges_nothing() {
        let acct = ClientAccounting::off();
        assert!(!acct.enabled());
        let _scope = ClientScope::enter(7);
        acct.charge_current(|u| u.bytes_read += 100);
        acct.charge(7, |u| u.requests += 1);
        assert!(acct.is_empty());
        assert_eq!(acct.usage(7), None);
        assert!(acct.top_k(10).is_empty());
    }

    #[test]
    fn scope_charges_current_client_and_restores() {
        let acct = ClientAccounting::on();
        assert_eq!(ClientScope::current(), None);
        {
            let _outer = ClientScope::enter(1);
            acct.charge_current(|u| u.requests += 1);
            {
                let _inner = ClientScope::enter(2);
                acct.charge_current(|u| u.requests += 1);
            }
            // Inner scope dropped: back to client 1.
            acct.charge_current(|u| u.bytes_read += 64);
        }
        assert_eq!(ClientScope::current(), None);
        // No scope open: charged to nobody.
        acct.charge_current(|u| u.requests += 100);
        assert_eq!(
            acct.usage(1),
            Some(ClientUsage {
                requests: 1,
                bytes_read: 64,
                ..ClientUsage::default()
            })
        );
        assert_eq!(acct.usage(2).unwrap().requests, 1);
        assert_eq!(acct.len(), 2);
    }

    #[test]
    fn top_k_ranks_by_cost_with_stable_ties() {
        let acct = ClientAccounting::on();
        acct.charge(10, |u| u.disk_ios += 4); // heavy: 4 * 65536
        acct.charge(11, |u| u.bytes_read += 1_000);
        acct.charge(12, |u| u.bytes_read += 1_000); // tie with 11 → id order
        acct.charge(13, |u| u.requests += 1);
        let top = acct.top_k(3);
        assert_eq!(
            top.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        assert_eq!(acct.top_k(0), Vec::new());
    }
}
