//! Property tests for the block file system: arbitrary write/read
//! patterns must agree with a flat byte-vector model, across indirect
//! block boundaries and block reuse.

use amoeba_disk::RamDisk;
use nfs_blockfs::{BlockFs, BlockFsError};
use proptest::prelude::*;

const BS: u32 = 1024;

fn fs() -> BlockFs<RamDisk> {
    // 1 KB blocks: direct = 10 KB, indirect from there — small enough
    // that random offsets cross the boundary constantly.
    BlockFs::format(RamDisk::new(BS, 8192), 32, 128 * 1024, None).unwrap()
}

#[derive(Debug, Clone)]
struct WriteOp {
    offset: u32,
    data: Vec<u8>,
}

fn arb_write() -> impl Strategy<Value = WriteOp> {
    (
        0u32..64 * 1024,
        proptest::collection::vec(any::<u8>(), 1..4000),
    )
        .prop_map(|(offset, data)| WriteOp { offset, data })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn writes_then_reads_match_a_flat_model(ops in proptest::collection::vec(arb_write(), 1..12)) {
        let mut fs = fs();
        let (ino, generation) = fs.create_inode().unwrap();
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            fs.write(ino, generation, op.offset, &op.data).unwrap();
            let end = op.offset as usize + op.data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[op.offset as usize..end].copy_from_slice(&op.data);
        }
        prop_assert_eq!(fs.getattr(ino, generation).unwrap() as usize, model.len());
        let back = fs.read(ino, generation, 0, model.len() as u32).unwrap();
        prop_assert_eq!(back, model.clone());
        // Partial reads agree with slices.
        if !model.is_empty() {
            let mid = model.len() / 2;
            let part = fs.read(ino, generation, mid as u32, 700).unwrap();
            let expected = &model[mid..(mid + 700).min(model.len())];
            prop_assert_eq!(&part[..], expected);
        }
    }

    #[test]
    fn remove_frees_everything_it_allocated(ops in proptest::collection::vec(arb_write(), 1..8)) {
        let mut fs = fs();
        let free0 = fs.free_blocks().unwrap();
        let (ino, generation) = fs.create_inode().unwrap();
        for op in &ops {
            fs.write(ino, generation, op.offset, &op.data).unwrap();
        }
        fs.remove(ino, generation).unwrap();
        prop_assert_eq!(fs.free_blocks().unwrap(), free0);
        prop_assert!(matches!(
            fs.read(ino, generation, 0, 1),
            Err(BlockFsError::BadHandle)
        ));
    }

    #[test]
    fn files_are_isolated(
        a_ops in proptest::collection::vec(arb_write(), 1..6),
        b_ops in proptest::collection::vec(arb_write(), 1..6),
    ) {
        let mut fs = fs();
        let (a, ga) = fs.create_inode().unwrap();
        let (b, gb) = fs.create_inode().unwrap();
        let mut model_a: Vec<u8> = Vec::new();
        let mut model_b: Vec<u8> = Vec::new();
        // Interleave writes to the two files.
        for (wa, wb) in a_ops.iter().zip(b_ops.iter().chain(std::iter::repeat(&b_ops[0]))) {
            fs.write(a, ga, wa.offset, &wa.data).unwrap();
            let end = wa.offset as usize + wa.data.len();
            if model_a.len() < end { model_a.resize(end, 0); }
            model_a[wa.offset as usize..end].copy_from_slice(&wa.data);

            fs.write(b, gb, wb.offset, &wb.data).unwrap();
            let end = wb.offset as usize + wb.data.len();
            if model_b.len() < end { model_b.resize(end, 0); }
            model_b[wb.offset as usize..end].copy_from_slice(&wb.data);
        }
        prop_assert_eq!(fs.read(a, ga, 0, model_a.len() as u32).unwrap(), model_a);
        prop_assert_eq!(fs.read(b, gb, 0, model_b.len() as u32).unwrap(), model_b);
    }

    #[test]
    fn scattered_and_fresh_layouts_read_identically(ops in proptest::collection::vec(arb_write(), 1..8)) {
        // Allocation policy must never change contents, only placement.
        let mut fresh = fs();
        let mut aged = BlockFs::format(RamDisk::new(BS, 8192), 32, 128 * 1024, Some(99)).unwrap();
        let (fi, fg) = fresh.create_inode().unwrap();
        let (ai, ag) = aged.create_inode().unwrap();
        for op in &ops {
            fresh.write(fi, fg, op.offset, &op.data).unwrap();
            aged.write(ai, ag, op.offset, &op.data).unwrap();
        }
        let n = fresh.getattr(fi, fg).unwrap();
        prop_assert_eq!(aged.getattr(ai, ag).unwrap(), n);
        prop_assert_eq!(
            fresh.read(fi, fg, 0, n).unwrap(),
            aged.read(ai, ag, 0, n).unwrap()
        );
    }
}
