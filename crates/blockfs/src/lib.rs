//! The traditional block-based file server — the paper's comparison
//! baseline (SUN NFS on SunOS 3.5).
//!
//! This crate implements, from scratch, exactly the architecture the
//! paper's introduction criticizes: "files were split into fixed size
//! blocks scattered all over the disk … each block had to be separately
//! accessed … indirect blocks were necessary to administer the files and
//! their blocks", with "a small part of memory … used to keep parts of
//! files in a RAM cache".
//!
//! Pieces:
//!
//! * [`fs`] — the on-disk layout: superblock, block bitmap, an inode
//!   table whose inodes hold 10 direct pointers plus single- and
//!   double-indirect blocks, and a data area allocated block-at-a-time
//!   (optionally *scattered*, modelling an aged file system).
//! * [`buffer_cache`] — the server's write-through LRU buffer cache
//!   (3 MB, matching the measured SUN 3/180).
//! * [`server`] — the NFS-like RPC server: per-8 KB READ / WRITE
//!   operations against file handles, plus GETATTR / CREATE / REMOVE.
//! * [`client`] — the client that the paper's test harness used:
//!   `lseek`+`read` loops and `creat`+`write`+`close` loops issuing one
//!   synchronous RPC per block (client caching disabled, as the paper
//!   did with `lockf`).
//!
//! The cost model ([`NfsProfile`]) charges the documented era costs: a
//! fixed several-millisecond server CPU cost per NFS operation, extra
//! per-byte copying in the mbuf/UDP path, and a retransmission timeout
//! for sustained multi-fragment UDP bursts on a loaded Ethernet (the
//! classic NFS large-transfer pathology; see EXPERIMENTS.md for the
//! calibration discussion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer_cache;
pub mod client;
pub mod error;
pub mod fs;
pub mod server;

pub use buffer_cache::BufferCache;
pub use client::NfsClient;
pub use error::BlockFsError;
pub use fs::{BlockFs, FsGeometry};
pub use server::{nfs_commands, FileHandle, NfsProfile, NfsServer, NfsServerConfig};
