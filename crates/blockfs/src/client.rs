//! The NFS client the paper's test harness models.
//!
//! "To disable local caching on the SUN 3/50, we have locked the file
//! using the SUN UNIX `lockf` primitive.  The read test consisted of an
//! `lseek` followed by a `read` system call.  The write test consisted of
//! consecutively executing `creat`, `write`, and `close`." (§4)
//!
//! With client caching off, every block is one synchronous RPC — this
//! loop *is* the reason the traditional server loses to whole-file
//! transfer.

use bytes::{BufMut, Bytes, BytesMut};

use amoeba_cap::{Capability, Port};
use amoeba_rpc::{RpcClient, Status};
use amoeba_sim::{SimClock, Stats};

use crate::server::{nfs_commands, FileHandle, NfsProfile};

/// A client of the NFS-like server with local caching disabled.
#[derive(Debug, Clone)]
pub struct NfsClient {
    rpc: RpcClient,
    server: Port,
    transfer_size: u32,
    profile: NfsProfile,
    clock: SimClock,
    stats: Stats,
}

impl NfsClient {
    /// A client of the server at `server`, issuing `transfer_size`-byte
    /// block operations.
    pub fn new(
        rpc: RpcClient,
        server: Port,
        transfer_size: u32,
        profile: NfsProfile,
        clock: SimClock,
    ) -> NfsClient {
        NfsClient {
            rpc,
            server,
            transfer_size,
            profile,
            clock,
            stats: Stats::new(),
        }
    }

    fn service_cap(&self) -> Capability {
        let mut cap = Capability::null();
        cap.port = self.server;
        cap
    }

    /// `creat` + `write` loop + `close`: stores `data` as a new file,
    /// returning its handle.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn create_file(&self, data: &[u8]) -> Result<FileHandle, Status> {
        let reply = self.rpc.trans(
            self.service_cap(),
            nfs_commands::CREATE,
            Bytes::new(),
            Bytes::new(),
        )?;
        let fh = FileHandle::from_wire(&reply.params, 0)?;
        let mut burst_packets = 0u64;
        let mut offset = 0usize;
        // A zero-byte file still did its creat+close; no writes.
        while offset < data.len() {
            let n = (self.transfer_size as usize).min(data.len() - offset);
            let mut params = BytesMut::with_capacity(12);
            params.put_slice(&fh.to_wire());
            params.put_u32(offset as u32);
            self.rpc.trans(
                self.service_cap(),
                nfs_commands::WRITE,
                params.freeze(),
                Bytes::copy_from_slice(&data[offset..offset + n]),
            )?;
            self.account_packets(&mut burst_packets, n as u64);
            offset += n;
        }
        Ok(fh)
    }

    /// `lseek` + `read` loop: fetches the whole file block by block.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn read_file(&self, fh: FileHandle) -> Result<Vec<u8>, Status> {
        let size = self.getattr(fh)? as usize;
        let mut out = Vec::with_capacity(size);
        let mut burst_packets = 0u64;
        while out.len() < size {
            let n = (self.transfer_size as usize).min(size - out.len());
            let mut params = BytesMut::with_capacity(16);
            params.put_slice(&fh.to_wire());
            params.put_u32(out.len() as u32);
            params.put_u32(n as u32);
            let reply = self.rpc.trans(
                self.service_cap(),
                nfs_commands::READ,
                params.freeze(),
                Bytes::new(),
            )?;
            if reply.data.is_empty() {
                return Err(Status::SysErr); // no progress: corrupt size
            }
            self.account_packets(&mut burst_packets, reply.data.len() as u64);
            out.extend_from_slice(&reply.data);
        }
        Ok(out)
    }

    /// `GETATTR`: the file's size.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn getattr(&self, fh: FileHandle) -> Result<u32, Status> {
        let mut params = BytesMut::with_capacity(8);
        params.put_slice(&fh.to_wire());
        let reply = self.rpc.trans(
            self.service_cap(),
            nfs_commands::GETATTR,
            params.freeze(),
            Bytes::new(),
        )?;
        reply
            .params
            .get(0..4)
            .map(|raw| u32::from_be_bytes(raw.try_into().expect("4")))
            .ok_or(Status::BadParam)
    }

    /// Removes the file.
    ///
    /// # Errors
    ///
    /// The server's status on failure.
    pub fn remove(&self, fh: FileHandle) -> Result<(), Status> {
        let mut params = BytesMut::with_capacity(8);
        params.put_slice(&fh.to_wire());
        self.rpc.trans(
            self.service_cap(),
            nfs_commands::REMOVE,
            params.freeze(),
            Bytes::new(),
        )?;
        Ok(())
    }

    /// Client statistics: `nfs_retransmissions`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The fragment-loss model: after `retrans_every_packets` back-to-back
    /// packets within one transfer, a fragment is lost and the client
    /// stalls for a full retransmission timeout.
    fn account_packets(&self, burst: &mut u64, bytes: u64) {
        let every = self.profile.retrans_every_packets;
        if every == 0 {
            return;
        }
        *burst += bytes.div_ceil(self.profile.packet_payload as u64).max(1);
        while *burst >= every {
            *burst -= every;
            self.clock.advance(self.profile.retrans_penalty);
            self.stats.incr("nfs_retransmissions");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NfsServer, NfsServerConfig};
    use amoeba_net::SimEthernet;
    use amoeba_rpc::Dispatcher;
    use amoeba_sim::{NetProfile, SimClock};
    use std::sync::Arc;

    fn stack(cfg: NfsServerConfig) -> (SimClock, NfsClient) {
        let clock = cfg.clock.clone();
        let server = Arc::new(NfsServer::format(cfg).unwrap());
        let net = SimEthernet::new(clock.clone(), NetProfile::ethernet_10mbit());
        let dispatcher = Dispatcher::new(net);
        let port = server.port();
        let transfer = server.transfer_size();
        let profile = server.profile();
        dispatcher.register(server);
        (
            clock.clone(),
            NfsClient::new(RpcClient::new(dispatcher), port, transfer, profile, clock),
        )
    }

    #[test]
    fn create_read_remove_round_trip() {
        let (_clock, client) = stack(NfsServerConfig::small_test());
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 255) as u8).collect();
        let fh = client.create_file(&data).unwrap();
        assert_eq!(client.getattr(fh).unwrap(), 5000);
        assert_eq!(client.read_file(fh).unwrap(), data);
        client.remove(fh).unwrap();
        assert_eq!(client.getattr(fh).unwrap_err(), Status::NotFound);
    }

    #[test]
    fn zero_byte_file() {
        let (_clock, client) = stack(NfsServerConfig::small_test());
        let fh = client.create_file(&[]).unwrap();
        assert_eq!(client.read_file(fh).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn one_rpc_per_block_not_per_file() {
        let (_clock, client) = stack(NfsServerConfig::small_test());
        let msgs0 = client.rpc.dispatcher().net().stats().get("net_messages");
        let data = vec![3u8; 10 * 1024]; // 10 blocks of 1 KB
        let fh = client.create_file(&data).unwrap();
        let after_create = client.rpc.dispatcher().net().stats().get("net_messages");
        // CREATE + 10 WRITEs, 2 messages each.
        assert_eq!(after_create - msgs0, 22);
        client.read_file(fh).unwrap();
        let after_read = client.rpc.dispatcher().net().stats().get("net_messages");
        // GETATTR + 10 READs.
        assert_eq!(after_read - after_create, 22);
    }

    #[test]
    fn retransmission_pathology_fires_on_large_transfers() {
        let mut cfg = NfsServerConfig::small_test();
        cfg.disk_blocks = 4096;
        cfg.profile.retrans_every_packets = 16; // aggressively small for the test
        let (clock, client) = stack(cfg);
        let small = vec![1u8; 4 * 1024];
        let _fh = client.create_file(&small).unwrap();
        let retrans_after_small = client.stats().get("nfs_retransmissions");
        assert_eq!(retrans_after_small, 0);

        let t0 = clock.now();
        let big = vec![2u8; 64 * 1024]; // 64 packets at 1480 B → several timeouts
        client.create_file(&big).unwrap();
        assert!(client.stats().get("nfs_retransmissions") >= 2);
        assert!((clock.now() - t0).as_ms_f64() > 1000.0);
    }

    #[test]
    fn bandwidth_dips_for_files_past_the_burst_threshold() {
        // The paper's C4 claim: NFS bandwidth at 1 MB is *lower* than at
        // 64 KB.  Scaled down: with the default 512-packet threshold a
        // 1 MB transfer eats timeouts, a 64 KB one does not.
        let mut cfg = NfsServerConfig::small_test();
        cfg.block_size = 8192;
        cfg.disk_blocks = 4096; // 32 MB device
        cfg.cache_bytes = 3 << 20;
        let (clock, client) = stack(cfg);

        let bandwidth = |size: usize| {
            let data = vec![7u8; size];
            let t0 = clock.now();
            let fh = client.create_file(&data).unwrap();
            let dt = clock.now() - t0;
            client.remove(fh).unwrap();
            size as f64 / 1024.0 / dt.as_secs_f64()
        };
        let bw_64k = bandwidth(64 * 1024);
        let bw_1m = bandwidth(1 << 20);
        assert!(
            bw_1m < bw_64k,
            "1 MB bandwidth {bw_1m} must dip below 64 KB bandwidth {bw_64k}"
        );
    }
}
