//! The server's write-through LRU buffer cache.
//!
//! The measured SUN 3/180 file server was "equipped with a 3 Mbyte buffer
//! cache" using write-through (§4).  Unlike the Bullet cache, this one
//! holds *blocks*, not whole files — the traditional design the paper
//! contrasts against.

use std::collections::HashMap;

use amoeba_disk::BlockDevice;
use amoeba_sim::Stats;

use crate::BlockFsError;

/// A write-through block cache in front of a [`BlockDevice`].
///
/// Not thread-safe by itself; the server wraps it (with the file system)
/// in one lock, like the single-threaded kernel path it models.
pub struct BufferCache<D> {
    dev: D,
    capacity_blocks: usize,
    blocks: HashMap<u64, CacheBlock>,
    age_counter: u64,
    stats: Stats,
}

struct CacheBlock {
    data: Vec<u8>,
    age: u64,
}

impl<D: BlockDevice> BufferCache<D> {
    /// A cache of `capacity_bytes` (rounded down to whole blocks, minimum
    /// one block) over `dev`.
    pub fn new(dev: D, capacity_bytes: u64) -> BufferCache<D> {
        let bs = dev.block_size() as u64;
        BufferCache {
            capacity_blocks: ((capacity_bytes / bs).max(1)) as usize,
            dev,
            blocks: HashMap::new(),
            age_counter: 0,
            stats: Stats::new(),
        }
    }

    /// The device block size.
    pub fn block_size(&self) -> u32 {
        self.dev.block_size()
    }

    /// The underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Counters: `buf_hits`, `buf_misses`, `buf_evictions`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reads one block through the cache.
    ///
    /// # Errors
    ///
    /// Disk errors on a miss.
    pub fn read_block(&mut self, block: u64) -> Result<&[u8], BlockFsError> {
        self.age_counter += 1;
        let age = self.age_counter;
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.blocks.entry(block) {
            e.get_mut().age = age;
            self.stats.incr("buf_hits");
            // NLL limitation workaround: re-borrow immutably.
            return Ok(&self.blocks[&block].data);
        }
        self.stats.incr("buf_misses");
        let mut data = vec![0u8; self.dev.block_size() as usize];
        self.dev.read_blocks(block, &mut data)?;
        self.insert(block, data);
        Ok(&self.blocks[&block].data)
    }

    /// Writes one block: through to the device immediately, and into the
    /// cache.
    ///
    /// # Errors
    ///
    /// Disk errors (the cache is not updated on failure).
    pub fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), BlockFsError> {
        debug_assert_eq!(data.len(), self.dev.block_size() as usize);
        self.dev.write_blocks(block, data)?;
        self.age_counter += 1;
        self.insert(block, data.to_vec());
        Ok(())
    }

    /// Drops a block from the cache (file removal).
    pub fn invalidate(&mut self, block: u64) {
        self.blocks.remove(&block);
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    fn insert(&mut self, block: u64, data: Vec<u8>) {
        while self.blocks.len() >= self.capacity_blocks {
            let (&victim, _) = self
                .blocks
                .iter()
                .min_by_key(|(_, b)| b.age)
                .expect("nonempty when over capacity");
            self.blocks.remove(&victim);
            self.stats.incr("buf_evictions");
        }
        self.blocks.insert(
            block,
            CacheBlock {
                data,
                age: self.age_counter,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_disk::RamDisk;

    fn cache(blocks: u64) -> BufferCache<RamDisk> {
        BufferCache::new(RamDisk::new(512, 64), blocks * 512)
    }

    #[test]
    fn read_through_and_hit() {
        let mut c = cache(4);
        c.device().write_blocks(3, &[7u8; 512]).unwrap();
        assert_eq!(c.read_block(3).unwrap()[0], 7);
        assert_eq!(c.read_block(3).unwrap()[0], 7);
        assert_eq!(c.stats().get("buf_misses"), 1);
        assert_eq!(c.stats().get("buf_hits"), 1);
    }

    #[test]
    fn write_through_immediately() {
        let mut c = cache(4);
        c.write_block(2, &[9u8; 512]).unwrap();
        // On the device without any flush.
        let mut buf = [0u8; 512];
        c.device().read_blocks(2, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 512]);
        // And in the cache.
        assert_eq!(c.read_block(2).unwrap()[0], 9);
        assert_eq!(c.stats().get("buf_misses"), 0);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = cache(2);
        c.write_block(0, &[0u8; 512]).unwrap();
        c.write_block(1, &[1u8; 512]).unwrap();
        c.read_block(0).unwrap(); // 1 is now LRU
        c.write_block(2, &[2u8; 512]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().get("buf_evictions"), 1);
        // Reading 1 misses (it was evicted); reading 0 hits.
        c.read_block(1).unwrap();
        assert_eq!(c.stats().get("buf_misses"), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = cache(4);
        c.write_block(0, &[1u8; 512]).unwrap();
        c.invalidate(0);
        assert!(c.is_empty());
        c.write_block(1, &[1u8; 512]).unwrap();
        c.clear();
        assert_eq!(c.len(), 0);
    }
}
