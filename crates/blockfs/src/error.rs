//! Error type for the block file system.

use amoeba_disk::DiskError;
use amoeba_rpc::Status;

/// Errors produced by the block file system and NFS-like server.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BlockFsError {
    /// No free data blocks remain.
    NoSpace,
    /// No free inodes remain.
    NoInodes,
    /// The file handle does not name a live file (or is stale).
    BadHandle,
    /// A read touched beyond end-of-file.
    OutOfRange,
    /// The file would exceed the maximum mappable size.
    TooBig,
    /// The superblock is missing or damaged.
    Corrupt(String),
    /// The disk layer failed.
    Disk(DiskError),
}

impl std::fmt::Display for BlockFsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockFsError::NoSpace => write!(f, "no free data blocks"),
            BlockFsError::NoInodes => write!(f, "no free inodes"),
            BlockFsError::BadHandle => write!(f, "stale or invalid file handle"),
            BlockFsError::OutOfRange => write!(f, "read beyond end of file"),
            BlockFsError::TooBig => write!(f, "file exceeds the maximum mappable size"),
            BlockFsError::Corrupt(msg) => write!(f, "file system corrupt: {msg}"),
            BlockFsError::Disk(e) => write!(f, "disk failure: {e}"),
        }
    }
}

impl std::error::Error for BlockFsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlockFsError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for BlockFsError {
    fn from(e: DiskError) -> Self {
        BlockFsError::Disk(e)
    }
}

impl From<BlockFsError> for Status {
    fn from(e: BlockFsError) -> Status {
        match e {
            BlockFsError::NoSpace | BlockFsError::NoInodes => Status::NoSpace,
            BlockFsError::BadHandle => Status::NotFound,
            BlockFsError::OutOfRange | BlockFsError::TooBig => Status::BadParam,
            BlockFsError::Corrupt(_) | BlockFsError::Disk(_) => Status::SysErr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_and_display() {
        assert_eq!(Status::from(BlockFsError::NoSpace), Status::NoSpace);
        assert_eq!(Status::from(BlockFsError::BadHandle), Status::NotFound);
        assert!(!BlockFsError::TooBig.to_string().is_empty());
        assert!(BlockFsError::from(DiskError::DeviceFailed)
            .to_string()
            .contains("disk"));
    }
}
