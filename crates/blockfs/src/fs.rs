//! The on-disk block file system: superblock, bitmap, indirect-block
//! inodes — the design the Bullet paper's introduction describes (and
//! replaces).

use amoeba_disk::BlockDevice;
use amoeba_sim::DetRng;

use crate::buffer_cache::BufferCache;
use crate::BlockFsError;

/// Number of direct block pointers per inode (as in classic UNIX file
/// systems; with 8 KB blocks this covers 80 KB before indirection).
pub const NDIRECT: usize = 10;

const INODE_BYTES: usize = 64;
const MAGIC: u32 = 0x4e46_5331; // "NFS1"

/// Where everything lives on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsGeometry {
    /// File-system block size (also the NFS transfer size), bytes.
    pub block_size: u32,
    /// Total blocks on the device.
    pub total_blocks: u64,
    /// Number of inodes.
    pub n_inodes: u32,
    /// First bitmap block.
    pub bitmap_start: u64,
    /// Bitmap length in blocks.
    pub bitmap_blocks: u64,
    /// First inode-table block.
    pub itable_start: u64,
    /// Inode-table length in blocks.
    pub itable_blocks: u64,
    /// First data block.
    pub data_start: u64,
}

impl FsGeometry {
    fn compute(block_size: u32, total_blocks: u64, n_inodes: u32) -> FsGeometry {
        let bs = block_size as u64;
        let bitmap_start = 1;
        let bitmap_blocks = total_blocks.div_ceil(bs * 8);
        let itable_start = bitmap_start + bitmap_blocks;
        let itable_blocks = (n_inodes as u64 * INODE_BYTES as u64).div_ceil(bs);
        FsGeometry {
            block_size,
            total_blocks,
            n_inodes,
            bitmap_start,
            bitmap_blocks,
            itable_start,
            itable_blocks,
            data_start: itable_start + itable_blocks,
        }
    }

    fn pointers_per_block(&self) -> u64 {
        self.block_size as u64 / 4
    }

    /// Largest representable file in bytes (direct + indirect + double).
    pub fn max_file_size(&self) -> u64 {
        let ppb = self.pointers_per_block();
        (NDIRECT as u64 + ppb + ppb * ppb) * self.block_size as u64
    }
}

/// One in-memory inode (64 bytes on disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DiskInode {
    /// 0 = free, 1 = live file.
    mode: u32,
    size: u32,
    generation: u32,
    direct: [u32; NDIRECT],
    indirect: u32,
    dindirect: u32,
}

impl DiskInode {
    const FREE: DiskInode = DiskInode {
        mode: 0,
        size: 0,
        generation: 0,
        direct: [0; NDIRECT],
        indirect: 0,
        dindirect: 0,
    };

    fn encode(&self) -> [u8; INODE_BYTES] {
        let mut out = [0u8; INODE_BYTES];
        let mut w = |i: usize, v: u32| out[4 * i..4 * i + 4].copy_from_slice(&v.to_be_bytes());
        w(0, self.mode);
        w(1, self.size);
        w(2, self.generation);
        for (k, &d) in self.direct.iter().enumerate() {
            w(3 + k, d);
        }
        w(3 + NDIRECT, self.indirect);
        w(4 + NDIRECT, self.dindirect);
        out
    }

    fn decode(buf: &[u8]) -> DiskInode {
        let r = |i: usize| u32::from_be_bytes(buf[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        let mut direct = [0u32; NDIRECT];
        for (k, d) in direct.iter_mut().enumerate() {
            *d = r(3 + k);
        }
        DiskInode {
            mode: r(0),
            size: r(1),
            generation: r(2),
            direct,
            indirect: r(3 + NDIRECT),
            dindirect: r(4 + NDIRECT),
        }
    }
}

/// The mounted block file system over a buffer-cached device.
///
/// All metadata I/O (superblock, bitmap, inode table, indirect blocks)
/// and all data I/O go through the same write-through [`BufferCache`] —
/// the traditional design where "a small part of the computer's little
/// memory was used to keep parts of files in a RAM cache".
pub struct BlockFs<D> {
    cache: BufferCache<D>,
    geo: FsGeometry,
    /// When set, new blocks are allocated from pseudo-random bitmap
    /// positions, modelling an *aged* file system whose free blocks are
    /// scattered all over the disk (the paper's premise).  `None`
    /// allocates first-free (a freshly formatted disk).
    scatter: Option<DetRng>,
}

impl<D: BlockDevice> BlockFs<D> {
    /// Formats `dev` and mounts the result.
    ///
    /// # Errors
    ///
    /// Disk errors; [`BlockFsError::Corrupt`] for impossible geometry.
    pub fn format(
        dev: D,
        n_inodes: u32,
        cache_bytes: u64,
        scatter_seed: Option<u64>,
    ) -> Result<BlockFs<D>, BlockFsError> {
        let geo = FsGeometry::compute(dev.block_size(), dev.num_blocks(), n_inodes);
        if geo.data_start >= geo.total_blocks {
            return Err(BlockFsError::Corrupt(
                "device too small for bitmap and inode table".into(),
            ));
        }
        let bs = geo.block_size as usize;
        // Superblock.
        let mut sb = vec![0u8; bs];
        sb[0..4].copy_from_slice(&MAGIC.to_be_bytes());
        sb[4..8].copy_from_slice(&geo.block_size.to_be_bytes());
        sb[8..16].copy_from_slice(&geo.total_blocks.to_be_bytes());
        sb[16..20].copy_from_slice(&geo.n_inodes.to_be_bytes());
        dev.write_blocks(0, &sb)?;
        // Zeroed bitmap and inode table; then mark the metadata region
        // itself as allocated in the bitmap.
        let zero = vec![0u8; bs];
        for b in geo.bitmap_start..geo.data_start {
            dev.write_blocks(b, &zero)?;
        }
        dev.sync()?;
        let mut fs = BlockFs {
            cache: BufferCache::new(dev, cache_bytes),
            geo,
            scatter: scatter_seed.map(DetRng::new),
        };
        for b in 0..geo.data_start {
            fs.bitmap_set(b, true)?;
        }
        Ok(fs)
    }

    /// Mounts an already-formatted device.
    ///
    /// # Errors
    ///
    /// [`BlockFsError::Corrupt`] if the superblock does not parse.
    pub fn mount(
        dev: D,
        cache_bytes: u64,
        scatter_seed: Option<u64>,
    ) -> Result<BlockFs<D>, BlockFsError> {
        let bs = dev.block_size() as usize;
        let mut sb = vec![0u8; bs];
        dev.read_blocks(0, &mut sb)?;
        if u32::from_be_bytes(sb[0..4].try_into().expect("4")) != MAGIC {
            return Err(BlockFsError::Corrupt("bad superblock magic".into()));
        }
        let block_size = u32::from_be_bytes(sb[4..8].try_into().expect("4"));
        let total_blocks = u64::from_be_bytes(sb[8..16].try_into().expect("8"));
        let n_inodes = u32::from_be_bytes(sb[16..20].try_into().expect("4"));
        if block_size != dev.block_size() || total_blocks != dev.num_blocks() {
            return Err(BlockFsError::Corrupt("superblock geometry mismatch".into()));
        }
        Ok(BlockFs {
            geo: FsGeometry::compute(block_size, total_blocks, n_inodes),
            cache: BufferCache::new(dev, cache_bytes),
            scatter: scatter_seed.map(DetRng::new),
        })
    }

    /// The mounted geometry.
    pub fn geometry(&self) -> &FsGeometry {
        &self.geo
    }

    /// The buffer cache (for statistics).
    pub fn cache(&self) -> &BufferCache<D> {
        &self.cache
    }

    /// Drops all cached blocks (used by benchmarks to measure cold reads).
    pub fn drop_caches(&mut self) {
        self.cache.clear();
    }

    // ------------------------------------------------------------------
    // Inode operations.
    // ------------------------------------------------------------------

    /// Allocates a fresh empty file; returns `(inode_number, generation)`.
    ///
    /// # Errors
    ///
    /// [`BlockFsError::NoInodes`] when full; disk errors.
    pub fn create_inode(&mut self) -> Result<(u32, u32), BlockFsError> {
        for ino in 0..self.geo.n_inodes {
            let node = self.read_inode(ino)?;
            if node.mode == 0 {
                let fresh = DiskInode {
                    mode: 1,
                    size: 0,
                    generation: node.generation.wrapping_add(1),
                    ..DiskInode::FREE
                };
                self.write_inode(ino, &fresh)?;
                return Ok((ino, fresh.generation));
            }
        }
        Err(BlockFsError::NoInodes)
    }

    /// The file's size in bytes.
    ///
    /// # Errors
    ///
    /// [`BlockFsError::BadHandle`] for a free inode or stale generation.
    pub fn getattr(&mut self, ino: u32, generation: u32) -> Result<u32, BlockFsError> {
        Ok(self.live_inode(ino, generation)?.size)
    }

    /// Writes `data` at `offset`, allocating blocks (and indirect blocks)
    /// as needed, write-through.
    ///
    /// # Errors
    ///
    /// Handle, space, or disk errors.
    pub fn write(
        &mut self,
        ino: u32,
        generation: u32,
        offset: u32,
        data: &[u8],
    ) -> Result<(), BlockFsError> {
        let mut node = self.live_inode(ino, generation)?;
        let end = offset as u64 + data.len() as u64;
        if end > self.geo.max_file_size() || end > u32::MAX as u64 {
            return Err(BlockFsError::TooBig);
        }
        let bs = self.geo.block_size as usize;
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset as usize + written;
            let fblock = (pos / bs) as u64;
            let in_block = pos % bs;
            let n = (bs - in_block).min(data.len() - written);
            let dblock = self.bmap(&mut node, fblock, true)?;
            if n == bs {
                self.cache
                    .write_block(dblock, &data[written..written + n])?;
            } else {
                // Read-modify-write for partial blocks.
                let mut block = self.cache.read_block(dblock)?.to_vec();
                block[in_block..in_block + n].copy_from_slice(&data[written..written + n]);
                self.cache.write_block(dblock, &block)?;
            }
            written += n;
        }
        if end as u32 > node.size {
            node.size = end as u32;
        }
        self.write_inode(ino, &node)?;
        Ok(())
    }

    /// Reads up to `len` bytes at `offset`; short reads happen at EOF.
    ///
    /// # Errors
    ///
    /// [`BlockFsError::OutOfRange`] if `offset` is past EOF; handle or
    /// disk errors.
    pub fn read(
        &mut self,
        ino: u32,
        generation: u32,
        offset: u32,
        len: u32,
    ) -> Result<Vec<u8>, BlockFsError> {
        let mut node = self.live_inode(ino, generation)?;
        if offset > node.size {
            return Err(BlockFsError::OutOfRange);
        }
        let end = (offset as u64 + len as u64).min(node.size as u64) as u32;
        let bs = self.geo.block_size as usize;
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut pos = offset as usize;
        while pos < end as usize {
            let fblock = (pos / bs) as u64;
            let in_block = pos % bs;
            let n = (bs - in_block).min(end as usize - pos);
            match self.bmap(&mut node, fblock, false)? {
                0 => out.extend(std::iter::repeat_n(0u8, n)), // hole
                dblock => {
                    out.extend_from_slice(&self.cache.read_block(dblock)?[in_block..in_block + n])
                }
            }
            pos += n;
        }
        Ok(out)
    }

    /// Removes a file, freeing its data and indirect blocks.
    ///
    /// # Errors
    ///
    /// Handle or disk errors.
    pub fn remove(&mut self, ino: u32, generation: u32) -> Result<(), BlockFsError> {
        let node = self.live_inode(ino, generation)?;
        for &d in &node.direct {
            if d != 0 {
                self.free_block(d as u64)?;
            }
        }
        if node.indirect != 0 {
            self.free_indirect(node.indirect as u64, 1)?;
        }
        if node.dindirect != 0 {
            self.free_indirect(node.dindirect as u64, 2)?;
        }
        self.write_inode(
            ino,
            &DiskInode {
                generation: node.generation,
                ..DiskInode::FREE
            },
        )?;
        Ok(())
    }

    /// Number of free data blocks (bitmap scan; used by tests).
    ///
    /// # Errors
    ///
    /// Disk errors.
    pub fn free_blocks(&mut self) -> Result<u64, BlockFsError> {
        let mut free = 0;
        for b in self.geo.data_start..self.geo.total_blocks {
            if !self.bitmap_get(b)? {
                free += 1;
            }
        }
        Ok(free)
    }

    // ------------------------------------------------------------------
    // Block mapping (the indirect-block machinery the paper criticizes).
    // ------------------------------------------------------------------

    /// Maps a file block to a device block, optionally allocating.  A
    /// return of 0 with `alloc = false` means a hole.
    fn bmap(
        &mut self,
        node: &mut DiskInode,
        fblock: u64,
        alloc: bool,
    ) -> Result<u64, BlockFsError> {
        let ppb = self.geo.pointers_per_block();
        if (fblock as usize) < NDIRECT {
            let cur = node.direct[fblock as usize] as u64;
            if cur != 0 || !alloc {
                return Ok(cur);
            }
            let fresh = self.alloc_block()?;
            node.direct[fblock as usize] = fresh as u32;
            return Ok(fresh);
        }
        let fblock = fblock - NDIRECT as u64;
        if fblock < ppb {
            if node.indirect == 0 {
                if !alloc {
                    return Ok(0);
                }
                let blk = self.alloc_block()?;
                self.zero_block(blk)?;
                node.indirect = blk as u32;
            }
            return self.map_through(node.indirect as u64, &[fblock], alloc);
        }
        let fblock = fblock - ppb;
        if fblock < ppb * ppb {
            if node.dindirect == 0 {
                if !alloc {
                    return Ok(0);
                }
                let blk = self.alloc_block()?;
                self.zero_block(blk)?;
                node.dindirect = blk as u32;
            }
            return self.map_through(node.dindirect as u64, &[fblock / ppb, fblock % ppb], alloc);
        }
        Err(BlockFsError::TooBig)
    }

    /// Follows (and optionally builds) a chain of indirect blocks.
    fn map_through(
        &mut self,
        mut table: u64,
        path: &[u64],
        alloc: bool,
    ) -> Result<u64, BlockFsError> {
        for (level, &slot) in path.iter().enumerate() {
            let raw = self.cache.read_block(table)?;
            let off = slot as usize * 4;
            let mut ptr = u32::from_be_bytes(raw[off..off + 4].try_into().expect("4")) as u64;
            if ptr == 0 {
                if !alloc {
                    return Ok(0);
                }
                ptr = self.alloc_block()?;
                if level + 1 < path.len() {
                    self.zero_block(ptr)?;
                }
                let mut block = self.cache.read_block(table)?.to_vec();
                block[off..off + 4].copy_from_slice(&(ptr as u32).to_be_bytes());
                self.cache.write_block(table, &block)?;
            }
            table = ptr;
        }
        Ok(table)
    }

    fn free_indirect(&mut self, table: u64, depth: u32) -> Result<(), BlockFsError> {
        let ppb = self.geo.pointers_per_block() as usize;
        let raw = self.cache.read_block(table)?.to_vec();
        for slot in 0..ppb {
            let ptr = u32::from_be_bytes(raw[slot * 4..slot * 4 + 4].try_into().expect("4")) as u64;
            if ptr != 0 {
                if depth > 1 {
                    self.free_indirect(ptr, depth - 1)?;
                } else {
                    self.free_block(ptr)?;
                }
            }
        }
        self.free_block(table)
    }

    // ------------------------------------------------------------------
    // Bitmap allocator.
    // ------------------------------------------------------------------

    fn alloc_block(&mut self) -> Result<u64, BlockFsError> {
        let (start, end) = (self.geo.data_start, self.geo.total_blocks);
        let span = end - start;
        let origin = match &mut self.scatter {
            Some(rng) => start + rng.next_below(span),
            None => start,
        };
        // Scan from the origin, wrapping, for a free block.
        for i in 0..span {
            let b = start + (origin - start + i) % span;
            if !self.bitmap_get(b)? {
                self.bitmap_set(b, true)?;
                return Ok(b);
            }
        }
        Err(BlockFsError::NoSpace)
    }

    fn free_block(&mut self, block: u64) -> Result<(), BlockFsError> {
        self.bitmap_set(block, false)?;
        self.cache.invalidate(block);
        Ok(())
    }

    fn bitmap_get(&mut self, block: u64) -> Result<bool, BlockFsError> {
        let bits_per_block = self.geo.block_size as u64 * 8;
        let bblock = self.geo.bitmap_start + block / bits_per_block;
        let bit = (block % bits_per_block) as usize;
        let raw = self.cache.read_block(bblock)?;
        Ok(raw[bit / 8] & (1 << (bit % 8)) != 0)
    }

    fn bitmap_set(&mut self, block: u64, val: bool) -> Result<(), BlockFsError> {
        let bits_per_block = self.geo.block_size as u64 * 8;
        let bblock = self.geo.bitmap_start + block / bits_per_block;
        let bit = (block % bits_per_block) as usize;
        let mut raw = self.cache.read_block(bblock)?.to_vec();
        if val {
            raw[bit / 8] |= 1 << (bit % 8);
        } else {
            raw[bit / 8] &= !(1 << (bit % 8));
        }
        self.cache.write_block(bblock, &raw)?;
        Ok(())
    }

    fn zero_block(&mut self, block: u64) -> Result<(), BlockFsError> {
        self.cache
            .write_block(block, &vec![0u8; self.geo.block_size as usize])
    }

    // ------------------------------------------------------------------
    // Inode I/O.
    // ------------------------------------------------------------------

    fn live_inode(&mut self, ino: u32, generation: u32) -> Result<DiskInode, BlockFsError> {
        if ino >= self.geo.n_inodes {
            return Err(BlockFsError::BadHandle);
        }
        let node = self.read_inode(ino)?;
        if node.mode == 0 || node.generation != generation {
            return Err(BlockFsError::BadHandle);
        }
        Ok(node)
    }

    fn inode_location(&self, ino: u32) -> (u64, usize) {
        let per_block = self.geo.block_size as usize / INODE_BYTES;
        (
            self.geo.itable_start + (ino as usize / per_block) as u64,
            (ino as usize % per_block) * INODE_BYTES,
        )
    }

    fn read_inode(&mut self, ino: u32) -> Result<DiskInode, BlockFsError> {
        let (block, off) = self.inode_location(ino);
        let raw = self.cache.read_block(block)?;
        Ok(DiskInode::decode(&raw[off..off + INODE_BYTES]))
    }

    fn write_inode(&mut self, ino: u32, node: &DiskInode) -> Result<(), BlockFsError> {
        let (block, off) = self.inode_location(ino);
        let mut raw = self.cache.read_block(block)?.to_vec();
        raw[off..off + INODE_BYTES].copy_from_slice(&node.encode());
        self.cache.write_block(block, &raw)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_disk::RamDisk;

    fn fs() -> BlockFs<RamDisk> {
        // 1024-byte blocks keep indirect thresholds small for tests:
        // direct = 10 KB, single indirect = +256 KB.
        BlockFs::format(RamDisk::new(1024, 4096), 64, 64 * 1024, None).unwrap()
    }

    #[test]
    fn inode_codec_roundtrip() {
        let node = DiskInode {
            mode: 1,
            size: 12345,
            generation: 7,
            direct: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            indirect: 99,
            dindirect: 100,
        };
        assert_eq!(DiskInode::decode(&node.encode()), node);
    }

    #[test]
    fn create_write_read_small() {
        let mut fs = fs();
        let (ino, generation) = fs.create_inode().unwrap();
        fs.write(ino, generation, 0, b"hello block world").unwrap();
        assert_eq!(fs.getattr(ino, generation).unwrap(), 17);
        assert_eq!(
            fs.read(ino, generation, 0, 17).unwrap(),
            b"hello block world"
        );
        assert_eq!(fs.read(ino, generation, 6, 5).unwrap(), b"block");
        // Reads past EOF are short; offset beyond EOF errors.
        assert_eq!(fs.read(ino, generation, 10, 100).unwrap().len(), 7);
        assert!(matches!(
            fs.read(ino, generation, 18, 1),
            Err(BlockFsError::OutOfRange)
        ));
    }

    #[test]
    fn large_file_crosses_into_indirect_blocks() {
        let mut fs = fs();
        let (ino, generation) = fs.create_inode().unwrap();
        // 40 KB > 10 KB direct coverage at 1 KB blocks.
        let data: Vec<u8> = (0..40 * 1024u32).map(|i| (i % 251) as u8).collect();
        for (i, chunk) in data.chunks(1024).enumerate() {
            fs.write(ino, generation, (i * 1024) as u32, chunk).unwrap();
        }
        let back = fs.read(ino, generation, 0, data.len() as u32).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn very_large_file_uses_double_indirect() {
        let mut fs = BlockFs::format(RamDisk::new(1024, 8192), 16, 256 * 1024, None).unwrap();
        let (ino, generation) = fs.create_inode().unwrap();
        // Single indirect covers 10 + 256 blocks = 266 KB; write past it.
        let offset = 300 * 1024;
        fs.write(ino, generation, offset, b"tail data").unwrap();
        assert_eq!(fs.read(ino, generation, offset, 9).unwrap(), b"tail data");
        // The hole in the middle reads as zeros.
        assert_eq!(fs.read(ino, generation, 1024, 4).unwrap(), vec![0; 4]);
        // Remove frees everything, including both indirect levels.
        let free_before_format = fs.free_blocks().unwrap();
        fs.remove(ino, generation).unwrap();
        let free_after = fs.free_blocks().unwrap();
        assert!(free_after > free_before_format);
        assert!(matches!(
            fs.getattr(ino, generation),
            Err(BlockFsError::BadHandle)
        ));
    }

    #[test]
    fn generation_protects_against_stale_handles() {
        let mut fs = fs();
        let (ino, gen1) = fs.create_inode().unwrap();
        fs.write(ino, gen1, 0, b"first").unwrap();
        fs.remove(ino, gen1).unwrap();
        let (ino2, gen2) = fs.create_inode().unwrap();
        assert_eq!(ino2, ino, "inode slot is reused");
        assert_ne!(gen2, gen1);
        assert!(matches!(
            fs.read(ino, gen1, 0, 5),
            Err(BlockFsError::BadHandle)
        ));
    }

    #[test]
    fn remove_returns_blocks_to_the_pool() {
        let mut fs = fs();
        let free0 = fs.free_blocks().unwrap();
        let (ino, generation) = fs.create_inode().unwrap();
        fs.write(ino, generation, 0, &vec![7u8; 20 * 1024]).unwrap();
        let free1 = fs.free_blocks().unwrap();
        assert!(free1 < free0);
        fs.remove(ino, generation).unwrap();
        assert_eq!(fs.free_blocks().unwrap(), free0);
    }

    #[test]
    fn mount_rereads_formatted_state() {
        use std::sync::Arc;
        let dev = Arc::new(RamDisk::new(1024, 2048));
        let (ino, generation);
        {
            let mut fs = BlockFs::format(dev.clone(), 16, 32 * 1024, None).unwrap();
            (ino, generation) = fs.create_inode().unwrap();
            fs.write(ino, generation, 0, b"durable").unwrap();
            // Write-through: dropping the fs loses nothing.
        }
        let mut fs2 = BlockFs::mount(dev.clone(), 32 * 1024, None).unwrap();
        assert_eq!(fs2.read(ino, generation, 0, 7).unwrap(), b"durable");
        // Wrong geometry is rejected.
        assert!(BlockFs::mount(Arc::new(RamDisk::new(1024, 2048)), 1024, None).is_err());
    }

    #[test]
    fn scattered_allocation_spreads_blocks() {
        fn measure_spread(fs: &mut BlockFs<RamDisk>) -> u64 {
            let (ino, generation) = fs.create_inode().unwrap();
            fs.write(ino, generation, 0, &vec![1u8; 8 * 1024]).unwrap();
            let node = fs.read_inode(ino).unwrap();
            let blocks: Vec<u64> = node.direct.iter().take(8).map(|&b| b as u64).collect();
            let min = *blocks.iter().min().unwrap();
            let max = *blocks.iter().max().unwrap();
            max - min
        }
        let mut fresh = fs();
        let mut aged = BlockFs::format(RamDisk::new(1024, 4096), 64, 64 * 1024, Some(42)).unwrap();
        let fresh_spread = measure_spread(&mut fresh);
        let aged_spread = measure_spread(&mut aged);
        assert!(fresh_spread <= 8, "fresh spread {fresh_spread}");
        assert!(aged_spread > 64, "aged spread {aged_spread}");
    }

    #[test]
    fn exhaustion_errors() {
        let mut small = BlockFs::format(RamDisk::new(1024, 16), 4, 8 * 1024, None).unwrap();
        let (ino, generation) = small.create_inode().unwrap();
        assert!(matches!(
            small.write(ino, generation, 0, &vec![0u8; 32 * 1024]),
            Err(BlockFsError::NoSpace)
        ));
        // Inode exhaustion.
        let mut fs = fs();
        let mut n = 0;
        while fs.create_inode().is_ok() {
            n += 1;
            assert!(n <= 64);
        }
        assert_eq!(n, 64);
    }
}
