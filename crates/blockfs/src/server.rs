//! The NFS-like RPC server over the block file system.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use amoeba_cap::Port;
use amoeba_disk::{BlockDevice, RamDisk};
use amoeba_rpc::{Reply, Request, RpcServer, Status};
use amoeba_sim::{Nanos, SimClock, Stats};

use crate::fs::BlockFs;
use crate::BlockFsError;

/// Command codes of the NFS-like protocol (one RPC per block, the
/// traditional model).
pub mod nfs_commands {
    /// Create an empty file → file handle.
    pub const CREATE: u32 = 1;
    /// Write one transfer unit: `(fh, offset)` + data.
    pub const WRITE: u32 = 2;
    /// Read one transfer unit: `(fh, offset, len)` → data.
    pub const READ: u32 = 3;
    /// File size: `(fh)` → u32.
    pub const GETATTR: u32 = 4;
    /// Remove the file: `(fh)`.
    pub const REMOVE: u32 = 5;
}

/// An NFS file handle: inode number + generation (stale handles are
/// detected by generation mismatch, like real NFS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FileHandle {
    /// Inode number.
    pub ino: u32,
    /// Inode generation.
    pub generation: u32,
}

impl FileHandle {
    /// Wire length in bytes.
    pub const WIRE_LEN: usize = 8;

    /// Serializes the handle.
    pub fn to_wire(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0..4].copy_from_slice(&self.ino.to_be_bytes());
        out[4..8].copy_from_slice(&self.generation.to_be_bytes());
        out
    }

    /// Parses a handle from `buf` at `at`.
    ///
    /// # Errors
    ///
    /// [`Status::BadParam`] if truncated.
    pub fn from_wire(buf: &Bytes, at: usize) -> Result<FileHandle, Status> {
        let raw = buf.get(at..at + 8).ok_or(Status::BadParam)?;
        Ok(FileHandle {
            ino: u32::from_be_bytes(raw[0..4].try_into().expect("4")),
            generation: u32::from_be_bytes(raw[4..8].try_into().expect("4")),
        })
    }
}

/// Cost model of the SunOS 3.5 NFS software path, calibrated against
/// documented era behaviour (see EXPERIMENTS.md for the discussion):
///
/// * NFS servers of the day serviced on the order of 100–200 ops/s —
///   several milliseconds of kernel CPU per operation (UDP/IP, XDR, VFS);
/// * every data byte crossed several extra copies (mbuf chains, UDP
///   checksum, buffer cache, user space) on a 4 MB/s-memcpy machine;
/// * large transfers fragmented 8 KB UDP datagrams onto a loaded
///   Ethernet; fragment loss cost a full `timeo` retransmission timeout,
///   the classic NFS large-file pathology.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct NfsProfile {
    /// Fixed server CPU per NFS operation (µs).
    pub op_overhead_us: f64,
    /// Extra per-byte software cost on the data path (µs).
    pub per_byte_us: f64,
    /// A retransmission timeout fires after this many back-to-back
    /// packets of one transfer (0 disables the model).
    pub retrans_every_packets: u64,
    /// The retransmission timeout penalty.
    pub retrans_penalty: Nanos,
    /// Ethernet payload per packet, for the fragment count.
    pub packet_payload: u32,
}

impl NfsProfile {
    /// The calibrated SunOS 3.5 profile.
    pub fn sunos_3_5() -> NfsProfile {
        NfsProfile {
            op_overhead_us: 2_000.0,
            per_byte_us: 6.0,
            retrans_every_packets: 220,
            retrans_penalty: Nanos::from_ms(700),
            packet_payload: 1480,
        }
    }

    /// A variant with the retransmission pathology disabled (ablation).
    pub fn without_retransmissions(mut self) -> NfsProfile {
        self.retrans_every_packets = 0;
        self
    }
}

/// Configuration of the NFS-like server.
#[derive(Debug, Clone)]
pub struct NfsServerConfig {
    /// The service port.
    pub port: Port,
    /// Buffer-cache size in bytes (the measured server had 3 MB).
    pub cache_bytes: u64,
    /// Number of inodes to format.
    pub n_inodes: u32,
    /// File-system block size == NFS transfer size.
    pub block_size: u32,
    /// Device size in blocks (convenience constructor).
    pub disk_blocks: u64,
    /// Aged-file-system scatter seed (`None` = freshly formatted).
    pub scatter_seed: Option<u64>,
    /// The software cost model.
    pub profile: NfsProfile,
    /// The shared simulated clock.
    pub clock: SimClock,
}

impl NfsServerConfig {
    /// A small test configuration: 1 KB blocks, 4 MB disk, 64 KB cache.
    pub fn small_test() -> NfsServerConfig {
        NfsServerConfig {
            port: Port::from_u64(0x4e46),
            cache_bytes: 64 * 1024,
            n_inodes: 128,
            block_size: 1024,
            disk_blocks: 4096,
            scatter_seed: None,
            profile: NfsProfile::sunos_3_5(),
            clock: SimClock::new(),
        }
    }

    /// The paper's measured server: 8 KB transfers, 3 MB cache, aged disk.
    pub fn sun_3_180(clock: SimClock) -> NfsServerConfig {
        NfsServerConfig {
            port: Port::from_u64(0x4e46),
            cache_bytes: 3 << 20,
            n_inodes: 1024,
            block_size: 8192,
            disk_blocks: 8192, // 64 MB device (scaled; seek model uses fractions)
            scatter_seed: Some(0xa6ed),
            profile: NfsProfile::sunos_3_5(),
            clock,
        }
    }
}

/// The NFS-like file server.
pub struct NfsServer {
    cfg: NfsServerConfig,
    fs: Mutex<BlockFs<Arc<dyn BlockDevice>>>,
    stats: Stats,
}

impl std::fmt::Debug for NfsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NfsServer")
            .field("port", &self.cfg.port)
            .finish()
    }
}

impl NfsServer {
    /// Formats `dev` and serves it.
    ///
    /// # Errors
    ///
    /// Disk or format errors.
    pub fn format_on(
        cfg: NfsServerConfig,
        dev: Arc<dyn BlockDevice>,
    ) -> Result<NfsServer, BlockFsError> {
        let fs = BlockFs::format(dev, cfg.n_inodes, cfg.cache_bytes, cfg.scatter_seed)?;
        Ok(NfsServer {
            cfg,
            fs: Mutex::new(fs),
            stats: Stats::new(),
        })
    }

    /// Convenience: formats a fresh server on a plain RAM disk sized from
    /// the configuration.
    ///
    /// # Errors
    ///
    /// Disk or format errors.
    pub fn format(cfg: NfsServerConfig) -> Result<NfsServer, BlockFsError> {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(cfg.block_size, cfg.disk_blocks));
        NfsServer::format_on(cfg, dev)
    }

    /// The service port.
    pub fn port(&self) -> Port {
        self.cfg.port
    }

    /// The configured transfer size (== block size).
    pub fn transfer_size(&self) -> u32 {
        self.cfg.block_size
    }

    /// The cost profile.
    pub fn profile(&self) -> NfsProfile {
        self.cfg.profile
    }

    /// Server statistics: `nfs_ops`, `nfs_bytes_in`, `nfs_bytes_out`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Buffer-cache statistics snapshot.
    pub fn cache_stats(&self) -> Vec<(&'static str, u64)> {
        self.fs.lock().cache().stats().snapshot()
    }

    /// Drops the buffer cache (benchmarks use this for cold-read runs).
    pub fn drop_caches(&self) {
        self.fs.lock().drop_caches();
    }

    fn charge(&self, data_bytes: u64) {
        let p = &self.cfg.profile;
        self.cfg.clock.advance(Nanos::from_us_f64(
            p.op_overhead_us + data_bytes as f64 * p.per_byte_us,
        ));
    }
}

impl RpcServer for NfsServer {
    fn port(&self) -> Port {
        self.cfg.port
    }

    fn handle(&self, req: Request) -> Reply {
        use nfs_commands as c;
        self.stats.incr("nfs_ops");
        let result: Result<Reply, Status> = (|| match req.command {
            amoeba_rpc::std_commands::INFO => Ok(Reply::ok(
                Bytes::new(),
                Bytes::from(format!(
                    "nfs-like block server at {}: {}-byte transfers",
                    self.cfg.port, self.cfg.block_size
                )),
            )),
            amoeba_rpc::std_commands::STATUS => {
                let mut out = String::new();
                for (k, v) in self.stats.snapshot() {
                    out.push_str(&format!("{k}={v}\n"));
                }
                for (k, v) in self.cache_stats() {
                    out.push_str(&format!("{k}={v}\n"));
                }
                Ok(Reply::ok(Bytes::new(), Bytes::from(out)))
            }
            c::CREATE => {
                self.charge(0);
                let (ino, generation) = self.fs.lock().create_inode().map_err(Status::from)?;
                Ok(Reply::ok(
                    Bytes::copy_from_slice(&FileHandle { ino, generation }.to_wire()),
                    Bytes::new(),
                ))
            }
            c::WRITE => {
                let fh = FileHandle::from_wire(&req.params, 0)?;
                let offset = read_u32(&req.params, 8)?;
                self.charge(req.data.len() as u64);
                self.stats.add("nfs_bytes_in", req.data.len() as u64);
                self.fs
                    .lock()
                    .write(fh.ino, fh.generation, offset, &req.data)
                    .map_err(Status::from)?;
                Ok(Reply::ok(Bytes::new(), Bytes::new()))
            }
            c::READ => {
                let fh = FileHandle::from_wire(&req.params, 0)?;
                let offset = read_u32(&req.params, 8)?;
                let len = read_u32(&req.params, 12)?.min(self.cfg.block_size);
                let data = self
                    .fs
                    .lock()
                    .read(fh.ino, fh.generation, offset, len)
                    .map_err(Status::from)?;
                self.charge(data.len() as u64);
                self.stats.add("nfs_bytes_out", data.len() as u64);
                Ok(Reply::ok(Bytes::new(), Bytes::from(data)))
            }
            c::GETATTR => {
                self.charge(0);
                let fh = FileHandle::from_wire(&req.params, 0)?;
                let size = self
                    .fs
                    .lock()
                    .getattr(fh.ino, fh.generation)
                    .map_err(Status::from)?;
                let mut params = BytesMut::with_capacity(4);
                params.put_u32(size);
                Ok(Reply::ok(params.freeze(), Bytes::new()))
            }
            c::REMOVE => {
                self.charge(0);
                let fh = FileHandle::from_wire(&req.params, 0)?;
                self.fs
                    .lock()
                    .remove(fh.ino, fh.generation)
                    .map_err(Status::from)?;
                Ok(Reply::ok(Bytes::new(), Bytes::new()))
            }
            _ => Err(Status::ComBad),
        })();
        result.unwrap_or_else(Reply::error)
    }
}

fn read_u32(buf: &Bytes, at: usize) -> Result<u32, Status> {
    buf.get(at..at + 4)
        .map(|mut s| s.get_u32())
        .ok_or(Status::BadParam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_wire_roundtrip() {
        let fh = FileHandle {
            ino: 77,
            generation: 3,
        };
        let wire = Bytes::copy_from_slice(&fh.to_wire());
        assert_eq!(FileHandle::from_wire(&wire, 0).unwrap(), fh);
        assert_eq!(
            FileHandle::from_wire(&wire.slice(..7), 0).unwrap_err(),
            Status::BadParam
        );
    }

    #[test]
    fn server_ops_charge_fixed_and_per_byte_cost() {
        let cfg = NfsServerConfig::small_test();
        let clock = cfg.clock.clone();
        let server = NfsServer::format(cfg).unwrap();

        let reply = server.handle(Request {
            cap: amoeba_cap::Capability::null(),
            command: nfs_commands::CREATE,
            params: Bytes::new(),
            data: Bytes::new(),
        });
        assert_eq!(reply.status, Status::Ok);
        let after_create = clock.now();
        assert!(
            after_create.as_ms_f64() >= 2.0,
            "create charged {after_create}"
        );

        let fh = FileHandle::from_wire(&reply.params, 0).unwrap();
        let mut params = BytesMut::new();
        params.put_slice(&fh.to_wire());
        params.put_u32(0);
        let reply = server.handle(Request {
            cap: amoeba_cap::Capability::null(),
            command: nfs_commands::WRITE,
            params: params.freeze(),
            data: Bytes::from(vec![1u8; 1024]),
        });
        assert_eq!(reply.status, Status::Ok);
        let write_cost = clock.now() - after_create;
        // 2.5 ms fixed + 1024 * 6.0 µs ≈ 8.6 ms.
        assert!(
            (7.5..10.0).contains(&write_cost.as_ms_f64()),
            "write charged {write_cost}"
        );
    }

    #[test]
    fn unknown_command_and_stale_handle() {
        let server = NfsServer::format(NfsServerConfig::small_test()).unwrap();
        let reply = server.handle(Request {
            cap: amoeba_cap::Capability::null(),
            command: 99,
            params: Bytes::new(),
            data: Bytes::new(),
        });
        assert_eq!(reply.status, Status::ComBad);

        let mut params = BytesMut::new();
        params.put_slice(
            &FileHandle {
                ino: 1,
                generation: 42,
            }
            .to_wire(),
        );
        let reply = server.handle(Request {
            cap: amoeba_cap::Capability::null(),
            command: nfs_commands::GETATTR,
            params: params.freeze(),
            data: Bytes::new(),
        });
        assert_eq!(reply.status, Status::NotFound);
    }
}
