//! Simulated network for the Bullet reproduction.
//!
//! The paper measured over "a normally loaded Ethernet" at 10 Mbit/s.  This
//! crate models that wire: every message charged to the shared
//! [`SimEthernet`] costs a fixed per-message term, a per-packet term for
//! each 1480-byte Ethernet frame, and a per-byte wire term, all taken from
//! the calibrated [`amoeba_sim::NetProfile`].  A load factor scales the
//! whole cost to model competing traffic.
//!
//! Two usage styles:
//!
//! * **Synchronous simulation** (the figure benchmarks): components call
//!   [`SimEthernet::send`] inline; the simulated clock advances and the
//!   "delivery" is the function returning.  Deterministic.
//! * **Threaded channels** (concurrency tests): [`duplex`] builds a pair of
//!   [`Chan`] endpoints over crossbeam channels whose sends charge the same
//!   Ethernet, so multi-threaded runs still account simulated time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvError, SendError, Sender};

use amoeba_sim::{Nanos, NetProfile, SimClock, Stats};

/// The shared 10 Mbit/s Ethernet segment.
///
/// Cloning shares the same wire (and therefore the same clock and
/// statistics).
///
/// # Example
///
/// ```
/// use amoeba_net::SimEthernet;
/// use amoeba_sim::{NetProfile, SimClock};
///
/// let clock = SimClock::new();
/// let net = SimEthernet::new(clock.clone(), NetProfile::ethernet_10mbit());
/// net.send(1024); // one 1 KB message, one way
/// assert!(clock.now().as_us() > 1000);
/// ```
#[derive(Debug, Clone)]
pub struct SimEthernet {
    clock: SimClock,
    profile: NetProfile,
    load_factor: f64,
    stats: Stats,
}

impl SimEthernet {
    /// A quiet Ethernet (load factor 1.0).
    pub fn new(clock: SimClock, profile: NetProfile) -> SimEthernet {
        SimEthernet::with_load(clock, profile, 1.0)
    }

    /// An Ethernet whose transmissions take `load_factor` times the quiet
    /// cost; the paper's "normally loaded" segment is ≈ 1.1–1.3.
    ///
    /// # Panics
    ///
    /// Panics if `load_factor < 1.0`.
    pub fn with_load(clock: SimClock, profile: NetProfile, load_factor: f64) -> SimEthernet {
        assert!(load_factor >= 1.0, "load factor must be >= 1.0");
        SimEthernet {
            clock,
            profile,
            load_factor,
            stats: Stats::new(),
        }
    }

    /// Transmits one message of `bytes` payload one way, charging the
    /// simulated clock.  Returns the simulated transmission time.
    pub fn send(&self, bytes: u64) -> Nanos {
        let base = self.profile.one_way(bytes);
        let t = Nanos::from_ns((base.as_ns() as f64 * self.load_factor) as u64);
        self.clock.advance(t);
        self.stats.incr("net_messages");
        self.stats.add("net_bytes", bytes);
        self.stats.add("net_packets", self.profile.packets(bytes));
        t
    }

    /// Transmits `bytes` as a *streamed continuation* of a message already
    /// in flight: per-packet and per-byte costs only, no per-message setup
    /// (see [`NetProfile::continuation`]).  Counted as `net_stream_frames`
    /// rather than `net_messages` — a streamed transfer is still one
    /// logical message on the wire.
    pub fn send_stream(&self, bytes: u64) -> Nanos {
        let base = self.profile.continuation(bytes);
        let t = Nanos::from_ns((base.as_ns() as f64 * self.load_factor) as u64);
        self.clock.advance(t);
        self.stats.incr("net_stream_frames");
        self.stats.add("net_bytes", bytes);
        self.stats.add("net_packets", self.profile.packets(bytes));
        t
    }

    /// The wire's cost profile.
    pub fn profile(&self) -> &NetProfile {
        &self.profile
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Wire statistics: `net_messages`, `net_bytes`, `net_packets`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

/// One endpoint of a bidirectional, Ethernet-charged message channel.
#[derive(Debug, Clone)]
pub struct Chan {
    net: SimEthernet,
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

impl Chan {
    /// Sends a message to the peer, charging the Ethernet.
    ///
    /// # Errors
    ///
    /// Returns the message back if the peer has hung up.
    pub fn send(&self, msg: Bytes) -> Result<(), SendError<Bytes>> {
        self.net.send(msg.len() as u64);
        self.tx.send(msg)
    }

    /// Sends a streamed continuation frame to the peer, charging the
    /// Ethernet at continuation rates (see [`SimEthernet::send_stream`]).
    ///
    /// # Errors
    ///
    /// Returns the message back if the peer has hung up.
    pub fn send_stream(&self, msg: Bytes) -> Result<(), SendError<Bytes>> {
        self.net.send_stream(msg.len() as u64);
        self.tx.send(msg)
    }

    /// Receives the next message, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Fails if the peer has hung up and the queue is drained.
    pub fn recv(&self) -> Result<Bytes, RecvError> {
        self.rx.recv()
    }

    /// Receives without blocking; `None` if no message is waiting.
    pub fn try_recv(&self) -> Option<Bytes> {
        self.rx.try_recv().ok()
    }
}

/// Builds a connected pair of channel endpoints over `net`.
pub fn duplex(net: &SimEthernet) -> (Chan, Chan) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        Chan {
            net: net.clone(),
            tx: atx,
            rx: arx,
        },
        Chan {
            net: net.clone(),
            tx: btx,
            rx: brx,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (SimClock, SimEthernet) {
        let clock = SimClock::new();
        let n = SimEthernet::new(clock.clone(), NetProfile::ethernet_10mbit());
        (clock, n)
    }

    #[test]
    fn send_charges_clock_and_counts() {
        let (clock, n) = net();
        let t = n.send(1480);
        assert_eq!(clock.now(), t);
        assert_eq!(n.stats().get("net_messages"), 1);
        assert_eq!(n.stats().get("net_bytes"), 1480);
        assert_eq!(n.stats().get("net_packets"), 1);
    }

    #[test]
    fn stream_frames_skip_message_overhead() {
        let (clock, n) = net();
        let full = n.send(1480);
        let t0 = clock.now();
        let cont = n.send_stream(1480);
        assert_eq!(clock.now() - t0, cont);
        assert!(cont < full, "continuation {cont} vs message {full}");
        assert_eq!(n.stats().get("net_messages"), 1);
        assert_eq!(n.stats().get("net_stream_frames"), 1);
        assert_eq!(n.stats().get("net_bytes"), 2960);
    }

    #[test]
    fn larger_messages_cost_more() {
        let (_c, n) = net();
        assert!(n.send(100_000) > n.send(100));
    }

    #[test]
    fn load_factor_scales_cost() {
        let clock = SimClock::new();
        let quiet = SimEthernet::new(clock.clone(), NetProfile::ethernet_10mbit());
        let busy = SimEthernet::with_load(clock, NetProfile::ethernet_10mbit(), 2.0);
        let a = quiet.send(10_000);
        let b = busy.send(10_000);
        assert_eq!(b.as_ns(), a.as_ns() * 2);
    }

    #[test]
    #[should_panic(expected = "load factor")]
    fn sub_unity_load_rejected() {
        SimEthernet::with_load(SimClock::new(), NetProfile::ethernet_10mbit(), 0.5);
    }

    #[test]
    fn clones_share_wire() {
        let (_c, n) = net();
        let m = n.clone();
        m.send(10);
        assert_eq!(n.stats().get("net_messages"), 1);
    }

    #[test]
    fn duplex_delivers_and_charges() {
        let (clock, n) = net();
        let (a, b) = duplex(&n);
        a.send(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"ping"));
        b.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(a.recv().unwrap(), Bytes::from_static(b"pong"));
        assert_eq!(n.stats().get("net_messages"), 2);
        assert!(clock.now().as_ns() > 0);
    }

    #[test]
    fn duplex_across_threads() {
        let (_c, n) = net();
        let (a, b) = duplex(&n);
        let t = std::thread::spawn(move || {
            let req = b.recv().unwrap();
            b.send(Bytes::from(vec![req.len() as u8])).unwrap();
        });
        a.send(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(a.recv().unwrap()[0], 5);
        t.join().unwrap();
    }

    #[test]
    fn try_recv_nonblocking() {
        let (_c, n) = net();
        let (a, b) = duplex(&n);
        assert!(b.try_recv().is_none());
        a.send(Bytes::from_static(b"x")).unwrap();
        assert!(b.try_recv().is_some());
    }
}
