//! Property tests for the simulated Ethernet: cost accounting must be
//! monotone, additive, and deterministic; channels must preserve order.

use amoeba_net::{duplex, SimEthernet};
use amoeba_sim::{NetProfile, SimClock};
use bytes::Bytes;
use proptest::prelude::*;

fn wire() -> (SimClock, SimEthernet) {
    let clock = SimClock::new();
    let net = SimEthernet::new(clock.clone(), NetProfile::ethernet_10mbit());
    (clock, net)
}

proptest! {
    #[test]
    fn send_cost_is_monotone_in_size(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (small, large) = (a.min(b), a.max(b));
        let (_c, net) = wire();
        let t_small = net.send(small);
        let t_large = net.send(large);
        prop_assert!(t_small <= t_large, "{small}B cost {t_small}, {large}B cost {t_large}");
    }

    #[test]
    fn clock_advances_by_exactly_the_sum(sizes in proptest::collection::vec(0u64..100_000, 1..20)) {
        let (clock, net) = wire();
        let mut expected = amoeba_sim::Nanos::ZERO;
        for &size in &sizes {
            expected += net.send(size);
        }
        prop_assert_eq!(clock.now(), expected);
        prop_assert_eq!(net.stats().get("net_messages"), sizes.len() as u64);
        prop_assert_eq!(net.stats().get("net_bytes"), sizes.iter().sum::<u64>());
    }

    #[test]
    fn load_factor_scales_proportionally(size in 1u64..500_000, load in 1u32..=4) {
        let quiet = {
            let (_c, net) = wire();
            net.send(size)
        };
        let busy = {
            let clock = SimClock::new();
            let net = SimEthernet::with_load(clock, NetProfile::ethernet_10mbit(), load as f64);
            net.send(size)
        };
        prop_assert_eq!(busy.as_ns(), quiet.as_ns() * load as u64);
    }

    #[test]
    fn packet_accounting_matches_mtu_math(size in 0u64..2_000_000) {
        let profile = NetProfile::ethernet_10mbit();
        let expected = if size == 0 { 1 } else { size.div_ceil(profile.mtu_payload as u64) };
        prop_assert_eq!(profile.packets(size), expected);
    }

    #[test]
    fn duplex_preserves_message_order(msgs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..100), 1..20)) {
        let (_c, net) = wire();
        let (a, b) = duplex(&net);
        for msg in &msgs {
            a.send(Bytes::from(msg.clone())).unwrap();
        }
        for msg in &msgs {
            prop_assert_eq!(&b.recv().unwrap()[..], &msg[..]);
        }
        prop_assert!(b.try_recv().is_none());
    }
}
