//! Model-based property tests: the UNIX emulation must behave like an
//! in-memory map of paths to byte strings under any sequence of
//! open/read/write/seek/close operations.

use std::collections::HashMap;
use std::sync::Arc;

use amoeba_dir::DirServer;
use amoeba_unix::{OpenFlags, SeekFrom, UnixError, UnixFs};
use bullet_core::{BulletConfig, BulletServer};
use proptest::prelude::*;

fn fresh_fs() -> UnixFs {
    let mut cfg = BulletConfig::small_test();
    cfg.disk_blocks = 8192;
    cfg.cache_capacity = 2 << 20;
    let bullet = Arc::new(BulletServer::format(cfg, 2).unwrap());
    let dirs = Arc::new(DirServer::bootstrap(bullet.clone()).unwrap());
    UnixFs::new(dirs, bullet)
}

#[derive(Debug, Clone)]
enum Op {
    WriteFile {
        name: u8,
        data: Vec<u8>,
    },
    AppendFile {
        name: u8,
        data: Vec<u8>,
    },
    OverwriteAt {
        name: u8,
        offset: u16,
        data: Vec<u8>,
    },
    Unlink {
        name: u8,
    },
    ReadBack {
        name: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let small = proptest::collection::vec(any::<u8>(), 0..300);
    prop_oneof![
        3 => (0u8..6, small.clone()).prop_map(|(name, data)| Op::WriteFile { name, data }),
        2 => (0u8..6, small.clone()).prop_map(|(name, data)| Op::AppendFile { name, data }),
        2 => (0u8..6, any::<u16>(), small).prop_map(|(name, offset, data)| Op::OverwriteAt {
            name,
            offset,
            data
        }),
        1 => (0u8..6).prop_map(|name| Op::Unlink { name }),
        3 => (0u8..6).prop_map(|name| Op::ReadBack { name }),
    ]
}

fn path(name: u8) -> String {
    format!("/file-{name}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unix_layer_matches_a_map_model(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let fs = fresh_fs();
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::WriteFile { name, data } => {
                    fs.write_file(&path(name), &data).unwrap();
                    model.insert(name, data);
                }
                Op::AppendFile { name, data } => {
                    let fd = fs.open(&path(name), OpenFlags::append()).unwrap();
                    fs.write(fd, &data).unwrap();
                    fs.close(fd).unwrap();
                    model.entry(name).or_default().extend_from_slice(&data);
                }
                Op::OverwriteAt { name, offset, data } => {
                    if !model.contains_key(&name) {
                        prop_assert_eq!(
                            fs.open(&path(name), OpenFlags::read_write()).unwrap_err(),
                            UnixError::NotFound
                        );
                        continue;
                    }
                    let entry = model.get_mut(&name).expect("checked");
                    let offset = (offset as usize) % (entry.len() + 1);
                    let fd = fs.open(&path(name), OpenFlags::read_write()).unwrap();
                    fs.lseek(fd, SeekFrom::Start(offset as u64)).unwrap();
                    fs.write(fd, &data).unwrap();
                    fs.close(fd).unwrap();
                    if entry.len() < offset + data.len() {
                        entry.resize(offset + data.len(), 0);
                    }
                    entry[offset..offset + data.len()].copy_from_slice(&data);
                }
                Op::Unlink { name } => {
                    let expected = if model.remove(&name).is_some() {
                        Ok(())
                    } else {
                        Err(UnixError::NotFound)
                    };
                    prop_assert_eq!(fs.unlink(&path(name)), expected);
                }
                Op::ReadBack { name } => match model.get(&name) {
                    Some(data) => prop_assert_eq!(&fs.read_file(&path(name)).unwrap(), data),
                    None => prop_assert_eq!(
                        fs.read_file(&path(name)).unwrap_err(),
                        UnixError::NotFound
                    ),
                },
            }
        }
        // Final sweep: directory listing matches, and every file reads
        // back exactly.
        let mut expected_names: Vec<String> = model.keys().map(|&n| format!("file-{n}")).collect();
        expected_names.sort();
        prop_assert_eq!(fs.readdir("/").unwrap(), expected_names);
        for (&name, data) in &model {
            prop_assert_eq!(&fs.read_file(&path(name)).unwrap(), data);
            prop_assert_eq!(fs.stat(&path(name)).unwrap().size, data.len() as u64);
        }
    }

    #[test]
    fn seeks_and_partial_reads_agree_with_slices(
        data in proptest::collection::vec(any::<u8>(), 1..500),
        offset in any::<prop::sample::Index>(),
        len in 1usize..64,
    ) {
        let fs = fresh_fs();
        fs.write_file("/f", &data).unwrap();
        let offset = offset.index(data.len());
        let fd = fs.open("/f", OpenFlags::read_only()).unwrap();
        fs.lseek(fd, SeekFrom::Start(offset as u64)).unwrap();
        let mut buf = vec![0u8; len];
        let n = fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        let expected = &data[offset..(offset + len).min(data.len())];
        prop_assert_eq!(&buf[..n], expected);
    }
}
