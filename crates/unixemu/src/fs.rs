//! The POSIX-flavoured file system facade.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use amoeba_cap::Capability;
use amoeba_dir::{DirError, DirServer};
use bullet_core::BulletServer;

use crate::UnixError;

/// An open-file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(usize);

/// `open(2)` flags (a deliberate, typed subset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing (a new version is published on close).
    pub write: bool,
    /// Create the file if absent.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// Start positioned at the end, and keep writes at the end.
    pub append: bool,
    /// With `create`: fail if the file already exists.
    pub exclusive: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> OpenFlags {
        OpenFlags {
            read: true,
            ..OpenFlags::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — the classic `creat`.
    pub fn create_truncate() -> OpenFlags {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..OpenFlags::default()
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> OpenFlags {
        OpenFlags {
            read: true,
            write: true,
            ..OpenFlags::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_APPEND`.
    pub fn append() -> OpenFlags {
        OpenFlags {
            write: true,
            create: true,
            append: true,
            ..OpenFlags::default()
        }
    }
}

/// `lseek(2)` origins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekFrom {
    /// From the start of the file.
    Start(u64),
    /// Relative to the current position.
    Current(i64),
    /// Relative to the end of the file.
    End(i64),
}

/// What `close` does when the directory entry changed while the file was
/// open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Report [`UnixError::Conflict`]; the buffered data stays in the
    /// descriptor so the caller can retry or discard.
    #[default]
    FailOnConflict,
    /// Re-read the current version capability and swap anyway (last
    /// writer wins).
    LastWriterWins,
}

/// `stat(2)` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// True for directories.
    pub is_dir: bool,
}

#[derive(Debug)]
struct OpenFile {
    dir: Capability,
    name: String,
    /// The version this buffer is based on (`None` for a brand-new file).
    base: Option<Capability>,
    buf: Vec<u8>,
    pos: usize,
    dirty: bool,
    flags: OpenFlags,
}

/// The UNIX emulation facade over one Bullet server and one directory
/// service.
pub struct UnixFs {
    dirs: Arc<DirServer>,
    bullet: Arc<BulletServer>,
    policy: WritePolicy,
    fds: Mutex<Vec<Option<OpenFile>>>,
}

impl std::fmt::Debug for UnixFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnixFs")
            .field("open_files", &self.fds.lock().iter().flatten().count())
            .finish()
    }
}

impl UnixFs {
    /// Creates the facade with the default conflict policy.
    pub fn new(dirs: Arc<DirServer>, bullet: Arc<BulletServer>) -> UnixFs {
        UnixFs::with_policy(dirs, bullet, WritePolicy::default())
    }

    /// Creates the facade with an explicit conflict policy.
    pub fn with_policy(
        dirs: Arc<DirServer>,
        bullet: Arc<BulletServer>,
        policy: WritePolicy,
    ) -> UnixFs {
        UnixFs {
            dirs,
            bullet,
            policy,
            fds: Mutex::new(Vec::new()),
        }
    }

    // ------------------------------------------------------------------
    // Path plumbing.
    // ------------------------------------------------------------------

    /// Splits `/a/b/c` into (parent components, leaf name).
    fn split_path(path: &str) -> Result<(Vec<&str>, &str), UnixError> {
        let parts: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        match parts.split_last() {
            Some((leaf, parents)) => Ok((parents.to_vec(), leaf)),
            None => Err(UnixError::BadArg), // "" or "/"
        }
    }

    /// Walks to the directory holding the leaf of `path`.
    fn parent_of(&self, path: &str) -> Result<(Capability, String), UnixError> {
        let (parents, leaf) = Self::split_path(path)?;
        let mut cur = self.dirs.root();
        for comp in parents {
            let next = self.dirs.lookup(&cur, comp)?;
            if next.port != self.dirs.port() {
                return Err(UnixError::NotDir);
            }
            cur = next;
        }
        Ok((cur, leaf.to_string()))
    }

    // ------------------------------------------------------------------
    // File operations.
    // ------------------------------------------------------------------

    /// `open(2)`.
    ///
    /// # Errors
    ///
    /// The usual `errno` analogues ([`UnixError`]).
    pub fn open(&self, path: &str, flags: OpenFlags) -> Result<Fd, UnixError> {
        if !flags.read && !flags.write {
            return Err(UnixError::BadArg);
        }
        let (dir, name) = self.parent_of(path)?;
        let existing = match self.dirs.lookup(&dir, &name) {
            Ok(cap) => {
                if cap.port == self.dirs.port() {
                    return Err(UnixError::IsDir);
                }
                Some(cap)
            }
            Err(DirError::NotFound) => None,
            Err(e) => return Err(e.into()),
        };

        let (base, buf) = match existing {
            Some(cap) => {
                if flags.create && flags.exclusive {
                    return Err(UnixError::Exists);
                }
                let data = if flags.truncate {
                    Vec::new()
                } else {
                    // Whole file transfer into the process buffer.
                    self.bullet.read(&cap)?.to_vec()
                };
                (Some(cap), data)
            }
            None => {
                if !flags.create {
                    return Err(UnixError::NotFound);
                }
                (None, Vec::new())
            }
        };

        let pos = if flags.append { buf.len() } else { 0 };
        let file = OpenFile {
            dir,
            name,
            base,
            buf,
            pos,
            dirty: false,
            flags,
        };
        let mut fds = self.fds.lock();
        let slot = fds.iter().position(Option::is_none).unwrap_or_else(|| {
            fds.push(None);
            fds.len() - 1
        });
        fds[slot] = Some(file);
        Ok(Fd(slot))
    }

    /// `read(2)`: reads up to `buf.len()` bytes, returning the count (0 at
    /// EOF).
    ///
    /// # Errors
    ///
    /// [`UnixError::BadFd`] for closed or write-only descriptors.
    pub fn read(&self, fd: Fd, buf: &mut [u8]) -> Result<usize, UnixError> {
        let mut fds = self.fds.lock();
        let file = fds
            .get_mut(fd.0)
            .and_then(Option::as_mut)
            .ok_or(UnixError::BadFd)?;
        if !file.flags.read {
            return Err(UnixError::BadFd);
        }
        let n = buf.len().min(file.buf.len().saturating_sub(file.pos));
        buf[..n].copy_from_slice(&file.buf[file.pos..file.pos + n]);
        file.pos += n;
        Ok(n)
    }

    /// `write(2)`: writes the whole slice at the current position
    /// (extending the file as needed), returning the count.
    ///
    /// # Errors
    ///
    /// [`UnixError::BadFd`] for closed or read-only descriptors.
    pub fn write(&self, fd: Fd, data: &[u8]) -> Result<usize, UnixError> {
        let mut fds = self.fds.lock();
        let file = fds
            .get_mut(fd.0)
            .and_then(Option::as_mut)
            .ok_or(UnixError::BadFd)?;
        if !file.flags.write {
            return Err(UnixError::BadFd);
        }
        if file.flags.append {
            file.pos = file.buf.len();
        }
        let end = file.pos + data.len();
        if end > file.buf.len() {
            file.buf.resize(end, 0);
        }
        file.buf[file.pos..end].copy_from_slice(data);
        file.pos = end;
        file.dirty = true;
        Ok(data.len())
    }

    /// `lseek(2)`: returns the new position.
    ///
    /// # Errors
    ///
    /// [`UnixError::BadArg`] for seeks before the start.
    pub fn lseek(&self, fd: Fd, whence: SeekFrom) -> Result<u64, UnixError> {
        let mut fds = self.fds.lock();
        let file = fds
            .get_mut(fd.0)
            .and_then(Option::as_mut)
            .ok_or(UnixError::BadFd)?;
        let new = match whence {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::Current(d) => file.pos as i128 + d as i128,
            SeekFrom::End(d) => file.buf.len() as i128 + d as i128,
        };
        if new < 0 || new > u32::MAX as i128 {
            return Err(UnixError::BadArg);
        }
        file.pos = new as usize;
        Ok(file.pos as u64)
    }

    /// `fsync(2)`: publishes the current buffer as a new immutable version
    /// without closing; the descriptor's base moves to the new version.
    ///
    /// # Errors
    ///
    /// [`UnixError::Conflict`] under the default policy if the entry
    /// changed; service failures.
    pub fn fsync(&self, fd: Fd) -> Result<(), UnixError> {
        let mut fds = self.fds.lock();
        let file = fds
            .get_mut(fd.0)
            .and_then(Option::as_mut)
            .ok_or(UnixError::BadFd)?;
        if file.dirty {
            let new_base = self.publish(file)?;
            file.base = Some(new_base);
            file.dirty = false;
        }
        Ok(())
    }

    /// `close(2)`: publishes (if written) and releases the descriptor.  On
    /// [`UnixError::Conflict`] the descriptor stays open so the caller can
    /// decide.
    ///
    /// # Errors
    ///
    /// As [`fsync`](Self::fsync), plus [`UnixError::BadFd`].
    pub fn close(&self, fd: Fd) -> Result<(), UnixError> {
        let mut fds = self.fds.lock();
        let file = fds
            .get_mut(fd.0)
            .and_then(Option::as_mut)
            .ok_or(UnixError::BadFd)?;
        if file.dirty {
            self.publish(file)?;
        }
        fds[fd.0] = None;
        Ok(())
    }

    /// Publishes an open file's buffer as a new Bullet file and swings the
    /// directory entry.  Returns the new capability.
    fn publish(&self, file: &mut OpenFile) -> Result<Capability, UnixError> {
        let new = self
            .bullet
            .create(Bytes::from(file.buf.clone()), 1)
            .map_err(UnixError::from)?;
        match file.base {
            None => match self.dirs.enter(&file.dir, &file.name, new) {
                Ok(()) => Ok(new),
                Err(DirError::Exists) => {
                    // Someone created the name since we opened; treat like a
                    // replace conflict.
                    self.swing(file, new)
                }
                Err(e) => Err(e.into()),
            },
            Some(_) => self.swing(file, new),
        }
    }

    fn swing(&self, file: &mut OpenFile, new: Capability) -> Result<Capability, UnixError> {
        let expected = match file.base {
            Some(base) => base,
            None => self.dirs.lookup(&file.dir, &file.name)?,
        };
        match self.dirs.replace(&file.dir, &file.name, &expected, new) {
            Ok(()) => Ok(new),
            Err(DirError::Conflict) => match self.policy {
                WritePolicy::FailOnConflict => {
                    // Clean up the orphan version we just created.
                    let _ = self.bullet.delete(&new);
                    Err(UnixError::Conflict)
                }
                WritePolicy::LastWriterWins => {
                    let current = self.dirs.lookup(&file.dir, &file.name)?;
                    self.dirs
                        .replace(&file.dir, &file.name, &current, new)
                        .map_err(UnixError::from)?;
                    Ok(new)
                }
            },
            Err(e) => Err(e.into()),
        }
    }

    // ------------------------------------------------------------------
    // Path operations.
    // ------------------------------------------------------------------

    /// `stat(2)`.
    ///
    /// # Errors
    ///
    /// [`UnixError::NotFound`] and friends.
    pub fn stat(&self, path: &str) -> Result<Metadata, UnixError> {
        if path.split('/').all(|c| c.is_empty()) {
            return Ok(Metadata {
                size: 0,
                is_dir: true,
            });
        }
        let (dir, name) = self.parent_of(path)?;
        let cap = self.dirs.lookup(&dir, &name)?;
        if cap.port == self.dirs.port() {
            Ok(Metadata {
                size: 0,
                is_dir: true,
            })
        } else {
            Ok(Metadata {
                size: self.bullet.size(&cap)? as u64,
                is_dir: false,
            })
        }
    }

    /// `unlink(2)`: removes a file name (the storage is reclaimed by the
    /// directory service's garbage collector).
    ///
    /// # Errors
    ///
    /// [`UnixError::IsDir`] for directories; lookup failures.
    pub fn unlink(&self, path: &str) -> Result<(), UnixError> {
        let (dir, name) = self.parent_of(path)?;
        let cap = self.dirs.lookup(&dir, &name)?;
        if cap.port == self.dirs.port() {
            return Err(UnixError::IsDir);
        }
        self.dirs.delete_entry(&dir, &name)?;
        Ok(())
    }

    /// `mkdir(2)`.
    ///
    /// # Errors
    ///
    /// [`UnixError::Exists`] and friends.
    pub fn mkdir(&self, path: &str) -> Result<(), UnixError> {
        let (dir, name) = self.parent_of(path)?;
        if self.dirs.lookup(&dir, &name).is_ok() {
            return Err(UnixError::Exists);
        }
        let sub = self.dirs.create_dir()?;
        self.dirs.enter(&dir, &name, sub)?;
        Ok(())
    }

    /// `rmdir(2)`.
    ///
    /// # Errors
    ///
    /// [`UnixError::NotEmpty`], [`UnixError::NotDir`], lookup failures.
    pub fn rmdir(&self, path: &str) -> Result<(), UnixError> {
        let (dir, name) = self.parent_of(path)?;
        let cap = self.dirs.lookup(&dir, &name)?;
        if cap.port != self.dirs.port() {
            return Err(UnixError::NotDir);
        }
        self.dirs.delete_dir(&cap)?;
        self.dirs.delete_entry(&dir, &name)?;
        Ok(())
    }

    /// `readdir(3)`: the sorted names in a directory (`"/"` for the root).
    ///
    /// # Errors
    ///
    /// [`UnixError::NotDir`], lookup failures.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, UnixError> {
        let dir = if path.split('/').all(|c| c.is_empty()) {
            self.dirs.root()
        } else {
            let (parent, name) = self.parent_of(path)?;
            let cap = self.dirs.lookup(&parent, &name)?;
            if cap.port != self.dirs.port() {
                return Err(UnixError::NotDir);
            }
            cap
        };
        Ok(self.dirs.list(&dir)?.into_iter().map(|e| e.name).collect())
    }

    /// `rename(2)`: moves a name (file or directory) to a new path,
    /// replacing nothing (fails if the target exists).
    ///
    /// # Errors
    ///
    /// [`UnixError::Exists`] if the target is taken; lookup failures.
    pub fn rename(&self, from: &str, to: &str) -> Result<(), UnixError> {
        let (from_dir, from_name) = self.parent_of(from)?;
        let (to_dir, to_name) = self.parent_of(to)?;
        let cap = self.dirs.lookup(&from_dir, &from_name)?;
        self.dirs.enter(&to_dir, &to_name, cap)?;
        self.dirs.delete_entry(&from_dir, &from_name)?;
        Ok(())
    }

    /// `truncate(2)`: cuts or zero-extends a file to `len` bytes — which
    /// on immutable storage means publishing a new version of that
    /// length.
    ///
    /// # Errors
    ///
    /// [`UnixError::IsDir`], lookup and publish failures.
    pub fn truncate(&self, path: &str, len: u64) -> Result<(), UnixError> {
        let fd = self.open(path, OpenFlags::read_write())?;
        {
            let mut fds = self.fds.lock();
            let file = fds
                .get_mut(fd.0)
                .and_then(Option::as_mut)
                .ok_or(UnixError::BadFd)?;
            if len > u32::MAX as u64 {
                fds[fd.0] = None;
                return Err(UnixError::BadArg);
            }
            file.buf.resize(len as usize, 0);
            file.dirty = true;
        }
        self.close(fd)
    }

    /// `cp`: copies a file's current contents to a new path (the copy is
    /// an independent file; later versions do not affect it).
    ///
    /// # Errors
    ///
    /// [`UnixError::Exists`] if the target exists; read/publish failures.
    pub fn copy(&self, from: &str, to: &str) -> Result<(), UnixError> {
        let data = self.read_file(from)?;
        let (dir, name) = self.parent_of(to)?;
        if self.dirs.lookup(&dir, &name).is_ok() {
            return Err(UnixError::Exists);
        }
        let cap = self
            .bullet
            .create(Bytes::from(data), 1)
            .map_err(UnixError::from)?;
        self.dirs.enter(&dir, &name, cap)?;
        Ok(())
    }

    /// Convenience: reads a whole file by path.
    ///
    /// # Errors
    ///
    /// As `open` + `read`.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, UnixError> {
        let fd = self.open(path, OpenFlags::read_only())?;
        let size = {
            let fds = self.fds.lock();
            fds[fd.0].as_ref().expect("just opened").buf.len()
        };
        let mut out = vec![0u8; size];
        let n = self.read(fd, &mut out)?;
        out.truncate(n);
        self.close(fd)?;
        Ok(out)
    }

    /// Convenience: writes a whole file by path (`creat` semantics).
    ///
    /// # Errors
    ///
    /// As `open` + `write` + `close`.
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<(), UnixError> {
        let fd = self.open(path, OpenFlags::create_truncate())?;
        self.write(fd, data)?;
        self.close(fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_core::BulletConfig;

    fn fs() -> UnixFs {
        let bullet = Arc::new(BulletServer::format(BulletConfig::small_test(), 2).unwrap());
        let dirs = Arc::new(DirServer::bootstrap(bullet.clone()).unwrap());
        UnixFs::new(dirs, bullet)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let fs = fs();
        fs.write_file("/notes.txt", b"remember the milk").unwrap();
        assert_eq!(fs.read_file("/notes.txt").unwrap(), b"remember the milk");
        let meta = fs.stat("/notes.txt").unwrap();
        assert_eq!(meta.size, 17);
        assert!(!meta.is_dir);
    }

    #[test]
    fn read_write_positioning() {
        let fs = fs();
        fs.write_file("/f", b"0123456789").unwrap();
        let fd = fs.open("/f", OpenFlags::read_write()).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"0123");
        assert_eq!(fs.lseek(fd, SeekFrom::Current(2)).unwrap(), 6);
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"6789");
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 0, "EOF");
        // Overwrite in the middle, extending past the end.
        fs.lseek(fd, SeekFrom::End(-2)).unwrap();
        fs.write(fd, b"XYZ!").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"01234567XYZ!");
    }

    #[test]
    fn sparse_extension_zero_fills() {
        let fs = fs();
        let fd = fs.open("/sparse", OpenFlags::create_truncate()).unwrap();
        fs.lseek(fd, SeekFrom::Start(5)).unwrap();
        fs.write(fd, b"end").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.read_file("/sparse").unwrap(), b"\0\0\0\0\0end");
    }

    #[test]
    fn append_mode() {
        let fs = fs();
        fs.write_file("/log", b"line1\n").unwrap();
        let fd = fs.open("/log", OpenFlags::append()).unwrap();
        // Appends ignore seeks.
        fs.lseek(fd, SeekFrom::Start(0)).unwrap();
        fs.write(fd, b"line2\n").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.read_file("/log").unwrap(), b"line1\nline2\n");
    }

    #[test]
    fn open_flags_semantics() {
        let fs = fs();
        assert_eq!(
            fs.open("/missing", OpenFlags::read_only()).unwrap_err(),
            UnixError::NotFound
        );
        fs.write_file("/f", b"x").unwrap();
        let excl = OpenFlags {
            exclusive: true,
            ..OpenFlags::create_truncate()
        };
        assert_eq!(fs.open("/f", excl).unwrap_err(), UnixError::Exists);
        assert_eq!(
            fs.open("/f", OpenFlags::default()).unwrap_err(),
            UnixError::BadArg
        );
        // Truncate really truncates.
        fs.write_file("/f", b"").unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 0);
    }

    #[test]
    fn directories_and_paths() {
        let fs = fs();
        fs.mkdir("/home").unwrap();
        fs.mkdir("/home/user").unwrap();
        fs.write_file("/home/user/doc", b"deep").unwrap();
        assert_eq!(fs.read_file("/home/user/doc").unwrap(), b"deep");
        assert_eq!(fs.readdir("/home").unwrap(), vec!["user"]);
        assert_eq!(fs.readdir("/").unwrap(), vec!["home"]);
        assert!(fs.stat("/home").unwrap().is_dir);
        assert_eq!(fs.mkdir("/home").unwrap_err(), UnixError::Exists);
        assert_eq!(fs.readdir("/home/user/doc").unwrap_err(), UnixError::NotDir);
        assert_eq!(fs.read_file("/home/user").unwrap_err(), UnixError::IsDir);
        // rmdir refuses non-empty.
        assert_eq!(fs.rmdir("/home").unwrap_err(), UnixError::NotEmpty);
        fs.unlink("/home/user/doc").unwrap();
        fs.rmdir("/home/user").unwrap();
        fs.rmdir("/home").unwrap();
        assert!(fs.readdir("/").unwrap().is_empty());
    }

    #[test]
    fn unlink_and_rename() {
        let fs = fs();
        fs.write_file("/a", b"data").unwrap();
        fs.mkdir("/dir").unwrap();
        fs.rename("/a", "/dir/b").unwrap();
        assert_eq!(fs.read_file("/dir/b").unwrap(), b"data");
        assert_eq!(fs.read_file("/a").unwrap_err(), UnixError::NotFound);
        // Renaming onto an existing name fails.
        fs.write_file("/c", b"other").unwrap();
        assert_eq!(fs.rename("/c", "/dir/b").unwrap_err(), UnixError::Exists);
        assert_eq!(fs.unlink("/dir").unwrap_err(), UnixError::IsDir);
        fs.unlink("/dir/b").unwrap();
    }

    #[test]
    fn close_publishes_a_new_version() {
        let bullet = Arc::new(BulletServer::format(BulletConfig::small_test(), 2).unwrap());
        let dirs = Arc::new(DirServer::bootstrap(bullet.clone()).unwrap());
        let fs = UnixFs::new(dirs.clone(), bullet.clone());
        fs.write_file("/doc", b"v1").unwrap();
        let root = dirs.root();
        let v1 = dirs.lookup(&root, "doc").unwrap();
        fs.write_file("/doc", b"v2").unwrap();
        let v2 = dirs.lookup(&root, "doc").unwrap();
        assert_ne!(v1, v2, "a new immutable file per rewrite");
        assert_eq!(dirs.history(&root, "doc").unwrap(), vec![v2, v1]);
        // The old version still exists (until GC) and still reads as v1.
        assert_eq!(bullet.read(&v1).unwrap(), Bytes::from_static(b"v1"));
    }

    #[test]
    fn conflicting_writers_default_policy() {
        let fs = fs();
        fs.write_file("/shared", b"base").unwrap();
        let a = fs.open("/shared", OpenFlags::read_write()).unwrap();
        let b = fs.open("/shared", OpenFlags::read_write()).unwrap();
        fs.write(a, b"from A").unwrap();
        fs.write(b, b"from B").unwrap();
        fs.close(a).unwrap();
        assert_eq!(fs.close(b).unwrap_err(), UnixError::Conflict);
        assert_eq!(fs.read_file("/shared").unwrap(), b"from A");
        // The loser can still close after giving up (discard by reopening).
        // Its descriptor remained open:
        fs.lseek(b, SeekFrom::Start(0)).unwrap();
    }

    #[test]
    fn conflicting_writers_last_writer_wins() {
        let bullet = Arc::new(BulletServer::format(BulletConfig::small_test(), 2).unwrap());
        let dirs = Arc::new(DirServer::bootstrap(bullet.clone()).unwrap());
        let fs = UnixFs::with_policy(dirs, bullet, WritePolicy::LastWriterWins);
        fs.write_file("/shared", b"base").unwrap();
        let a = fs.open("/shared", OpenFlags::read_write()).unwrap();
        let b = fs.open("/shared", OpenFlags::read_write()).unwrap();
        fs.write(a, b"from A").unwrap();
        fs.write(b, b"from B").unwrap();
        fs.close(a).unwrap();
        fs.close(b).unwrap();
        assert_eq!(fs.read_file("/shared").unwrap(), b"from B");
    }

    #[test]
    fn fsync_moves_the_base_forward() {
        let fs = fs();
        let fd = fs.open("/j", OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"first").unwrap();
        fs.fsync(fd).unwrap();
        assert_eq!(fs.read_file("/j").unwrap(), b"first");
        fs.write(fd, b" second").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.read_file("/j").unwrap(), b"first second");
    }

    #[test]
    fn truncate_cuts_and_extends() {
        let fs = fs();
        fs.write_file("/t", b"0123456789").unwrap();
        fs.truncate("/t", 4).unwrap();
        assert_eq!(fs.read_file("/t").unwrap(), b"0123");
        fs.truncate("/t", 8).unwrap();
        assert_eq!(fs.read_file("/t").unwrap(), b"0123\0\0\0\0");
        assert_eq!(fs.truncate("/missing", 1).unwrap_err(), UnixError::NotFound);
    }

    #[test]
    fn copy_is_an_independent_snapshot() {
        let fs = fs();
        fs.write_file("/orig", b"v1").unwrap();
        fs.copy("/orig", "/backup").unwrap();
        fs.write_file("/orig", b"v2").unwrap();
        assert_eq!(fs.read_file("/orig").unwrap(), b"v2");
        assert_eq!(fs.read_file("/backup").unwrap(), b"v1");
        assert_eq!(fs.copy("/orig", "/backup").unwrap_err(), UnixError::Exists);
    }

    #[test]
    fn bad_fds_rejected() {
        let fs = fs();
        let mut buf = [0u8; 1];
        assert_eq!(fs.read(Fd(0), &mut buf).unwrap_err(), UnixError::BadFd);
        fs.write_file("/f", b"x").unwrap();
        let fd = fs.open("/f", OpenFlags::read_only()).unwrap();
        assert_eq!(fs.write(fd, b"y").unwrap_err(), UnixError::BadFd);
        fs.close(fd).unwrap();
        assert_eq!(fs.read(fd, &mut buf).unwrap_err(), UnixError::BadFd);
        assert_eq!(fs.close(fd).unwrap_err(), UnixError::BadFd);
    }
}
