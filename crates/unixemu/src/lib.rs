//! UNIX emulation over the Bullet + directory services.
//!
//! "Recently we have implemented a UNIX emulation on top of the Bullet
//! service supporting a wealth of existing software." (§5)
//!
//! The emulation maps mutable POSIX-style files onto immutable Bullet
//! files the obvious way:
//!
//! * `open` resolves the path through the directory service and (for
//!   reading) fetches the whole file into a process-local buffer — whole
//!   file transfer, as §2 dictates;
//! * `read`/`write`/`lseek` operate on the buffer;
//! * `close` (or `fsync`) of a written file **creates a new immutable
//!   Bullet file** and atomically swings the directory entry to it with
//!   the compare-and-swap `replace`, building the version chain;
//! * concurrent writers are detected at publish time: the default policy
//!   reports the conflict ([`UnixError::Conflict`]), the alternative
//!   last-writer-wins policy retries the swap.
//!
//! Directories map one-to-one onto directory-server objects, so `mkdir`,
//! `readdir`, `rename`, and `unlink` are thin wrappers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fs;

pub use error::UnixError;
pub use fs::{Fd, Metadata, OpenFlags, SeekFrom, UnixFs, WritePolicy};
