//! Error type for the UNIX emulation.

use amoeba_dir::DirError;
use bullet_core::BulletError;

/// Errors produced by the UNIX emulation layer (the analogue of `errno`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnixError {
    /// `ENOENT`: no such file or directory.
    NotFound,
    /// `EEXIST`: the path already exists (`O_CREAT | O_EXCL`, `mkdir`).
    Exists,
    /// `EISDIR`: the operation needs a file but found a directory.
    IsDir,
    /// `ENOTDIR`: a path component is not a directory.
    NotDir,
    /// `ENOTEMPTY`: `rmdir` of a non-empty directory.
    NotEmpty,
    /// `EBADF`: the descriptor is not open (or not open for this mode).
    BadFd,
    /// `EINVAL`: malformed path or seek.
    BadArg,
    /// The file changed under us: publish-time compare-and-swap lost
    /// (only under [`crate::WritePolicy::FailOnConflict`]).
    Conflict,
    /// Underlying directory-service failure.
    Dir(DirError),
    /// Underlying Bullet failure.
    Bullet(BulletError),
}

impl std::fmt::Display for UnixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnixError::NotFound => write!(f, "no such file or directory"),
            UnixError::Exists => write!(f, "file exists"),
            UnixError::IsDir => write!(f, "is a directory"),
            UnixError::NotDir => write!(f, "not a directory"),
            UnixError::NotEmpty => write!(f, "directory not empty"),
            UnixError::BadFd => write!(f, "bad file descriptor"),
            UnixError::BadArg => write!(f, "invalid argument"),
            UnixError::Conflict => write!(f, "file version changed concurrently"),
            UnixError::Dir(e) => write!(f, "directory service: {e}"),
            UnixError::Bullet(e) => write!(f, "bullet server: {e}"),
        }
    }
}

impl std::error::Error for UnixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UnixError::Dir(e) => Some(e),
            UnixError::Bullet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DirError> for UnixError {
    fn from(e: DirError) -> Self {
        match e {
            DirError::NotFound => UnixError::NotFound,
            DirError::Exists => UnixError::Exists,
            DirError::NotEmpty => UnixError::NotEmpty,
            DirError::Conflict => UnixError::Conflict,
            other => UnixError::Dir(other),
        }
    }
}

impl From<BulletError> for UnixError {
    fn from(e: BulletError) -> Self {
        match e {
            BulletError::NotFound => UnixError::NotFound,
            other => UnixError::Bullet(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_error_folding() {
        assert_eq!(UnixError::from(DirError::NotFound), UnixError::NotFound);
        assert_eq!(UnixError::from(DirError::Exists), UnixError::Exists);
        assert_eq!(UnixError::from(DirError::Conflict), UnixError::Conflict);
        assert!(matches!(
            UnixError::from(DirError::CapBad),
            UnixError::Dir(_)
        ));
        assert_eq!(UnixError::from(BulletError::NotFound), UnixError::NotFound);
    }

    #[test]
    fn display_nonempty() {
        assert!(!UnixError::BadFd.to_string().is_empty());
    }
}
