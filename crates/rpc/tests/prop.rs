//! Property tests for the RPC wire codec: any message round-trips, and
//! no mutated buffer can crash the decoder.

use amoeba_cap::{Capability, ObjNum, Port, Rights};
use amoeba_rpc::{Reply, Request, Status};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_cap() -> impl Strategy<Value = Capability> {
    (
        any::<[u8; 6]>(),
        0u32..=ObjNum::MAX,
        any::<u8>(),
        any::<u64>(),
    )
        .prop_map(|(port, obj, rights, check)| {
            Capability::new(
                Port::from_bytes(port),
                ObjNum::new(obj).expect("bounded"),
                Rights::from_bits(rights),
                check,
            )
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        arb_cap(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..200),
        proptest::collection::vec(any::<u8>(), 0..2000),
    )
        .prop_map(|(cap, command, params, data)| Request {
            cap,
            command,
            params: Bytes::from(params),
            data: Bytes::from(data),
        })
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        any::<i32>(),
        proptest::collection::vec(any::<u8>(), 0..200),
        proptest::collection::vec(any::<u8>(), 0..2000),
    )
        .prop_map(|(code, params, data)| Reply {
            status: Status::from_code(code),
            params: Bytes::from(params),
            data: Bytes::from(data),
        })
}

proptest! {
    #[test]
    fn request_roundtrips(req in arb_request()) {
        let wire = req.encode();
        prop_assert_eq!(wire.len() as u64, req.wire_size());
        prop_assert_eq!(Request::decode(wire).unwrap(), req);
    }

    #[test]
    fn reply_roundtrips(rep in arb_reply()) {
        let wire = rep.encode();
        prop_assert_eq!(wire.len() as u64, rep.wire_size());
        prop_assert_eq!(Reply::decode(wire).unwrap(), rep);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Request::decode(Bytes::from(bytes.clone()));
        let _ = Reply::decode(Bytes::from(bytes));
    }

    #[test]
    fn truncated_requests_are_rejected(req in arb_request(), cut in 1usize..28) {
        let wire = req.encode();
        let cut = cut.min(wire.len());
        // Cutting inside the header or the declared payload lengths must
        // fail cleanly (never return a half-parsed message).
        prop_assert_eq!(Request::decode(wire.slice(..wire.len() - cut)), Err(Status::BadParam));
    }

    #[test]
    fn status_codes_roundtrip(code in any::<i32>()) {
        prop_assert_eq!(Status::from_code(code).code(), code);
    }
}
