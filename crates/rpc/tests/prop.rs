//! Property tests for the RPC wire codec — any message round-trips, no
//! mutated buffer can crash the decoder — and for the retry layer: the
//! backoff schedule is a pure function of the seed, stays within its
//! jitter window, and the simulated time a failed transaction charges
//! never exceeds the policy's worst-case budget.

use std::sync::Arc;

use amoeba_cap::{Capability, ObjNum, Port, Rights};
use amoeba_net::SimEthernet;
use amoeba_rpc::{
    Dispatcher, FaultPlan, FaultyWire, Reply, Request, RetryClient, RetryPolicy, Status,
};
use amoeba_sim::{DetRng, HwProfile, Nanos, SimClock};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_cap() -> impl Strategy<Value = Capability> {
    (
        any::<[u8; 6]>(),
        0u32..=ObjNum::MAX,
        any::<u8>(),
        any::<u64>(),
    )
        .prop_map(|(port, obj, rights, check)| {
            Capability::new(
                Port::from_bytes(port),
                ObjNum::new(obj).expect("bounded"),
                Rights::from_bits(rights),
                check,
            )
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        arb_cap(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..200),
        proptest::collection::vec(any::<u8>(), 0..2000),
    )
        .prop_map(|(cap, command, params, data)| Request {
            cap,
            command,
            params: Bytes::from(params),
            data: Bytes::from(data),
        })
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        any::<i32>(),
        proptest::collection::vec(any::<u8>(), 0..200),
        proptest::collection::vec(any::<u8>(), 0..2000),
    )
        .prop_map(|(code, params, data)| Reply {
            status: Status::from_code(code),
            params: Bytes::from(params),
            data: Bytes::from(data),
        })
}

proptest! {
    #[test]
    fn request_roundtrips(req in arb_request()) {
        let wire = req.encode();
        prop_assert_eq!(wire.len() as u64, req.wire_size());
        prop_assert_eq!(Request::decode(wire).unwrap(), req);
    }

    #[test]
    fn reply_roundtrips(rep in arb_reply()) {
        let wire = rep.encode();
        prop_assert_eq!(wire.len() as u64, rep.wire_size());
        prop_assert_eq!(Reply::decode(wire).unwrap(), rep);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Request::decode(Bytes::from(bytes.clone()));
        let _ = Reply::decode(Bytes::from(bytes));
    }

    #[test]
    fn truncated_requests_are_rejected(req in arb_request(), cut in 1usize..28) {
        let wire = req.encode();
        let cut = cut.min(wire.len());
        // Cutting inside the header or the declared payload lengths must
        // fail cleanly (never return a half-parsed message).
        prop_assert_eq!(Request::decode(wire.slice(..wire.len() - cut)), Err(Status::BadParam));
    }

    #[test]
    fn status_codes_roundtrip(code in any::<i32>()) {
        prop_assert_eq!(Status::from_code(code).code(), code);
    }

    #[test]
    fn backoff_schedule_is_seeded_and_window_bounded(
        seed in any::<u64>(),
        base_ms in 1u64..50,
        cap_ms in 50u64..2000,
        attempts in 2u32..10,
    ) {
        let policy = RetryPolicy {
            timeout: Nanos::from_ms(100),
            backoff_base: Nanos::from_ms(base_ms),
            backoff_cap: Nanos::from_ms(cap_ms),
            max_attempts: attempts,
        };
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for retry in 0..attempts {
            let x = policy.backoff(retry, &mut a);
            // Same seed, same retry index: the schedule is deterministic.
            prop_assert_eq!(x, policy.backoff(retry, &mut b));
            // And every draw lands in [ceiling/2, ceiling].
            let ceiling = (base_ms * 1_000_000)
                .checked_shl(retry)
                .unwrap_or(u64::MAX)
                .min(cap_ms * 1_000_000);
            prop_assert!(x.as_ns() >= ceiling / 2, "below half the ceiling");
            prop_assert!(x.as_ns() <= ceiling, "above the ceiling");
        }
    }

    #[test]
    fn charged_time_of_a_failed_transaction_respects_the_budget(
        seed in any::<u64>(),
        timeout_ms in 10u64..200,
        attempts in 1u32..8,
    ) {
        // A wire that drops every request: the client must walk its full
        // retry schedule, then give up without ever charging more
        // simulated time than the policy's declared worst case.
        let clock = SimClock::new();
        let net = SimEthernet::new(clock.clone(), HwProfile::amoeba_1989().net);
        let dispatcher = Dispatcher::new(net);
        let plan = FaultPlan {
            drop_request: 1.0,
            ..FaultPlan::off()
        };
        let wire = FaultyWire::new(dispatcher, clock.clone(), plan, seed);
        let policy = RetryPolicy {
            timeout: Nanos::from_ms(timeout_ms),
            backoff_base: Nanos::from_ms(5),
            backoff_cap: Nanos::from_ms(500),
            max_attempts: attempts,
        };
        let budget = policy.worst_case_delay();
        let client = RetryClient::new(Arc::clone(&wire), policy, 7, seed ^ 1);
        let t0 = clock.now();
        let result = client.trans(Capability::null(), 1, Bytes::new(), Bytes::new());
        prop_assert_eq!(result.unwrap_err(), Status::NotNow);
        let charged = clock.now().saturating_sub(t0);
        prop_assert!(
            charged <= budget,
            "charged {:?} exceeds worst-case budget {:?}",
            charged,
            budget
        );
    }
}
