//! Distribution quality of the object-number routing hash: over large
//! capability populations, no shard may receive more than twice its
//! fair share — the bound the ABL18 scaling cell's near-linear speedup
//! rests on (a hot shard caps aggregate bandwidth at `n/overload`).

use amoeba_cap::shard_of;
use proptest::prelude::*;

fn fill(counts: &mut [u64], start: u32, n: u32) {
    for obj in start..start.saturating_add(n) {
        counts[shard_of(obj, counts.len() as u32) as usize] += 1;
    }
}

/// One million consecutive object numbers — the shape a striped inode
/// table actually mints — split over every power-of-two shard count the
/// CI matrix runs.
#[test]
fn a_million_consecutive_capabilities_stay_within_twice_fair_share() {
    const N: u32 = 1_000_000;
    for shards in [2u32, 4, 8] {
        let mut counts = vec![0u64; shards as usize];
        fill(&mut counts, 1, N);
        let fair = (N / shards) as u64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c <= 2 * fair,
                "shard {i}/{shards} holds {c} of {N} (fair share {fair})"
            );
            assert!(c > 0, "shard {i}/{shards} received nothing");
        }
    }
}

proptest! {
    /// Any window of the 24-bit object-number space, any shard count up
    /// to twice the CI maximum: still within twice fair share.
    #[test]
    fn any_object_window_stays_within_twice_fair_share(
        start in 0u32..=(0x00ff_ffff - 20_000),
        shards in 2u32..=16,
    ) {
        let n = 20_000u32;
        let mut counts = vec![0u64; shards as usize];
        fill(&mut counts, start, n);
        let fair = (n / shards) as u64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                c <= 2 * fair,
                "shard {}/{} holds {} of {} (fair {})", i, shards, c, n, fair
            );
        }
    }
}
