//! Amoeba-style RPC for the Bullet reproduction.
//!
//! Amoeba is "based on the object model: an object is an abstract data
//! type, and operations on it are invoked through remote procedure calls"
//! (§2.1).  A request addresses an object by [`amoeba_cap::Capability`],
//! names a command, and carries marshalled parameters plus bulk data; the
//! reply carries a standard status code plus results.  Whole files travel
//! as the `data` part of a single request or reply — the paper's
//! whole-file-transfer model.
//!
//! Pieces:
//!
//! * [`Request`] / [`Reply`] / [`Status`] — the messages and the standard
//!   Amoeba-style error codes, with a fixed binary wire codec ([`wire`]);
//! * [`RpcServer`] — the object-server trait;
//! * [`Dispatcher`] — the locate-and-transact fabric: servers register
//!   their ports, clients call [`Dispatcher::trans`], the shared simulated
//!   Ethernet is charged for both directions (plus a one-time locate cost
//!   per port);
//! * [`client`] — a thin client handle and a threaded transport that
//!   exercises the real wire codec over channels.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use amoeba_cap::{Capability, Port};
//! use amoeba_net::SimEthernet;
//! use amoeba_rpc::{Dispatcher, Reply, Request, RpcServer, Status};
//! use amoeba_sim::{NetProfile, SimClock};
//! use bytes::Bytes;
//!
//! struct Echo(Port);
//! impl RpcServer for Echo {
//!     fn port(&self) -> Port { self.0 }
//!     fn handle(&self, req: Request) -> Reply {
//!         Reply { status: Status::Ok, params: Bytes::new(), data: req.data }
//!     }
//! }
//!
//! let net = SimEthernet::new(SimClock::new(), NetProfile::ethernet_10mbit());
//! let dispatcher = Dispatcher::new(net);
//! let port = Port::from_u64(42);
//! dispatcher.register(Arc::new(Echo(port)));
//!
//! let mut cap = Capability::null();
//! cap.port = port;
//! let req = Request { cap, command: 1, params: Bytes::new(), data: Bytes::from_static(b"hi") };
//! let reply = dispatcher.trans(req)?;
//! assert_eq!(reply.data, Bytes::from_static(b"hi"));
//! # Ok::<(), amoeba_rpc::RpcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod dispatch;
pub mod fault;
pub mod gateway;
pub mod shard;
pub mod stream;
pub mod wire;

pub use client::{RemoteClient, RpcClient};
pub use dispatch::{Dispatcher, RpcError, RpcServer};
pub use fault::{DedupCache, FaultPlan, FaultyWire, RetryClient, RetryPolicy, TxnId};
pub use gateway::Gateway;
pub use shard::ShardRouter;
pub use stream::{StreamWire, DEFAULT_SEGMENT};
pub use wire::{std_commands, Reply, Request, Status, StreamFrame};
