//! Server-side handle for streamed (segmented) transfers.
//!
//! A server that implements [`crate::RpcServer::handle_streamed`] receives
//! a [`StreamWire`] alongside the request.  Instead of letting the
//! dispatcher charge the whole request and reply as two monolithic
//! messages, the server can move the *bulk payload* over the wire segment
//! by segment — typically from inside an [`amoeba_sim::Pipeline`] stage, so
//! wire time overlaps disk time.  Each segment is charged at the network's
//! continuation rate (no per-message setup: the transfer is still one
//! logical RPC) and the dispatcher charges only the *remaining* bytes of
//! the request and reply messages afterwards, so totals stay consistent
//! with the non-streamed path.
//!
//! Two flavours:
//!
//! * [`StreamWire::for_dispatch`] — the synchronous simulation fabric.
//!   Segments are pure cost events; the payload still travels in the
//!   [`crate::Request`]/[`crate::Reply`] structs (as zero-copy `Bytes`).
//!   Request-data streaming is supported: the bytes the server consumes via
//!   [`StreamWire::recv_request_segment`] are deducted from the request
//!   message charge.
//! * [`StreamWire::for_chan`] — the threaded channel transport.  Reply
//!   segments travel as real [`StreamFrame`]s ahead of the closing reply,
//!   and the client reassembles them.  The client has already paid for the
//!   full request at send time, so request-segment charges are no-ops here.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;

use amoeba_net::{Chan, SimEthernet};

use crate::wire::StreamFrame;

/// The default transfer segment size (64 KB): large enough to amortize
/// per-segment packet overhead, small enough that a 1 MB transfer has a
/// deep pipeline.
pub const DEFAULT_SEGMENT: u32 = 64 * 1024;

enum WireKind {
    /// Synchronous simulation: segments charge the Ethernet directly.
    Sim(SimEthernet),
    /// Threaded transport: reply segments travel as real frames.
    Chan(Chan),
}

impl std::fmt::Debug for WireKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireKind::Sim(_) => f.write_str("Sim"),
            WireKind::Chan(_) => f.write_str("Chan"),
        }
    }
}

/// The wire as seen by a streaming server (see the module docs).
#[derive(Debug)]
pub struct StreamWire {
    kind: WireKind,
    request_claimed: AtomicU64,
    reply_streamed: AtomicU64,
    seq: AtomicU32,
    /// Segment lengths staged via [`stage_reply_segment`]
    /// (`Self::stage_reply_segment`) whose frames are still owed to the
    /// channel peer — delivered by [`finish_reply`](Self::finish_reply).
    staged: Mutex<Vec<u64>>,
}

impl StreamWire {
    /// A wire for the synchronous dispatch path over `net`.
    pub fn for_dispatch(net: SimEthernet) -> StreamWire {
        StreamWire {
            kind: WireKind::Sim(net),
            request_claimed: AtomicU64::new(0),
            reply_streamed: AtomicU64::new(0),
            seq: AtomicU32::new(0),
            staged: Mutex::new(Vec::new()),
        }
    }

    /// A wire for the threaded channel path: reply segments are delivered
    /// to the peer as [`StreamFrame`] messages on `chan`.
    pub fn for_chan(chan: Chan) -> StreamWire {
        StreamWire {
            kind: WireKind::Chan(chan),
            request_claimed: AtomicU64::new(0),
            reply_streamed: AtomicU64::new(0),
            seq: AtomicU32::new(0),
            staged: Mutex::new(Vec::new()),
        }
    }

    /// True if reply segments really travel as frames (the channel path),
    /// in which case the server should leave the closing reply's `data`
    /// empty — the client reassembles the payload from the frames.
    pub fn delivers_frames(&self) -> bool {
        matches!(self.kind, WireKind::Chan(_))
    }

    /// Charges the arrival of one request-data segment of `len` bytes at
    /// continuation rates and marks those bytes as consumed, so the
    /// dispatcher deducts them from the request message charge.  A no-op
    /// on the channel path (the client already paid for the whole
    /// request when it sent it).
    pub fn recv_request_segment(&self, len: u64) {
        if let WireKind::Sim(net) = &self.kind {
            net.send_stream(len);
            self.request_claimed.fetch_add(len, Ordering::Relaxed);
        }
    }

    /// Streams one reply segment.  On the dispatch path this charges the
    /// wire at continuation rates and marks the bytes as already sent (the
    /// dispatcher deducts them from the reply message charge); on the
    /// channel path it also delivers a real [`StreamFrame`] carrying
    /// `data` (a zero-copy slice) to the peer.
    pub fn send_reply_segment(&self, offset: u64, data: Bytes, last: bool) {
        let len = data.len() as u64;
        self.reply_streamed.fetch_add(len, Ordering::Relaxed);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        match &self.kind {
            WireKind::Sim(net) => {
                net.send_stream(len);
            }
            WireKind::Chan(chan) => {
                let frame = StreamFrame {
                    seq,
                    offset,
                    last,
                    data,
                };
                // A hung-up peer also fails the closing reply send, which
                // ends the serve loop; nothing to do here.
                let _ = chan.send_stream(frame.encode());
            }
        }
    }

    /// Streams one reply segment whose payload is *still being assembled*
    /// (a pipelined disk load reads straight into the reply buffer, so the
    /// bytes exist only when the whole transfer completes).  On the
    /// dispatch path this charges the wire immediately — call it from
    /// inside a pipeline stage so the charge lands in the wire lane.  On
    /// the channel path the frame cannot travel before its bytes exist,
    /// so the segment is recorded and both charged and delivered later by
    /// [`finish_reply`](Self::finish_reply).  Either way the bytes count
    /// as streamed, so the dispatcher deducts them from the reply message.
    pub fn stage_reply_segment(&self, len: u64) {
        self.reply_streamed.fetch_add(len, Ordering::Relaxed);
        match &self.kind {
            WireKind::Sim(net) => {
                net.send_stream(len);
            }
            WireKind::Chan(_) => self.staged.lock().push(len),
        }
    }

    /// Delivers the frames owed for segments staged with
    /// [`stage_reply_segment`](Self::stage_reply_segment), slicing them
    /// zero-copy out of the now-complete reply payload `data`.  A no-op on
    /// the dispatch path (segments there were pure cost events) and when
    /// nothing was staged.
    pub fn finish_reply(&self, data: &Bytes) {
        let staged: Vec<u64> = std::mem::take(&mut *self.staged.lock());
        if staged.is_empty() {
            return;
        }
        let WireKind::Chan(chan) = &self.kind else {
            return;
        };
        let mut off = 0u64;
        for (i, len) in staged.iter().enumerate() {
            let end = (off + len).min(data.len() as u64);
            let frame = StreamFrame {
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                offset: off,
                last: i + 1 == staged.len(),
                data: data.slice(off as usize..end as usize),
            };
            let _ = chan.send_stream(frame.encode());
            off = end;
        }
    }

    /// Request-data bytes consumed as streamed segments.
    pub fn request_claimed(&self) -> u64 {
        self.request_claimed.load(Ordering::Relaxed)
    }

    /// Reply payload bytes already streamed.
    pub fn reply_streamed(&self) -> u64 {
        self.reply_streamed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_net::duplex;
    use amoeba_sim::{NetProfile, SimClock};

    fn net() -> (SimClock, SimEthernet) {
        let clock = SimClock::new();
        let n = SimEthernet::new(clock.clone(), NetProfile::ethernet_10mbit());
        (clock, n)
    }

    #[test]
    fn dispatch_wire_charges_and_accounts() {
        let (clock, n) = net();
        let wire = StreamWire::for_dispatch(n.clone());
        assert!(!wire.delivers_frames());
        wire.recv_request_segment(1000);
        wire.send_reply_segment(0, Bytes::from(vec![0; 2000]), true);
        assert_eq!(wire.request_claimed(), 1000);
        assert_eq!(wire.reply_streamed(), 2000);
        assert_eq!(n.stats().get("net_stream_frames"), 2);
        assert_eq!(n.stats().get("net_messages"), 0);
        assert!(clock.now().as_ns() > 0);
    }

    #[test]
    fn staged_segments_charge_now_and_deliver_later() {
        // Dispatch path: staging is a pure cost event, finish is a no-op.
        let (clock, n) = net();
        let wire = StreamWire::for_dispatch(n.clone());
        wire.stage_reply_segment(1000);
        wire.stage_reply_segment(500);
        assert_eq!(wire.reply_streamed(), 1500);
        assert_eq!(n.stats().get("net_stream_frames"), 2);
        let charged = clock.now();
        wire.finish_reply(&Bytes::from(vec![3u8; 1500]));
        assert_eq!(clock.now(), charged, "finish must not double-charge");

        // Channel path: frames travel only at finish, sliced zero-copy
        // out of the completed payload.
        let (_clock, n) = net();
        let (server_end, client_end) = duplex(&n);
        let wire = StreamWire::for_chan(server_end);
        wire.stage_reply_segment(4);
        wire.stage_reply_segment(3);
        assert_eq!(wire.reply_streamed(), 7);
        let payload = Bytes::from_static(b"abcdefg");
        wire.finish_reply(&payload);
        let f0 = StreamFrame::decode(client_end.recv().unwrap()).unwrap();
        let f1 = StreamFrame::decode(client_end.recv().unwrap()).unwrap();
        assert_eq!((f0.offset, f0.last, &f0.data[..]), (0, false, &b"abcd"[..]));
        assert_eq!((f1.offset, f1.last, &f1.data[..]), (4, true, &b"efg"[..]));
    }

    #[test]
    fn chan_wire_delivers_real_frames() {
        let (_clock, n) = net();
        let (server_end, client_end) = duplex(&n);
        let wire = StreamWire::for_chan(server_end);
        assert!(wire.delivers_frames());
        // Request segments are already paid for by the channel client.
        wire.recv_request_segment(500);
        assert_eq!(wire.request_claimed(), 0);
        wire.send_reply_segment(0, Bytes::from_static(b"first"), false);
        wire.send_reply_segment(5, Bytes::from_static(b"last"), true);
        let f0 = StreamFrame::decode(client_end.recv().unwrap()).unwrap();
        let f1 = StreamFrame::decode(client_end.recv().unwrap()).unwrap();
        assert_eq!((f0.seq, f0.offset, f0.last), (0, 0, false));
        assert_eq!((f1.seq, f1.offset, f1.last), (1, 5, true));
        assert_eq!(f0.data, Bytes::from_static(b"first"));
        assert_eq!(f1.data, Bytes::from_static(b"last"));
        assert_eq!(wire.reply_streamed(), 9);
    }
}
